// Tests for hdc/quantized: post-training quantization fidelity across
// bitwidths and the packed 1-bit popcount inference path.
#include "hdc/quantized.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"

namespace cyberhd::hdc {
namespace {

struct TrainedFixture {
  core::Matrix x;
  std::vector<int> y;
  CyberHdClassifier model;

  TrainedFixture() : model(make_config()) {
    const float centers[3][4] = {{0.2f, 0.2f, 0.8f, 0.5f},
                                 {0.8f, 0.3f, 0.2f, 0.4f},
                                 {0.5f, 0.8f, 0.5f, 0.9f}};
    core::Rng rng(5);
    const std::size_t per_class = 70;
    x.resize(3 * per_class, 4);
    y.resize(3 * per_class);
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t i = 0; i < per_class; ++i) {
        const std::size_t row = c * per_class + i;
        for (std::size_t f = 0; f < 4; ++f) {
          x(row, f) = centers[c][f] +
                      static_cast<float>(rng.gaussian(0.0, 0.06));
        }
        y[row] = static_cast<int>(c);
      }
    }
    model.fit(x, y, 3);
  }

  static CyberHdConfig make_config() {
    CyberHdConfig cfg;
    cfg.dims = 256;
    cfg.regen_steps = 4;
    cfg.final_epochs = 4;
    cfg.parallel = false;
    return cfg;
  }
};

TEST(QuantizedHdcModel, RejectsUnsupportedBitwidth) {
  HdcModel m(2, 8);
  EXPECT_THROW(QuantizedHdcModel(m, 3), std::invalid_argument);
  EXPECT_THROW(QuantizedHdcModel(m, 0), std::invalid_argument);
}

TEST(QuantizedHdcModel, StorageLayoutPerBitwidth) {
  HdcModel m(3, 64);
  QuantizedHdcModel one(m, 1);
  EXPECT_EQ(one.packed_classes().size(), 3u);
  EXPECT_TRUE(one.level_classes().empty());
  QuantizedHdcModel eight(m, 8);
  EXPECT_EQ(eight.level_classes().size(), 3u);
  EXPECT_TRUE(eight.packed_classes().empty());
  EXPECT_EQ(one.storage_bits(), 3u * 64u * 1u);
  EXPECT_EQ(eight.storage_bits(), 3u * 64u * 8u);
}

TEST(QuantizedHdcModel, HighBitwidthMatchesFloatPredictions) {
  TrainedFixture f;
  const QuantizedHdcModel q(f.model.model(), 16);
  std::vector<float> h(f.model.physical_dims());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < f.x.rows(); ++i) {
    f.model.encode(f.x.row(i), h);
    if (static_cast<int>(q.predict_encoded(h)) == f.model.predict(f.x.row(i))) {
      ++agree;
    }
  }
  EXPECT_EQ(agree, f.x.rows());
}

TEST(QuantizedHdcModel, AccuracyDegradesGracefullyWithBits) {
  TrainedFixture f;
  const double float_acc = f.model.evaluate(f.x, f.y);
  std::vector<float> h(f.model.physical_dims());
  for (int bits : {8, 4, 2, 1}) {
    const QuantizedHdcModel q(f.model.model(), bits);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < f.x.rows(); ++i) {
      f.model.encode(f.x.row(i), h);
      if (q.predict_encoded(h) == static_cast<std::size_t>(f.y[i])) {
        ++correct;
      }
    }
    const double acc =
        static_cast<double>(correct) / static_cast<double>(f.x.rows());
    // Even 1-bit HDC retains most accuracy — the holographic property.
    EXPECT_GT(acc, float_acc - 0.10) << "bits=" << bits;
  }
}

TEST(QuantizedHdcModel, OneBitUsesSignAgreement) {
  HdcModel m(2, 128);
  core::Rng rng(7);
  std::vector<float> proto(128);
  core::fill_gaussian(rng, proto.data(), proto.size(), 0.0f, 1.0f);
  m.bundle(0, proto);
  std::vector<float> anti(proto);
  core::scale(anti, -1.0f);
  m.bundle(1, anti);
  const QuantizedHdcModel q(m, 1);
  // The prototype itself must classify as class 0 with similarity 1.
  std::vector<float> scores(2);
  q.similarities(proto, scores);
  EXPECT_FLOAT_EQ(scores[0], 1.0f);
  EXPECT_FLOAT_EQ(scores[1], -1.0f);
  EXPECT_EQ(q.predict_encoded(proto), 0u);
}

TEST(QuantizedCyberHd, EndToEndPredictions) {
  TrainedFixture f;
  const QuantizedCyberHd q8(f.model, 8);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < f.x.rows(); ++i) {
    if (q8.predict(f.x.row(i)) == f.y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(f.x.rows()),
            0.9);
}

TEST(QuantizedCyberHd, NameIncludesBitsAndDims) {
  TrainedFixture f;
  const QuantizedCyberHd q(f.model, 4);
  EXPECT_NE(q.name().find("q4"), std::string::npos);
  EXPECT_NE(q.name().find("256"), std::string::npos);
  EXPECT_EQ(q.bits(), 4);
}

TEST(QuantizedCyberHd, FitThrows) {
  TrainedFixture f;
  QuantizedCyberHd q(f.model, 8);
  EXPECT_THROW(q.fit(f.x, f.y, 3), std::logic_error);
}

TEST(QuantizedCyberHd, IndependentOfSourceAfterSnapshot) {
  TrainedFixture f;
  const QuantizedCyberHd q(f.model, 8);
  const int before = q.predict(f.x.row(0));
  // Retrain the source with a different seed; the snapshot must not move.
  auto cfg = TrainedFixture::make_config();
  cfg.seed = 999;
  f.model = CyberHdClassifier(cfg);
  f.model.fit(f.x, f.y, 3);
  EXPECT_EQ(q.predict(f.x.row(0)), before);
}

TEST(QuantizedCyberHd, FusedTileEncodeMatchesEncodeThenPack) {
  // encode_tile_packed quantizes each finished float row straight out of
  // the tile's scratch — the packed bytes must be identical to the
  // encode-then-pack_row reference at every packed bitwidth, for full
  // batches, sub-ranges, and strided destinations alike.
  TrainedFixture f;
  std::vector<float> h(f.model.physical_dims());
  for (int bits : {1, 2, 4, 8}) {
    const QuantizedCyberHd q(f.model, bits);
    const std::size_t row_bytes = q.model().packed_row_bytes();
    std::vector<unsigned char> ref(row_bytes);

    std::vector<unsigned char> fused(f.x.rows() * row_bytes, 0xaa);
    q.encode_tile_packed(f.x, 0, f.x.rows(), fused.data(), row_bytes);
    for (std::size_t i = 0; i < f.x.rows(); ++i) {
      f.model.encode(f.x.row(i), h);
      q.model().pack_row(h, ref.data());
      EXPECT_EQ(std::memcmp(fused.data() + i * row_bytes, ref.data(),
                            row_bytes),
                0)
          << "bits=" << bits << " row " << i;
    }

    // A sub-range into a strided destination: rows land at dst + i *
    // dst_stride and the pad bytes between row_bytes and the stride stay
    // untouched.
    const std::size_t begin = 17, end = 60;
    const std::size_t stride = row_bytes + 13;
    std::vector<unsigned char> strided((end - begin) * stride, 0xc3);
    q.encode_tile_packed(f.x, begin, end, strided.data(), stride);
    for (std::size_t i = 0; i < end - begin; ++i) {
      f.model.encode(f.x.row(begin + i), h);
      q.model().pack_row(h, ref.data());
      EXPECT_EQ(
          std::memcmp(strided.data() + i * stride, ref.data(), row_bytes), 0)
          << "bits=" << bits << " row " << begin + i;
      for (std::size_t b = row_bytes; b < stride; ++b) {
        EXPECT_EQ(strided[i * stride + b], 0xc3)
            << "bits=" << bits << " pad overwritten at row " << i;
      }
    }
  }
}

// Bitwidth sweep: quantized accuracy is monotone (allowing small noise) in
// bitwidth on the blob task.
class QuantizedBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizedBitSweep, RetainsAccuracy) {
  TrainedFixture f;
  const QuantizedCyberHd q(f.model, GetParam());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < f.x.rows(); ++i) {
    if (q.predict(f.x.row(i)) == f.y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(f.x.rows()),
            0.85)
      << "bits=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizedBitSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace cyberhd::hdc
