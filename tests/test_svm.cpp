// Tests for the SVM baselines: linear Pegasos on separable data, kernel
// Pegasos on radially-structured (non-linearly-separable) data, and the
// support-vector budget.
#include "baselines/svm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"

namespace cyberhd::baselines {
namespace {

/// Linearly separable two-class data.
struct LinearData {
  core::Matrix x{200, 2};
  std::vector<int> y = std::vector<int>(200);

  explicit LinearData(std::uint64_t seed = 3) {
    core::Rng rng(seed);
    for (std::size_t i = 0; i < 200; ++i) {
      const int cls = static_cast<int>(i % 2);
      const float offset = cls == 0 ? -1.5f : 1.5f;
      x(i, 0) = offset + static_cast<float>(rng.gaussian(0, 0.4));
      x(i, 1) = static_cast<float>(rng.gaussian(0, 0.4));
      y[i] = cls;
    }
  }
};

/// Concentric rings: inner class 0, outer class 1 — not linearly separable.
struct RingData {
  core::Matrix x{300, 2};
  std::vector<int> y = std::vector<int>(300);

  explicit RingData(std::uint64_t seed = 5) {
    core::Rng rng(seed);
    for (std::size_t i = 0; i < 300; ++i) {
      const int cls = static_cast<int>(i % 2);
      const double radius = cls == 0 ? 0.5 : 2.0;
      const double angle = rng.uniform(0, 2 * 3.14159265358979);
      const double r = radius + rng.gaussian(0, 0.1);
      x(i, 0) = static_cast<float>(r * std::cos(angle));
      x(i, 1) = static_cast<float>(r * std::sin(angle));
      y[i] = cls;
    }
  }
};

TEST(LinearSvm, RejectsBadLambda) {
  LinearSvmConfig cfg;
  cfg.lambda = 0.0f;
  EXPECT_THROW(LinearSvm{cfg}, std::invalid_argument);
}

TEST(LinearSvm, RejectsEmptyTrainingSet) {
  LinearSvm svm;
  core::Matrix empty(0, 2);
  EXPECT_THROW(svm.fit(empty, {}, 2), std::invalid_argument);
}

TEST(LinearSvm, LearnsSeparableData) {
  const LinearData data;
  LinearSvm svm;
  svm.fit(data.x, data.y, 2);
  EXPECT_GT(svm.evaluate(data.x, data.y), 0.97);
}

TEST(LinearSvm, DecisionFunctionSignsMatchPredictions) {
  const LinearData data;
  LinearSvm svm;
  svm.fit(data.x, data.y, 2);
  std::vector<float> margins(2);
  for (std::size_t i = 0; i < data.x.rows(); i += 13) {
    svm.decision_function(data.x.row(i), margins);
    const int pred = svm.predict(data.x.row(i));
    EXPECT_EQ(pred, margins[1] > margins[0] ? 1 : 0);
  }
}

TEST(LinearSvm, FailsOnRings) {
  // Sanity: the ring task defeats a linear separator (near chance).
  const RingData data;
  LinearSvm svm;
  svm.fit(data.x, data.y, 2);
  EXPECT_LT(svm.evaluate(data.x, data.y), 0.8);
}

TEST(LinearSvm, WeightsAccessible) {
  const LinearData data;
  LinearSvm svm;
  svm.fit(data.x, data.y, 2);
  EXPECT_EQ(svm.weights(0).size(), 2u);
  EXPECT_EQ(svm.weights(1).size(), 2u);
  // Class-1 weight on feature 0 should be positive (class 1 sits right).
  EXPECT_GT(svm.weights(1)[0], 0.0f);
  EXPECT_LT(svm.weights(0)[0], 0.0f);
}

TEST(LinearSvm, DeterministicGivenSeed) {
  const LinearData data;
  LinearSvm a, b;
  a.fit(data.x, data.y, 2);
  b.fit(data.x, data.y, 2);
  for (std::size_t i = 0; i < data.x.rows(); i += 17) {
    EXPECT_EQ(a.predict(data.x.row(i)), b.predict(data.x.row(i)));
  }
}

TEST(KernelSvm, RejectsBadLambda) {
  KernelSvmConfig cfg;
  cfg.lambda = -1.0f;
  EXPECT_THROW(KernelSvm{cfg}, std::invalid_argument);
}

TEST(KernelSvm, SolvesRings) {
  // The whole point of the RBF kernel: concentric rings become separable.
  const RingData data;
  KernelSvmConfig cfg;
  cfg.epochs = 5;
  KernelSvm svm(cfg);
  svm.fit(data.x, data.y, 2);
  EXPECT_GT(svm.evaluate(data.x, data.y), 0.95);
}

TEST(KernelSvm, AutoGammaViaMedianHeuristic) {
  const RingData data;
  KernelSvmConfig cfg;
  cfg.gamma = 0.0f;  // auto
  KernelSvm svm(cfg);
  svm.fit(data.x, data.y, 2);
  EXPECT_GT(svm.evaluate(data.x, data.y), 0.9);
}

TEST(KernelSvm, RespectsSupportVectorBudget) {
  const RingData data;
  KernelSvmConfig cfg;
  cfg.sv_budget = 30;
  cfg.epochs = 4;
  KernelSvm svm(cfg);
  svm.fit(data.x, data.y, 2);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_LE(svm.num_support_vectors(c), 30u);
  }
  EXPECT_LE(svm.total_support_vectors(), 60u);
  EXPECT_GT(svm.total_support_vectors(), 0u);
}

TEST(KernelSvm, UnboundedBudgetGrowsSupportSet) {
  const RingData data;
  KernelSvmConfig small_budget;
  small_budget.sv_budget = 5;  // tight enough that eviction actually fires
  KernelSvmConfig unbounded;
  unbounded.sv_budget = 0;
  KernelSvm a(small_budget), b(unbounded);
  a.fit(data.x, data.y, 2);
  b.fit(data.x, data.y, 2);
  EXPECT_LE(a.total_support_vectors(), 10u);
  EXPECT_GT(b.total_support_vectors(), a.total_support_vectors());
}

TEST(KernelSvm, NameAndLinearName) {
  EXPECT_EQ(KernelSvm{}.name(), "KernelSVM(rbf)");
  EXPECT_EQ(LinearSvm{}.name(), "LinearSVM");
}

// Multi-class sweep: one-vs-rest handles 3 and 5 classes on blob data.
class SvmMulticlassSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SvmMulticlassSweep, LinearLearnsBlobCircle) {
  // Class centers on a circle: every class is linearly separable from the
  // union of the rest, which is what one-vs-rest actually requires
  // (collinear centers famously defeat OVR for the middle classes).
  const std::size_t k = GetParam();
  core::Rng rng(19);
  const std::size_t per_class = 60;
  core::Matrix x(k * per_class, 2);
  std::vector<int> y(k * per_class);
  for (std::size_t c = 0; c < k; ++c) {
    const double angle =
        2.0 * 3.14159265358979 * static_cast<double>(c) /
        static_cast<double>(k);
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = c * per_class + i;
      x(row, 0) = static_cast<float>(3.0 * std::cos(angle) +
                                     rng.gaussian(0, 0.3));
      x(row, 1) = static_cast<float>(3.0 * std::sin(angle) +
                                     rng.gaussian(0, 0.3));
      y[row] = static_cast<int>(c);
    }
  }
  LinearSvm svm;
  svm.fit(x, y, k);
  EXPECT_GT(svm.evaluate(x, y), 0.95) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Classes, SvmMulticlassSweep,
                         ::testing::Values(2, 3, 5));

}  // namespace
}  // namespace cyberhd::baselines
