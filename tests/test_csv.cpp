// Unit tests for core/csv: RFC-4180 quoting, multi-line fields, and file
// round trips (the real-dataset ingestion path).
#include "core/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cyberhd::core {
namespace {

TEST(ParseCsvLine, SimpleFields) {
  const CsvRow row = parse_csv_line("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[1], "b");
  EXPECT_EQ(row[2], "c");
}

TEST(ParseCsvLine, EmptyFields) {
  const CsvRow row = parse_csv_line("a,,c,");
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "");
  EXPECT_EQ(row[3], "");
}

TEST(ParseCsvLine, SingleField) {
  const CsvRow row = parse_csv_line("hello");
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], "hello");
}

TEST(ParseCsvLine, QuotedComma) {
  const CsvRow row = parse_csv_line("a,\"b,c\",d");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], "b,c");
}

TEST(ParseCsvLine, EscapedQuote) {
  const CsvRow row = parse_csv_line("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "say \"hi\"");
}

TEST(ParseCsvLine, ToleratesCarriageReturn) {
  const CsvRow row = parse_csv_line("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(CsvReader, ReadsRecordsAndSkipsBlankLines) {
  std::istringstream in("a,b\n\nc,d\n\r\ne,f\n");
  CsvReader reader(in);
  auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ((*r1)[0], "a");
  auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ((*r2)[0], "c");
  auto r3 = reader.next();
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ((*r3)[0], "e");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.rows_read(), 3u);
}

TEST(CsvReader, QuotedFieldSpanningLines) {
  std::istringstream in("a,\"line1\nline2\",c\nx,y,z\n");
  CsvReader reader(in);
  auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  ASSERT_EQ(r1->size(), 3u);
  EXPECT_EQ((*r1)[1], "line1\nline2");
  auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ((*r2)[0], "x");
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(ToCsvLine, RoundTripsThroughParse) {
  const CsvRow original = {"a", "b,c", "d\"e", "f\ng", ""};
  const CsvRow parsed = parse_csv_line(to_csv_line(original));
  // The embedded newline survives because parse_csv_line sees the whole
  // logical line.
  EXPECT_EQ(parsed, original);
}

TEST(WriteCsv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cyberhd_csv_test.csv";
  const CsvRow header = {"col1", "col2"};
  const std::vector<CsvRow> rows = {{"1", "hello"}, {"2", "a,b"}};
  ASSERT_TRUE(write_csv(path, header, rows));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  CsvReader reader(in);
  auto h = reader.next();
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(*h, header);
  auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, rows[0]);
  auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, rows[1]);
  std::remove(path.c_str());
}

TEST(WriteCsv, FailsOnBadPath) {
  EXPECT_FALSE(write_csv("/nonexistent-dir-xyz/file.csv", {"a"}, {}));
}

}  // namespace
}  // namespace cyberhd::core
