// Unit tests for hdc/trainer: bundled initialization (with and without
// centering), the adaptive update rule, and convergence on separable data.
#include "hdc/trainer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "hdc/encoder.hpp"

namespace cyberhd::hdc {
namespace {

/// Two well-separated Gaussian blobs encoded through an RBF encoder.
struct BlobFixture {
  core::Matrix encoded;
  std::vector<int> labels;
  std::size_t dims = 128;

  explicit BlobFixture(std::size_t n_per_class, std::uint64_t seed = 5) {
    core::Rng rng(seed);
    core::Matrix raw(2 * n_per_class, 2);
    labels.resize(2 * n_per_class);
    for (std::size_t i = 0; i < n_per_class; ++i) {
      raw(i, 0) = static_cast<float>(rng.gaussian(0.25, 0.08));
      raw(i, 1) = static_cast<float>(rng.gaussian(0.25, 0.08));
      labels[i] = 0;
      raw(n_per_class + i, 0) = static_cast<float>(rng.gaussian(0.75, 0.08));
      raw(n_per_class + i, 1) = static_cast<float>(rng.gaussian(0.75, 0.08));
      labels[n_per_class + i] = 1;
    }
    core::Rng enc_rng(seed + 1);
    RbfEncoder enc(2, dims, enc_rng, 0.5f);
    enc.encode_batch(raw, encoded);
  }
};

TEST(Trainer, InitializeBundlesPerClass) {
  core::Matrix encoded(4, 3);
  encoded(0, 0) = 1;
  encoded(1, 0) = 1;
  encoded(2, 1) = 1;
  encoded(3, 2) = 1;
  const std::vector<int> labels = {0, 0, 1, 1};
  HdcModel model(2, 3);
  Trainer trainer(TrainerConfig{.center_initialization = false});
  trainer.initialize(model, encoded, labels);
  EXPECT_FLOAT_EQ(model.class_vector(0)[0], 2.0f);
  EXPECT_FLOAT_EQ(model.class_vector(1)[1], 1.0f);
  EXPECT_FLOAT_EQ(model.class_vector(1)[2], 1.0f);
}

TEST(Trainer, CenteredInitializationRemovesCommonMode) {
  // All samples share a large common component along dim 0.
  core::Matrix encoded(4, 2);
  encoded(0, 0) = 10; encoded(0, 1) = 1;
  encoded(1, 0) = 10; encoded(1, 1) = 1;
  encoded(2, 0) = 10; encoded(2, 1) = -1;
  encoded(3, 0) = 10; encoded(3, 1) = -1;
  const std::vector<int> labels = {0, 0, 1, 1};
  HdcModel model(2, 2);
  Trainer trainer(TrainerConfig{.center_initialization = true});
  trainer.initialize(model, encoded, labels);
  // Common dim cancels; discriminative dim survives with opposite signs.
  EXPECT_NEAR(model.class_vector(0)[0], 0.0f, 1e-5f);
  EXPECT_NEAR(model.class_vector(1)[0], 0.0f, 1e-5f);
  EXPECT_GT(model.class_vector(0)[1], 0.5f);
  EXPECT_LT(model.class_vector(1)[1], -0.5f);
}

TEST(Trainer, CenteredInitializationWeightsByClassSize) {
  // Class sizes 3 and 1: each class's share of the mean is proportional.
  core::Matrix encoded(4, 1);
  encoded(0, 0) = 1;
  encoded(1, 0) = 1;
  encoded(2, 0) = 1;
  encoded(3, 0) = 1;
  const std::vector<int> labels = {0, 0, 0, 1};
  HdcModel model(2, 1);
  Trainer trainer;
  trainer.initialize(model, encoded, labels);
  // bundle(c0)=3, share=3/4*4*1=3 -> 0; bundle(c1)=1, share=1 -> 0.
  EXPECT_NEAR(model.class_vector(0)[0], 0.0f, 1e-5f);
  EXPECT_NEAR(model.class_vector(1)[0], 0.0f, 1e-5f);
}

TEST(Trainer, EpochStatsAccuracy) {
  EpochStats s;
  s.samples = 10;
  s.mispredicted = 3;
  EXPECT_DOUBLE_EQ(s.accuracy(), 0.7);
  EpochStats empty;
  EXPECT_EQ(empty.accuracy(), 0.0);
}

TEST(Trainer, LearnsSeparableBlobs) {
  BlobFixture fixture(100);
  HdcModel model(2, fixture.dims);
  Trainer trainer;
  trainer.initialize(model, fixture.encoded, fixture.labels);
  core::Rng rng(7);
  trainer.train(model, fixture.encoded, fixture.labels, 5, rng);
  const double acc =
      Trainer::evaluate(model, fixture.encoded, fixture.labels);
  EXPECT_GT(acc, 0.97);
}

TEST(Trainer, TrainingImprovesOverInitialization) {
  BlobFixture fixture(150, /*seed=*/11);
  HdcModel model(2, fixture.dims);
  Trainer trainer(TrainerConfig{.center_initialization = false});
  trainer.initialize(model, fixture.encoded, fixture.labels);
  const double before =
      Trainer::evaluate(model, fixture.encoded, fixture.labels);
  core::Rng rng(13);
  trainer.train(model, fixture.encoded, fixture.labels, 10, rng);
  const double after =
      Trainer::evaluate(model, fixture.encoded, fixture.labels);
  EXPECT_GE(after, before);
  EXPECT_GT(after, 0.95);
}

TEST(Trainer, MispredictionCountDropsAcrossEpochs) {
  BlobFixture fixture(200, /*seed=*/17);
  HdcModel model(2, fixture.dims);
  Trainer trainer;
  trainer.initialize(model, fixture.encoded, fixture.labels);
  core::Rng rng(19);
  const EpochStats first =
      trainer.train_epoch(model, fixture.encoded, fixture.labels, rng);
  EpochStats last;
  for (int e = 0; e < 8; ++e) {
    last = trainer.train_epoch(model, fixture.encoded, fixture.labels, rng);
  }
  EXPECT_LE(last.mispredicted, first.mispredicted);
}

TEST(Trainer, NoUpdatesWhenAllCorrect) {
  // A model that already classifies everything correctly must not change.
  core::Matrix encoded(2, 2);
  encoded(0, 0) = 1;
  encoded(1, 1) = 1;
  const std::vector<int> labels = {0, 1};
  HdcModel model(2, 2);
  model.bundle(0, std::vector<float>{1, 0});
  model.bundle(1, std::vector<float>{0, 1});
  Trainer trainer;
  core::Rng rng(23);
  const auto w00 = model.class_vector(0)[0];
  const EpochStats stats =
      trainer.train_epoch(model, encoded, labels, rng);
  EXPECT_EQ(stats.mispredicted, 0u);
  EXPECT_EQ(model.class_vector(0)[0], w00);
}

TEST(Trainer, SimilarityWeightedUpdatesAreSmallerForFamiliarData) {
  // Construct a misprediction where the true-class similarity is high:
  // the (1 - delta) rule must move less than the plain perceptron rule.
  core::Matrix encoded(1, 2);
  encoded(0, 0) = 1.0f;
  encoded(0, 1) = 0.1f;
  const std::vector<int> labels = {0};
  const auto run = [&](bool weighted) {
    HdcModel model(2, 2);
    model.bundle(0, std::vector<float>{0.9f, 0.0f});
    model.bundle(1, std::vector<float>{1.0f, 0.2f});  // wins initially
    Trainer trainer(TrainerConfig{.learning_rate = 1.0f,
                                  .similarity_weighted = weighted,
                                  .center_initialization = false});
    core::Rng rng(29);
    trainer.train_epoch(model, encoded, labels, rng);
    return model.class_vector(0)[0];
  };
  const float weighted_w = run(true);
  const float plain_w = run(false);
  EXPECT_LT(weighted_w, plain_w);  // smaller step for familiar pattern
  EXPECT_GT(weighted_w, 0.9f);     // but still moved toward the sample
}

TEST(Trainer, ReinforceCorrectGrowsTrueClass) {
  // The class vector is not perfectly aligned with the sample (cos < 1),
  // so the (1 - delta) reinforcement is strictly positive.
  core::Matrix encoded(1, 2);
  encoded(0, 0) = 1.0f;
  encoded(0, 1) = 0.5f;
  const std::vector<int> labels = {0};
  HdcModel model(2, 2);
  model.bundle(0, std::vector<float>{0.5f, 0.0f});
  Trainer trainer(TrainerConfig{.reinforce_correct = true,
                                .center_initialization = false});
  core::Rng rng(31);
  trainer.train_epoch(model, encoded, labels, rng);
  EXPECT_GT(model.class_vector(0)[0], 0.5f);
}

TEST(Trainer, EvaluateEmptyIsZero) {
  HdcModel model(2, 4);
  core::Matrix empty(0, 4);
  EXPECT_EQ(Trainer::evaluate(model, empty, {}), 0.0);
}

// ---- tiled-engine regression suite -----------------------------------------

/// The pre-refactor sequential adaptive epoch, kept verbatim as the golden
/// reference: shuffle, then per sample score via model.similarities() and
/// apply the (1 - delta)-weighted updates immediately. The tiled trainer
/// with batch_size == 1 must reproduce it bit-for-bit.
EpochStats golden_sequential_epoch(const TrainerConfig& config,
                                   HdcModel& model,
                                   const core::Matrix& encoded,
                                   std::span<const int> labels,
                                   core::Rng& rng) {
  const std::size_t n = encoded.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (config.shuffle) rng.shuffle(order);
  EpochStats stats;
  stats.samples = n;
  std::vector<float> scores(model.num_classes());
  for (std::size_t idx : order) {
    const auto h = encoded.row(idx);
    const auto truth = static_cast<std::size_t>(labels[idx]);
    model.similarities(h, scores);
    const std::size_t pred = core::argmax(scores);
    const auto step_weight = [&](float score) {
      return config.similarity_weighted
                 ? config.learning_rate * (1.0f - score)
                 : config.learning_rate;
    };
    if (pred != truth) {
      ++stats.mispredicted;
      core::axpy(step_weight(scores[truth]), h, model.class_vector(truth));
      core::axpy(-step_weight(scores[pred]), h, model.class_vector(pred));
    } else if (config.reinforce_correct) {
      core::axpy(step_weight(scores[truth]), h, model.class_vector(truth));
    }
  }
  return stats;
}

TEST(TrainerTiled, BatchSizeOneIsBitExactToSequentialRule) {
  BlobFixture fixture(120, /*seed=*/43);
  for (const bool weighted : {true, false}) {
    for (const bool reinforce : {false, true}) {
      TrainerConfig cfg;
      cfg.learning_rate = 0.3f;
      cfg.similarity_weighted = weighted;
      cfg.reinforce_correct = reinforce;
      Trainer trainer(cfg);
      HdcModel tiled(2, fixture.dims), golden(2, fixture.dims);
      trainer.initialize(tiled, fixture.encoded, fixture.labels);
      trainer.initialize(golden, fixture.encoded, fixture.labels);
      ASSERT_EQ(tiled.weights(), golden.weights());
      core::Rng rng_tiled(47), rng_golden(47);
      for (int e = 0; e < 3; ++e) {
        const EpochStats t = trainer.train_epoch(tiled, fixture.encoded,
                                                 fixture.labels, rng_tiled);
        const EpochStats g = golden_sequential_epoch(
            cfg, golden, fixture.encoded, fixture.labels, rng_golden);
        EXPECT_EQ(t.samples, g.samples);
        EXPECT_EQ(t.mispredicted, g.mispredicted)
            << "weighted=" << weighted << " reinforce=" << reinforce
            << " epoch " << e;
        // Bit-exact: float-for-float identical class hypervectors.
        ASSERT_EQ(tiled.weights(), golden.weights())
            << "weighted=" << weighted << " reinforce=" << reinforce
            << " epoch " << e;
      }
    }
  }
}

TEST(TrainerTiled, MinibatchAccuracyTracksSequential) {
  // The minibatch rule freezes scores for one tile, so it is an
  // approximation — but on separable data it must land within a point of
  // the sequential rule, and still converge.
  BlobFixture fixture(200, /*seed=*/53);
  const auto final_accuracy = [&](std::size_t batch) {
    TrainerConfig cfg;
    cfg.learning_rate = 0.3f;
    cfg.batch_size = batch;
    Trainer trainer(cfg);
    HdcModel model(2, fixture.dims);
    trainer.initialize(model, fixture.encoded, fixture.labels);
    core::Rng rng(59);
    trainer.train(model, fixture.encoded, fixture.labels, 5, rng);
    return Trainer::evaluate(model, fixture.encoded, fixture.labels);
  };
  const double sequential = final_accuracy(1);
  for (std::size_t batch : {8u, 32u, 128u}) {
    const double minibatch = final_accuracy(batch);
    EXPECT_NEAR(minibatch, sequential, 0.01) << "batch=" << batch;
    EXPECT_GT(minibatch, 0.95) << "batch=" << batch;
  }
}

TEST(TrainerTiled, MinibatchEpochCountsMispredictionsAgainstFrozenScores) {
  // One tile covering the whole epoch: every sample is scored against the
  // initialized model, so the stats must match evaluate() on that model.
  BlobFixture fixture(60, /*seed=*/61);
  TrainerConfig cfg;
  cfg.batch_size = 1 << 20;  // one tile
  cfg.shuffle = false;
  Trainer trainer(cfg);
  HdcModel model(2, fixture.dims);
  trainer.initialize(model, fixture.encoded, fixture.labels);
  const double acc_before =
      Trainer::evaluate(model, fixture.encoded, fixture.labels);
  core::Rng rng(67);
  const EpochStats stats =
      trainer.train_epoch(model, fixture.encoded, fixture.labels, rng);
  EXPECT_DOUBLE_EQ(stats.accuracy(), acc_before);
}

TEST(TrainerTiled, InitializeIsBitIdenticalAcrossThreadCounts) {
  // 4096 rows split into fixed stripes: pools of 1, 2, and 8 workers (and
  // no pool at all) must build float-identical models.
  const std::size_t n = 4096, dims = 64, classes = 3;
  core::Rng rng(71);
  core::Matrix encoded(n, dims);
  core::fill_gaussian(rng, encoded.data(), encoded.size(), 0.0f, 1.0f);
  std::vector<int> labels(n);
  for (auto& y : labels) {
    y = static_cast<int>(rng.next_below(classes));
  }
  Trainer serial_trainer;
  HdcModel reference(classes, dims);
  serial_trainer.initialize(reference, encoded, labels);
  for (std::size_t workers : {1u, 2u, 8u}) {
    core::ThreadPool pool(workers);
    Trainer trainer({}, core::ExecutionContext(&pool));
    HdcModel model(classes, dims);
    trainer.initialize(model, encoded, labels);
    ASSERT_EQ(model.weights(), reference.weights())
        << workers << " workers";
  }
}

TEST(TrainerTiled, ParallelEpochScoringIsDeterministic) {
  // Minibatch scoring and the update replay both split across the pool —
  // the trained model must not depend on the worker count.
  BlobFixture fixture(150, /*seed=*/73);
  const auto train_with = [&](core::ThreadPool* pool) {
    TrainerConfig cfg;
    cfg.batch_size = 32;
    Trainer trainer(cfg, pool != nullptr
                             ? core::ExecutionContext(pool)
                             : core::ExecutionContext::serial());
    HdcModel model(2, fixture.dims);
    trainer.initialize(model, fixture.encoded, fixture.labels);
    core::Rng rng(79);
    trainer.train(model, fixture.encoded, fixture.labels, 3, rng);
    return model;
  };
  const HdcModel serial = train_with(nullptr);
  for (std::size_t workers : {2u, 8u}) {
    core::ThreadPool pool(workers);
    const HdcModel parallel = train_with(&pool);
    ASSERT_EQ(parallel.weights(), serial.weights()) << workers << " workers";
  }
}

TEST(TrainerTiled, EvaluatePoolMatchesSerial) {
  BlobFixture fixture(100, /*seed=*/83);
  HdcModel model(2, fixture.dims);
  Trainer trainer;
  trainer.initialize(model, fixture.encoded, fixture.labels);
  core::ThreadPool pool(4);
  EXPECT_DOUBLE_EQ(
      Trainer::evaluate(model, fixture.encoded, fixture.labels),
      Trainer::evaluate(model, fixture.encoded, fixture.labels,
                        core::ExecutionContext(&pool)));
}

TEST(TrainerTiled, TrainTileMatchesEpochOnPreGatheredOrder) {
  // Feeding an epoch through train_tile in tile-sized chunks of the
  // epoch_order sequence reproduces train_epoch exactly (tile a multiple
  // of batch_size).
  BlobFixture fixture(90, /*seed=*/89);
  TrainerConfig cfg;
  cfg.batch_size = 4;
  Trainer trainer(cfg);
  HdcModel whole(2, fixture.dims), tiled(2, fixture.dims);
  trainer.initialize(whole, fixture.encoded, fixture.labels);
  trainer.initialize(tiled, fixture.encoded, fixture.labels);
  core::Rng rng_whole(97), rng_tiled(97);
  const EpochStats whole_stats = trainer.train_epoch(
      whole, fixture.encoded, fixture.labels, rng_whole);

  const std::size_t n = fixture.encoded.rows();
  const auto order = Trainer::epoch_order(n, rng_tiled, cfg.shuffle);
  const std::size_t tile_rows = 16;  // multiple of batch_size
  core::Matrix tile(tile_rows, fixture.dims);
  std::vector<int> tile_labels(tile_rows);
  EpochStats tiled_stats;
  tiled_stats.samples = n;
  for (std::size_t t = 0; t < n; t += tile_rows) {
    const std::size_t m = std::min(tile_rows, n - t);
    for (std::size_t i = 0; i < m; ++i) {
      const auto src = fixture.encoded.row(order[t + i]);
      std::copy(src.begin(), src.end(), tile.row(i).begin());
      tile_labels[i] = fixture.labels[order[t + i]];
    }
    trainer.train_tile(tiled, tile, {tile_labels.data(), m}, tiled_stats);
  }
  EXPECT_EQ(tiled_stats.mispredicted, whole_stats.mispredicted);
  ASSERT_EQ(tiled.weights(), whole.weights());
}

// ---- UpdateAccumulator: parallel update replay -----------------------------

/// The serial adaptive update rule, verbatim: given frozen scores for a
/// tile, apply the (1 - delta)-weighted axpys sample by sample in visit
/// order. The UpdateAccumulator's striped replay must match bit-for-bit.
void serial_update_rule(const TrainerConfig& cfg, HdcModel& model,
                        const core::Matrix& tile,
                        std::span<const int> labels,
                        const core::Matrix& scores, EpochStats& stats) {
  const auto step_weight = [&](float score) {
    return cfg.similarity_weighted ? cfg.learning_rate * (1.0f - score)
                                   : cfg.learning_rate;
  };
  for (std::size_t r = 0; r < tile.rows(); ++r) {
    const auto h = tile.row(r);
    const auto truth = static_cast<std::size_t>(labels[r]);
    const auto row_scores = scores.row(r);
    const std::size_t pred = core::argmax(row_scores);
    if (pred != truth) {
      ++stats.mispredicted;
      core::axpy(step_weight(row_scores[truth]), h,
                 model.class_vector(truth));
      core::axpy(-step_weight(row_scores[pred]), h,
                 model.class_vector(pred));
    } else if (cfg.reinforce_correct) {
      core::axpy(step_weight(row_scores[truth]), h,
                 model.class_vector(truth));
    }
  }
}

/// A random scored tile at striping-relevant dimensionality (several
/// 16-float-aligned column stripes engage on multi-worker pools).
struct UpdateFixture {
  static constexpr std::size_t kRows = 64;
  static constexpr std::size_t kDims = 2048;
  static constexpr std::size_t kClasses = 5;
  core::Matrix tile{kRows, kDims};
  core::Matrix scores{kRows, kClasses};
  core::Matrix initial{kClasses, kDims};
  std::vector<int> labels = std::vector<int>(kRows);

  UpdateFixture() {
    core::Rng rng(101);
    core::fill_gaussian(rng, tile.data(), tile.size(), 0.0f, 1.0f);
    core::fill_uniform(rng, scores.data(), scores.size(), -1.0f, 1.0f);
    core::fill_gaussian(rng, initial.data(), initial.size(), 0.0f, 1.0f);
    for (auto& y : labels) y = static_cast<int>(rng.next_below(kClasses));
  }

  HdcModel fresh_model() const {
    HdcModel m(kClasses, kDims);
    for (std::size_t c = 0; c < kClasses; ++c) {
      std::copy(initial.row(c).begin(), initial.row(c).end(),
                m.class_vector(c).begin());
    }
    return m;
  }
};

TEST(UpdateAccumulator, BitIdenticalAcrossWorkersAndVsSerialRule) {
  const UpdateFixture f;
  for (const bool weighted : {true, false}) {
    for (const bool reinforce : {false, true}) {
      TrainerConfig cfg;
      cfg.learning_rate = 0.3f;
      cfg.similarity_weighted = weighted;
      cfg.reinforce_correct = reinforce;

      HdcModel golden = f.fresh_model();
      EpochStats golden_stats;
      serial_update_rule(cfg, golden, f.tile, f.labels, f.scores,
                         golden_stats);
      ASSERT_GT(golden_stats.mispredicted, 0u);  // the fixture must bite

      for (std::size_t workers : {1u, 2u, 8u}) {
        core::ThreadPool pool(workers);
        const core::ExecutionContext ctx(&pool);
        HdcModel model = f.fresh_model();
        EpochStats stats;
        UpdateAccumulator acc(cfg);
        acc.collect(f.tile.data(), f.tile.rows(), f.labels.data(),
                    {f.scores.data(), f.scores.size()},
                    UpdateFixture::kClasses, UpdateFixture::kDims, stats);
        acc.apply(model, ctx);
        EXPECT_EQ(stats.mispredicted, golden_stats.mispredicted)
            << workers << " workers";
        ASSERT_EQ(model.weights(), golden.weights())
            << "weighted=" << weighted << " reinforce=" << reinforce
            << " workers=" << workers;
      }
    }
  }
}

TEST(UpdateAccumulator, SerialContextMatchesPooledContexts) {
  const UpdateFixture f;
  TrainerConfig cfg;
  cfg.learning_rate = 0.5f;
  UpdateAccumulator acc(cfg);
  HdcModel serial_model = f.fresh_model();
  EpochStats stats;
  acc.collect(f.tile.data(), f.tile.rows(), f.labels.data(),
              {f.scores.data(), f.scores.size()}, UpdateFixture::kClasses,
              UpdateFixture::kDims, stats);
  acc.apply(serial_model, core::ExecutionContext::serial());
  core::ThreadPool pool(4);
  HdcModel pooled_model = f.fresh_model();
  acc.apply(pooled_model, core::ExecutionContext(&pool));
  ASSERT_EQ(pooled_model.weights(), serial_model.weights());
}

TEST(UpdateAccumulator, MinibatchEpochIsBitIdenticalAcrossWorkerCounts) {
  // End-to-end: a minibatch epoch at striping-relevant dimensionality must
  // train the exact same model on 1, 2, and 8 workers as serially — the
  // scoring split and the update replay are both in play here.
  const std::size_t n = 256, dims = 2048, classes = 4;
  core::Rng rng(103);
  core::Matrix encoded(n, dims);
  core::fill_gaussian(rng, encoded.data(), encoded.size(), 0.0f, 1.0f);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i % classes);
    encoded(i, 0) += 2.0f * static_cast<float>(labels[i]);
  }
  const auto train_with = [&](const core::ExecutionContext& ctx) {
    TrainerConfig cfg;
    cfg.learning_rate = 0.3f;
    cfg.batch_size = 64;
    Trainer trainer(cfg, ctx);
    HdcModel model(classes, dims);
    trainer.initialize(model, encoded, labels);
    core::Rng train_rng(107);
    trainer.train(model, encoded, labels, 3, train_rng);
    return model;
  };
  const HdcModel serial = train_with(core::ExecutionContext::serial());
  for (std::size_t workers : {1u, 2u, 8u}) {
    core::ThreadPool pool(workers);
    const HdcModel parallel = train_with(core::ExecutionContext(&pool));
    ASSERT_EQ(parallel.weights(), serial.weights())
        << workers << " workers";
  }
}

TEST(UpdateAccumulator, AutoBatchResolvesFromContext) {
  TrainerConfig cfg;
  cfg.batch_size = 0;  // auto
  const Trainer trainer(cfg, core::ExecutionContext::serial());
  EXPECT_EQ(trainer.resolved_batch_size(10240),
            core::ExecutionContext::serial().train_batch_rows(10240));
  TrainerConfig pinned;
  pinned.batch_size = 7;
  EXPECT_EQ(Trainer(pinned).resolved_batch_size(10240), 7u);
}

// Parameterized: training converges for a sweep of learning rates.
class TrainerLrSweep : public ::testing::TestWithParam<float> {};

TEST_P(TrainerLrSweep, ConvergesOnBlobs) {
  BlobFixture fixture(100, /*seed=*/37);
  HdcModel model(2, fixture.dims);
  Trainer trainer(TrainerConfig{.learning_rate = GetParam()});
  trainer.initialize(model, fixture.encoded, fixture.labels);
  core::Rng rng(41);
  trainer.train(model, fixture.encoded, fixture.labels, 10, rng);
  EXPECT_GT(Trainer::evaluate(model, fixture.encoded, fixture.labels), 0.95)
      << "lr=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LearningRates, TrainerLrSweep,
                         ::testing::Values(0.05f, 0.1f, 0.3f, 0.5f, 1.0f));

}  // namespace
}  // namespace cyberhd::hdc
