// Unit tests for hdc/trainer: bundled initialization (with and without
// centering), the adaptive update rule, and convergence on separable data.
#include "hdc/trainer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/encoder.hpp"

namespace cyberhd::hdc {
namespace {

/// Two well-separated Gaussian blobs encoded through an RBF encoder.
struct BlobFixture {
  core::Matrix encoded;
  std::vector<int> labels;
  std::size_t dims = 128;

  explicit BlobFixture(std::size_t n_per_class, std::uint64_t seed = 5) {
    core::Rng rng(seed);
    core::Matrix raw(2 * n_per_class, 2);
    labels.resize(2 * n_per_class);
    for (std::size_t i = 0; i < n_per_class; ++i) {
      raw(i, 0) = static_cast<float>(rng.gaussian(0.25, 0.08));
      raw(i, 1) = static_cast<float>(rng.gaussian(0.25, 0.08));
      labels[i] = 0;
      raw(n_per_class + i, 0) = static_cast<float>(rng.gaussian(0.75, 0.08));
      raw(n_per_class + i, 1) = static_cast<float>(rng.gaussian(0.75, 0.08));
      labels[n_per_class + i] = 1;
    }
    core::Rng enc_rng(seed + 1);
    RbfEncoder enc(2, dims, enc_rng, 0.5f);
    enc.encode_batch(raw, encoded);
  }
};

TEST(Trainer, InitializeBundlesPerClass) {
  core::Matrix encoded(4, 3);
  encoded(0, 0) = 1;
  encoded(1, 0) = 1;
  encoded(2, 1) = 1;
  encoded(3, 2) = 1;
  const std::vector<int> labels = {0, 0, 1, 1};
  HdcModel model(2, 3);
  Trainer trainer(TrainerConfig{.center_initialization = false});
  trainer.initialize(model, encoded, labels);
  EXPECT_FLOAT_EQ(model.class_vector(0)[0], 2.0f);
  EXPECT_FLOAT_EQ(model.class_vector(1)[1], 1.0f);
  EXPECT_FLOAT_EQ(model.class_vector(1)[2], 1.0f);
}

TEST(Trainer, CenteredInitializationRemovesCommonMode) {
  // All samples share a large common component along dim 0.
  core::Matrix encoded(4, 2);
  encoded(0, 0) = 10; encoded(0, 1) = 1;
  encoded(1, 0) = 10; encoded(1, 1) = 1;
  encoded(2, 0) = 10; encoded(2, 1) = -1;
  encoded(3, 0) = 10; encoded(3, 1) = -1;
  const std::vector<int> labels = {0, 0, 1, 1};
  HdcModel model(2, 2);
  Trainer trainer(TrainerConfig{.center_initialization = true});
  trainer.initialize(model, encoded, labels);
  // Common dim cancels; discriminative dim survives with opposite signs.
  EXPECT_NEAR(model.class_vector(0)[0], 0.0f, 1e-5f);
  EXPECT_NEAR(model.class_vector(1)[0], 0.0f, 1e-5f);
  EXPECT_GT(model.class_vector(0)[1], 0.5f);
  EXPECT_LT(model.class_vector(1)[1], -0.5f);
}

TEST(Trainer, CenteredInitializationWeightsByClassSize) {
  // Class sizes 3 and 1: each class's share of the mean is proportional.
  core::Matrix encoded(4, 1);
  encoded(0, 0) = 1;
  encoded(1, 0) = 1;
  encoded(2, 0) = 1;
  encoded(3, 0) = 1;
  const std::vector<int> labels = {0, 0, 0, 1};
  HdcModel model(2, 1);
  Trainer trainer;
  trainer.initialize(model, encoded, labels);
  // bundle(c0)=3, share=3/4*4*1=3 -> 0; bundle(c1)=1, share=1 -> 0.
  EXPECT_NEAR(model.class_vector(0)[0], 0.0f, 1e-5f);
  EXPECT_NEAR(model.class_vector(1)[0], 0.0f, 1e-5f);
}

TEST(Trainer, EpochStatsAccuracy) {
  EpochStats s;
  s.samples = 10;
  s.mispredicted = 3;
  EXPECT_DOUBLE_EQ(s.accuracy(), 0.7);
  EpochStats empty;
  EXPECT_EQ(empty.accuracy(), 0.0);
}

TEST(Trainer, LearnsSeparableBlobs) {
  BlobFixture fixture(100);
  HdcModel model(2, fixture.dims);
  Trainer trainer;
  trainer.initialize(model, fixture.encoded, fixture.labels);
  core::Rng rng(7);
  trainer.train(model, fixture.encoded, fixture.labels, 5, rng);
  const double acc =
      Trainer::evaluate(model, fixture.encoded, fixture.labels);
  EXPECT_GT(acc, 0.97);
}

TEST(Trainer, TrainingImprovesOverInitialization) {
  BlobFixture fixture(150, /*seed=*/11);
  HdcModel model(2, fixture.dims);
  Trainer trainer(TrainerConfig{.center_initialization = false});
  trainer.initialize(model, fixture.encoded, fixture.labels);
  const double before =
      Trainer::evaluate(model, fixture.encoded, fixture.labels);
  core::Rng rng(13);
  trainer.train(model, fixture.encoded, fixture.labels, 10, rng);
  const double after =
      Trainer::evaluate(model, fixture.encoded, fixture.labels);
  EXPECT_GE(after, before);
  EXPECT_GT(after, 0.95);
}

TEST(Trainer, MispredictionCountDropsAcrossEpochs) {
  BlobFixture fixture(200, /*seed=*/17);
  HdcModel model(2, fixture.dims);
  Trainer trainer;
  trainer.initialize(model, fixture.encoded, fixture.labels);
  core::Rng rng(19);
  const EpochStats first =
      trainer.train_epoch(model, fixture.encoded, fixture.labels, rng);
  EpochStats last;
  for (int e = 0; e < 8; ++e) {
    last = trainer.train_epoch(model, fixture.encoded, fixture.labels, rng);
  }
  EXPECT_LE(last.mispredicted, first.mispredicted);
}

TEST(Trainer, NoUpdatesWhenAllCorrect) {
  // A model that already classifies everything correctly must not change.
  core::Matrix encoded(2, 2);
  encoded(0, 0) = 1;
  encoded(1, 1) = 1;
  const std::vector<int> labels = {0, 1};
  HdcModel model(2, 2);
  model.bundle(0, std::vector<float>{1, 0});
  model.bundle(1, std::vector<float>{0, 1});
  Trainer trainer;
  core::Rng rng(23);
  const auto w00 = model.class_vector(0)[0];
  const EpochStats stats =
      trainer.train_epoch(model, encoded, labels, rng);
  EXPECT_EQ(stats.mispredicted, 0u);
  EXPECT_EQ(model.class_vector(0)[0], w00);
}

TEST(Trainer, SimilarityWeightedUpdatesAreSmallerForFamiliarData) {
  // Construct a misprediction where the true-class similarity is high:
  // the (1 - delta) rule must move less than the plain perceptron rule.
  core::Matrix encoded(1, 2);
  encoded(0, 0) = 1.0f;
  encoded(0, 1) = 0.1f;
  const std::vector<int> labels = {0};
  const auto run = [&](bool weighted) {
    HdcModel model(2, 2);
    model.bundle(0, std::vector<float>{0.9f, 0.0f});
    model.bundle(1, std::vector<float>{1.0f, 0.2f});  // wins initially
    Trainer trainer(TrainerConfig{.learning_rate = 1.0f,
                                  .similarity_weighted = weighted,
                                  .center_initialization = false});
    core::Rng rng(29);
    trainer.train_epoch(model, encoded, labels, rng);
    return model.class_vector(0)[0];
  };
  const float weighted_w = run(true);
  const float plain_w = run(false);
  EXPECT_LT(weighted_w, plain_w);  // smaller step for familiar pattern
  EXPECT_GT(weighted_w, 0.9f);     // but still moved toward the sample
}

TEST(Trainer, ReinforceCorrectGrowsTrueClass) {
  // The class vector is not perfectly aligned with the sample (cos < 1),
  // so the (1 - delta) reinforcement is strictly positive.
  core::Matrix encoded(1, 2);
  encoded(0, 0) = 1.0f;
  encoded(0, 1) = 0.5f;
  const std::vector<int> labels = {0};
  HdcModel model(2, 2);
  model.bundle(0, std::vector<float>{0.5f, 0.0f});
  Trainer trainer(TrainerConfig{.reinforce_correct = true,
                                .center_initialization = false});
  core::Rng rng(31);
  trainer.train_epoch(model, encoded, labels, rng);
  EXPECT_GT(model.class_vector(0)[0], 0.5f);
}

TEST(Trainer, EvaluateEmptyIsZero) {
  HdcModel model(2, 4);
  core::Matrix empty(0, 4);
  EXPECT_EQ(Trainer::evaluate(model, empty, {}), 0.0);
}

// Parameterized: training converges for a sweep of learning rates.
class TrainerLrSweep : public ::testing::TestWithParam<float> {};

TEST_P(TrainerLrSweep, ConvergesOnBlobs) {
  BlobFixture fixture(100, /*seed=*/37);
  HdcModel model(2, fixture.dims);
  Trainer trainer(TrainerConfig{.learning_rate = GetParam()});
  trainer.initialize(model, fixture.encoded, fixture.labels);
  core::Rng rng(41);
  trainer.train(model, fixture.encoded, fixture.labels, 10, rng);
  EXPECT_GT(Trainer::evaluate(model, fixture.encoded, fixture.labels), 0.95)
      << "lr=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LearningRates, TrainerLrSweep,
                         ::testing::Values(0.05f, 0.1f, 0.3f, 0.5f, 1.0f));

}  // namespace
}  // namespace cyberhd::hdc
