// Tests for the MLP baseline: softmax contracts, learning nonlinear
// decision boundaries (XOR), and training diagnostics.
#include "baselines/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"

namespace cyberhd::baselines {
namespace {

TEST(Softmax, SumsToOne) {
  const std::vector<float> logits = {1.0f, 2.0f, 3.0f};
  std::vector<float> probs(3);
  softmax(logits, probs);
  float sum = 0;
  for (float p : probs) {
    EXPECT_GT(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(probs[2], probs[1]);
  EXPECT_GT(probs[1], probs[0]);
}

TEST(Softmax, StableForLargeLogits) {
  const std::vector<float> logits = {1000.0f, 1001.0f};
  std::vector<float> probs(2);
  softmax(logits, probs);
  EXPECT_TRUE(std::isfinite(probs[0]));
  EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-6f);
  EXPECT_GT(probs[1], probs[0]);
}

TEST(Softmax, UniformForEqualLogits) {
  const std::vector<float> logits = {5.0f, 5.0f, 5.0f, 5.0f};
  std::vector<float> probs(4);
  softmax(logits, probs);
  for (float p : probs) EXPECT_NEAR(p, 0.25f, 1e-6f);
}

TEST(Mlp, RejectsZeroBatch) {
  MlpConfig cfg;
  cfg.batch_size = 0;
  EXPECT_THROW(Mlp{cfg}, std::invalid_argument);
}

TEST(Mlp, RejectsEmptyTrainingSet) {
  Mlp mlp;
  core::Matrix empty(0, 4);
  EXPECT_THROW(mlp.fit(empty, {}, 2), std::invalid_argument);
}

TEST(Mlp, LearnsXor) {
  // XOR is the canonical not-linearly-separable task.
  core::Matrix x(200, 2);
  std::vector<int> y(200);
  core::Rng rng(3);
  for (std::size_t i = 0; i < 200; ++i) {
    const int a = static_cast<int>(rng.next_below(2));
    const int b = static_cast<int>(rng.next_below(2));
    x(i, 0) = static_cast<float>(a) + static_cast<float>(rng.gaussian(0, 0.05));
    x(i, 1) = static_cast<float>(b) + static_cast<float>(rng.gaussian(0, 0.05));
    y[i] = a ^ b;
  }
  MlpConfig cfg;
  cfg.hidden = {16};
  cfg.epochs = 60;
  cfg.batch_size = 16;
  Mlp mlp(cfg);
  mlp.fit(x, y, 2);
  EXPECT_GT(mlp.evaluate(x, y), 0.97);
}

TEST(Mlp, LossDecreases) {
  core::Matrix x(100, 2);
  std::vector<int> y(100);
  core::Rng rng(5);
  for (std::size_t i = 0; i < 100; ++i) {
    const int cls = static_cast<int>(i % 2);
    x(i, 0) = static_cast<float>(cls) +
              static_cast<float>(rng.gaussian(0, 0.1));
    x(i, 1) = static_cast<float>(rng.gaussian(0, 0.1));
    y[i] = cls;
  }
  MlpConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 40;
  cfg.batch_size = 8;  // enough optimizer steps on 100 samples
  Mlp mlp(cfg);
  mlp.fit(x, y, 2);
  const auto losses = mlp.loss_history();
  ASSERT_EQ(losses.size(), 40u);
  EXPECT_LT(losses.back(), losses.front());
  EXPECT_LT(losses.back(), 0.1);
}

TEST(Mlp, PredictProbaSumsToOne) {
  core::Matrix x(60, 3);
  std::vector<int> y(60);
  core::Rng rng(7);
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t f = 0; f < 3; ++f) {
      x(i, f) = static_cast<float>(rng.gaussian(0, 1));
    }
    y[i] = static_cast<int>(i % 3);
  }
  Mlp mlp;
  mlp.fit(x, y, 3);
  std::vector<float> probs(3);
  mlp.predict_proba(x.row(0), probs);
  float sum = 0;
  for (float p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Mlp, ParameterCount) {
  core::Matrix x(10, 4);
  std::vector<int> y(10, 0);
  y[1] = 1;
  MlpConfig cfg;
  cfg.hidden = {8, 8};
  cfg.epochs = 1;
  Mlp mlp(cfg);
  mlp.fit(x, y, 2);
  // (4*8 + 8) + (8*8 + 8) + (8*2 + 2) = 40 + 72 + 18 = 130.
  EXPECT_EQ(mlp.num_parameters(), 130u);
  EXPECT_EQ(mlp.num_layers(), 3u);
}

TEST(Mlp, NameListsArchitecture) {
  MlpConfig cfg;
  cfg.hidden = {96, 96};
  const Mlp mlp(cfg);
  EXPECT_EQ(mlp.name(), "MLP(96-96)");
}

TEST(Mlp, DeterministicGivenSeed) {
  core::Matrix x(80, 2);
  std::vector<int> y(80);
  core::Rng rng(11);
  for (std::size_t i = 0; i < 80; ++i) {
    x(i, 0) = static_cast<float>(rng.gaussian(0, 1));
    x(i, 1) = static_cast<float>(rng.gaussian(0, 1));
    y[i] = x(i, 0) > 0 ? 1 : 0;
  }
  MlpConfig cfg;
  cfg.epochs = 5;
  Mlp a(cfg), b(cfg);
  a.fit(x, y, 2);
  b.fit(x, y, 2);
  for (std::size_t i = 0; i < 80; i += 9) {
    EXPECT_EQ(a.predict(x.row(i)), b.predict(x.row(i)));
  }
}

TEST(Mlp, WeightAccessForFaultInjection) {
  core::Matrix x(20, 2);
  std::vector<int> y(20, 0);
  y[1] = 1;
  MlpConfig cfg;
  cfg.hidden = {4};
  cfg.epochs = 1;
  Mlp mlp(cfg);
  mlp.fit(x, y, 2);
  auto& w0 = mlp.layer_weights(0);
  EXPECT_EQ(w0.rows(), 4u);
  EXPECT_EQ(w0.cols(), 2u);
  const float original = w0(0, 0);
  w0(0, 0) = original + 100.0f;  // mutable access must stick
  EXPECT_EQ(mlp.layer_weights(0)(0, 0), original + 100.0f);
}

// Depth sweep: various architectures all learn a simple linear task.
class MlpArchSweep
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(MlpArchSweep, LearnsLinearTask) {
  core::Matrix x(150, 2);
  std::vector<int> y(150);
  core::Rng rng(13);
  for (std::size_t i = 0; i < 150; ++i) {
    x(i, 0) = static_cast<float>(rng.gaussian(0, 1));
    x(i, 1) = static_cast<float>(rng.gaussian(0, 1));
    y[i] = (x(i, 0) + x(i, 1) > 0) ? 1 : 0;
  }
  MlpConfig cfg;
  cfg.hidden = GetParam();
  cfg.epochs = 40;
  cfg.batch_size = 16;
  Mlp mlp(cfg);
  mlp.fit(x, y, 2);
  EXPECT_GT(mlp.evaluate(x, y), 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, MlpArchSweep,
    ::testing::Values(std::vector<std::size_t>{},          // logistic reg.
                      std::vector<std::size_t>{8},
                      std::vector<std::size_t>{16, 16},
                      std::vector<std::size_t>{8, 8, 8}));

}  // namespace
}  // namespace cyberhd::baselines
