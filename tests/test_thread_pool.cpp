// Unit tests for core/thread_pool: exact range coverage, idle waiting, and
// parallel-result equivalence with serial execution.
#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cyberhd::core {
namespace {

TEST(ThreadPool, SpawnsRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(10000);
  pool.parallel_for(
      touched.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          touched[i].fetch_add(1);
        }
      },
      /*grain=*/64);
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> touched(10, 0);
  pool.parallel_for(
      touched.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++touched[i];
      },
      /*grain=*/256);  // 10 < grain -> direct call, no data race possible
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  const std::size_t n = 100000;
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = 0.001 * static_cast<double>(i);
  std::vector<double> partial(pool.num_threads() * 16, 0.0);
  std::atomic<std::size_t> chunk_id{0};
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    double s = 0;
    for (std::size_t i = begin; i < end; ++i) s += data[i];
    partial[chunk_id.fetch_add(1)] = s;
  });
  const double parallel_sum =
      std::accumulate(partial.begin(), partial.end(), 0.0);
  const double serial_sum = std::accumulate(data.begin(), data.end(), 0.0);
  EXPECT_NEAR(parallel_sum, serial_sum, 1e-6 * serial_sum);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, ReusableAcrossManyParallelFors) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(
        1000,
        [&](std::size_t begin, std::size_t end) {
          total.fetch_add(end - begin);
        },
        /*grain=*/16);
  }
  EXPECT_EQ(total.load(), 50u * 1000u);
}

}  // namespace
}  // namespace cyberhd::core
