// Unit tests for core/thread_pool: exact range coverage, idle waiting,
// parallel-result equivalence with serial execution, worker groups,
// per-caller TaskGroup completion, and parallel_for reentrancy.
#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace cyberhd::core {
namespace {

TEST(ThreadPool, SpawnsRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(10000);
  pool.parallel_for(
      touched.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          touched[i].fetch_add(1);
        }
      },
      /*grain=*/64);
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> touched(10, 0);
  pool.parallel_for(
      touched.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++touched[i];
      },
      /*grain=*/256);  // 10 < grain -> direct call, no data race possible
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  const std::size_t n = 100000;
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = 0.001 * static_cast<double>(i);
  std::vector<double> partial(pool.num_threads() * 16, 0.0);
  std::atomic<std::size_t> chunk_id{0};
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    double s = 0;
    for (std::size_t i = begin; i < end; ++i) s += data[i];
    partial[chunk_id.fetch_add(1)] = s;
  });
  const double parallel_sum =
      std::accumulate(partial.begin(), partial.end(), 0.0);
  const double serial_sum = std::accumulate(data.begin(), data.end(), 0.0);
  EXPECT_NEAR(parallel_sum, serial_sum, 1e-6 * serial_sum);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, ReusableAcrossManyParallelFors) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(
        1000,
        [&](std::size_t begin, std::size_t end) {
          total.fetch_add(end - begin);
        },
        /*grain=*/16);
  }
  EXPECT_EQ(total.load(), 50u * 1000u);
}

TEST(ThreadPool, GroupsClampAndPartitionWorkers) {
  ThreadPool pool(4, 2);
  EXPECT_EQ(pool.num_groups(), 2u);
  // More groups than workers clamps.
  ThreadPool narrow(2, 8);
  EXPECT_EQ(narrow.num_groups(), 2u);
  ThreadPool flat(3);
  EXPECT_EQ(flat.num_groups(), 1u);
}

TEST(ThreadPool, SubmitToGroupRunsOnThatGroupsWorkers) {
  ThreadPool pool(4, 2);
  std::atomic<int> wrong_group{0};
  ThreadPool::TaskGroup group(pool);
  for (std::size_t g = 0; g < 2; ++g) {
    for (int i = 0; i < 32; ++i) {
      group.submit_to_group(g, [&pool, &wrong_group, g] {
        if (pool.current_group() != g) {
          wrong_group.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }
  group.wait();
  EXPECT_EQ(wrong_group.load(), 0);
}

TEST(ThreadPool, CurrentGroupIsNoGroupOffPool) {
  ThreadPool pool(2, 2);
  EXPECT_EQ(pool.current_group(), ThreadPool::kNoGroup);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<bool> saw_worker{false};
  pool.submit([&] {
    saw_worker.store(pool.on_worker_thread() &&
                     pool.current_group() != ThreadPool::kNoGroup);
  });
  pool.wait_idle();
  EXPECT_TRUE(saw_worker.load());
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // A pool task that calls parallel_for on its own pool must complete
  // (the nested call runs inline on the occupied worker) — this was a
  // guaranteed deadlock before workers carried the thread_local mark.
  ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(
      4,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          pool.parallel_for(
              100,
              [&](std::size_t b, std::size_t e) {
                inner_total.fetch_add(e - b, std::memory_order_relaxed);
              },
              /*grain=*/1);  // force the would-be submission path
        }
      },
      /*grain=*/1);
  EXPECT_EQ(inner_total.load(), 400u);
}

TEST(ThreadPool, TaskGroupWaitsOnlyItsOwnTasks) {
  ThreadPool pool(2);
  // A slow background task keeps the pool non-idle; the TaskGroup's wait
  // must return as soon as its own tasks finish regardless.
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  std::atomic<int> mine{0};
  {
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) {
      group.submit([&mine] { mine.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();  // must not wait for the blocked background task
    EXPECT_EQ(mine.load(), 8);
  }
  release.store(true, std::memory_order_release);
  pool.wait_idle();
}

TEST(ThreadPool, ConcurrentParallelForsFromTwoExternalThreads) {
  // Two client threads driving the same pool concurrently each get their
  // full range exactly once — per-caller completion means neither waits
  // on (or steals completion signals from) the other.
  ThreadPool pool(4);
  constexpr std::size_t kN = 20000;
  std::atomic<std::size_t> total_a{0}, total_b{0};
  auto drive = [&pool](std::atomic<std::size_t>& total) {
    for (int round = 0; round < 20; ++round) {
      pool.parallel_for(
          kN,
          [&total](std::size_t b, std::size_t e) {
            total.fetch_add(e - b, std::memory_order_relaxed);
          },
          /*grain=*/64);
    }
  };
  std::thread a([&] { drive(total_a); });
  std::thread b([&] { drive(total_b); });
  a.join();
  b.join();
  EXPECT_EQ(total_a.load(), 20u * kN);
  EXPECT_EQ(total_b.load(), 20u * kN);
}

}  // namespace
}  // namespace cyberhd::core
