// Unit tests for core/quantize: symmetric b-bit quantization, integer
// similarity, and the two's-complement bit codec the fault injector uses.
#include "core/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"

namespace cyberhd::core {
namespace {

TEST(Quantize, SupportedBitwidths) {
  for (int b : {1, 2, 4, 8, 16, 32}) EXPECT_TRUE(is_supported_bitwidth(b));
  for (int b : {0, 3, 5, 7, 9, 24, 64}) {
    EXPECT_FALSE(is_supported_bitwidth(b));
  }
}

TEST(Quantize, MaxLevels) {
  EXPECT_EQ(max_level(1), 1);
  EXPECT_EQ(max_level(2), 1);
  EXPECT_EQ(max_level(4), 7);
  EXPECT_EQ(max_level(8), 127);
  EXPECT_EQ(max_level(16), 32767);
}

TEST(Quantize, OneBitIsSign) {
  const std::vector<float> x = {-2.0f, 3.0f, 0.0f, -0.5f};
  const QuantizedVector q = quantize(x, 1);
  EXPECT_EQ(q.bits, 1);
  ASSERT_EQ(q.levels.size(), 4u);
  EXPECT_EQ(q.levels[0], -1);
  EXPECT_EQ(q.levels[1], 1);
  EXPECT_EQ(q.levels[2], 1);  // zero maps to +1
  EXPECT_EQ(q.levels[3], -1);
  // Scale is the mean absolute value.
  EXPECT_NEAR(q.scale, (2.0f + 3.0f + 0.0f + 0.5f) / 4.0f, 1e-6f);
}

TEST(Quantize, LevelsWithinRange) {
  Rng rng(3);
  std::vector<float> x(257);
  fill_gaussian(rng, x.data(), x.size(), 0.0f, 2.0f);
  for (int bits : {2, 4, 8, 16, 32}) {
    const QuantizedVector q = quantize(x, bits);
    const std::int32_t lmax = max_level(bits);
    for (std::int32_t l : q.levels) {
      EXPECT_GE(l, -lmax);
      EXPECT_LE(l, lmax);
    }
  }
}

TEST(Quantize, AllZerosStaysZero) {
  const std::vector<float> x(16, 0.0f);
  for (int bits : {2, 8, 32}) {
    const QuantizedVector q = quantize(x, bits);
    for (std::int32_t l : q.levels) EXPECT_EQ(l, 0);
  }
}

TEST(Quantize, RoundTripErrorShrinksWithBits) {
  Rng rng(7);
  std::vector<float> x(1024);
  fill_gaussian(rng, x.data(), x.size(), 0.0f, 1.0f);
  double prev_err = 1e9;
  for (int bits : {2, 4, 8, 16}) {
    const QuantizedVector q = quantize(x, bits);
    std::vector<float> back(x.size());
    dequantize(q, back);
    double err = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      err += std::abs(back[i] - x[i]);
    }
    err /= static_cast<double>(x.size());
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-3);  // 16-bit is nearly exact
}

TEST(Quantize, DotLevels) {
  QuantizedVector a, b;
  a.levels = {1, -2, 3};
  b.levels = {4, 5, -6};
  EXPECT_EQ(dot_levels(a, b), 4 - 10 - 18);
}

TEST(Quantize, CosineQuantizedMatchesFloatAtHighBits) {
  Rng rng(11);
  std::vector<float> a(512), b(512);
  fill_gaussian(rng, a.data(), a.size(), 0.0f, 1.0f);
  fill_gaussian(rng, b.data(), b.size(), 0.0f, 1.0f);
  const float exact = cosine(a, b);
  const QuantizedVector qa = quantize(a, 16);
  const QuantizedVector qb = quantize(b, 16);
  EXPECT_NEAR(cosine_quantized(qa, qb), exact, 1e-3f);
}

TEST(Quantize, CosineQuantizedSelfIsOne) {
  Rng rng(13);
  std::vector<float> a(128);
  fill_gaussian(rng, a.data(), a.size(), 0.0f, 1.0f);
  for (int bits : {2, 4, 8}) {
    const QuantizedVector q = quantize(a, bits);
    EXPECT_NEAR(cosine_quantized(q, q), 1.0f, 1e-6f);
  }
}

TEST(Quantize, CosineZeroVector) {
  QuantizedVector a, b;
  a.levels = {0, 0};
  b.levels = {1, 1};
  EXPECT_EQ(cosine_quantized(a, b), 0.0f);
}

TEST(BitCodec, OneBit) {
  EXPECT_EQ(level_to_bits(-1, 1), 0u);
  EXPECT_EQ(level_to_bits(1, 1), 1u);
  EXPECT_EQ(bits_to_level(0u, 1), -1);
  EXPECT_EQ(bits_to_level(1u, 1), 1);
}

TEST(BitCodec, RoundTripAllLevels) {
  for (int bits : {2, 4, 8}) {
    const std::int32_t lmax = max_level(bits);
    for (std::int32_t l = -lmax; l <= lmax; ++l) {
      EXPECT_EQ(bits_to_level(level_to_bits(l, bits), bits), l)
          << "bits=" << bits << " level=" << l;
    }
  }
}

TEST(BitCodec, AsymmetricPatternClamps) {
  // 4-bit pattern 1000 is -8 in two's complement; the symmetric range
  // clamps it to -7.
  EXPECT_EQ(bits_to_level(0b1000u, 4), -7);
  // 2-bit pattern 10 is -2 -> clamped to -1.
  EXPECT_EQ(bits_to_level(0b10u, 2), -1);
}

TEST(BitCodec, IgnoresHighBits) {
  EXPECT_EQ(bits_to_level(0xFFFFFFF1u, 4), 1);
}

// Property sweep over bitwidths: quantize/dequantize preserves sign and
// ordering of well-separated values.
class QuantizeBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeBitSweep, PreservesSignsAndClampsToRange) {
  const int bits = GetParam();
  const std::vector<float> x = {-4.0f, -1.0f, 0.5f, 2.0f, 4.0f};
  const QuantizedVector q = quantize(x, bits);
  std::vector<float> back(x.size());
  dequantize(q, back);
  // Values larger than an LSB step keep their sign; smaller ones may
  // round to zero (fixed-point resolution floor).
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > q.scale) EXPECT_GT(back[i], 0.0f) << "bits=" << bits;
    if (x[i] < -q.scale) EXPECT_LT(back[i], 0.0f) << "bits=" << bits;
  }
  // Nothing escapes the representable range.
  const float range =
      q.scale * static_cast<float>(max_level(bits)) + 1e-4f;
  for (float v : back) EXPECT_LE(std::abs(v), range) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizeBitSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace cyberhd::core
