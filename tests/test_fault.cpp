// Tests for fault/bitflip: statistical flip-rate contracts, determinism,
// and the robustness ordering Fig. 5 depends on.
#include "fault/bitflip.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/cyberhd.hpp"

namespace cyberhd::fault {
namespace {

hdc::CyberHdClassifier trained_blob_model(core::Matrix& x,
                                          std::vector<int>& y) {
  const float centers[3][4] = {{0.2f, 0.2f, 0.8f, 0.5f},
                               {0.8f, 0.3f, 0.2f, 0.4f},
                               {0.5f, 0.8f, 0.5f, 0.9f}};
  core::Rng rng(5);
  const std::size_t per_class = 60;
  x.resize(3 * per_class, 4);
  y.resize(3 * per_class);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = c * per_class + i;
      for (std::size_t f = 0; f < 4; ++f) {
        x(row, f) =
            centers[c][f] + static_cast<float>(rng.gaussian(0.0, 0.06));
      }
      y[row] = static_cast<int>(c);
    }
  }
  hdc::CyberHdConfig cfg;
  cfg.dims = 512;
  cfg.regen_steps = 4;
  cfg.final_epochs = 4;
  cfg.parallel = false;
  hdc::CyberHdClassifier model(cfg);
  model.fit(x, y, 3);
  return model;
}

double quantized_accuracy(const hdc::CyberHdClassifier& trained,
                          const hdc::QuantizedHdcModel& q,
                          const core::Matrix& x, std::span<const int> y) {
  std::vector<float> h(trained.physical_dims());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    trained.encode(x.row(i), h);
    if (q.predict_encoded(h) == static_cast<std::size_t>(y[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.rows());
}

TEST(InjectFloats, ZeroRateIsNoop) {
  std::vector<float> values = {1.0f, -2.0f, 3.5f};
  const auto original = values;
  core::Rng rng(3);
  const FlipReport r = inject_floats(values, 0.0, rng);
  EXPECT_EQ(r.bits_flipped, 0u);
  EXPECT_EQ(values, original);
}

TEST(InjectFloats, ObservedRateMatchesRequested) {
  std::vector<float> values(10000, 1.0f);
  core::Rng rng(7);
  const FlipReport r = inject_floats(values, 0.05, rng);
  EXPECT_EQ(r.bits_considered, 10000u * 32u);
  EXPECT_NEAR(r.observed_rate(), 0.05, 0.003);
}

TEST(InjectFloats, FullRateFlipsEverything) {
  std::vector<float> values = {0.0f};
  core::Rng rng(9);
  const FlipReport r = inject_floats(values, 1.0, rng);
  EXPECT_EQ(r.bits_flipped, 32u);
  // All bits of +0.0f flipped = all-ones pattern = a NaN.
  EXPECT_TRUE(std::isnan(values[0]));
}

TEST(InjectFloats, DeterministicGivenRng) {
  std::vector<float> a(100, 2.5f), b(100, 2.5f);
  core::Rng r1(11), r2(11);
  inject_floats(a, 0.1, r1);
  inject_floats(b, 0.1, r2);
  EXPECT_EQ(a, b);
}

TEST(InjectHdc, OneBitFlipRate) {
  core::Matrix x;
  std::vector<int> y;
  const auto model = trained_blob_model(x, y);
  hdc::QuantizedHdcModel q(model.model(), 1);
  core::Rng rng(13);
  const FlipReport r = inject_hdc(q, 0.10, rng);
  EXPECT_EQ(r.bits_considered, q.storage_bits());
  EXPECT_NEAR(r.observed_rate(), 0.10, 0.03);
}

TEST(InjectHdc, MultiBitFlipRate) {
  core::Matrix x;
  std::vector<int> y;
  const auto model = trained_blob_model(x, y);
  hdc::QuantizedHdcModel q(model.model(), 8);
  core::Rng rng(17);
  const FlipReport r = inject_hdc(q, 0.02, rng);
  EXPECT_EQ(r.bits_considered, q.storage_bits());
  EXPECT_NEAR(r.observed_rate(), 0.02, 0.005);
}

TEST(InjectHdc, ZeroRateKeepsPredictions) {
  core::Matrix x;
  std::vector<int> y;
  const auto model = trained_blob_model(x, y);
  hdc::QuantizedHdcModel q(model.model(), 4);
  const double before = quantized_accuracy(model, q, x, y);
  core::Rng rng(19);
  inject_hdc(q, 0.0, rng);
  EXPECT_EQ(quantized_accuracy(model, q, x, y), before);
}

TEST(InjectHdc, LevelsStayInRangeAfterInjection) {
  core::Matrix x;
  std::vector<int> y;
  const auto model = trained_blob_model(x, y);
  hdc::QuantizedHdcModel q(model.model(), 4);
  core::Rng rng(23);
  inject_hdc(q, 0.3, rng);
  for (const auto& qv : q.level_classes()) {
    for (auto level : qv.levels) {
      EXPECT_GE(level, -7);
      EXPECT_LE(level, 7);
    }
  }
}

TEST(InjectHdc, OneBitModelToleratesModerateFlips) {
  // The holographic-robustness property: 1-bit HDC at a 2% flip rate
  // should lose very little accuracy.
  core::Matrix x;
  std::vector<int> y;
  const auto model = trained_blob_model(x, y);
  hdc::QuantizedHdcModel clean(model.model(), 1);
  const double clean_acc = quantized_accuracy(model, clean, x, y);
  double total_loss = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    hdc::QuantizedHdcModel faulty(model.model(), 1);
    core::Rng rng(100 + t);
    inject_hdc(faulty, 0.02, rng);
    total_loss += clean_acc - quantized_accuracy(model, faulty, x, y);
  }
  EXPECT_LT(total_loss / trials, 0.03);
}

TEST(InjectMlp, ChangesWeightsAtExpectedRate) {
  core::Matrix x(40, 2);
  std::vector<int> y(40);
  core::Rng data_rng(29);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = static_cast<float>(data_rng.gaussian(0, 1));
    x(i, 1) = static_cast<float>(data_rng.gaussian(0, 1));
    y[i] = x(i, 0) > 0 ? 1 : 0;
  }
  baselines::MlpConfig cfg;
  cfg.hidden = {16};
  cfg.epochs = 3;
  baselines::Mlp mlp(cfg);
  mlp.fit(x, y, 2);
  const std::size_t params = mlp.num_parameters();
  core::Rng rng(31);
  const FlipReport r = inject_mlp(mlp, 0.01, rng);
  EXPECT_EQ(r.bits_considered, params * 32u);
  EXPECT_NEAR(r.observed_rate(), 0.01, 0.005);
}

TEST(InjectMlpQuantized, CountsAndBoundedDamage) {
  core::Matrix x(60, 2);
  std::vector<int> y(60);
  core::Rng data_rng(37);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = static_cast<float>(data_rng.gaussian(0, 1));
    x(i, 1) = static_cast<float>(data_rng.gaussian(0, 1));
    y[i] = x(i, 0) > 0 ? 1 : 0;
  }
  baselines::MlpConfig cfg;
  cfg.hidden = {16};
  cfg.epochs = 10;
  baselines::Mlp mlp(cfg);
  mlp.fit(x, y, 2);
  const std::size_t params = mlp.num_parameters();
  core::Rng rng(41);
  const FlipReport r = inject_mlp_quantized(mlp, 8, 0.05, rng);
  EXPECT_EQ(r.bits_considered, params * 8u);
  EXPECT_NEAR(r.observed_rate(), 0.05, 0.02);
  // Fixed-point damage is bounded: no NaN/Inf anywhere.
  for (std::size_t l = 0; l < mlp.num_layers(); ++l) {
    const auto& w = mlp.layer_weights(l);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_TRUE(std::isfinite(w.data()[i]));
    }
  }
}

TEST(RobustnessOrdering, OneBitLosesLessThanEightBit) {
  // The core Fig. 5 mechanism, as a testable invariant: at a 5% flip rate,
  // averaged over seeds, 1-bit HDC loses no more accuracy than 8-bit HDC.
  core::Matrix x;
  std::vector<int> y;
  const auto model = trained_blob_model(x, y);
  const auto mean_loss = [&](int bits) {
    hdc::QuantizedHdcModel clean(model.model(), bits);
    const double clean_acc = quantized_accuracy(model, clean, x, y);
    double loss = 0;
    const int trials = 6;
    for (int t = 0; t < trials; ++t) {
      hdc::QuantizedHdcModel faulty(model.model(), bits);
      core::Rng rng(200 + t);
      inject_hdc(faulty, 0.05, rng);
      loss += clean_acc - quantized_accuracy(model, faulty, x, y);
    }
    return loss / trials;
  };
  EXPECT_LE(mean_loss(1), mean_loss(8) + 0.02);
}

}  // namespace
}  // namespace cyberhd::fault
