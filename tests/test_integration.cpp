// Integration tests across modules: the full NIDS pipeline (synthesize ->
// preprocess -> train -> evaluate), the model zoo on one dataset, the
// quantize-then-inject deployment path, and the regeneration-vs-static
// comparison the paper's headline rests on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/mlp.hpp"
#include "core/stats.hpp"
#include "baselines/static_hd.hpp"
#include "baselines/svm.hpp"
#include "fault/bitflip.hpp"
#include "hdc/cyberhd.hpp"
#include "hdc/quantized.hpp"
#include "nids/datasets.hpp"
#include "nids/preprocess.hpp"

namespace cyberhd {
namespace {

/// One shared medium-size prepared dataset (NSL-KDD-like) for the suite.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const nids::FlowSynthesizer synth =
        nids::make_synthesizer(nids::DatasetId::kNslKdd, 7);
    const nids::Dataset raw = synth.generate(3000, 0);
    split_ = new nids::TrainTestSplit(nids::preprocess(raw, 0.3, 42));
  }
  static void TearDownTestSuite() {
    delete split_;
    split_ = nullptr;
  }
  static const nids::TrainTestSplit& split() { return *split_; }

 private:
  static nids::TrainTestSplit* split_;
};

nids::TrainTestSplit* PipelineTest::split_ = nullptr;

TEST_F(PipelineTest, CyberHdBeatsMajorityClass) {
  hdc::CyberHdConfig cfg;
  cfg.dims = 256;
  cfg.regen_steps = 10;
  cfg.final_epochs = 6;
  hdc::CyberHdClassifier model(cfg);
  model.fit(split().train.x, split().train.y, split().train.num_classes);
  const double acc = model.evaluate(split().test.x, split().test.y);
  // Majority class (normal) is 53%; a trained model must beat it widely.
  EXPECT_GT(acc, 0.80);
}

TEST_F(PipelineTest, AllClassifiersClearTheFloor) {
  const std::size_t k = split().train.num_classes;
  std::vector<std::unique_ptr<core::Classifier>> zoo;
  {
    baselines::MlpConfig cfg;
    cfg.hidden = {32};
    cfg.epochs = 8;
    zoo.push_back(std::make_unique<baselines::Mlp>(cfg));
  }
  zoo.push_back(std::make_unique<baselines::LinearSvm>());
  {
    baselines::KernelSvmConfig cfg;
    cfg.epochs = 2;
    cfg.sv_budget = 512;
    zoo.push_back(std::make_unique<baselines::KernelSvm>(cfg));
  }
  {
    hdc::CyberHdConfig cfg = hdc::baseline_hd_config(256);
    cfg.final_epochs = 15;
    zoo.push_back(std::make_unique<hdc::CyberHdClassifier>(cfg));
  }
  for (auto& model : zoo) {
    model->fit(split().train.x, split().train.y, k);
    EXPECT_GT(model->evaluate(split().test.x, split().test.y), 0.75)
        << model->name();
  }
}

TEST_F(PipelineTest, MinibatchTrainingMatchesSequentialOnNids) {
  // The acceptance bound of the tiled trainer: on the synthetic NIDS
  // workload, minibatch fit() lands within half a point of the
  // sample-at-a-time rule.
  hdc::CyberHdConfig cfg;
  cfg.dims = 256;
  cfg.regen_steps = 10;
  cfg.final_epochs = 6;
  hdc::CyberHdClassifier sequential(cfg);
  sequential.fit(split().train.x, split().train.y,
                 split().train.num_classes);
  const double seq_acc = sequential.evaluate(split().test.x, split().test.y);
  auto mb_cfg = cfg;
  mb_cfg.batch_size = 64;
  hdc::CyberHdClassifier minibatch(mb_cfg);
  minibatch.fit(split().train.x, split().train.y,
                split().train.num_classes);
  const double mb_acc = minibatch.evaluate(split().test.x, split().test.y);
  EXPECT_NEAR(mb_acc, seq_acc, 0.005);
  EXPECT_GT(mb_acc, 0.80);
}

TEST_F(PipelineTest, ConfusionMatrixOnTestSet) {
  hdc::CyberHdConfig cfg;
  cfg.dims = 256;
  cfg.regen_steps = 8;
  hdc::CyberHdClassifier model(cfg);
  model.fit(split().train.x, split().train.y, split().train.num_classes);
  core::ConfusionMatrix cm(split().train.num_classes);
  for (std::size_t i = 0; i < split().test.x.rows(); ++i) {
    cm.add(static_cast<std::size_t>(split().test.y[i]),
           static_cast<std::size_t>(model.predict(split().test.x.row(i))));
  }
  EXPECT_EQ(cm.total(), split().test.size());
  EXPECT_NEAR(cm.accuracy(),
              model.evaluate(split().test.x, split().test.y), 1e-12);
  // Benign recall must be solid for a usable NIDS.
  EXPECT_GT(cm.recall(split().test.benign_class), 0.8);
  EXPECT_LT(cm.false_positive_rate(split().test.benign_class), 0.2);
}

TEST_F(PipelineTest, RegenerationBeatsStaticAtSameDims) {
  // The paper's central claim, at test scale: with a deliberately sharp
  // kernel (dimensionality-starved regime), a regenerating model at D
  // outperforms a static encoder at the same D.
  const std::size_t k = split().train.num_classes;
  hdc::CyberHdConfig static_cfg = hdc::baseline_hd_config(192);
  static_cfg.lengthscale_factor = 0.3f;
  static_cfg.final_epochs = 40;
  hdc::CyberHdClassifier static_model(static_cfg);
  static_model.fit(split().train.x, split().train.y, k);

  hdc::CyberHdConfig regen_cfg;
  regen_cfg.dims = 192;
  regen_cfg.lengthscale_factor = 0.3f;
  regen_cfg.regen_rate = 0.25;
  regen_cfg.regen_steps = 30;
  regen_cfg.final_epochs = 10;
  hdc::CyberHdClassifier regen_model(regen_cfg);
  regen_model.fit(split().train.x, split().train.y, k);

  const double static_acc =
      static_model.evaluate(split().test.x, split().test.y);
  const double regen_acc =
      regen_model.evaluate(split().test.x, split().test.y);
  EXPECT_GT(regen_acc, static_acc - 0.005);
  EXPECT_GT(regen_model.effective_dims(), regen_model.physical_dims());
}

TEST_F(PipelineTest, QuantizedDeploymentRetainsAccuracy) {
  hdc::CyberHdConfig cfg;
  cfg.dims = 256;
  cfg.regen_steps = 8;
  hdc::CyberHdClassifier model(cfg);
  model.fit(split().train.x, split().train.y, split().train.num_classes);
  const double float_acc = model.evaluate(split().test.x, split().test.y);
  for (int bits : {8, 1}) {
    const hdc::QuantizedCyberHd q(model, bits);
    const double q_acc = q.evaluate(split().test.x, split().test.y);
    EXPECT_GT(q_acc, float_acc - 0.08) << "bits=" << bits;
  }
}

TEST_F(PipelineTest, FaultInjectionDegradesMlpMoreThanOneBitHdc) {
  // Fig. 5's claim as an invariant: at a 5% flip rate the fp32 MLP loses
  // more accuracy than 1-bit HDC, averaged over injection seeds.
  const std::size_t k = split().train.num_classes;
  baselines::MlpConfig mlp_cfg;
  mlp_cfg.hidden = {32};
  mlp_cfg.epochs = 8;
  baselines::Mlp mlp(mlp_cfg);
  mlp.fit(split().train.x, split().train.y, k);
  const double mlp_clean = mlp.evaluate(split().test.x, split().test.y);

  hdc::CyberHdConfig cfg;
  cfg.dims = 256;
  cfg.regen_steps = 8;
  hdc::CyberHdClassifier hd(cfg);
  hd.fit(split().train.x, split().train.y, k);
  const hdc::QuantizedCyberHd hd_clean(hd, 1);
  const double hd_clean_acc =
      hd_clean.evaluate(split().test.x, split().test.y);

  const int trials = 3;
  double mlp_loss = 0, hd_loss = 0;
  for (int t = 0; t < trials; ++t) {
    baselines::Mlp mlp_faulty = mlp;
    core::Rng rng_m(300 + t);
    fault::inject_mlp(mlp_faulty, 0.05, rng_m);
    mlp_loss += mlp_clean -
                mlp_faulty.evaluate(split().test.x, split().test.y);

    hdc::QuantizedCyberHd hd_faulty(hd, 1);
    core::Rng rng_h(400 + t);
    fault::inject_hdc(hd_faulty.model(), 0.05, rng_h);
    hd_loss += hd_clean_acc -
               hd_faulty.evaluate(split().test.x, split().test.y);
  }
  EXPECT_GT(mlp_loss / trials, hd_loss / trials);
}

TEST(CrossDataset, AllFourCorporaTrainEndToEnd) {
  for (nids::DatasetId id : nids::kAllDatasets) {
    const nids::FlowSynthesizer synth = nids::make_synthesizer(id, 9);
    const nids::Dataset raw = synth.generate(1200, 0);
    const nids::TrainTestSplit split = nids::preprocess(raw, 0.3, 17);
    hdc::CyberHdConfig cfg;
    cfg.dims = 256;
    cfg.regen_steps = 8;
    cfg.final_epochs = 6;
    hdc::CyberHdClassifier model(cfg);
    model.fit(split.train.x, split.train.y, split.train.num_classes);
    EXPECT_GT(model.evaluate(split.test.x, split.test.y), 0.7)
        << nids::to_string(id);
  }
}

TEST(OnlineDetection, PerFlowPathMatchesBatchPath) {
  // The streaming example's code path: expand_one + scaler must classify
  // identically to the batch pipeline.
  const nids::FlowSynthesizer synth =
      nids::make_synthesizer(nids::DatasetId::kNslKdd, 7);
  const nids::Dataset raw = synth.generate(800, 0);
  const core::Matrix expanded = nids::expand_features(raw);
  nids::MinMaxScaler scaler;
  scaler.fit(expanded);
  core::Matrix scaled = expanded;
  scaler.transform(scaled);

  hdc::CyberHdConfig cfg;
  cfg.dims = 128;
  cfg.regen_steps = 4;
  hdc::CyberHdClassifier model(cfg);
  model.fit(scaled, raw.y, raw.schema.num_classes());

  std::vector<float> one(raw.schema.encoded_width());
  for (std::size_t i = 0; i < 50; ++i) {
    nids::expand_one(raw.schema, raw.x.row(i), one);
    core::Matrix single(1, one.size());
    std::copy(one.begin(), one.end(), single.row(0).data());
    scaler.transform(single);
    EXPECT_EQ(model.predict(single.row(0)), model.predict(scaled.row(i)));
  }
}

}  // namespace
}  // namespace cyberhd
