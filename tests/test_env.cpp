// Pins the shared CYBERHD_* env-knob parsing contract (core/env.hpp):
// unset is silently the default; malformed, negative, overflowing, and
// out-of-range values warn on stderr and use the default — uniformly,
// never a silent clamp or a silent zero.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/env.hpp"

using namespace cyberhd;

namespace {

/// Save/restore one environment variable around a test.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* value = std::getenv(name);
    if (value != nullptr) saved_ = value;
    had_value_ = value != nullptr;
    ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void set(const char* value) { ::setenv(name_, value, 1); }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

constexpr const char* kVar = "CYBERHD_TEST_KNOB";

}  // namespace

TEST(EnvParse, U64UnsetAndEmptyUseFallbackSilently) {
  ScopedEnv guard(kVar);
  EXPECT_EQ(core::env::u64(kVar, 7, 0, 100), 7u);
  guard.set("");
  EXPECT_EQ(core::env::u64(kVar, 7, 0, 100), 7u);
  // The fallback is returned verbatim even when outside [min, max] — 0
  // is a common "auto" sentinel.
  EXPECT_EQ(core::env::u64(kVar, 0, 1, 100), 0u);
}

TEST(EnvParse, U64ParsesCleanValuesAcrossTheRange) {
  ScopedEnv guard(kVar);
  guard.set("0");
  EXPECT_EQ(core::env::u64(kVar, 7, 0, 100), 0u);
  guard.set("42");
  EXPECT_EQ(core::env::u64(kVar, 7, 0, 100), 42u);
  guard.set("100");
  EXPECT_EQ(core::env::u64(kVar, 7, 0, 100), 100u);
  guard.set("18446744073709551615");  // UINT64_MAX parses when in range
  EXPECT_EQ(core::env::u64(kVar, 7, 0, UINT64_MAX), UINT64_MAX);
}

TEST(EnvParse, U64RejectsGarbageNegativeOverflowAndOutOfRange) {
  ScopedEnv guard(kVar);
  for (const char* bad :
       {"banana", "-1", "12x", " 12", "+12", "1.5", "0x10",
        "18446744073709551616",  // UINT64_MAX + 1: overflow, not wrap
        "101"}) {               // above max: rejected, NOT clamped
    guard.set(bad);
    EXPECT_EQ(core::env::u64(kVar, 7, 0, 100), 7u) << "value: " << bad;
  }
  guard.set("0");  // below min when min = 1
  EXPECT_EQ(core::env::u64(kVar, 7, 1, 100), 7u);
}

TEST(EnvParse, ProbabilityParsesAndRejects) {
  ScopedEnv guard(kVar);
  EXPECT_DOUBLE_EQ(core::env::probability(kVar, 0.25), 0.25);
  guard.set("0");
  EXPECT_DOUBLE_EQ(core::env::probability(kVar, 0.25), 0.0);
  guard.set("0.05");
  EXPECT_DOUBLE_EQ(core::env::probability(kVar, 0.25), 0.05);
  guard.set("1");
  EXPECT_DOUBLE_EQ(core::env::probability(kVar, 0.25), 1.0);
  guard.set(".5");
  EXPECT_DOUBLE_EQ(core::env::probability(kVar, 0.25), 0.5);
  for (const char* bad :
       {"1.01", "-0.1", "nan", "inf", "banana", "0.5x", " 0.5", "+0.5"}) {
    guard.set(bad);
    EXPECT_DOUBLE_EQ(core::env::probability(kVar, 0.25), 0.25)
        << "value: " << bad;
  }
}

TEST(EnvParse, BytesParsesSuffixesAndRejects) {
  ScopedEnv guard(kVar);
  EXPECT_EQ(core::env::bytes(kVar, 123), 123u);
  guard.set("65536");
  EXPECT_EQ(core::env::bytes(kVar, 123), 65536u);
  guard.set("2k");
  EXPECT_EQ(core::env::bytes(kVar, 123), 2048u);
  guard.set("2K");
  EXPECT_EQ(core::env::bytes(kVar, 123), 2048u);
  guard.set("3m");
  EXPECT_EQ(core::env::bytes(kVar, 123), 3u << 20);
  guard.set("1g");
  EXPECT_EQ(core::env::bytes(kVar, 123), std::size_t{1} << 30);
  guard.set("0");
  EXPECT_EQ(core::env::bytes(kVar, 123), 0u);
  for (const char* bad : {"banana", "-1", "2kb", "k", "2 k", "2t",
                          "1099511627777"}) {  // > 1 TiB
    guard.set(bad);
    EXPECT_EQ(core::env::bytes(kVar, 123), 123u) << "value: " << bad;
  }
}

TEST(EnvParse, KnobSitesRouteThroughTheSharedContract) {
  // The real knobs must inherit the warn-and-default behavior, not keep
  // private silent-fallback parsers. Spot-check one per rewired site via
  // its public resolver where one exists.
  ScopedEnv linger("CYBERHD_BATCH_LINGER_US");
  linger.set("not-a-number");
  // Resolved through serve::Server::linger_from_env — pinned in
  // test_serve.cpp; here we pin the underlying helper semantics the
  // sites share: malformed != clamped.
  ScopedEnv cache("CYBERHD_ENCODE_CACHE");
  cache.set("99999999999999999999");  // overflow
  EXPECT_EQ(core::env::u64("CYBERHD_ENCODE_CACHE", 4096, 0, 1ULL << 24),
            4096u);
}
