// Unit tests for core/rng: determinism, stream independence, and the
// statistical contracts of each distribution helper.
#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace cyberhd::core {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, FloatInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.next_float();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowIsApproximatelyUniform) {
  Rng rng(5);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(bound)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianWithParams) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalSingleOutcome) {
  Rng rng(23);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleHandlesSmallContainers) {
  Rng rng(29);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(31);
  Rng a = parent.fork(5);
  Rng b = Rng(31).fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(31);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkDoesNotDependOnParentDrawState) {
  Rng p1(37), p2(37);
  (void)p1.next_u64();  // advance p1 only
  Rng a = p1.fork(9);
  Rng b = p2.fork(9);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(FillHelpers, GaussianFill) {
  Rng rng(41);
  std::vector<float> buf(50000);
  fill_gaussian(rng, buf.data(), buf.size(), 2.0f, 0.5f);
  double sum = 0;
  for (float v : buf) sum += v;
  EXPECT_NEAR(sum / buf.size(), 2.0, 0.02);
}

TEST(FillHelpers, UniformFillRange) {
  Rng rng(43);
  std::vector<float> buf(10000);
  fill_uniform(rng, buf.data(), buf.size(), -1.0f, 3.0f);
  for (float v : buf) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 3.0f);
  }
}

// Property sweep: every seed produces values in range and is reproducible.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, ReproducibleAndInRange) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 200; ++i) {
    const double v = a.next_double();
    EXPECT_EQ(v, b.next_double());
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 42ULL,
                                           0xffffffffffffffffULL,
                                           0xdeadbeefULL));

}  // namespace
}  // namespace cyberhd::core
