// Concurrency stress suite for the serving front-end: the lock-free
// submission ring, the coalescing batcher, the sharded encode cache, and
// the first-touch initialization of the process-wide execution context.
//
// The keystone assertions are bit-identity ones: whatever way N producer
// threads interleave their flows through the ring, and however the
// batcher coalesces them, every stream's delivered scores must equal a
// serial scores_batch replay of that stream's flows alone — for any
// stream count, cache mode, and linger setting. CI's kernels/threads
// matrix legs re-run this binary per backend and per worker count, and
// the sanitizer legs re-run it under ThreadSanitizer and AddressSanitizer.
//
// ConcurrentFirstTouch runs FIRST in this file on purpose: each test
// binary is a fresh process, so the global pool and process context
// really are constructed under concurrency here.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/classifier.hpp"
#include "core/exec/execution_context.hpp"
#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "fault/bitflip.hpp"
#include "hdc/cyberhd.hpp"
#include "hdc/encode_cache.hpp"
#include "hdc/encoder.hpp"
#include "hdc/quantized.hpp"
#include "serve/fault_injector.hpp"
#include "serve/result_slot.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/submission_queue.hpp"

namespace cyberhd::serve {
namespace {

// ---------------------------------------------------------------------------
// First-touch initialization under concurrency (must stay the first test).

TEST(ConcurrentFirstTouch, ProcessSingletonsConstructOnceUnderRace) {
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::array<const core::ExecutionContext*, kThreads> ctx{};
  std::array<core::ThreadPool*, kThreads> pool{};
  std::array<std::size_t, kThreads> sum{};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Rendezvous so all eight first touches happen together.
      ready.fetch_add(1, std::memory_order_relaxed);
      while (ready.load(std::memory_order_relaxed) < kThreads) {
        std::this_thread::yield();
      }
      ctx[static_cast<std::size_t>(t)] = &core::ExecutionContext::process();
      pool[static_cast<std::size_t>(t)] = &core::ThreadPool::global();
      std::atomic<std::size_t> local{0};
      pool[static_cast<std::size_t>(t)]->parallel_for(
          1000,
          [&local](std::size_t b, std::size_t e) {
            std::size_t s = 0;
            for (std::size_t i = b; i < e; ++i) s += i;
            local.fetch_add(s, std::memory_order_relaxed);
          },
          /*grain=*/64);
      sum[static_cast<std::size_t>(t)] = local.load();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ctx[static_cast<std::size_t>(t)], ctx[0]);
    EXPECT_EQ(pool[static_cast<std::size_t>(t)], pool[0]);
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(sum[static_cast<std::size_t>(t)], 1000u * 999u / 2);
  }
  EXPECT_EQ(ctx[0]->pool(), pool[0]);
  EXPECT_GE(pool[0]->num_groups(), 1u);
}

// ---------------------------------------------------------------------------
// SubmissionQueue unit tests.

/// Build a request whose identity rides in submitted_at_us.
Request tagged(std::uint64_t tag) {
  Request r;
  r.submitted_at_us = tag;
  return r;
}

TEST(SubmissionQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SubmissionQueue(1).capacity(), 2u);
  EXPECT_EQ(SubmissionQueue(2).capacity(), 2u);
  EXPECT_EQ(SubmissionQueue(3).capacity(), 4u);
  EXPECT_EQ(SubmissionQueue(4).capacity(), 4u);
  EXPECT_EQ(SubmissionQueue(1000).capacity(), 1024u);
}

TEST(SubmissionQueue, FifoOrderSurvivesWraparound) {
  SubmissionQueue q(4);
  std::uint64_t next_push = 0, next_pop = 0;
  // Three-at-a-time over a 4-slot ring: the cursors lap the ring at a
  // different phase every round, covering every wraparound alignment.
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(q.try_push(tagged(next_push++)));
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(q.try_push(tagged(next_push++)));
      Request r;
      ASSERT_TRUE(q.try_pop(r));
      EXPECT_EQ(r.submitted_at_us, next_pop++);
    }
    Request r;
    ASSERT_TRUE(q.try_pop(r));
    EXPECT_EQ(r.submitted_at_us, next_pop++);
  }
  Request r;
  while (q.try_pop(r)) EXPECT_EQ(r.submitted_at_us, next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(SubmissionQueue, FullRingRejectsUntilPopped) {
  SubmissionQueue q(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(tagged(i)));
  }
  EXPECT_FALSE(q.try_push(tagged(99)));  // backpressure, nothing enqueued
  Request r;
  ASSERT_TRUE(q.try_pop(r));
  EXPECT_EQ(r.submitted_at_us, 0u);
  EXPECT_TRUE(q.try_push(tagged(4)));   // slot freed, accepted again
  EXPECT_FALSE(q.try_push(tagged(99)));
}

TEST(SubmissionQueue, CanPopTracksOccupancy) {
  SubmissionQueue q(2);
  EXPECT_FALSE(q.can_pop());
  ASSERT_TRUE(q.try_push(tagged(7)));
  EXPECT_TRUE(q.can_pop());
  Request r;
  ASSERT_TRUE(q.try_pop(r));
  EXPECT_FALSE(q.can_pop());
}

TEST(SubmissionQueue, ConcurrentProducersLoseNothing) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  SubmissionQueue q(64);
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> seen_count(kProducers * kPerProducer, 0);
  // Single consumer (the server's batcher role).
  std::thread consumer([&] {
    Request r;
    for (;;) {
      if (q.try_pop(r)) {
        ++seen_count[static_cast<std::size_t>(r.submitted_at_us)];
      } else if (done.load(std::memory_order_acquire)) {
        // Producers finished: one final drain closes the race where a
        // push landed between the failed pop and the done read.
        while (q.try_pop(r)) {
          ++seen_count[static_cast<std::size_t>(r.submitted_at_us)];
        }
        return;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t tag = p * kPerProducer + i;
        while (!q.try_push(tagged(tag))) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  for (std::size_t i = 0; i < seen_count.size(); ++i) {
    ASSERT_EQ(seen_count[i], 1u) << "request " << i;
  }
}

// ---------------------------------------------------------------------------
// Serving fixture: a small fitted CyberHD model plus per-stream flows.

struct ServeFixture {
  core::Matrix train{150, 5};
  std::vector<int> y = std::vector<int>(150);

  explicit ServeFixture(bool parallel = true) : model(config(parallel)) {
    core::Rng rng(17);
    for (std::size_t i = 0; i < train.rows(); ++i) {
      const int cls = static_cast<int>(i % 3);
      for (std::size_t f = 0; f < train.cols(); ++f) {
        train(i, f) = 0.4f * static_cast<float>(cls) +
                      static_cast<float>(rng.gaussian(0.0, 0.08));
      }
      y[i] = cls;
    }
    model.fit(train, y, 3);
  }

  static hdc::CyberHdConfig config(bool parallel) {
    hdc::CyberHdConfig cfg;
    cfg.dims = 128;
    cfg.regen_steps = 3;
    cfg.final_epochs = 2;
    cfg.parallel = parallel;
    return cfg;
  }

  /// A stream's flow sequence: 96 rows, the second half exact replays of
  /// the first (the working-set shape the encode cache serves). Streams
  /// get disjoint rows via the seed.
  static core::Matrix stream_flows(std::size_t stream) {
    core::Matrix flows(96, 5);
    core::Rng rng(1000 + stream);
    for (std::size_t i = 0; i < 48; ++i) {
      for (std::size_t f = 0; f < flows.cols(); ++f) {
        flows(i, f) = 0.4f * static_cast<float>(i % 3) +
                      static_cast<float>(rng.gaussian(0.0, 0.08));
        flows(i + 48, f) = flows(i, f);
      }
    }
    return flows;
  }

  hdc::CyberHdClassifier model;
};

/// The keystone check: N producer threads submit their streams' flows
/// concurrently; every delivered score vector must be bit-identical to a
/// serial scores_batch replay of that stream alone.
void expect_bit_identical_streams(std::size_t num_streams, bool cache_on,
                                  bool parallel_model, long linger_us,
                                  bool domain_affine) {
  ServeFixture f(parallel_model);
  f.model.set_encode_cache(cache_on ? 1024 : 0);

  std::vector<core::Matrix> flows;
  std::vector<core::Matrix> reference(num_streams);
  flows.reserve(num_streams);
  for (std::size_t s = 0; s < num_streams; ++s) {
    flows.push_back(ServeFixture::stream_flows(s));
    f.model.scores_batch(flows[s], reference[s]);
  }

  ServerConfig cfg;
  cfg.max_linger_us = linger_us;
  cfg.domain_affine = domain_affine;
  Server server(f.model, 5, cfg);

  std::vector<std::vector<ResultSlot>> slots;
  slots.reserve(num_streams);
  for (std::size_t s = 0; s < num_streams; ++s) {
    slots.emplace_back(flows[s].rows());
  }
  std::vector<std::thread> streams;
  for (std::size_t s = 0; s < num_streams; ++s) {
    streams.emplace_back([&, s] {
      for (std::size_t i = 0; i < flows[s].rows(); ++i) {
        ASSERT_TRUE(server.submit(flows[s].row(i), slots[s][i]));
      }
    });
  }
  for (auto& t : streams) t.join();

  // CI's fault-injection leg runs this binary with CYBERHD_FAULT_* set:
  // explicit non-OK terminations are then legal, but an OK result must
  // STILL be bit-identical — degraded throughput, never degraded scores.
  const bool env_faults = FaultConfig::from_env().enabled();
  const std::size_t total = num_streams * flows[0].rows();
  for (std::size_t s = 0; s < num_streams; ++s) {
    for (std::size_t i = 0; i < flows[s].rows(); ++i) {
      slots[s][i].wait();
      if (slots[s][i].status() != RequestStatus::kOk) {
        ASSERT_TRUE(env_faults)
            << "non-OK status without fault injection: stream " << s
            << " row " << i;
        continue;
      }
      const auto got = slots[s][i].scores();
      ASSERT_EQ(got.size(), 3u);
      for (std::size_t c = 0; c < got.size(); ++c) {
        ASSERT_EQ(got[c], reference[s](i, c))
            << "stream " << s << " row " << i << " class " << c;
      }
      EXPECT_GE(slots[s][i].completed_at_us(),
                slots[s][i].submitted_at_us());
    }
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, total);
  EXPECT_EQ(stats.completed, total);
  if (!env_faults) {
    EXPECT_EQ(stats.ok, total);
    EXPECT_GT(stats.batches, 0u);
    EXPECT_GT(stats.mean_batch_rows, 0.0);
  }
}

TEST(ServerBitIdentity, OneStreamCacheOn) {
  expect_bit_identical_streams(1, true, true, -1, true);
}

TEST(ServerBitIdentity, TwoStreamsCacheOn) {
  expect_bit_identical_streams(2, true, true, -1, true);
}

TEST(ServerBitIdentity, EightStreamsCacheOn) {
  expect_bit_identical_streams(8, true, true, -1, true);
}

TEST(ServerBitIdentity, EightStreamsCacheOff) {
  expect_bit_identical_streams(8, false, true, -1, true);
}

TEST(ServerBitIdentity, SerialModelZeroLinger) {
  expect_bit_identical_streams(2, true, false, 0, true);
}

TEST(ServerBitIdentity, InlineScoringNoDomainAffinity) {
  expect_bit_identical_streams(4, true, true, -1, false);
}

// ---------------------------------------------------------------------------
// Quantized models through the same concurrent front-end: the packed
// pipeline (packed encode cache, integer tile scoring, bytes-planned
// batches) must deliver every stream's scores bit-identical to a serial
// quantized scores_batch replay — at every packed bitwidth, cache on/off.

void expect_bit_identical_quantized(std::size_t num_streams, int bits,
                                    bool cache_on) {
  ServeFixture f(true);
  hdc::QuantizedCyberHd q(f.model, bits);
  q.set_encode_cache(cache_on ? 1024 : 0);

  std::vector<core::Matrix> flows;
  std::vector<core::Matrix> reference(num_streams);
  flows.reserve(num_streams);
  for (std::size_t s = 0; s < num_streams; ++s) {
    flows.push_back(ServeFixture::stream_flows(s));
    q.scores_batch(flows[s], reference[s]);
  }

  Server server(q, 5, ServerConfig{});
  std::vector<std::vector<ResultSlot>> slots;
  slots.reserve(num_streams);
  for (std::size_t s = 0; s < num_streams; ++s) {
    slots.emplace_back(flows[s].rows());
  }
  std::vector<std::thread> streams;
  for (std::size_t s = 0; s < num_streams; ++s) {
    streams.emplace_back([&, s] {
      for (std::size_t i = 0; i < flows[s].rows(); ++i) {
        ASSERT_TRUE(server.submit(flows[s].row(i), slots[s][i]));
      }
    });
  }
  for (auto& t : streams) t.join();

  const bool env_faults = FaultConfig::from_env().enabled();
  for (std::size_t s = 0; s < num_streams; ++s) {
    for (std::size_t i = 0; i < flows[s].rows(); ++i) {
      slots[s][i].wait();
      if (slots[s][i].status() != RequestStatus::kOk) {
        ASSERT_TRUE(env_faults)
            << "non-OK status without fault injection: stream " << s
            << " row " << i;
        continue;
      }
      const auto got = slots[s][i].scores();
      ASSERT_EQ(got.size(), 3u);
      for (std::size_t c = 0; c < got.size(); ++c) {
        ASSERT_EQ(got[c], reference[s](i, c))
            << "bits " << bits << " stream " << s << " row " << i
            << " class " << c;
      }
    }
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, num_streams * flows[0].rows());
  if (!env_faults) EXPECT_EQ(stats.ok, stats.completed);
}

TEST(ServerQuantized, OneStreamEveryBitwidthCacheOn) {
  for (int bits : {1, 4, 8}) {
    expect_bit_identical_quantized(1, bits, true);
  }
}

TEST(ServerQuantized, EightStreamsEveryBitwidthCacheOn) {
  for (int bits : {1, 4, 8}) {
    expect_bit_identical_quantized(8, bits, true);
  }
}

TEST(ServerQuantized, EightStreamsEveryBitwidthCacheOff) {
  for (int bits : {1, 4, 8}) {
    expect_bit_identical_quantized(8, bits, false);
  }
}

// ---------------------------------------------------------------------------
// Shutdown, backpressure, and edge cases.

TEST(ServerShutdown, EveryAcceptedRequestCompletes) {
  ServeFixture f(true);
  f.model.set_encode_cache(1024);
  ServerConfig cfg;
  cfg.max_linger_us = 50'000;  // long linger: shutdown must cut it short
  cfg.max_batch_rows = 8;
  Server server(f.model, 5, cfg);

  constexpr std::size_t kProducers = 4;
  const core::Matrix flows = ServeFixture::stream_flows(0);
  std::vector<std::vector<ResultSlot>> slots;
  std::vector<std::vector<bool>> accepted(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    slots.emplace_back(flows.rows());
    accepted[p].assign(flows.rows(), false);
  }
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < flows.rows(); ++i) {
        accepted[p][i] = server.try_submit(flows.row(i), slots[p][i]);
      }
    });
  }
  // Shut down while producers are mid-flight: accepted requests must
  // still complete, late submissions must be rejected cleanly.
  server.shutdown();
  for (auto& t : producers) t.join();
  server.shutdown();  // idempotent

  const bool env_faults = FaultConfig::from_env().enabled();
  std::uint64_t accepted_count = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < flows.rows(); ++i) {
      if (!accepted[p][i]) continue;
      ++accepted_count;
      ASSERT_TRUE(slots[p][i].ready())
          << "accepted request " << p << "/" << i << " never completed";
      if (slots[p][i].ok()) {
        EXPECT_EQ(slots[p][i].scores().size(), 3u);
      } else {
        ASSERT_TRUE(env_faults) << "non-OK status without fault injection";
      }
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, accepted_count);
  EXPECT_EQ(stats.completed, accepted_count);
  EXPECT_EQ(stats.accepted + stats.rejected,
            kProducers * flows.rows());
}

/// A classifier stub whose scoring is deliberately slow, so the ring
/// fills and try_submit exercises real backpressure deterministically.
class SlowStub : public core::Classifier {
 public:
  void fit(const core::Matrix&, std::span<const int>, std::size_t) override {}
  std::size_t num_classes() const noexcept override { return 2; }
  int predict(std::span<const float> x) const override {
    return x[0] > 0.0f ? 1 : 0;
  }
  void scores(std::span<const float> x,
              std::span<float> out) const override {
    out[0] = -x[0];
    out[1] = x[0];
  }
  void scores_block(const core::Matrix& x, std::size_t begin,
                    std::size_t end, core::Matrix& out) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    core::Classifier::scores_block(x, begin, end, out);
  }
  std::size_t preferred_batch_rows(const core::Matrix&) const override {
    return 4;
  }
  std::string name() const override { return "slow-stub"; }
};

TEST(ServerBackpressure, FullRingRejectsAndAcceptedStillComplete) {
  SlowStub stub;
  ServerConfig cfg;
  cfg.queue_capacity = 2;
  cfg.max_linger_us = 0;
  cfg.max_batch_rows = 4;
  cfg.domain_affine = false;
  cfg.faults = FaultConfig{};  // exact-score pins: force injection off
  Server server(stub, 3, cfg);

  constexpr std::size_t kRequests = 200;
  std::vector<ResultSlot> slots(kRequests);
  std::vector<bool> accepted(kRequests, false);
  const std::array<float, 3> row{0.5f, 1.0f, -1.0f};
  for (std::size_t i = 0; i < kRequests; ++i) {
    accepted[i] = server.try_submit(row, slots[i]);  // no retry: shed
    // A rejected submission is terminal too — status on the slot, not
    // just a false return.
    if (!accepted[i]) {
      ASSERT_TRUE(slots[i].ready());
      EXPECT_EQ(slots[i].status(), RequestStatus::kRejected);
    }
  }
  server.shutdown();

  const ServerStats stats = server.stats();
  std::uint64_t accepted_count = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    if (!accepted[i]) continue;
    ++accepted_count;
    ASSERT_TRUE(slots[i].ready());
    ASSERT_TRUE(slots[i].ok());
    EXPECT_EQ(slots[i].scores()[0], -0.5f);
    EXPECT_EQ(slots[i].scores()[1], 0.5f);
  }
  EXPECT_EQ(stats.accepted, accepted_count);
  EXPECT_EQ(stats.completed, accepted_count);
  // A 2-slot ring in front of a 2ms-per-batch scorer must shed load.
  EXPECT_GT(stats.rejected, 0u);
  EXPECT_EQ(stats.accepted + stats.rejected, kRequests);
}

TEST(ServerEdge, ZeroFlowShutdownIsClean) {
  ServeFixture f(false);
  Server server(f.model, 5);
  server.shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.mean_batch_rows, 0.0);
  // Submissions after shutdown are rejected, not lost — and the slot
  // carries the terminal REJECTED status.
  ResultSlot slot;
  const core::Matrix flows = ServeFixture::stream_flows(0);
  EXPECT_FALSE(server.try_submit(flows.row(0), slot));
  ASSERT_TRUE(slot.ready());
  EXPECT_EQ(slot.status(), RequestStatus::kRejected);
}

TEST(ServerEdge, ResolvesPlannerBatchAndEnvLinger) {
  ServeFixture f(true);
  Server server(f.model, 5);
  core::Matrix probe(1, 5);
  EXPECT_EQ(server.max_batch_rows(), f.model.preferred_batch_rows(probe));
  EXPECT_EQ(server.num_classes(), 3u);
  EXPECT_EQ(server.input_dim(), 5u);
}

// ---------------------------------------------------------------------------
// Deadlines, load shedding, and client-side retry.

TEST(ServerDeadline, ExpiredRequestsAreShedWithStatus) {
  SlowStub stub;  // 2 ms per batch: later requests queue behind scoring
  ServerConfig cfg;
  cfg.queue_capacity = 512;
  cfg.max_linger_us = 0;
  cfg.max_batch_rows = 4;
  cfg.domain_affine = false;
  cfg.faults = FaultConfig{};
  Server server(stub, 3, cfg);

  constexpr std::size_t kRequests = 64;
  std::vector<ResultSlot> slots(kRequests);
  const std::array<float, 3> row{0.5f, 1.0f, -1.0f};
  for (std::size_t i = 0; i < kRequests; ++i) {
    // A 1 µs budget: anything that waits behind even one 2 ms batch has
    // expired by the time the batcher reaches it.
    ASSERT_TRUE(server.submit(row, slots[i], /*deadline_us=*/1));
  }
  server.shutdown();

  std::uint64_t ok = 0, expired = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(slots[i].ready());
    switch (slots[i].status()) {
      case RequestStatus::kOk:
        ++ok;
        EXPECT_EQ(slots[i].scores()[0], -0.5f);  // scored rows are right
        break;
      case RequestStatus::kDeadlineExceeded:
        ++expired;
        break;
      default:
        FAIL() << "unexpected status for request " << i;
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_EQ(stats.ok, ok);
  EXPECT_EQ(stats.expired, expired);
  EXPECT_EQ(ok + expired, kRequests);
  // The scorer takes 2 ms per batch and every budget is 1 µs: shedding
  // must actually have happened.
  EXPECT_GT(stats.expired, 0u);
}

TEST(ServerDeadline, GenerousDeadlinesAllScore) {
  ServeFixture f(true);
  f.model.set_encode_cache(0);
  ServerConfig cfg;
  cfg.max_linger_us = 0;
  cfg.faults = FaultConfig{};
  Server server(f.model, 5, cfg);
  const core::Matrix flows = ServeFixture::stream_flows(0);
  core::Matrix reference;
  f.model.scores_batch(flows, reference);
  std::vector<ResultSlot> slots(flows.rows());
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(
        server.submit(flows.row(i), slots[i], /*deadline_us=*/10'000'000));
  }
  server.shutdown();
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(slots[i].ready());
    ASSERT_TRUE(slots[i].ok());
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(slots[i].scores()[c], reference(i, c));
    }
  }
  EXPECT_EQ(server.stats().expired, 0u);
}

TEST(ServerRetry, BoundedJitteredBackoffOnFullRing) {
  SlowStub stub;
  ServerConfig cfg;
  cfg.queue_capacity = 2;
  cfg.max_linger_us = 0;
  cfg.max_batch_rows = 4;
  cfg.domain_affine = false;
  cfg.faults = FaultConfig{};
  Server server(stub, 3, cfg);

  constexpr std::size_t kRequests = 60;
  std::vector<ResultSlot> slots(kRequests);
  std::vector<bool> accepted(kRequests, false);
  const std::array<float, 3> row{0.5f, 1.0f, -1.0f};
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_us = 50;
  policy.max_backoff_us = 2'000;
  std::uint64_t exhausted = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    policy.seed = i + 1;  // per-request stream, decorrelated jitter
    accepted[i] = server.submit_with_retry(row, slots[i], policy);
    if (!accepted[i]) {
      ++exhausted;
      // Exhaustion is explicit: the slot's last rejection is terminal.
      ASSERT_TRUE(slots[i].ready());
      EXPECT_EQ(slots[i].status(), RequestStatus::kRejected);
    }
  }
  server.shutdown();

  const ServerStats stats = server.stats();
  for (std::size_t i = 0; i < kRequests; ++i) {
    if (!accepted[i]) continue;
    ASSERT_TRUE(slots[i].ready());
    ASSERT_TRUE(slots[i].ok());
    EXPECT_EQ(slots[i].scores()[1], 0.5f);
  }
  // A 2-slot ring over a 2 ms scorer forces backoff; the retry budget is
  // bounded, so with 4 attempts against sustained pressure some requests
  // may exhaust — but every accepted one completed and every outcome is
  // accounted for.
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.accepted, kRequests - exhausted);
  EXPECT_EQ(stats.completed, stats.accepted);
}

// ---------------------------------------------------------------------------
// Fault injection: the server must degrade explicitly — terminal statuses
// and healed corruption — never hang and never serve silently wrong
// scores. These tests pin injection explicitly (they do not depend on the
// CYBERHD_FAULT_* environment).

TEST(ServerFault, InjectedDelaysStallButEveryRequestScores) {
  ServeFixture f(true);
  f.model.set_encode_cache(1024);
  const core::Matrix flows = ServeFixture::stream_flows(0);
  core::Matrix reference;
  f.model.scores_batch(flows, reference);

  ServerConfig cfg;
  cfg.max_linger_us = 0;
  cfg.max_batch_rows = 8;
  FaultConfig faults;
  faults.seed = 7;
  faults.delay_p = 1.0;  // every flush stalls
  faults.delay_us = 300;
  cfg.faults = faults;
  Server server(f.model, 5, cfg);

  std::vector<ResultSlot> slots(flows.rows());
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(server.submit(flows.row(i), slots[i]));
  }
  server.shutdown();

  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(slots[i].ready());
    ASSERT_TRUE(slots[i].ok());
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(slots[i].scores()[c], reference(i, c));
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_GT(stats.injected_delays, 0u);
  EXPECT_EQ(stats.ok, flows.rows());
  EXPECT_EQ(stats.completed, stats.accepted);
}

TEST(ServerFault, WatchdogObservesInjectedStallAndAllComplete) {
  SlowStub stub;
  ServerConfig cfg;
  cfg.queue_capacity = 256;
  cfg.max_linger_us = 0;
  cfg.max_batch_rows = 4;
  cfg.domain_affine = false;
  FaultConfig faults;
  faults.seed = 11;
  faults.delay_p = 1.0;
  faults.delay_us = 30'000;  // 30 ms dark per flush
  cfg.faults = faults;
  cfg.watchdog_us = 5'000;  // polls 6x per injected stall
  Server server(stub, 3, cfg);

  constexpr std::size_t kRequests = 8;
  std::vector<ResultSlot> slots(kRequests);
  const std::array<float, 3> row{0.5f, 1.0f, -1.0f};
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(server.submit(row, slots[i]));
  }
  for (auto& slot : slots) {
    slot.wait();  // no hang: the batcher stalls but always resumes
    EXPECT_TRUE(slot.ok());
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  // At least one 5 ms watchdog interval fell entirely inside a 30 ms
  // injected stall with requests in flight.
  EXPECT_GT(stats.watchdog_stalls, 0u);
  EXPECT_EQ(stats.completed, stats.accepted);
}

TEST(ServerFault, EncodeFailuresFailExplicitlyAndOkRowsStayIdentical) {
  ServeFixture f(true);
  f.model.set_encode_cache(1024);
  const core::Matrix flows = ServeFixture::stream_flows(0);
  core::Matrix reference;
  f.model.scores_batch(flows, reference);

  ServerConfig cfg;
  cfg.max_linger_us = 0;
  cfg.max_batch_rows = 8;
  FaultConfig faults;
  faults.seed = 13;
  faults.encode_fail_p = 0.5;
  cfg.faults = faults;
  Server server(f.model, 5, cfg);

  std::vector<ResultSlot> slots(flows.rows());
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(server.submit(flows.row(i), slots[i]));
  }
  server.shutdown();

  std::uint64_t ok = 0, failed = 0;
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(slots[i].ready());
    if (slots[i].ok()) {
      ++ok;
      for (std::size_t c = 0; c < 3; ++c) {
        ASSERT_EQ(slots[i].scores()[c], reference(i, c))
            << "OK row " << i << " diverged under injected failures";
      }
    } else {
      ++failed;
      EXPECT_EQ(slots[i].status(), RequestStatus::kModelUnavailable);
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.ok, ok);
  EXPECT_EQ(stats.failed, failed);
  EXPECT_EQ(ok + failed, flows.rows());
  EXPECT_EQ(stats.completed, stats.accepted);
  // p = 0.5 over ≥ 12 flushes (96 rows, ≤ 8 per batch): both outcomes
  // occur, with a flake probability of 2^-12 per direction.
  EXPECT_GT(stats.injected_encode_failures, 0u);
  EXPECT_GT(ok, 0u);
}

TEST(ServerFault, BitflipCorruptionHealsToBitIdenticalScores) {
  ServeFixture f(true);
  f.model.set_encode_cache(1024);
  const core::Matrix flows = ServeFixture::stream_flows(0);
  core::Matrix reference;
  f.model.scores_batch(flows, reference);

  SnapshotManager snapshots(3);
  snapshots.capture(f.model);
  ModelAuditor auditor(f.model, snapshots);

  ServerConfig cfg;
  cfg.max_linger_us = 0;
  cfg.max_batch_rows = 8;
  FaultConfig faults;
  faults.seed = 29;
  faults.bitflip_p = 0.5;
  faults.bitflip_rate = 0.01;
  cfg.faults = faults;
  Server server(f.model, 5, cfg);
  server.set_auditor(&auditor);
  // The hook runs on the batcher thread between flushes — corruption of
  // the live model races nothing.
  server.fault_injector()->set_bitflip_hook(
      [&f](double rate, core::Rng& rng) {
        core::Matrix& w = f.model.model().weights();
        fault::inject_floats({w.data(), w.rows() * w.cols()}, rate, rng);
      });

  std::vector<ResultSlot> slots(flows.rows());
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(server.submit(flows.row(i), slots[i]));
  }
  server.shutdown();

  // Every request scored, and every score is bit-identical to the clean
  // replay: each injected corruption was audited and healed BEFORE the
  // next batch scored.
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(slots[i].ready());
    ASSERT_TRUE(slots[i].ok());
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(slots[i].scores()[c], reference(i, c))
          << "row " << i << ": corruption leaked into served scores";
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_GT(stats.injected_bitflips, 0u);
  EXPECT_GT(stats.corruptions, 0u);
  EXPECT_EQ(stats.recoveries, stats.corruptions);
  EXPECT_EQ(stats.ok, flows.rows());
  EXPECT_EQ(stats.completed, stats.accepted);
}

void expect_quantized_bitflip_heals(int bits) {
  ServeFixture f(true);
  hdc::QuantizedCyberHd q(f.model, bits);
  q.set_encode_cache(1024);
  const core::Matrix flows = ServeFixture::stream_flows(0);
  core::Matrix reference;
  q.scores_batch(flows, reference);

  // Snapshots hold the float source; the heal re-quantizes it at the
  // live bitwidth (deterministic, so bit-identical to the original).
  SnapshotManager snapshots(2);
  snapshots.capture(f.model);
  ModelAuditor auditor(q, snapshots);

  ServerConfig cfg;
  cfg.max_linger_us = 0;
  cfg.max_batch_rows = 16;
  FaultConfig faults;
  faults.seed = 31;
  faults.bitflip_p = 0.5;
  faults.bitflip_rate = 0.02;  // a fig-5 rate, in the packed domain
  cfg.faults = faults;
  Server server(q, 5, cfg);
  server.set_auditor(&auditor);
  server.fault_injector()->set_bitflip_hook(
      [&q](double rate, core::Rng& rng) {
        fault::inject_hdc(q.model(), rate, rng);
      });

  std::vector<ResultSlot> slots(flows.rows());
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(server.submit(flows.row(i), slots[i]));
  }
  server.shutdown();

  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(slots[i].ready());
    ASSERT_TRUE(slots[i].ok());
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(slots[i].scores()[c], reference(i, c))
          << "bits " << bits << " row " << i
          << ": corruption leaked into served scores";
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_GT(stats.injected_bitflips, 0u);
  EXPECT_EQ(stats.recoveries, stats.corruptions);
  EXPECT_GT(stats.recoveries, 0u);
  EXPECT_EQ(stats.ok, flows.rows());
}

TEST(ServerFault, QuantizedBitflipHealsPacked1Bit) {
  expect_quantized_bitflip_heals(1);
}

TEST(ServerFault, QuantizedBitflipHealsLevels8Bit) {
  expect_quantized_bitflip_heals(8);
}

TEST(ServerFault, UnhealableCorruptionFailsRequestsNotServesGarbage) {
  ServeFixture f(true);
  const core::Matrix flows = ServeFixture::stream_flows(0);

  SnapshotManager snapshots(2);  // deliberately empty: nothing to heal from
  ModelAuditor auditor(f.model, snapshots);

  ServerConfig cfg;
  cfg.max_linger_us = 0;
  cfg.max_batch_rows = 8;
  FaultConfig faults;
  faults.seed = 37;
  faults.bitflip_p = 1.0;  // corrupt before every scoring flush
  faults.bitflip_rate = 0.01;
  cfg.faults = faults;
  Server server(f.model, 5, cfg);
  server.set_auditor(&auditor);
  server.fault_injector()->set_bitflip_hook(
      [&f](double rate, core::Rng& rng) {
        core::Matrix& w = f.model.model().weights();
        fault::inject_floats({w.data(), w.rows() * w.cols()}, rate, rng);
      });

  std::vector<ResultSlot> slots(flows.rows());
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(server.submit(flows.row(i), slots[i]));
  }
  server.shutdown();

  // Corruption before every flush and no snapshot to restore: the server
  // must fail every request explicitly — zero scores from a corrupt model.
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    ASSERT_TRUE(slots[i].ready());
    EXPECT_EQ(slots[i].status(), RequestStatus::kModelUnavailable);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.ok, 0u);
  EXPECT_EQ(stats.failed, flows.rows());
  EXPECT_GT(stats.corruptions, 0u);
  EXPECT_EQ(stats.recoveries, 0u);
  EXPECT_EQ(stats.completed, stats.accepted);
}

TEST(ServerFault, ShutdownUnderFaultCompletesEveryAcceptedRequest) {
  ServeFixture f(true);
  f.model.set_encode_cache(1024);
  ServerConfig cfg;
  cfg.max_linger_us = 50'000;
  cfg.max_batch_rows = 8;
  FaultConfig faults;
  faults.seed = 41;
  faults.delay_p = 0.3;
  faults.delay_us = 500;
  faults.encode_fail_p = 0.3;
  cfg.faults = faults;
  Server server(f.model, 5, cfg);

  constexpr std::size_t kProducers = 4;
  const core::Matrix flows = ServeFixture::stream_flows(0);
  std::vector<std::vector<ResultSlot>> slots;
  std::vector<std::vector<bool>> accepted(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    slots.emplace_back(flows.rows());
    accepted[p].assign(flows.rows(), false);
  }
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < flows.rows(); ++i) {
        accepted[p][i] = server.try_submit(flows.row(i), slots[p][i],
                                           /*deadline_us=*/2'000);
      }
    });
  }
  server.shutdown();  // mid-flight, with faults firing
  for (auto& t : producers) t.join();

  std::uint64_t accepted_count = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < flows.rows(); ++i) {
      ASSERT_TRUE(slots[p][i].ready())
          << "request " << p << "/" << i << " has no terminal status";
      if (accepted[p][i]) {
        ++accepted_count;
        EXPECT_NE(slots[p][i].status(), RequestStatus::kRejected);
      } else {
        EXPECT_EQ(slots[p][i].status(), RequestStatus::kRejected);
      }
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, accepted_count);
  EXPECT_EQ(stats.completed, accepted_count);
  EXPECT_EQ(stats.ok + stats.expired + stats.failed, stats.completed);
}

TEST(FaultInjectorUnit, DisabledByDefaultAndDeterministicWhenSeeded) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  FaultConfig c;
  c.seed = 5;
  c.delay_p = 0.5;
  c.delay_us = 100;
  c.encode_fail_p = 0.25;
  EXPECT_TRUE(c.enabled());
  FaultInjector a(c), b(c);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.draw_delay_us(), b.draw_delay_us());
    EXPECT_EQ(a.draw_encode_failure(), b.draw_encode_failure());
  }
}

TEST(FaultInjectorUnit, FromEnvParsesAndDefaultsOff) {
  const char* vars[] = {"CYBERHD_FAULT_SEED", "CYBERHD_FAULT_DELAY_P",
                        "CYBERHD_FAULT_DELAY_US",
                        "CYBERHD_FAULT_ENCODE_FAIL_P",
                        "CYBERHD_FAULT_BITFLIP_P",
                        "CYBERHD_FAULT_BITFLIP_RATE"};
  std::vector<std::string> saved;
  std::vector<bool> had;
  for (const char* v : vars) {
    const char* cur = std::getenv(v);
    had.push_back(cur != nullptr);
    saved.push_back(cur != nullptr ? cur : "");
    ::unsetenv(v);
  }
  EXPECT_FALSE(FaultConfig::from_env().enabled());
  ::setenv("CYBERHD_FAULT_SEED", "123", 1);
  ::setenv("CYBERHD_FAULT_DELAY_P", "0.05", 1);
  ::setenv("CYBERHD_FAULT_DELAY_US", "200", 1);
  ::setenv("CYBERHD_FAULT_BITFLIP_RATE", "garbage", 1);  // warns, stays 0
  const FaultConfig c = FaultConfig::from_env();
  EXPECT_TRUE(c.enabled());
  EXPECT_EQ(c.seed, 123u);
  EXPECT_DOUBLE_EQ(c.delay_p, 0.05);
  EXPECT_EQ(c.delay_us, 200u);
  EXPECT_DOUBLE_EQ(c.bitflip_rate, 0.0);
  for (std::size_t i = 0; i < saved.size(); ++i) {
    if (had[i]) {
      ::setenv(vars[i], saved[i].c_str(), 1);
    } else {
      ::unsetenv(vars[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// SnapshotManager + ModelAuditor, exercised directly (no server).

TEST(SnapshotIntegrity, CaptureRestoreRoundTripsBitIdentical) {
  ServeFixture f(false);
  SnapshotManager snapshots(3);
  snapshots.capture(f.model);
  EXPECT_EQ(snapshots.size(), 1u);

  std::optional<hdc::CyberHdClassifier> restored = snapshots.restore();
  ASSERT_TRUE(restored.has_value());
  const core::Matrix flows = ServeFixture::stream_flows(0);
  core::Matrix want, got;
  f.model.scores_batch(flows, want);
  restored->scores_batch(flows, got);
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(got(i, c), want(i, c));
    }
  }
}

TEST(SnapshotIntegrity, CorruptNewestFallsBackToOlderThenFailsCleanly) {
  ServeFixture f(false);
  SnapshotManager snapshots(3);
  snapshots.capture(f.model);
  snapshots.capture(f.model);
  EXPECT_EQ(snapshots.size(), 2u);

  // Rot the newest buffer without touching its stored CRC: restore()
  // must skip it and land on the older good one.
  snapshots.buffer(0)[100] ^= 0x40;
  std::optional<hdc::CyberHdClassifier> restored = snapshots.restore();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->num_classes(), 3u);

  // Rot the older one too: now nothing is intact.
  snapshots.buffer(1)[100] ^= 0x40;
  EXPECT_FALSE(snapshots.restore().has_value());
}

TEST(SnapshotIntegrity, KeepsOnlyLastN) {
  ServeFixture f(false);
  SnapshotManager snapshots(2);
  snapshots.capture(f.model);
  snapshots.capture(f.model);
  snapshots.capture(f.model);
  EXPECT_EQ(snapshots.size(), 2u);
  EXPECT_EQ(snapshots.keep(), 2u);
}

TEST(SnapshotIntegrity, AuditorDetectsCorruptionAndHealsFloatModel) {
  ServeFixture f(false);
  const core::Matrix flows = ServeFixture::stream_flows(0);
  core::Matrix want;
  f.model.scores_batch(flows, want);

  SnapshotManager snapshots(3);
  snapshots.capture(f.model);
  ModelAuditor auditor(f.model, snapshots);
  EXPECT_EQ(auditor.audit_and_heal(), AuditOutcome::kClean);

  core::Rng rng(99);
  core::Matrix& w = f.model.model().weights();
  fault::inject_floats({w.data(), w.rows() * w.cols()}, 0.05, rng);
  EXPECT_EQ(auditor.audit_and_heal(), AuditOutcome::kRecovered);
  EXPECT_EQ(auditor.audit_and_heal(), AuditOutcome::kClean);

  core::Matrix got;
  f.model.scores_batch(flows, got);
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(got(i, c), want(i, c)) << "heal was not bit-identical";
    }
  }
}

void expect_auditor_heals_quantized(int bits) {
  ServeFixture f(false);
  hdc::QuantizedCyberHd q(f.model, bits);
  const core::Matrix flows = ServeFixture::stream_flows(0);
  core::Matrix want;
  q.scores_batch(flows, want);

  SnapshotManager snapshots(2);
  snapshots.capture(f.model);
  ModelAuditor auditor(q, snapshots);
  EXPECT_EQ(auditor.audit_and_heal(), AuditOutcome::kClean);

  core::Rng rng(77);
  fault::inject_hdc(q.model(), 0.05, rng);
  EXPECT_EQ(auditor.audit_and_heal(), AuditOutcome::kRecovered);
  EXPECT_EQ(auditor.audit_and_heal(), AuditOutcome::kClean);

  core::Matrix got;
  q.scores_batch(flows, got);
  for (std::size_t i = 0; i < flows.rows(); ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(got(i, c), want(i, c))
          << "bits " << bits << ": re-quantized heal not bit-identical";
    }
  }
}

TEST(SnapshotIntegrity, AuditorHealsQuantized1BitPacked) {
  expect_auditor_heals_quantized(1);
}

TEST(SnapshotIntegrity, AuditorHealsQuantized8BitLevels) {
  expect_auditor_heals_quantized(8);
}

TEST(SnapshotIntegrity, AuditorFailsWithoutAnyIntactSnapshot) {
  ServeFixture f(false);
  SnapshotManager snapshots(2);  // empty on purpose
  ModelAuditor auditor(f.model, snapshots);
  core::Rng rng(55);
  core::Matrix& w = f.model.model().weights();
  fault::inject_floats({w.data(), w.rows() * w.cols()}, 0.05, rng);
  EXPECT_EQ(auditor.audit_and_heal(), AuditOutcome::kFailed);
}

// ---------------------------------------------------------------------------
// Sharded EncodeCache.

/// Snapshot/restore an environment variable around a mutating test.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* value = std::getenv(name);
    if (value != nullptr) saved_ = value;
    had_value_ = value != nullptr;
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(ShardedEncodeCache, ShardKnobParsesAndClampsToCapacity) {
  const ScopedEnv guard("CYBERHD_CACHE_SHARDS");
  ::unsetenv("CYBERHD_CACHE_SHARDS");
  EXPECT_GE(hdc::EncodeCache::shards_from_env(),
            hdc::EncodeCache::kDefaultShards);
  ::setenv("CYBERHD_CACHE_SHARDS", "4", 1);
  EXPECT_EQ(hdc::EncodeCache::shards_from_env(), 4u);
  // Out-of-range values are rejected with a warning, not clamped — the
  // shared env-parsing contract (core/env.hpp).
  ::setenv("CYBERHD_CACHE_SHARDS", "9999", 1);
  EXPECT_GE(hdc::EncodeCache::shards_from_env(),
            hdc::EncodeCache::kDefaultShards);
  ::setenv("CYBERHD_CACHE_SHARDS", "banana", 1);
  EXPECT_GE(hdc::EncodeCache::shards_from_env(),
            hdc::EncodeCache::kDefaultShards);
  ::setenv("CYBERHD_CACHE_SHARDS", "0", 1);
  EXPECT_GE(hdc::EncodeCache::shards_from_env(),
            hdc::EncodeCache::kDefaultShards);

  // Construction: explicit shards win; tiny capacities collapse shards so
  // every shard still owns a ring slot.
  hdc::EncodeCache wide(5, 16, 64, 16);
  EXPECT_EQ(wide.shard_count(), 16u);
  hdc::EncodeCache tiny(5, 16, 3, 16);
  EXPECT_EQ(tiny.shard_count(), 3u);
  hdc::EncodeCache single(5, 16, 1, 16);
  EXPECT_EQ(single.shard_count(), 1u);
}

TEST(ShardedEncodeCache, SameContentAlwaysRoutesToOneShard) {
  hdc::EncodeCache cache(4, 8, 64, 8);
  core::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::array<float, 4> row;
    for (auto& v : row) v = static_cast<float>(rng.gaussian(0.0, 1.0));
    const std::uint64_t h1 = hdc::EncodeCache::hash_row(row);
    const std::uint64_t h2 = hdc::EncodeCache::hash_row(row);
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(cache.shard_of(h1), cache.shard_of(h2));
    EXPECT_LT(cache.shard_of(h1), cache.shard_count());
  }
}

/// Encoder + data shared by the cache tests below.
struct CacheFixture {
  CacheFixture() : rng(41), encoder(6, 32, rng) {
    x.resize(40, 6);
    for (std::size_t i = 0; i < 32; ++i) {
      for (std::size_t f = 0; f < 6; ++f) {
        x(i, f) = static_cast<float>(rng.gaussian(0.0, 1.0));
      }
    }
    for (std::size_t i = 32; i < 40; ++i) {  // 8 in-batch replays
      for (std::size_t f = 0; f < 6; ++f) x(i, f) = x(i - 32, f);
    }
    reference.resize(40, 32);
    for (std::size_t i = 0; i < 40; ++i) {
      encoder.encode(x.row(i), reference.row(i));
    }
  }

  core::Rng rng;
  hdc::RbfEncoder encoder;
  core::Matrix x;
  core::Matrix reference;
};

TEST(ShardedEncodeCache, StatsSumAcrossShardsAndHitsAreExact) {
  CacheFixture f;
  hdc::EncodeCache cache(6, 32, 64, 8);
  core::Matrix h(40, 32);
  const core::ExecutionContext& exec = core::ExecutionContext::serial();

  // Cold pass: 32 distinct rows miss, 8 in-batch replays hit.
  const std::size_t cold_hits =
      cache.encode_rows(f.encoder, f.x, 0, 40, h, exec);
  EXPECT_EQ(cold_hits, 8u);
  EXPECT_EQ(h, f.reference);
  hdc::EncodeCacheStats agg = cache.stats();
  EXPECT_EQ(agg.misses, 32u);
  EXPECT_EQ(agg.hits, 8u);
  EXPECT_EQ(cache.size(), 32u);

  // Warm pass: every row hits its shard.
  core::Matrix h2(40, 32);
  const std::size_t warm_hits =
      cache.encode_rows(f.encoder, f.x, 0, 40, h2, exec);
  EXPECT_EQ(warm_hits, 40u);
  EXPECT_EQ(h2, f.reference);
  agg = cache.stats();
  EXPECT_EQ(agg.misses, 32u);
  EXPECT_EQ(agg.hits, 48u);

  // The aggregate is exactly the per-shard sum, and the work actually
  // spread: with 32 distinct rows over 8 shards, more than one shard saw
  // traffic.
  hdc::EncodeCacheStats sum;
  std::size_t active_shards = 0;
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    const hdc::EncodeCacheStats ss = cache.shard_stats(s);
    sum.hits += ss.hits;
    sum.misses += ss.misses;
    sum.evictions += ss.evictions;
    if (ss.hits + ss.misses > 0) ++active_shards;
  }
  EXPECT_EQ(sum.hits, agg.hits);
  EXPECT_EQ(sum.misses, agg.misses);
  EXPECT_EQ(sum.evictions, agg.evictions);
  EXPECT_GT(active_shards, 1u);
}

TEST(ShardedEncodeCache, ClearCoversEveryShard) {
  CacheFixture f;
  hdc::EncodeCache cache(6, 32, 64, 8);
  core::Matrix h(40, 32);
  const core::ExecutionContext& exec = core::ExecutionContext::serial();
  cache.encode_rows(f.encoder, f.x, 0, 40, h, exec);
  EXPECT_GT(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    const hdc::EncodeCacheStats ss = cache.shard_stats(s);
    EXPECT_EQ(ss.hits, 0u);
    EXPECT_EQ(ss.misses, 0u);
    EXPECT_EQ(ss.evictions, 0u);
  }
  // And the cleared cache re-encodes correctly (32 fresh misses).
  core::Matrix h2(40, 32);
  cache.encode_rows(f.encoder, f.x, 0, 40, h2, exec);
  EXPECT_EQ(h2, f.reference);
  EXPECT_EQ(cache.stats().misses, 32u);
}

TEST(ShardedEncodeCache, OneSlotPerShardAliasingStaysCorrect) {
  CacheFixture f;
  // capacity == shards: every shard is a single-slot ring under constant
  // aliasing pressure. Correctness (content verification + re-encode)
  // must survive even though almost nothing stays resident.
  hdc::EncodeCache cache(6, 32, 4, 4);
  core::Matrix h(40, 32);
  const core::ExecutionContext& exec = core::ExecutionContext::serial();
  for (int pass = 0; pass < 3; ++pass) {
    cache.encode_rows(f.encoder, f.x, 0, 40, h, exec);
    EXPECT_EQ(h, f.reference) << "pass " << pass;
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.size(), 4u);
}

TEST(ShardedEncodeCache, ConcurrentHammerStaysBitIdentical) {
  CacheFixture f;
  hdc::EncodeCache cache(6, 32, 16, 4);  // small: constant eviction churn
  constexpr std::size_t kThreads = 4;
  constexpr int kIters = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const core::ExecutionContext& exec = core::ExecutionContext::serial();
      core::Matrix h(40, 32);
      // Each thread walks a different overlapping window so shards see
      // mixed hit/miss/evict traffic from all threads at once.
      const std::size_t begin = t * 4;
      const std::size_t end = 40 - (kThreads - 1 - t) * 4;
      for (int it = 0; it < kIters; ++it) {
        cache.encode_rows(f.encoder, f.x, begin, end, h, exec);
        for (std::size_t i = begin; i < end; ++i) {
          const auto got = h.row(i - begin);
          const auto want = f.reference.row(i);
          if (std::memcmp(got.data(), want.data(),
                          want.size() * sizeof(float)) != 0) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Accounting stays exact under concurrency: every probed row was
  // counted exactly once as a hit or a miss.
  std::uint64_t probed = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    probed += static_cast<std::uint64_t>((40 - (kThreads - 1 - t) * 4) -
                                         t * 4) *
              static_cast<std::uint64_t>(kIters);
  }
  const hdc::EncodeCacheStats agg = cache.stats();
  EXPECT_EQ(agg.hits + agg.misses, probed);
}

}  // namespace
}  // namespace cyberhd::serve
