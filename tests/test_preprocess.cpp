// Tests for nids/preprocess: one-hot expansion, scaling without test
// leakage, and stratified splitting.
#include "nids/preprocess.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "nids/datasets.hpp"

namespace cyberhd::nids {
namespace {

Dataset tiny_dataset() {
  DatasetSchema schema;
  schema.name = "tiny";
  schema.features = {
      {"amount", FeatureType::kNumeric, 0, false},
      {"proto", FeatureType::kCategorical, 3, false},
      {"bytes", FeatureType::kNumeric, 0, true},
  };
  schema.class_names = {"benign", "attack"};
  Dataset d;
  d.schema = schema;
  d.x.resize(4, 3);
  // amount, proto code, bytes
  d.x(0, 0) = 1.0f;  d.x(0, 1) = 0; d.x(0, 2) = 0.0f;
  d.x(1, 0) = 2.0f;  d.x(1, 1) = 1; d.x(1, 2) = 100.0f;
  d.x(2, 0) = 3.0f;  d.x(2, 1) = 2; d.x(2, 2) = 10000.0f;
  d.x(3, 0) = 4.0f;  d.x(3, 1) = 0; d.x(3, 2) = -5.0f;
  d.y = {0, 0, 1, 1};
  return d;
}

TEST(ExpandFeatures, WidthAndOneHot) {
  const Dataset d = tiny_dataset();
  const core::Matrix e = expand_features(d);
  EXPECT_EQ(e.cols(), d.schema.encoded_width());
  EXPECT_EQ(e.cols(), 5u);  // 1 + 3 + 1
  // Row 1: proto code 1 -> one-hot position 2 (after "amount").
  EXPECT_EQ(e(1, 1), 0.0f);
  EXPECT_EQ(e(1, 2), 1.0f);
  EXPECT_EQ(e(1, 3), 0.0f);
  // Exactly one hot per categorical.
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_FLOAT_EQ(e(r, 1) + e(r, 2) + e(r, 3), 1.0f);
  }
}

TEST(ExpandFeatures, HeavyTailedGetsLog1p) {
  const Dataset d = tiny_dataset();
  const core::Matrix e = expand_features(d);
  EXPECT_NEAR(e(1, 4), std::log1p(100.0f), 1e-5f);
  EXPECT_NEAR(e(2, 4), std::log1p(10000.0f), 1e-4f);
  // Sign preserved for negative values.
  EXPECT_NEAR(e(3, 4), -std::log1p(5.0f), 1e-5f);
  // Plain numeric passes through.
  EXPECT_EQ(e(0, 0), 1.0f);
}

TEST(ExpandOne, MatchesBatchExpansion) {
  const Dataset d = tiny_dataset();
  const core::Matrix e = expand_features(d);
  std::vector<float> one(d.schema.encoded_width());
  for (std::size_t r = 0; r < d.size(); ++r) {
    expand_one(d.schema, d.x.row(r), one);
    for (std::size_t c = 0; c < one.size(); ++c) {
      EXPECT_FLOAT_EQ(one[c], e(r, c)) << "row " << r << " col " << c;
    }
  }
}

TEST(ExpandOne, ClampsOutOfRangeCategoricalCodes) {
  const Dataset d = tiny_dataset();
  std::vector<float> raw = {1.0f, 99.0f, 0.0f};  // proto code beyond card
  std::vector<float> out(d.schema.encoded_width());
  expand_one(d.schema, raw, out);
  EXPECT_EQ(out[3], 1.0f);  // clamped to last category
}

TEST(MinMaxScaler, ScalesToUnitInterval) {
  core::Matrix x(3, 2);
  x(0, 0) = 0; x(0, 1) = 10;
  x(1, 0) = 5; x(1, 1) = 20;
  x(2, 0) = 10; x(2, 1) = 30;
  MinMaxScaler scaler;
  scaler.fit(x);
  scaler.transform(x);
  EXPECT_FLOAT_EQ(x(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(x(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(x(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(x(2, 1), 1.0f);
}

TEST(MinMaxScaler, ClampsOutOfRangeAtTransform) {
  core::Matrix train(2, 1);
  train(0, 0) = 0;
  train(1, 0) = 10;
  MinMaxScaler scaler;
  scaler.fit(train);
  core::Matrix test(2, 1);
  test(0, 0) = -5;
  test(1, 0) = 20;
  scaler.transform(test);
  EXPECT_FLOAT_EQ(test(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(test(1, 0), 1.0f);
}

TEST(MinMaxScaler, ConstantColumnMapsToZero) {
  core::Matrix x(3, 1, 7.0f);
  MinMaxScaler scaler;
  scaler.fit(x);
  scaler.transform(x);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(x(r, 0), 0.0f);
}

TEST(StratifiedSplit, DisjointAndComplete) {
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) y.push_back(i % 3);
  core::Rng rng(7);
  const SplitIndices split = stratified_split(y, 0.3, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), y.size());
  std::set<std::size_t> seen;
  for (std::size_t i : split.train) EXPECT_TRUE(seen.insert(i).second);
  for (std::size_t i : split.test) EXPECT_TRUE(seen.insert(i).second);
}

TEST(StratifiedSplit, PreservesClassRatios) {
  std::vector<int> y;
  for (int i = 0; i < 900; ++i) y.push_back(0);
  for (int i = 0; i < 100; ++i) y.push_back(1);
  core::Rng rng(11);
  const SplitIndices split = stratified_split(y, 0.2, rng);
  std::size_t test_minority = 0;
  for (std::size_t i : split.test) {
    if (y[i] == 1) ++test_minority;
  }
  EXPECT_EQ(test_minority, 20u);  // exactly 20% of the minority class
}

TEST(StratifiedSplit, TinyClassKeepsOneInEachSide) {
  std::vector<int> y = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1};
  core::Rng rng(13);
  const SplitIndices split = stratified_split(y, 0.1, rng);
  std::size_t minority_test = 0, minority_train = 0;
  for (std::size_t i : split.test) {
    if (y[i] == 1) ++minority_test;
  }
  for (std::size_t i : split.train) {
    if (y[i] == 1) ++minority_train;
  }
  EXPECT_EQ(minority_test, 1u);
  EXPECT_EQ(minority_train, 1u);
}

TEST(Preprocess, FullPipelineInvariants) {
  const FlowSynthesizer s = make_synthesizer(DatasetId::kNslKdd, 7);
  const Dataset raw = s.generate(1000, 0);
  const TrainTestSplit split = preprocess(raw, 0.25, 42);
  EXPECT_EQ(split.train.size() + split.test.size(), raw.size());
  EXPECT_EQ(split.train.num_features(), raw.schema.encoded_width());
  EXPECT_EQ(split.test.num_features(), raw.schema.encoded_width());
  EXPECT_EQ(split.train.num_classes, 5u);
  EXPECT_EQ(split.train.class_names, raw.schema.class_names);
  EXPECT_EQ(split.train.benign_class, 0u);
  // Every value in [0, 1] — train by construction, test via clamping.
  for (std::size_t i = 0; i < split.train.x.size(); ++i) {
    EXPECT_GE(split.train.x.data()[i], 0.0f);
    EXPECT_LE(split.train.x.data()[i], 1.0f);
  }
  for (std::size_t i = 0; i < split.test.x.size(); ++i) {
    EXPECT_GE(split.test.x.data()[i], 0.0f);
    EXPECT_LE(split.test.x.data()[i], 1.0f);
  }
}

TEST(Preprocess, DeterministicGivenSeed) {
  const FlowSynthesizer s = make_synthesizer(DatasetId::kNslKdd, 7);
  const Dataset raw = s.generate(300, 0);
  const TrainTestSplit a = preprocess(raw, 0.3, 5);
  const TrainTestSplit b = preprocess(raw, 0.3, 5);
  EXPECT_EQ(a.train.x, b.train.x);
  EXPECT_EQ(a.test.y, b.test.y);
  const TrainTestSplit c = preprocess(raw, 0.3, 6);
  EXPECT_NE(a.train.x, c.train.x);
}

TEST(ClassHistogram, CountsMatch) {
  const std::vector<int> y = {0, 1, 1, 2, 2, 2};
  const auto hist = class_histogram(y, 4);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 3u);
  EXPECT_EQ(hist[3], 0u);
}

}  // namespace
}  // namespace cyberhd::nids
