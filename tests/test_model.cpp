// Unit tests for hdc/model: bundling, cosine scoring, normalization, and
// the variance statistic regeneration ranks dimensions by.
#include "hdc/model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"

namespace cyberhd::hdc {
namespace {

TEST(HdcModel, ConstructionZeroed) {
  HdcModel m(3, 16);
  EXPECT_EQ(m.num_classes(), 3u);
  EXPECT_EQ(m.dims(), 16u);
  for (std::size_t c = 0; c < 3; ++c) {
    for (float v : m.class_vector(c)) EXPECT_EQ(v, 0.0f);
  }
}

TEST(HdcModel, BundleAccumulates) {
  HdcModel m(2, 3);
  const std::vector<float> h1 = {1, 2, 3};
  const std::vector<float> h2 = {1, 0, -1};
  m.bundle(0, h1);
  m.bundle(0, h2);
  m.bundle(1, h2, 2.0f);
  EXPECT_FLOAT_EQ(m.class_vector(0)[0], 2.0f);
  EXPECT_FLOAT_EQ(m.class_vector(0)[2], 2.0f);
  EXPECT_FLOAT_EQ(m.class_vector(1)[0], 2.0f);
  EXPECT_FLOAT_EQ(m.class_vector(1)[2], -2.0f);
}

TEST(HdcModel, SimilaritiesAreCosines) {
  HdcModel m(2, 2);
  m.bundle(0, std::vector<float>{1, 0});
  m.bundle(1, std::vector<float>{0, 1});
  std::vector<float> scores(2);
  m.similarities(std::vector<float>{1, 0}, scores);
  EXPECT_NEAR(scores[0], 1.0f, 1e-6f);
  EXPECT_NEAR(scores[1], 0.0f, 1e-6f);
}

TEST(HdcModel, ZeroClassScoresZero) {
  HdcModel m(2, 4);
  m.bundle(0, std::vector<float>{1, 1, 1, 1});
  std::vector<float> scores(2);
  m.similarities(std::vector<float>{1, 1, 1, 1}, scores);
  EXPECT_NEAR(scores[0], 1.0f, 1e-6f);
  EXPECT_EQ(scores[1], 0.0f);  // class 1 never bundled
}

TEST(HdcModel, PredictEncodedPicksNearest) {
  HdcModel m(3, 4);
  m.bundle(0, std::vector<float>{1, 0, 0, 0});
  m.bundle(1, std::vector<float>{0, 1, 0, 0});
  m.bundle(2, std::vector<float>{0, 0, 1, 1});
  EXPECT_EQ(m.predict_encoded(std::vector<float>{0.9f, 0.1f, 0, 0}), 0u);
  EXPECT_EQ(m.predict_encoded(std::vector<float>{0, 1, 0.1f, 0}), 1u);
  EXPECT_EQ(m.predict_encoded(std::vector<float>{0, 0, 1, 0.9f}), 2u);
}

TEST(HdcModel, NormalizeRows) {
  HdcModel m(2, 3);
  m.bundle(0, std::vector<float>{3, 0, 4});
  m.bundle(1, std::vector<float>{0, 0, 0});  // zero row untouched
  m.normalize_rows();
  EXPECT_NEAR(core::norm2(m.class_vector(0)), 1.0f, 1e-6f);
  EXPECT_EQ(core::norm2(m.class_vector(1)), 0.0f);
}

TEST(HdcModel, DimensionVariancesIdentifyCommonDims) {
  HdcModel m(3, 3);
  // Dim 0 identical across classes (common), dim 1 distinct, dim 2 wildly
  // distinct. Rows are already unit-ish; normalization happens inside.
  m.bundle(0, std::vector<float>{1.0f, 0.1f, 0.5f});
  m.bundle(1, std::vector<float>{1.0f, 0.2f, -0.5f});
  m.bundle(2, std::vector<float>{1.0f, 0.3f, 0.0f});
  std::vector<float> var(3);
  m.dimension_variances(var);
  EXPECT_LT(var[0], var[2]);
  EXPECT_LT(var[1], var[2]);
}

TEST(HdcModel, DimensionVariancesDoesNotModifyModel) {
  HdcModel m(2, 2);
  m.bundle(0, std::vector<float>{5, 3});
  const float before = m.class_vector(0)[0];
  std::vector<float> var(2);
  m.dimension_variances(var);
  EXPECT_EQ(m.class_vector(0)[0], before);
}

TEST(HdcModel, NormalizationPreventsMagnitudeMasquerade) {
  // Two classes pointing the same direction but at different magnitudes:
  // raw variance would be large everywhere, normalized variance ~ 0.
  HdcModel m(2, 2);
  m.bundle(0, std::vector<float>{1, 1});
  m.bundle(1, std::vector<float>{100, 100});
  std::vector<float> var(2);
  m.dimension_variances(var);
  EXPECT_NEAR(var[0], 0.0f, 1e-8f);
  EXPECT_NEAR(var[1], 0.0f, 1e-8f);
}

TEST(HdcModel, ZeroDimensions) {
  HdcModel m(2, 4);
  m.bundle(0, std::vector<float>{1, 2, 3, 4});
  m.bundle(1, std::vector<float>{5, 6, 7, 8});
  const std::vector<std::size_t> dims = {1, 3};
  m.zero_dimensions(dims);
  EXPECT_EQ(m.class_vector(0)[1], 0.0f);
  EXPECT_EQ(m.class_vector(0)[3], 0.0f);
  EXPECT_EQ(m.class_vector(1)[1], 0.0f);
  EXPECT_EQ(m.class_vector(0)[0], 1.0f);
  EXPECT_EQ(m.class_vector(1)[2], 7.0f);
}

TEST(HdcModel, LowestKBasic) {
  const std::vector<float> values = {5, 1, 4, 0, 3};
  const auto idx = HdcModel::lowest_k(values, 2);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 3u);
  EXPECT_EQ(idx[1], 1u);
}

TEST(HdcModel, LowestKTiesBrokenByIndex) {
  const std::vector<float> values = {2, 1, 1, 1};
  const auto idx = HdcModel::lowest_k(values, 2);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 2u);
}

TEST(HdcModel, LowestKClampsCount) {
  const std::vector<float> values = {1, 2};
  const auto idx = HdcModel::lowest_k(values, 10);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(HdcModel, LowestKZero) {
  const std::vector<float> values = {1, 2};
  EXPECT_TRUE(HdcModel::lowest_k(values, 0).empty());
}

TEST(HdcModel, SimilaritiesBatchMatchesPerSampleAcrossTileBoundary) {
  // 600 rows straddles the internal 32-row scoring tile (kTileRows in
  // model.cpp) many times over: every row must still be bit-identical to a
  // per-sample similarities() call.
  const std::size_t n = 600, dims = 70, classes = 4;
  core::Rng rng(5);
  HdcModel model(classes, dims);
  for (std::size_t c = 0; c < classes; ++c) {
    std::vector<float> h(dims);
    core::fill_gaussian(rng, h.data(), dims, 0.0f, 1.0f);
    model.bundle(c, h);
  }
  core::Matrix queries(n, dims);
  core::fill_gaussian(rng, queries.data(), queries.size(), 0.0f, 1.0f);
  core::Matrix batched;
  model.similarities_batch(queries, batched);
  ASSERT_EQ(batched.rows(), n);
  ASSERT_EQ(batched.cols(), classes);
  std::vector<float> single(classes);
  for (std::size_t i = 0; i < n; ++i) {
    model.similarities(queries.row(i), single);
    for (std::size_t c = 0; c < classes; ++c) {
      EXPECT_EQ(batched(i, c), single[c]) << "row " << i << " class " << c;
    }
  }
}

TEST(HdcModel, SimilaritiesBatchEmptyInput) {
  HdcModel model(3, 16);
  core::Matrix empty(0, 16), scores;
  model.similarities_batch(empty, scores);
  EXPECT_EQ(scores.rows(), 0u);
  EXPECT_EQ(scores.cols(), 3u);
}

}  // namespace
}  // namespace cyberhd::hdc
