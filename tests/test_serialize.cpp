// Tests for model persistence: encoder round trips for every family, full
// classifier save/load equivalence, CRC32C payload-corruption rejection,
// and back-compat with the pre-checksum version-1 layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "core/io.hpp"
#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/cyberhd.hpp"
#include "hdc/encoder.hpp"

namespace cyberhd::hdc {
namespace {

std::vector<float> probe_input(std::size_t n) {
  core::Rng rng(77);
  std::vector<float> x(n);
  core::fill_uniform(rng, x.data(), n, 0.0f, 1.0f);
  return x;
}

class EncoderRoundTrip : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(EncoderRoundTrip, EncodesIdentically) {
  core::Rng rng(3);
  const auto original = make_encoder(GetParam(), 7, 48, rng);
  std::stringstream buffer;
  original->serialize(buffer);
  const auto restored = deserialize_encoder(buffer);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->input_dim(), 7u);
  EXPECT_EQ(restored->output_dim(), 48u);
  const auto x = probe_input(7);
  std::vector<float> h1(48), h2(48);
  original->encode(x, h1);
  restored->encode(x, h2);
  EXPECT_EQ(h1, h2);
}

INSTANTIATE_TEST_SUITE_P(Kinds, EncoderRoundTrip,
                         ::testing::Values(EncoderKind::kRbf,
                                           EncoderKind::kSignProjection,
                                           EncoderKind::kIdLevel));

TEST(DeserializeEncoder, RejectsGarbage) {
  std::stringstream buffer("XXXXnot an encoder");
  EXPECT_THROW(deserialize_encoder(buffer), std::runtime_error);
}

TEST(DeserializeEncoder, RejectsTruncation) {
  core::Rng rng(5);
  const RbfEncoder enc(4, 16, rng);
  std::stringstream buffer;
  enc.serialize(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(deserialize_encoder(truncated), std::runtime_error);
}

struct TrainedSmall {
  core::Matrix x{120, 3};
  std::vector<int> y = std::vector<int>(120);
  CyberHdClassifier model;

  TrainedSmall() : model(config()) {
    core::Rng rng(9);
    for (std::size_t i = 0; i < 120; ++i) {
      const int cls = static_cast<int>(i % 3);
      for (std::size_t f = 0; f < 3; ++f) {
        x(i, f) = 0.3f * static_cast<float>(cls) +
                  static_cast<float>(rng.gaussian(0.0, 0.05));
      }
      y[i] = cls;
    }
    model.fit(x, y, 3);
  }

  static CyberHdConfig config() {
    CyberHdConfig cfg;
    cfg.dims = 96;
    cfg.regen_steps = 4;
    cfg.final_epochs = 3;
    cfg.parallel = false;
    return cfg;
  }
};

TEST(ClassifierPersistence, StreamRoundTripPredictsIdentically) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const CyberHdClassifier restored = CyberHdClassifier::load(buffer);
  for (std::size_t i = 0; i < t.x.rows(); ++i) {
    EXPECT_EQ(restored.predict(t.x.row(i)), t.model.predict(t.x.row(i)));
  }
}

TEST(ClassifierPersistence, PreservesLedgerAndConfig) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const CyberHdClassifier restored = CyberHdClassifier::load(buffer);
  EXPECT_EQ(restored.effective_dims(), t.model.effective_dims());
  EXPECT_EQ(restored.physical_dims(), t.model.physical_dims());
  EXPECT_EQ(restored.config().dims, t.model.config().dims);
  EXPECT_EQ(restored.config().seed, t.model.config().seed);
  EXPECT_EQ(restored.name(), t.model.name());
}

TEST(ClassifierPersistence, PreservesScores) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const CyberHdClassifier restored = CyberHdClassifier::load(buffer);
  std::vector<float> s1(3), s2(3);
  t.model.scores(t.x.row(0), s1);
  restored.scores(t.x.row(0), s2);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(s1[c], s2[c]);
}

TEST(ClassifierPersistence, FileRoundTrip) {
  const TrainedSmall t;
  const std::string path = ::testing::TempDir() + "/cyberhd_model.bin";
  t.model.save_file(path);
  const CyberHdClassifier restored = CyberHdClassifier::load_file(path);
  EXPECT_EQ(restored.predict(t.x.row(5)), t.model.predict(t.x.row(5)));
  std::remove(path.c_str());
}

TEST(ClassifierPersistence, LoadRejectsBadMagic) {
  std::stringstream buffer("JUNKxxxxxxxxxxxxxxxx");
  EXPECT_THROW(CyberHdClassifier::load(buffer), std::runtime_error);
}

TEST(ClassifierPersistence, LoadRejectsTruncation) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 64));
  EXPECT_THROW(CyberHdClassifier::load(truncated), std::runtime_error);
}

TEST(ClassifierPersistence, LoadFileRejectsMissingFile) {
  EXPECT_THROW(CyberHdClassifier::load_file("/no/such/model.bin"),
               std::runtime_error);
}

TEST(ClassifierPersistence, RestoredModelCanRefit) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  CyberHdClassifier restored = CyberHdClassifier::load(buffer);
  restored.fit(t.x, t.y, 3);  // refit must work and reset the ledger
  EXPECT_GT(restored.evaluate(t.x, t.y), 0.9);
}

// ---- round-trip hardening: every encoder family, drift, truncation ---------

/// A small classifier trained with the given encoder family.
CyberHdClassifier trained_with(EncoderKind kind) {
  CyberHdConfig cfg = TrainedSmall::config();
  cfg.encoder = kind;
  CyberHdClassifier model(cfg);
  core::Rng rng(9);
  core::Matrix x(120, 3);
  std::vector<int> y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    const int cls = static_cast<int>(i % 3);
    for (std::size_t f = 0; f < 3; ++f) {
      x(i, f) = 0.3f * static_cast<float>(cls) +
                static_cast<float>(rng.gaussian(0.0, 0.05));
    }
    y[i] = cls;
  }
  model.fit(x, y, 3);
  return model;
}

class ClassifierRoundTrip : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(ClassifierRoundTrip, PredictsAndScoresIdentically) {
  const CyberHdClassifier model = trained_with(GetParam());
  std::stringstream buffer;
  model.save(buffer);
  const CyberHdClassifier restored = CyberHdClassifier::load(buffer);
  EXPECT_EQ(restored.encoder().kind(), GetParam());
  const auto probe = probe_input(3);
  EXPECT_EQ(restored.predict(probe), model.predict(probe));
  std::vector<float> s1(3), s2(3);
  model.scores(probe, s1);
  restored.scores(probe, s2);
  EXPECT_EQ(s1, s2);
}

TEST_P(ClassifierRoundTrip, EveryStrictPrefixIsRejected) {
  const CyberHdClassifier model = trained_with(GetParam());
  std::stringstream buffer;
  model.save(buffer);
  const std::string full = buffer.str();
  // Sweep prefix lengths (every byte near the header, coarser through the
  // payload): a truncated stream must never load silently.
  const std::size_t step = std::max<std::size_t>(1, full.size() / 97);
  for (std::size_t len = 0; len < full.size();
       len += (len < 64 ? 1 : step)) {
    std::stringstream truncated(full.substr(0, len));
    EXPECT_THROW(CyberHdClassifier::load(truncated), std::runtime_error)
        << "prefix of " << len << " / " << full.size() << " bytes";
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ClassifierRoundTrip,
                         ::testing::Values(EncoderKind::kRbf,
                                           EncoderKind::kSignProjection,
                                           EncoderKind::kIdLevel));

class EncoderTruncation : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(EncoderTruncation, EveryStrictPrefixIsRejected) {
  core::Rng rng(3);
  const auto enc = make_encoder(GetParam(), 7, 48, rng);
  std::stringstream buffer;
  enc->serialize(buffer);
  const std::string full = buffer.str();
  const std::size_t step = std::max<std::size_t>(1, full.size() / 97);
  for (std::size_t len = 0; len < full.size();
       len += (len < 40 ? 1 : step)) {
    std::stringstream truncated(full.substr(0, len));
    EXPECT_THROW(deserialize_encoder(truncated), std::runtime_error)
        << "prefix of " << len << " / " << full.size() << " bytes";
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, EncoderTruncation,
                         ::testing::Values(EncoderKind::kRbf,
                                           EncoderKind::kSignProjection,
                                           EncoderKind::kIdLevel));

namespace {

/// Swap two little-endian u64 fields in a serialized byte string.
std::string swap_u64_fields(std::string bytes, std::size_t off_a,
                            std::size_t off_b) {
  for (std::size_t i = 0; i < 8; ++i) {
    std::swap(bytes[off_a + i], bytes[off_b + i]);
  }
  return bytes;
}

/// One checksummed section of a version-2 CYHD stream, located by byte
/// offsets into the serialized string.
struct SectionSpan {
  std::string tag;
  std::size_t payload_offset = 0;
  std::size_t payload_size = 0;
  std::size_t crc_offset = 0;
};

std::uint64_t read_le_u64(const std::string& bytes, std::size_t off) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + off, sizeof(v));
  return v;
}

/// Walk the v2 framing ("CYHD" + version word, then tag|size|payload|crc
/// sections) and return the section spans.
std::vector<SectionSpan> parse_sections(const std::string& bytes) {
  std::vector<SectionSpan> sections;
  std::size_t off = 4 + 8;  // tag + version word
  while (off + 12 <= bytes.size()) {
    SectionSpan s;
    s.tag = bytes.substr(off, 4);
    s.payload_size = read_le_u64(bytes, off + 4);
    s.payload_offset = off + 12;
    s.crc_offset = s.payload_offset + s.payload_size;
    sections.push_back(s);
    off = s.crc_offset + 8;
  }
  return sections;
}

/// Recompute and patch a section's stored CRC after tampering with its
/// payload — for drift tests that must reach the field cross-checks
/// *behind* the checksum layer.
void fix_section_crc(std::string& bytes, const SectionSpan& s) {
  const std::uint64_t crc = cyberhd::core::io::crc32c(
      bytes.data() + s.payload_offset, s.payload_size);
  std::memcpy(bytes.data() + s.crc_offset, &crc, sizeof(crc));
}

}  // namespace

TEST(FieldOrderDrift, RbfSwappedMatrixShapeIsRejected) {
  core::Rng rng(3);
  const RbfEncoder enc(7, 48, rng);
  std::stringstream buffer;
  enc.serialize(buffer);
  // Layout: tag(4) + lengthscale f32(4) + bases rows u64(8) + cols u64(8).
  // Swapping rows/cols keeps the payload size consistent (48*7 == 7*48), so
  // only the bias/rows cross-check can catch the drift.
  const std::string drifted = swap_u64_fields(buffer.str(), 8, 16);
  std::stringstream in(drifted);
  try {
    deserialize_encoder(in);
    FAIL() << "swapped rows/cols fields must not deserialize";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("mismatch"), std::string::npos)
        << "error should say what is inconsistent, got: " << e.what();
  }
}

TEST(FieldOrderDrift, IdLevelSwappedDimsFieldsAreRejected) {
  core::Rng rng(3);
  const IdLevelEncoder enc(7, 48, rng);
  std::stringstream buffer;
  enc.serialize(buffer);
  // Layout: tag(4) + num_features u64(4..) + dims u64(12..) + levels u64.
  // num_features * dims survives the swap; the level-store size check is
  // what must reject it.
  const std::string drifted = swap_u64_fields(buffer.str(), 4, 12);
  std::stringstream in(drifted);
  EXPECT_THROW(deserialize_encoder(in), std::runtime_error);
}

TEST(FieldOrderDrift, ClassifierEncoderKindMismatchIsRejected) {
  const TrainedSmall t;  // RBF encoder
  std::stringstream buffer;
  t.model.save(buffer);
  std::string bytes = buffer.str();
  // v2 layout: the encoder-kind u64 sits at offset 8 of the CFG0 section
  // payload (after dims). Claim the payload holds an ID/level encoder
  // while the serialized encoder is an RBF one — and re-seal the section
  // checksum, so the *cross-check* (not the CRC) must catch the drift.
  const auto sections = parse_sections(bytes);
  ASSERT_GE(sections.size(), 3u);
  ASSERT_EQ(sections[0].tag, "CFG0");
  bytes[sections[0].payload_offset + 8] =
      static_cast<char>(EncoderKind::kIdLevel);
  fix_section_crc(bytes, sections[0]);
  std::stringstream in(bytes);
  try {
    CyberHdClassifier::load(in);
    FAIL() << "encoder-kind drift must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("encoder kind"), std::string::npos)
        << "error should name the drifted field, got: " << e.what();
  }
}

TEST(FieldOrderDrift, HeaderModelClassCountMismatchIsRejected) {
  // CFG0's num_classes and the model section's k must agree: the staged
  // scores_batch driver sizes outputs from the header while scoring
  // writes one column per model class, so a mismatched (yet
  // individually CRC-valid) file must be rejected at load, not become an
  // out-of-bounds write at serving time.
  const TrainedSmall t;  // 3 classes
  std::stringstream buffer;
  t.model.save(buffer);
  std::string bytes = buffer.str();
  const auto sections = parse_sections(bytes);
  ASSERT_GE(sections.size(), 3u);
  ASSERT_EQ(sections[0].tag, "CFG0");
  // num_classes is the 10th header field: offset 8+8+4+8+8+8+8+4+8 = 64.
  ASSERT_EQ(bytes[sections[0].payload_offset + 64], 3);
  bytes[sections[0].payload_offset + 64] = 4;
  fix_section_crc(bytes, sections[0]);
  std::stringstream in(bytes);
  try {
    CyberHdClassifier::load(in);
    FAIL() << "class-count mismatch must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("inconsistent"), std::string::npos)
        << e.what();
  }
}

TEST(FieldOrderDrift, ClassifierOutOfRangeEncoderKindIsRejected) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  std::string bytes = buffer.str();
  const auto sections = parse_sections(bytes);
  ASSERT_GE(sections.size(), 1u);
  bytes[sections[0].payload_offset + 8] = 9;  // no such EncoderKind
  fix_section_crc(bytes, sections[0]);
  std::stringstream in(bytes);
  EXPECT_THROW(CyberHdClassifier::load(in), std::runtime_error);
}

// ---- checksummed sections: corruption rejection + v1 back-compat -----------

TEST(ChecksummedFormat, SaveWritesThreeSections) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const std::string bytes = buffer.str();
  EXPECT_EQ(bytes.substr(0, 4), "CYHD");
  EXPECT_EQ(read_le_u64(bytes, 4), 2u);  // format version
  const auto sections = parse_sections(bytes);
  ASSERT_EQ(sections.size(), 3u);
  EXPECT_EQ(sections[0].tag, "CFG0");
  EXPECT_EQ(sections[1].tag, "ENC0");
  EXPECT_EQ(sections[2].tag, "MDL0");
  // The sections tile the stream exactly.
  EXPECT_EQ(sections.back().crc_offset + 8, bytes.size());
}

TEST(ChecksummedFormat, FlippedPayloadByteInEverySectionIsRejected) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const std::string clean = buffer.str();
  const auto sections = parse_sections(clean);
  ASSERT_EQ(sections.size(), 3u);
  for (const SectionSpan& s : sections) {
    ASSERT_GT(s.payload_size, 0u) << s.tag;
    // Sweep flip positions across the payload: first, last, and a spread
    // of interior bytes. CRC32C detects every single-byte error, so each
    // tampered stream must fail with an error naming the section.
    std::vector<std::size_t> positions = {0, s.payload_size - 1};
    const std::size_t step = std::max<std::size_t>(1, s.payload_size / 13);
    for (std::size_t p = step; p < s.payload_size; p += step) {
      positions.push_back(p);
    }
    for (const std::size_t pos : positions) {
      std::string tampered = clean;
      tampered[s.payload_offset + pos] ^= 0x40;
      std::stringstream in(tampered);
      try {
        CyberHdClassifier::load(in);
        FAIL() << "flipped byte " << pos << " of section " << s.tag
               << " must not load";
      } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
                  std::string::npos)
            << s.tag << " byte " << pos << ": " << e.what();
        EXPECT_NE(std::string(e.what()).find(s.tag), std::string::npos)
            << "error should name the section, got: " << e.what();
      }
    }
  }
}

TEST(ChecksummedFormat, CorruptSizeWordIsRejectedWithoutHugeAllocation) {
  // The size word sits outside the CRC; a flipped high bit must fail as a
  // truncated/implausible section, bounded by the actual stream length —
  // never as a multi-GiB allocation attempt.
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const std::string clean = buffer.str();
  const auto sections = parse_sections(clean);
  ASSERT_EQ(sections.size(), 3u);
  for (const SectionSpan& s : sections) {
    const std::size_t size_offset = s.payload_offset - 8;
    for (const std::size_t byte : {0u, 3u, 7u}) {  // low, mid, high bits
      std::string tampered = clean;
      tampered[size_offset + byte] ^= 0x80;
      std::stringstream in(tampered);
      EXPECT_THROW(CyberHdClassifier::load(in), std::runtime_error)
          << s.tag << " size byte " << byte;
    }
  }
}

TEST(ChecksummedFormat, TamperedChecksumWordIsRejected) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  std::string bytes = buffer.str();
  const auto sections = parse_sections(bytes);
  ASSERT_EQ(sections.size(), 3u);
  bytes[sections[1].crc_offset] ^= 0x01;
  std::stringstream in(bytes);
  EXPECT_THROW(CyberHdClassifier::load(in), std::runtime_error);
}

namespace {

/// Write the pre-checksum version-1 layout (the exact field sequence PR 3
/// emitted) from a trained classifier's public state — the fixture for
/// the back-compat contract.
void save_v1_layout(const CyberHdClassifier& model, std::ostream& out) {
  namespace io = cyberhd::core::io;
  const CyberHdConfig& cfg = model.config();
  io::write_tag(out, "CYHD");
  io::write_u64(out, 1);  // format version
  io::write_u64(out, cfg.dims);
  io::write_u64(out, static_cast<std::uint64_t>(cfg.encoder));
  io::write_f32(out, static_cast<float>(cfg.regen_rate));
  io::write_u64(out, cfg.regen_steps);
  io::write_u64(out, cfg.regen_anneal ? 1 : 0);
  io::write_u64(out, cfg.epochs_per_step);
  io::write_u64(out, cfg.final_epochs);
  io::write_f32(out, cfg.learning_rate);
  io::write_u64(out, cfg.seed);
  io::write_u64(out, model.num_classes());
  io::write_u64(out, model.effective_dims() - model.physical_dims());
  io::write_u64(out, model.last_fit_report().regenerated_per_step.size());
  model.encoder().serialize(out);
  io::write_u64(out, model.model().num_classes());
  io::write_u64(out, model.model().dims());
  io::write_f32_array(out, {model.model().weights().data(),
                            model.model().weights().size()});
}

}  // namespace

// ---- chunked model section (MDLC): streaming writer back-compat ------------

/// Byte offset of the MDLC tag in a stream written with a forced-small
/// chunk size (right after the CFG0 and ENC0 sections).
std::size_t mdlc_offset(const std::string& bytes) {
  std::size_t off = 4 + 8;  // "CYHD" + version word
  for (int i = 0; i < 2; ++i) {  // CFG0, ENC0
    const std::uint64_t size = read_le_u64(bytes, off + 4);
    off += 12 + size + 8;
  }
  EXPECT_EQ(bytes.substr(off, 4), "MDLC");
  return off;
}

TEST(ChunkedFormat, ForcedChunkedSaveRoundTripsIdentically) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer, /*model_chunk_bytes=*/64);
  const std::string bytes = buffer.str();
  mdlc_offset(bytes);  // asserts the chunked layout actually engaged
  const CyberHdClassifier restored = CyberHdClassifier::load(buffer);
  EXPECT_EQ(restored.model().weights(), t.model.model().weights());
  for (std::size_t i = 0; i < t.x.rows(); i += 7) {
    EXPECT_EQ(restored.predict(t.x.row(i)), t.model.predict(t.x.row(i)));
  }
}

TEST(ChunkedFormat, ChunkedAndBufferedLayoutsRestoreTheSameModel) {
  const TrainedSmall t;
  std::stringstream chunked, buffered;
  t.model.save(chunked, /*model_chunk_bytes=*/128);
  t.model.save(buffered);  // small model: stays MDL0
  const CyberHdClassifier from_chunked = CyberHdClassifier::load(chunked);
  const CyberHdClassifier from_buffered = CyberHdClassifier::load(buffered);
  EXPECT_EQ(from_chunked.model().weights(),
            from_buffered.model().weights());
  EXPECT_EQ(from_chunked.effective_dims(), from_buffered.effective_dims());
}

TEST(ChunkedFormat, SmallModelsKeepTheBufferedLayoutByDefault) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const auto sections = parse_sections(buffer.str());
  ASSERT_EQ(sections.size(), 3u);
  EXPECT_EQ(sections[2].tag, "MDL0");
}

TEST(ChunkedFormat, EveryStrictPrefixIsRejected) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer, /*model_chunk_bytes=*/64);
  const std::string full = buffer.str();
  const std::size_t step = std::max<std::size_t>(1, full.size() / 97);
  for (std::size_t len = 0; len < full.size();
       len += (len < 64 ? 1 : step)) {
    std::stringstream truncated(full.substr(0, len));
    EXPECT_THROW(CyberHdClassifier::load(truncated), std::runtime_error)
        << "prefix of " << len << " / " << full.size() << " bytes";
  }
  // The sharpest truncation: everything except the 8-byte terminator. The
  // weights are all present, but the unterminated chunk stream must still
  // be rejected.
  std::stringstream no_terminator(full.substr(0, full.size() - 8));
  EXPECT_THROW(CyberHdClassifier::load(no_terminator), std::runtime_error);
}

TEST(ChunkedFormat, FlippedBytesAcrossTheChunkStreamAreRejected) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer, /*model_chunk_bytes=*/64);
  const std::string clean = buffer.str();
  const std::size_t start = mdlc_offset(clean) + 12;  // tag + chunk-size word
  // Sweep flips across the chunk framing (length words, payloads, CRCs,
  // terminator): every one must fail to load. (Flips inside the nominal
  // chunk-size word are excluded — it only sizes the reader's buffer, and
  // a one-bit-larger buffer is not corruption.)
  const std::size_t step =
      std::max<std::size_t>(1, (clean.size() - start) / 61);
  for (std::size_t pos = start; pos < clean.size(); pos += step) {
    std::string tampered = clean;
    tampered[pos] ^= 0x40;
    std::stringstream in(tampered);
    EXPECT_THROW(CyberHdClassifier::load(in), std::runtime_error)
        << "flipped byte at " << pos << " of " << clean.size();
  }
}

TEST(ChunkedFormat, PayloadFlipNamesTheSection) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer, /*model_chunk_bytes=*/64);
  std::string bytes = buffer.str();
  // First chunk payload starts after MDLC tag(4) + chunk-size(8) +
  // chunk-length(8); flip a byte in the middle of it.
  const std::size_t pos = mdlc_offset(bytes) + 20 + 13;
  bytes[pos] ^= 0x01;
  std::stringstream in(bytes);
  try {
    CyberHdClassifier::load(in);
    FAIL() << "flipped chunk payload byte must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("MDLC"), std::string::npos)
        << "error should name the section, got: " << e.what();
  }
}

TEST(ChunkedFormat, OutOfRangeChunkSizeIsRejectedOnSaveAndLoad) {
  const TrainedSmall t;
  std::stringstream buffer;
  EXPECT_THROW(t.model.save(buffer, 0), std::invalid_argument);
  // A corrupt on-disk chunk-size word of zero must be rejected by name.
  std::stringstream ok;
  t.model.save(ok, /*model_chunk_bytes=*/64);
  std::string bytes = ok.str();
  const std::size_t off = mdlc_offset(bytes);
  for (std::size_t i = 0; i < 8; ++i) bytes[off + 4 + i] = '\0';
  std::stringstream in(bytes);
  try {
    CyberHdClassifier::load(in);
    FAIL() << "zero chunk size must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("MDLC"), std::string::npos)
        << e.what();
  }
}

TEST(ChecksummedFormat, ChecksumLessV1FilesStillLoad) {
  const TrainedSmall t;
  std::stringstream v1;
  save_v1_layout(t.model, v1);
  const CyberHdClassifier restored = CyberHdClassifier::load(v1);
  EXPECT_EQ(restored.effective_dims(), t.model.effective_dims());
  EXPECT_EQ(restored.num_classes(), t.model.num_classes());
  for (std::size_t i = 0; i < t.x.rows(); i += 5) {
    EXPECT_EQ(restored.predict(t.x.row(i)), t.model.predict(t.x.row(i)));
  }
  std::vector<float> s1(3), s2(3);
  t.model.scores(t.x.row(0), s1);
  restored.scores(t.x.row(0), s2);
  EXPECT_EQ(s1, s2);
}

TEST(ChecksummedFormat, V1AndV2RestoreTheSameModel) {
  const TrainedSmall t;
  std::stringstream v1, v2;
  save_v1_layout(t.model, v1);
  t.model.save(v2);
  const CyberHdClassifier from_v1 = CyberHdClassifier::load(v1);
  const CyberHdClassifier from_v2 = CyberHdClassifier::load(v2);
  EXPECT_EQ(from_v1.model().weights(), from_v2.model().weights());
  EXPECT_EQ(from_v1.effective_dims(), from_v2.effective_dims());
}

}  // namespace
}  // namespace cyberhd::hdc
