// Tests for model persistence: encoder round trips for every family and
// full classifier save/load equivalence.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/cyberhd.hpp"
#include "hdc/encoder.hpp"

namespace cyberhd::hdc {
namespace {

std::vector<float> probe_input(std::size_t n) {
  core::Rng rng(77);
  std::vector<float> x(n);
  core::fill_uniform(rng, x.data(), n, 0.0f, 1.0f);
  return x;
}

class EncoderRoundTrip : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(EncoderRoundTrip, EncodesIdentically) {
  core::Rng rng(3);
  const auto original = make_encoder(GetParam(), 7, 48, rng);
  std::stringstream buffer;
  original->serialize(buffer);
  const auto restored = deserialize_encoder(buffer);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->input_dim(), 7u);
  EXPECT_EQ(restored->output_dim(), 48u);
  const auto x = probe_input(7);
  std::vector<float> h1(48), h2(48);
  original->encode(x, h1);
  restored->encode(x, h2);
  EXPECT_EQ(h1, h2);
}

INSTANTIATE_TEST_SUITE_P(Kinds, EncoderRoundTrip,
                         ::testing::Values(EncoderKind::kRbf,
                                           EncoderKind::kSignProjection,
                                           EncoderKind::kIdLevel));

TEST(DeserializeEncoder, RejectsGarbage) {
  std::stringstream buffer("XXXXnot an encoder");
  EXPECT_THROW(deserialize_encoder(buffer), std::runtime_error);
}

TEST(DeserializeEncoder, RejectsTruncation) {
  core::Rng rng(5);
  const RbfEncoder enc(4, 16, rng);
  std::stringstream buffer;
  enc.serialize(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(deserialize_encoder(truncated), std::runtime_error);
}

struct TrainedSmall {
  core::Matrix x{120, 3};
  std::vector<int> y = std::vector<int>(120);
  CyberHdClassifier model;

  TrainedSmall() : model(config()) {
    core::Rng rng(9);
    for (std::size_t i = 0; i < 120; ++i) {
      const int cls = static_cast<int>(i % 3);
      for (std::size_t f = 0; f < 3; ++f) {
        x(i, f) = 0.3f * static_cast<float>(cls) +
                  static_cast<float>(rng.gaussian(0.0, 0.05));
      }
      y[i] = cls;
    }
    model.fit(x, y, 3);
  }

  static CyberHdConfig config() {
    CyberHdConfig cfg;
    cfg.dims = 96;
    cfg.regen_steps = 4;
    cfg.final_epochs = 3;
    cfg.parallel = false;
    return cfg;
  }
};

TEST(ClassifierPersistence, StreamRoundTripPredictsIdentically) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const CyberHdClassifier restored = CyberHdClassifier::load(buffer);
  for (std::size_t i = 0; i < t.x.rows(); ++i) {
    EXPECT_EQ(restored.predict(t.x.row(i)), t.model.predict(t.x.row(i)));
  }
}

TEST(ClassifierPersistence, PreservesLedgerAndConfig) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const CyberHdClassifier restored = CyberHdClassifier::load(buffer);
  EXPECT_EQ(restored.effective_dims(), t.model.effective_dims());
  EXPECT_EQ(restored.physical_dims(), t.model.physical_dims());
  EXPECT_EQ(restored.config().dims, t.model.config().dims);
  EXPECT_EQ(restored.config().seed, t.model.config().seed);
  EXPECT_EQ(restored.name(), t.model.name());
}

TEST(ClassifierPersistence, PreservesScores) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const CyberHdClassifier restored = CyberHdClassifier::load(buffer);
  std::vector<float> s1(3), s2(3);
  t.model.scores(t.x.row(0), s1);
  restored.scores(t.x.row(0), s2);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(s1[c], s2[c]);
}

TEST(ClassifierPersistence, FileRoundTrip) {
  const TrainedSmall t;
  const std::string path = ::testing::TempDir() + "/cyberhd_model.bin";
  t.model.save_file(path);
  const CyberHdClassifier restored = CyberHdClassifier::load_file(path);
  EXPECT_EQ(restored.predict(t.x.row(5)), t.model.predict(t.x.row(5)));
  std::remove(path.c_str());
}

TEST(ClassifierPersistence, LoadRejectsBadMagic) {
  std::stringstream buffer("JUNKxxxxxxxxxxxxxxxx");
  EXPECT_THROW(CyberHdClassifier::load(buffer), std::runtime_error);
}

TEST(ClassifierPersistence, LoadRejectsTruncation) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 64));
  EXPECT_THROW(CyberHdClassifier::load(truncated), std::runtime_error);
}

TEST(ClassifierPersistence, LoadFileRejectsMissingFile) {
  EXPECT_THROW(CyberHdClassifier::load_file("/no/such/model.bin"),
               std::runtime_error);
}

TEST(ClassifierPersistence, RestoredModelCanRefit) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  CyberHdClassifier restored = CyberHdClassifier::load(buffer);
  restored.fit(t.x, t.y, 3);  // refit must work and reset the ledger
  EXPECT_GT(restored.evaluate(t.x, t.y), 0.9);
}

// ---- round-trip hardening: every encoder family, drift, truncation ---------

/// A small classifier trained with the given encoder family.
CyberHdClassifier trained_with(EncoderKind kind) {
  CyberHdConfig cfg = TrainedSmall::config();
  cfg.encoder = kind;
  CyberHdClassifier model(cfg);
  core::Rng rng(9);
  core::Matrix x(120, 3);
  std::vector<int> y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    const int cls = static_cast<int>(i % 3);
    for (std::size_t f = 0; f < 3; ++f) {
      x(i, f) = 0.3f * static_cast<float>(cls) +
                static_cast<float>(rng.gaussian(0.0, 0.05));
    }
    y[i] = cls;
  }
  model.fit(x, y, 3);
  return model;
}

class ClassifierRoundTrip : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(ClassifierRoundTrip, PredictsAndScoresIdentically) {
  const CyberHdClassifier model = trained_with(GetParam());
  std::stringstream buffer;
  model.save(buffer);
  const CyberHdClassifier restored = CyberHdClassifier::load(buffer);
  EXPECT_EQ(restored.encoder().kind(), GetParam());
  const auto probe = probe_input(3);
  EXPECT_EQ(restored.predict(probe), model.predict(probe));
  std::vector<float> s1(3), s2(3);
  model.scores(probe, s1);
  restored.scores(probe, s2);
  EXPECT_EQ(s1, s2);
}

TEST_P(ClassifierRoundTrip, EveryStrictPrefixIsRejected) {
  const CyberHdClassifier model = trained_with(GetParam());
  std::stringstream buffer;
  model.save(buffer);
  const std::string full = buffer.str();
  // Sweep prefix lengths (every byte near the header, coarser through the
  // payload): a truncated stream must never load silently.
  const std::size_t step = std::max<std::size_t>(1, full.size() / 97);
  for (std::size_t len = 0; len < full.size();
       len += (len < 64 ? 1 : step)) {
    std::stringstream truncated(full.substr(0, len));
    EXPECT_THROW(CyberHdClassifier::load(truncated), std::runtime_error)
        << "prefix of " << len << " / " << full.size() << " bytes";
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ClassifierRoundTrip,
                         ::testing::Values(EncoderKind::kRbf,
                                           EncoderKind::kSignProjection,
                                           EncoderKind::kIdLevel));

class EncoderTruncation : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(EncoderTruncation, EveryStrictPrefixIsRejected) {
  core::Rng rng(3);
  const auto enc = make_encoder(GetParam(), 7, 48, rng);
  std::stringstream buffer;
  enc->serialize(buffer);
  const std::string full = buffer.str();
  const std::size_t step = std::max<std::size_t>(1, full.size() / 97);
  for (std::size_t len = 0; len < full.size();
       len += (len < 40 ? 1 : step)) {
    std::stringstream truncated(full.substr(0, len));
    EXPECT_THROW(deserialize_encoder(truncated), std::runtime_error)
        << "prefix of " << len << " / " << full.size() << " bytes";
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, EncoderTruncation,
                         ::testing::Values(EncoderKind::kRbf,
                                           EncoderKind::kSignProjection,
                                           EncoderKind::kIdLevel));

namespace {

/// Swap two little-endian u64 fields in a serialized byte string.
std::string swap_u64_fields(std::string bytes, std::size_t off_a,
                            std::size_t off_b) {
  for (std::size_t i = 0; i < 8; ++i) {
    std::swap(bytes[off_a + i], bytes[off_b + i]);
  }
  return bytes;
}

}  // namespace

TEST(FieldOrderDrift, RbfSwappedMatrixShapeIsRejected) {
  core::Rng rng(3);
  const RbfEncoder enc(7, 48, rng);
  std::stringstream buffer;
  enc.serialize(buffer);
  // Layout: tag(4) + lengthscale f32(4) + bases rows u64(8) + cols u64(8).
  // Swapping rows/cols keeps the payload size consistent (48*7 == 7*48), so
  // only the bias/rows cross-check can catch the drift.
  const std::string drifted = swap_u64_fields(buffer.str(), 8, 16);
  std::stringstream in(drifted);
  try {
    deserialize_encoder(in);
    FAIL() << "swapped rows/cols fields must not deserialize";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("mismatch"), std::string::npos)
        << "error should say what is inconsistent, got: " << e.what();
  }
}

TEST(FieldOrderDrift, IdLevelSwappedDimsFieldsAreRejected) {
  core::Rng rng(3);
  const IdLevelEncoder enc(7, 48, rng);
  std::stringstream buffer;
  enc.serialize(buffer);
  // Layout: tag(4) + num_features u64(4..) + dims u64(12..) + levels u64.
  // num_features * dims survives the swap; the level-store size check is
  // what must reject it.
  const std::string drifted = swap_u64_fields(buffer.str(), 4, 12);
  std::stringstream in(drifted);
  EXPECT_THROW(deserialize_encoder(in), std::runtime_error);
}

TEST(FieldOrderDrift, ClassifierEncoderKindMismatchIsRejected) {
  const TrainedSmall t;  // RBF encoder
  std::stringstream buffer;
  t.model.save(buffer);
  std::string bytes = buffer.str();
  // Layout: tag(4) + version u64(8) + dims u64(8) + encoder kind u64 @ 20.
  // Claim the payload holds an ID/level encoder while the serialized bytes
  // are an RBF one: load() must cross-check the deserialized kind.
  bytes[20] = static_cast<char>(EncoderKind::kIdLevel);
  std::stringstream in(bytes);
  try {
    CyberHdClassifier::load(in);
    FAIL() << "encoder-kind drift must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("encoder kind"), std::string::npos)
        << "error should name the drifted field, got: " << e.what();
  }
}

TEST(FieldOrderDrift, ClassifierOutOfRangeEncoderKindIsRejected) {
  const TrainedSmall t;
  std::stringstream buffer;
  t.model.save(buffer);
  std::string bytes = buffer.str();
  bytes[20] = 9;  // no such EncoderKind
  std::stringstream in(bytes);
  EXPECT_THROW(CyberHdClassifier::load(in), std::runtime_error);
}

}  // namespace
}  // namespace cyberhd::hdc
