// Tests for the runtime-dispatched kernel layer (core/kernels/):
//  * scalar and AVX2 backends agree bit-exactly on the integer kernels
//    (XOR/popcount, int8 dot) and to rounding tolerance on the float
//    kernels, on randomized inputs including non-multiple-of-64/8 tails;
//  * the fused cos_rbf_rows is self-consistent (rows=N vs N rows=1 calls),
//    which is what keeps encode() and encode_dims() coherent;
//  * predict/scores agree bit-exactly with predict_batch/scores_batch for
//    CyberHD and its quantized snapshots;
//  * concurrent const predict() calls are safe and deterministic (the
//    scratch-buffer race regression test).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/bitpack.hpp"
#include "core/kernels/kernels.hpp"
#include "core/matrix.hpp"
#include "core/quantize.hpp"
#include "core/rng.hpp"
#include "hdc/cyberhd.hpp"
#include "hdc/quantized.hpp"

namespace cyberhd {
namespace {

const std::size_t kTailSizes[] = {0,  1,  3,   7,   8,   15,  16, 17,
                                  63, 64, 65,  100, 118, 127, 128, 130,
                                  512, 1000, 4099};

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<float> v(n);
  core::fill_gaussian(rng, v.data(), n, 0.0f, 1.0f);
  return v;
}

/// The AVX2 backend when this host can run it, else nullptr (tests that
/// need it GTEST_SKIP).
const core::Kernels* runnable_avx2() {
  return core::cpu_supports_avx2() ? core::avx2_kernels() : nullptr;
}

/// The AVX-512 backend when this host can run it, else nullptr.
const core::Kernels* runnable_avx512() {
  return core::cpu_supports_avx512() ? core::avx512_kernels() : nullptr;
}

TEST(KernelDispatch, ActiveBackendIsAlwaysValid) {
  const core::Kernels& k = core::active_kernels();
  ASSERT_NE(k.name, nullptr);
  ASSERT_NE(k.dot_f32, nullptr);
  ASSERT_NE(k.axpy_f32, nullptr);
  ASSERT_NE(k.mul_acc_f32, nullptr);
  ASSERT_NE(k.similarities_tile_f32, nullptr);
  ASSERT_NE(k.cos_rbf_rows, nullptr);
  ASSERT_NE(k.cos_rbf_tile_f32, nullptr);
  ASSERT_NE(k.xor_popcount_words, nullptr);
  ASSERT_NE(k.quantized_dot_i8, nullptr);
  ASSERT_NE(k.similarities_tile_i8, nullptr);
  ASSERT_NE(k.hamming_tile_1b, nullptr);
  ASSERT_NE(k.similarities_tile_f32_gather, nullptr);
  ASSERT_NE(k.similarities_tile_i8_gather, nullptr);
  ASSERT_NE(k.hamming_tile_1b_gather, nullptr);
}

TEST(KernelParity, DotF32) {
  const core::Kernels* avx2 = runnable_avx2();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this host";
  const core::Kernels& scalar = core::scalar_kernels();
  for (std::size_t n : kTailSizes) {
    const auto a = gaussian_vec(n, 100 + n);
    const auto b = gaussian_vec(n, 200 + n);
    const float d_scalar = scalar.dot_f32(a.data(), b.data(), n);
    const float d_avx2 = avx2->dot_f32(a.data(), b.data(), n);
    // Backends reassociate the sum; bound the difference by a few ulps of
    // the accumulated magnitude sum_i |a_i b_i|.
    double mag = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mag += std::abs(static_cast<double>(a[i]) * b[i]);
    }
    EXPECT_NEAR(d_scalar, d_avx2, 1e-6 * mag + 1e-6) << "n=" << n;
  }
}

TEST(KernelParity, AxpyAndMulAcc) {
  const core::Kernels* avx2 = runnable_avx2();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this host";
  const core::Kernels& scalar = core::scalar_kernels();
  for (std::size_t n : kTailSizes) {
    const auto a = gaussian_vec(n, 300 + n);
    const auto b = gaussian_vec(n, 400 + n);
    auto y1 = gaussian_vec(n, 500 + n);
    auto y2 = y1;
    scalar.axpy_f32(0.37f, a.data(), y1.data(), n);
    avx2->axpy_f32(0.37f, a.data(), y2.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      // Elementwise: only mul+add vs fused-multiply-add rounding differs.
      EXPECT_NEAR(y1[i], y2[i], 1e-6f * (1.0f + std::abs(y1[i])))
          << "axpy n=" << n << " i=" << i;
    }
    auto acc1 = gaussian_vec(n, 600 + n);
    auto acc2 = acc1;
    scalar.mul_acc_f32(a.data(), b.data(), acc1.data(), n);
    avx2->mul_acc_f32(a.data(), b.data(), acc2.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(acc1[i], acc2[i], 1e-6f * (1.0f + std::abs(acc1[i])))
          << "mul_acc n=" << n << " i=" << i;
    }
  }
}

TEST(KernelParity, XorPopcountWordsBitExact) {
  const core::Kernels* avx2 = runnable_avx2();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this host";
  const core::Kernels& scalar = core::scalar_kernels();
  core::Rng rng(7);
  for (std::size_t words :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{7}, std::size_t{8},
        std::size_t{31}, std::size_t{32}, std::size_t{33}, std::size_t{64},
        std::size_t{257}}) {
    std::vector<std::uint64_t> a(words), b(words);
    for (auto& w : a) w = rng.next_u64();
    for (auto& w : b) w = rng.next_u64();
    EXPECT_EQ(scalar.xor_popcount_words(a.data(), b.data(), words),
              avx2->xor_popcount_words(a.data(), b.data(), words))
        << "words=" << words;
  }
}

TEST(KernelParity, HammingOnPackedTailDims) {
  // PackedBits at dimensionalities straddling the 64-bit word boundary:
  // hamming() (whatever backend is active) must match a bit-by-bit count.
  for (std::size_t dims : {1u, 63u, 64u, 65u, 130u, 1000u, 4099u}) {
    const core::PackedBits a = core::pack_signs(gaussian_vec(dims, 900 + dims));
    const core::PackedBits b = core::pack_signs(gaussian_vec(dims, 901 + dims));
    std::size_t expected = 0;
    for (std::size_t i = 0; i < dims; ++i) {
      if (a.get(i) != b.get(i)) ++expected;
    }
    EXPECT_EQ(hamming(a, b), expected) << "dims=" << dims;
  }
}

TEST(KernelParity, QuantizedDotI8BitExact) {
  const core::Kernels* avx2 = runnable_avx2();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this host";
  const core::Kernels& scalar = core::scalar_kernels();
  core::Rng rng(11);
  for (std::size_t n : kTailSizes) {
    std::vector<std::int8_t> a(n), b(n);
    for (auto& v : a) v = static_cast<std::int8_t>(rng.next_below(256));
    for (auto& v : b) v = static_cast<std::int8_t>(rng.next_below(256));
    EXPECT_EQ(scalar.quantized_dot_i8(a.data(), b.data(), n),
              avx2->quantized_dot_i8(a.data(), b.data(), n))
        << "n=" << n;
  }
  // Saturated worst case across the 32-bit accumulator chunk boundary.
  const std::size_t big = 16 * 32768 + 777;
  std::vector<std::int8_t> a(big, 127), b(big, 127);
  EXPECT_EQ(scalar.quantized_dot_i8(a.data(), b.data(), big),
            avx2->quantized_dot_i8(a.data(), b.data(), big));
  for (auto& v : b) v = -128;
  EXPECT_EQ(scalar.quantized_dot_i8(a.data(), b.data(), big),
            avx2->quantized_dot_i8(a.data(), b.data(), big));
}

// ---- the integer tile kernels (packed quantized serving) -------------------

/// Every backend's int8 tile must reproduce the scalar per-pair
/// quantized_dot_i8 bit-for-bit — all the math is exact integer, so unlike
/// the float tile there is no rounding latitude, on any backend including
/// the VNNI kernel when the avx512 table carries it. Rows straddle the
/// 4-row register block, dims the 16- and 64-lane vector widths and tails.
TEST(KernelTile, SimilaritiesTileI8MatchesPerPairDotExactly) {
  std::vector<const core::Kernels*> backends = {&core::scalar_kernels()};
  if (const core::Kernels* avx2 = runnable_avx2()) backends.push_back(avx2);
  if (const core::Kernels* avx512 = runnable_avx512()) {
    backends.push_back(avx512);
  }
  const core::Kernels& scalar = core::scalar_kernels();
  core::Rng rng(21);
  for (const core::Kernels* k : backends) {
    for (std::size_t rows : {1u, 3u, 4u, 5u, 8u, 17u}) {
      for (std::size_t classes : {1u, 2u, 3u, 10u}) {
        for (std::size_t dims :
             {1u, 15u, 16u, 17u, 63u, 64u, 65u, 100u, 118u, 512u}) {
          std::vector<std::int8_t> h(rows * dims), cls(classes * dims);
          for (auto& v : h) {
            v = static_cast<std::int8_t>(rng.next_below(256));
          }
          for (auto& v : cls) {
            v = static_cast<std::int8_t>(rng.next_below(256));
          }
          std::vector<std::int64_t> out(rows * classes, -1);
          k->similarities_tile_i8(h.data(), rows, cls.data(), classes, dims,
                                  out.data());
          for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < classes; ++c) {
              EXPECT_EQ(out[r * classes + c],
                        scalar.quantized_dot_i8(h.data() + r * dims,
                                                cls.data() + c * dims, dims))
                  << k->name << " rows=" << rows << " classes=" << classes
                  << " dims=" << dims << " r=" << r << " c=" << c;
            }
          }
        }
      }
    }
  }
}

TEST(KernelTile, SimilaritiesTileI8SaturatedAccumulatorChunks) {
  // Saturated worst case across every backend's 32-bit accumulator chunk
  // boundary (AVX2 caps at 32768 rounds of 16 lanes, VNNI at 8192 rounds
  // of 64 — both 524288 dims), plus a ragged tail.
  const std::size_t big = 64 * 8192 + 77;
  const std::size_t rows = 5;
  std::vector<std::int8_t> h(rows * big, 127);
  std::vector<std::int8_t> cls(2 * big, 127);
  for (std::size_t i = big; i < 2 * big; ++i) {
    cls[i] = -128;
  }
  std::vector<const core::Kernels*> backends = {&core::scalar_kernels()};
  if (const core::Kernels* avx2 = runnable_avx2()) backends.push_back(avx2);
  if (const core::Kernels* avx512 = runnable_avx512()) {
    backends.push_back(avx512);
  }
  const core::Kernels& scalar = core::scalar_kernels();
  for (const core::Kernels* k : backends) {
    std::vector<std::int64_t> out(rows * 2, 0);
    k->similarities_tile_i8(h.data(), rows, cls.data(), 2, big, out.data());
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(out[r * 2 + c],
                  scalar.quantized_dot_i8(h.data() + r * big,
                                          cls.data() + c * big, big))
            << k->name << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(KernelTile, HammingTile1bMatchesPerPairPopcountExactly) {
  std::vector<const core::Kernels*> backends = {&core::scalar_kernels()};
  if (const core::Kernels* avx2 = runnable_avx2()) backends.push_back(avx2);
  if (const core::Kernels* avx512 = runnable_avx512()) {
    backends.push_back(avx512);
  }
  const core::Kernels& scalar = core::scalar_kernels();
  core::Rng rng(23);
  for (const core::Kernels* k : backends) {
    for (std::size_t rows : {1u, 3u, 4u, 5u, 8u, 17u}) {
      for (std::size_t classes : {1u, 2u, 3u, 10u}) {
        for (std::size_t words : {1u, 2u, 7u, 8u, 9u, 31u, 64u, 257u}) {
          std::vector<std::uint64_t> h(rows * words), cls(classes * words);
          for (auto& w : h) w = rng.next_u64();
          for (auto& w : cls) w = rng.next_u64();
          std::vector<std::uint32_t> out(rows * classes, 0xffffffffu);
          k->hamming_tile_1b(h.data(), rows, cls.data(), classes, words,
                             out.data());
          for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < classes; ++c) {
              EXPECT_EQ(out[r * classes + c],
                        static_cast<std::uint32_t>(scalar.xor_popcount_words(
                            h.data() + r * words, cls.data() + c * words,
                            words)))
                  << k->name << " rows=" << rows << " classes=" << classes
                  << " words=" << words << " r=" << r << " c=" << c;
            }
          }
        }
      }
    }
  }
}

// ---- gather (row-pointer) tile variants ------------------------------------
// Each backend's gather kernel shares its contiguous sibling's
// register-blocked inner body, so over the same row bytes the outputs must
// be BIT-identical — floats included. The tables below shuffle the row
// order ((r * 7 + 3) % rows is a permutation for every tested row count)
// and compare against the contiguous kernel run on an equally shuffled
// contiguous copy, so the test also proves the kernels follow arbitrary
// pointer tables rather than assuming h + r * dims.

std::vector<const core::Kernels*> gather_backends() {
  std::vector<const core::Kernels*> backends = {&core::scalar_kernels()};
  if (const core::Kernels* avx2 = runnable_avx2()) backends.push_back(avx2);
  if (const core::Kernels* avx512 = runnable_avx512()) {
    backends.push_back(avx512);
  }
  return backends;
}

TEST(KernelGather, SimilaritiesTileF32GatherBitIdenticalToContiguous) {
  for (const core::Kernels* k : gather_backends()) {
    for (std::size_t rows : {1u, 3u, 4u, 5u, 8u, 17u}) {
      for (std::size_t classes : {1u, 2u, 3u, 10u}) {
        for (std::size_t dims : {1u, 7u, 16u, 65u, 130u}) {
          const auto h = gaussian_vec(rows * dims, 9000 + rows + dims);
          const auto cls =
              gaussian_vec(classes * dims, 9500 + classes + dims);
          std::vector<const float*> tbl(rows);
          std::vector<float> shuffled(rows * dims);
          for (std::size_t r = 0; r < rows; ++r) {
            const std::size_t src = (r * 7 + 3) % rows;
            tbl[r] = h.data() + src * dims;
            std::copy(tbl[r], tbl[r] + dims,
                      shuffled.data() + r * dims);
          }
          std::vector<float> want(rows * classes), got(rows * classes);
          k->similarities_tile_f32(shuffled.data(), rows, cls.data(),
                                   classes, dims, want.data());
          k->similarities_tile_f32_gather(tbl.data(), rows, cls.data(),
                                          classes, dims, got.data());
          for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(want[i], got[i])
                << k->name << " rows=" << rows << " classes=" << classes
                << " dims=" << dims << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(KernelGather, SimilaritiesTileI8GatherBitIdenticalToContiguous) {
  core::Rng rng(31);
  for (const core::Kernels* k : gather_backends()) {
    for (std::size_t rows : {1u, 3u, 4u, 5u, 8u, 17u}) {
      for (std::size_t classes : {1u, 2u, 3u, 10u}) {
        for (std::size_t dims : {1u, 7u, 16u, 65u, 130u, 1000u}) {
          std::vector<std::int8_t> h(rows * dims), cls(classes * dims);
          for (auto& v : h) {
            v = static_cast<std::int8_t>(rng.next_u64() % 255) - 127;
          }
          for (auto& v : cls) {
            v = static_cast<std::int8_t>(rng.next_u64() % 255) - 127;
          }
          std::vector<const std::int8_t*> tbl(rows);
          std::vector<std::int8_t> shuffled(rows * dims);
          for (std::size_t r = 0; r < rows; ++r) {
            const std::size_t src = (r * 7 + 3) % rows;
            tbl[r] = h.data() + src * dims;
            std::copy(tbl[r], tbl[r] + dims,
                      shuffled.data() + r * dims);
          }
          std::vector<std::int64_t> want(rows * classes),
              got(rows * classes);
          k->similarities_tile_i8(shuffled.data(), rows, cls.data(),
                                  classes, dims, want.data());
          k->similarities_tile_i8_gather(tbl.data(), rows, cls.data(),
                                         classes, dims, got.data());
          for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(want[i], got[i])
                << k->name << " rows=" << rows << " classes=" << classes
                << " dims=" << dims << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(KernelGather, HammingTile1bGatherBitIdenticalToContiguous) {
  core::Rng rng(37);
  for (const core::Kernels* k : gather_backends()) {
    for (std::size_t rows : {1u, 3u, 4u, 5u, 8u, 17u}) {
      for (std::size_t classes : {1u, 2u, 3u, 10u}) {
        for (std::size_t words : {1u, 2u, 7u, 9u, 31u, 64u}) {
          std::vector<std::uint64_t> h(rows * words), cls(classes * words);
          for (auto& w : h) w = rng.next_u64();
          for (auto& w : cls) w = rng.next_u64();
          std::vector<const std::uint64_t*> tbl(rows);
          std::vector<std::uint64_t> shuffled(rows * words);
          for (std::size_t r = 0; r < rows; ++r) {
            const std::size_t src = (r * 7 + 3) % rows;
            tbl[r] = h.data() + src * words;
            std::copy(tbl[r], tbl[r] + words,
                      shuffled.data() + r * words);
          }
          std::vector<std::uint32_t> want(rows * classes),
              got(rows * classes);
          k->hamming_tile_1b(shuffled.data(), rows, cls.data(), classes,
                             words, want.data());
          k->hamming_tile_1b_gather(tbl.data(), rows, cls.data(), classes,
                                    words, got.data());
          for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(want[i], got[i])
                << k->name << " rows=" << rows << " classes=" << classes
                << " words=" << words << " i=" << i;
          }
        }
      }
    }
  }
}

// ---- AVX-512 backend parity ------------------------------------------------

TEST(KernelParity, Avx512FloatKernels) {
  const core::Kernels* avx512 = runnable_avx512();
  if (avx512 == nullptr) GTEST_SKIP() << "AVX-512 unavailable on this host";
  const core::Kernels& scalar = core::scalar_kernels();
  for (std::size_t n : kTailSizes) {
    const auto a = gaussian_vec(n, 700 + n);
    const auto b = gaussian_vec(n, 800 + n);
    const float d_scalar = scalar.dot_f32(a.data(), b.data(), n);
    const float d_avx512 = avx512->dot_f32(a.data(), b.data(), n);
    double mag = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mag += std::abs(static_cast<double>(a[i]) * b[i]);
    }
    EXPECT_NEAR(d_scalar, d_avx512, 1e-6 * mag + 1e-6) << "dot n=" << n;

    auto y1 = gaussian_vec(n, 810 + n);
    auto y2 = y1;
    scalar.axpy_f32(0.37f, a.data(), y1.data(), n);
    avx512->axpy_f32(0.37f, a.data(), y2.data(), n);
    auto acc1 = gaussian_vec(n, 820 + n);
    auto acc2 = acc1;
    scalar.mul_acc_f32(a.data(), b.data(), acc1.data(), n);
    avx512->mul_acc_f32(a.data(), b.data(), acc2.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y1[i], y2[i], 1e-6f * (1.0f + std::abs(y1[i])))
          << "axpy n=" << n << " i=" << i;
      EXPECT_NEAR(acc1[i], acc2[i], 1e-6f * (1.0f + std::abs(acc1[i])))
          << "mul_acc n=" << n << " i=" << i;
    }
  }
}

TEST(KernelParity, Avx512XorPopcountBitExact) {
  const core::Kernels* avx512 = runnable_avx512();
  if (avx512 == nullptr) GTEST_SKIP() << "AVX-512 unavailable on this host";
  // Parity must hold whether the table carries the VPOPCNTDQ kernel or the
  // inherited avx2 nibble-LUT (both are exact integer kernels).
  const core::Kernels& scalar = core::scalar_kernels();
  core::Rng rng(13);
  for (std::size_t words :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{257}}) {
    std::vector<std::uint64_t> a(words), b(words);
    for (auto& w : a) w = rng.next_u64();
    for (auto& w : b) w = rng.next_u64();
    EXPECT_EQ(scalar.xor_popcount_words(a.data(), b.data(), words),
              avx512->xor_popcount_words(a.data(), b.data(), words))
        << "words=" << words;
  }
}

// ---- the blocked similarity tile -------------------------------------------

/// Every backend's tile kernel must reproduce its own dot_f32 per (row,
/// class) pair bit-for-bit — the contract HdcModel::similarities_batch and
/// the minibatch trainer build their "batching never changes results"
/// guarantee on. Row counts straddle the 4-row register block, dims the
/// SIMD widths and tails.
TEST(KernelTile, MatchesPerPairDotBitExactly) {
  std::vector<const core::Kernels*> backends = {&core::scalar_kernels()};
  if (const core::Kernels* avx2 = runnable_avx2()) backends.push_back(avx2);
  if (const core::Kernels* avx512 = runnable_avx512()) {
    backends.push_back(avx512);
  }
  for (const core::Kernels* k : backends) {
    for (std::size_t rows : {1u, 3u, 4u, 5u, 8u, 17u}) {
      for (std::size_t classes : {1u, 2u, 3u, 10u}) {
        for (std::size_t dims : {1u, 8u, 16u, 17u, 31u, 100u, 118u, 512u}) {
          const auto h = gaussian_vec(rows * dims, 40 + rows * dims);
          const auto cls = gaussian_vec(classes * dims, 50 + classes * dims);
          std::vector<float> out(rows * classes, -1.0f);
          k->similarities_tile_f32(h.data(), rows, cls.data(), classes, dims,
                                   out.data());
          for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < classes; ++c) {
              EXPECT_EQ(out[r * classes + c],
                        k->dot_f32(h.data() + r * dims,
                                   cls.data() + c * dims, dims))
                  << k->name << " rows=" << rows << " classes=" << classes
                  << " dims=" << dims << " r=" << r << " c=" << c;
            }
          }
        }
      }
    }
  }
}

TEST(KernelParity, CosRbfRows) {
  const core::Kernels* avx2 = runnable_avx2();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this host";
  const core::Kernels& scalar = core::scalar_kernels();
  for (std::size_t rows : {1u, 5u, 8u, 9u, 16u, 17u, 64u}) {
    for (std::size_t cols : {1u, 3u, 24u, 118u}) {
      const auto bases = gaussian_vec(rows * cols, 1000 + rows * cols);
      const auto x = gaussian_vec(cols, 2000 + cols);
      auto biases = gaussian_vec(rows, 3000 + rows);
      for (auto& v : biases) v *= 3.0f;
      std::vector<float> h_scalar(rows), h_avx2(rows), h_rowwise(rows);
      scalar.cos_rbf_rows(bases.data(), rows, cols, x.data(), biases.data(),
                          h_scalar.data());
      avx2->cos_rbf_rows(bases.data(), rows, cols, x.data(), biases.data(),
                         h_avx2.data());
      for (std::size_t r = 0; r < rows; ++r) {
        avx2->cos_rbf_rows(bases.data() + r * cols, 1, cols, x.data(),
                           &biases[r], &h_rowwise[r]);
      }
      for (std::size_t r = 0; r < rows; ++r) {
        // Scalar libm vs the AVX2 polynomial cosine plus dot reassociation:
        // a few float ulps on an output bounded to [-1, 1].
        EXPECT_NEAR(h_scalar[r], h_avx2[r], 5e-5)
            << "rows=" << rows << " cols=" << cols << " r=" << r;
        // Within one backend, batched and row-at-a-time must be identical.
        EXPECT_EQ(h_avx2[r], h_rowwise[r])
            << "rows=" << rows << " cols=" << cols << " r=" << r;
      }
    }
  }
}

TEST(KernelParity, CosRbfRowsHugeAngleFallsBackToLibm) {
  const core::Kernels* avx2 = runnable_avx2();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this host";
  // An angle far outside the polynomial's reduction range must still come
  // back accurate (the backend re-does those lanes with std::cos).
  const float base[] = {30000.0f, 1.0f};
  const float x[] = {1.0f, 0.0f};
  const float bias[] = {0.25f, 0.0f};
  float h[2] = {0.0f, 0.0f};
  avx2->cos_rbf_rows(base, 2, 1, x, bias, h);
  EXPECT_NEAR(h[0], std::cos(30000.0f + 0.25f), 1e-5);
  EXPECT_NEAR(h[1], std::cos(1.0f), 1e-6);
}

// ---- the multi-flow RBF encode tile ----------------------------------------

/// Every backend's encode tile must reproduce its own per-flow
/// cos_rbf_rows bit-for-bit — the contract the batched encode path (cache
/// miss batches, encode_batch, the streamed trainer) builds its
/// "tiling never changes encodings" guarantee on. Flow counts straddle the
/// 4-flow register block, base-row counts the 8-lane cosine epilogue
/// groups, cols the dot kernel's 16/8-lane chunks and scalar tail. The
/// output is written at h_stride > rows — the interior-panel shape — and
/// the pad bytes between rows and h_stride must come back untouched.
TEST(KernelTile, CosRbfTileMatchesPerFlowRowsBitExactly) {
  std::vector<const core::Kernels*> backends = {&core::scalar_kernels()};
  if (const core::Kernels* avx2 = runnable_avx2()) backends.push_back(avx2);
  if (const core::Kernels* avx512 = runnable_avx512()) {
    backends.push_back(avx512);
  }
  for (const core::Kernels* k : backends) {
    for (std::size_t flows : {1u, 3u, 4u, 5u, 7u, 8u, 9u, 17u}) {
      for (std::size_t rows : {1u, 5u, 8u, 16u, 17u, 100u}) {
        for (std::size_t cols : {1u, 3u, 24u, 118u}) {
          const auto bases = gaussian_vec(rows * cols, 5000 + rows * cols);
          const auto x = gaussian_vec(flows * cols, 6000 + flows * cols);
          auto biases = gaussian_vec(rows, 7000 + rows);
          for (auto& v : biases) v *= 3.0f;
          const std::size_t h_stride = rows + 5;
          std::vector<float> h_tile(flows * h_stride, -2.0f);
          k->cos_rbf_tile_f32(bases.data(), rows, cols, x.data(), flows,
                              cols, biases.data(), h_tile.data(), h_stride);
          std::vector<float> h_row(rows);
          for (std::size_t f = 0; f < flows; ++f) {
            k->cos_rbf_rows(bases.data(), rows, cols, x.data() + f * cols,
                            biases.data(), h_row.data());
            for (std::size_t r = 0; r < rows; ++r) {
              EXPECT_EQ(h_tile[f * h_stride + r], h_row[r])
                  << k->name << " flows=" << flows << " rows=" << rows
                  << " cols=" << cols << " f=" << f << " r=" << r;
            }
            for (std::size_t r = rows; r < h_stride; ++r) {
              EXPECT_EQ(h_tile[f * h_stride + r], -2.0f)
                  << k->name << " pad overwritten at f=" << f << " r=" << r;
            }
          }
        }
      }
    }
  }
}

TEST(KernelTile, CosRbfTilePanelDecompositionIsExact) {
  // The encoder walks D in cache-sized panels, pointing the kernel at
  // bases + p * cols, biases + p, h + p per panel. Panel boundaries must
  // be invisible: any split — including a ragged tail panel when D is not
  // a multiple of the panel size — reassembles the one-shot tile result
  // bit-for-bit on every backend.
  std::vector<const core::Kernels*> backends = {&core::scalar_kernels()};
  if (const core::Kernels* avx2 = runnable_avx2()) backends.push_back(avx2);
  if (const core::Kernels* avx512 = runnable_avx512()) {
    backends.push_back(avx512);
  }
  const std::size_t dims = 53;  // not a multiple of any panel below
  const std::size_t cols = 24;
  const std::size_t flows = 6;
  const auto bases = gaussian_vec(dims * cols, 8100);
  const auto x = gaussian_vec(flows * cols, 8200);
  auto biases = gaussian_vec(dims, 8300);
  for (auto& v : biases) v *= 3.0f;
  for (const core::Kernels* k : backends) {
    std::vector<float> whole(flows * dims, -2.0f);
    k->cos_rbf_tile_f32(bases.data(), dims, cols, x.data(), flows, cols,
                        biases.data(), whole.data(), dims);
    for (std::size_t panel : {1u, 8u, 16u, 32u}) {
      std::vector<float> split(flows * dims, -3.0f);
      for (std::size_t p = 0; p < dims; p += panel) {
        const std::size_t pr = std::min(panel, dims - p);
        k->cos_rbf_tile_f32(bases.data() + p * cols, pr, cols, x.data(),
                            flows, cols, biases.data() + p,
                            split.data() + p, dims);
      }
      for (std::size_t i = 0; i < split.size(); ++i) {
        EXPECT_EQ(split[i], whole[i])
            << k->name << " panel=" << panel << " i=" << i;
      }
    }
  }
}

TEST(KernelTile, CosRbfTileHonorsFlowStride) {
  // Flows handed to the kernel straight out of a wider row layout
  // (x_stride > cols): only the first `cols` entries of each flow row may
  // participate — the pad columns are garbage on purpose.
  std::vector<const core::Kernels*> backends = {&core::scalar_kernels()};
  if (const core::Kernels* avx2 = runnable_avx2()) backends.push_back(avx2);
  if (const core::Kernels* avx512 = runnable_avx512()) {
    backends.push_back(avx512);
  }
  const std::size_t rows = 19;
  const std::size_t cols = 118;
  const std::size_t flows = 5;
  const std::size_t x_stride = cols + 7;
  const auto bases = gaussian_vec(rows * cols, 8400);
  const auto x = gaussian_vec(flows * x_stride, 8500);
  auto biases = gaussian_vec(rows, 8600);
  for (auto& v : biases) v *= 3.0f;
  for (const core::Kernels* k : backends) {
    std::vector<float> h_tile(flows * rows, -2.0f);
    k->cos_rbf_tile_f32(bases.data(), rows, cols, x.data(), flows, x_stride,
                        biases.data(), h_tile.data(), rows);
    std::vector<float> h_row(rows);
    for (std::size_t f = 0; f < flows; ++f) {
      k->cos_rbf_rows(bases.data(), rows, cols, x.data() + f * x_stride,
                      biases.data(), h_row.data());
      for (std::size_t r = 0; r < rows; ++r) {
        EXPECT_EQ(h_tile[f * rows + r], h_row[r])
            << k->name << " f=" << f << " r=" << r;
      }
    }
  }
}

// ---- batch inference parity ------------------------------------------------

struct TrainedFixture {
  core::Matrix x{180, 6};
  std::vector<int> y = std::vector<int>(180);
  hdc::CyberHdClassifier model;

  explicit TrainedFixture(hdc::EncoderKind kind, bool parallel)
      : model(config(kind, parallel)) {
    core::Rng rng(17);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const int cls = static_cast<int>(i % 3);
      for (std::size_t f = 0; f < x.cols(); ++f) {
        x(i, f) = 0.4f * static_cast<float>(cls) +
                  static_cast<float>(rng.gaussian(0.0, 0.08));
      }
      y[i] = cls;
    }
    model.fit(x, y, 3);
  }

  static hdc::CyberHdConfig config(hdc::EncoderKind kind, bool parallel) {
    hdc::CyberHdConfig cfg;
    cfg.dims = 128;
    cfg.encoder = kind;
    cfg.regen_steps = 4;
    cfg.final_epochs = 3;
    cfg.parallel = parallel;
    return cfg;
  }
};

class BatchParity
    : public ::testing::TestWithParam<std::tuple<hdc::EncoderKind, bool>> {};

TEST_P(BatchParity, PredictBatchMatchesPredictLoop) {
  const auto [kind, parallel] = GetParam();
  const TrainedFixture t(kind, parallel);
  std::vector<int> batched(t.x.rows());
  t.model.predict_batch(t.x, batched);
  for (std::size_t i = 0; i < t.x.rows(); ++i) {
    EXPECT_EQ(batched[i], t.model.predict(t.x.row(i))) << "row " << i;
  }
}

TEST_P(BatchParity, ScoresBatchMatchesScoresBitExactly) {
  const auto [kind, parallel] = GetParam();
  const TrainedFixture t(kind, parallel);
  core::Matrix batched;
  t.model.scores_batch(t.x, batched);
  ASSERT_EQ(batched.rows(), t.x.rows());
  ASSERT_EQ(batched.cols(), 3u);
  std::vector<float> single(3);
  for (std::size_t i = 0; i < t.x.rows(); ++i) {
    t.model.scores(t.x.row(i), single);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(batched(i, c), single[c]) << "row " << i << " class " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BatchParity,
    ::testing::Combine(::testing::Values(hdc::EncoderKind::kRbf,
                                         hdc::EncoderKind::kSignProjection,
                                         hdc::EncoderKind::kIdLevel),
                       ::testing::Bool()));

TEST(QuantizedBatchParity, PredictBatchMatchesLoopAtAllBitwidths) {
  const TrainedFixture t(hdc::EncoderKind::kRbf, /*parallel=*/true);
  for (int bits : core::kSupportedBitwidths) {
    const hdc::QuantizedCyberHd q(t.model, bits);
    std::vector<int> batched(t.x.rows());
    q.predict_batch(t.x, batched);
    core::Matrix scores_batched;
    q.scores_batch(t.x, scores_batched);
    std::vector<float> single(q.num_classes());
    for (std::size_t i = 0; i < t.x.rows(); ++i) {
      EXPECT_EQ(batched[i], q.predict(t.x.row(i)))
          << "bits=" << bits << " row " << i;
      q.scores(t.x.row(i), single);
      for (std::size_t c = 0; c < single.size(); ++c) {
        EXPECT_EQ(scores_batched(i, c), single[c])
            << "bits=" << bits << " row " << i << " class " << c;
      }
    }
  }
}

TEST(QuantizedBatchParity, Int8FastPathMatchesCosineQuantized) {
  // The SIMD int8 scoring path must reproduce the reference
  // cosine_quantized() result bit-for-bit at every sub-byte bitwidth.
  const TrainedFixture t(hdc::EncoderKind::kRbf, /*parallel=*/false);
  for (int bits : {2, 4, 8}) {
    const hdc::QuantizedHdcModel qm(t.model.model(), bits);
    std::vector<float> h(t.model.physical_dims());
    t.model.encode(t.x.row(0), h);
    std::vector<float> scores(qm.num_classes());
    qm.similarities(h, scores);
    const core::QuantizedVector q = core::quantize(h, bits);
    for (std::size_t c = 0; c < qm.num_classes(); ++c) {
      EXPECT_EQ(scores[c], core::cosine_quantized(q, qm.level_classes()[c]))
          << "bits=" << bits << " class " << c;
    }
  }
}

TEST(ConcurrentPredict, ConstCallsFromManyThreadsAreDeterministic) {
  // Regression for the mutable-scratch race: concurrent const predict()
  // and scores() calls must produce exactly the serial results.
  const TrainedFixture t(hdc::EncoderKind::kRbf, /*parallel=*/false);
  std::vector<int> expected(t.x.rows());
  for (std::size_t i = 0; i < t.x.rows(); ++i) {
    expected[i] = t.model.predict(t.x.row(i));
  }
  const std::size_t kThreads = 8;
  std::vector<std::vector<int>> results(kThreads,
                                        std::vector<int>(t.x.rows()));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = 0; i < t.x.rows(); ++i) {
        results[w][i] = t.model.predict(t.x.row(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t w = 0; w < kThreads; ++w) {
    EXPECT_EQ(results[w], expected) << "thread " << w;
  }
}

}  // namespace
}  // namespace cyberhd
