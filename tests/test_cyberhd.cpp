// Tests for the CyberHdClassifier facade: end-to-end learning, config
// validation, the regeneration ledger, and baseline equivalence.
#include "hdc/cyberhd.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/regen.hpp"
#include "hdc/trainer.hpp"

namespace cyberhd::hdc {
namespace {

/// Three Gaussian blobs in 4-d feature space, values in [0, 1].
struct Blobs {
  core::Matrix x;
  std::vector<int> y;

  explicit Blobs(std::size_t per_class, std::uint64_t seed = 3) {
    const float centers[3][4] = {{0.2f, 0.2f, 0.8f, 0.5f},
                                 {0.8f, 0.3f, 0.2f, 0.4f},
                                 {0.5f, 0.8f, 0.5f, 0.9f}};
    core::Rng rng(seed);
    x.resize(3 * per_class, 4);
    y.resize(3 * per_class);
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t i = 0; i < per_class; ++i) {
        const std::size_t row = c * per_class + i;
        for (std::size_t f = 0; f < 4; ++f) {
          x(row, f) = centers[c][f] +
                      static_cast<float>(rng.gaussian(0.0, 0.06));
        }
        y[row] = static_cast<int>(c);
      }
    }
  }
};

CyberHdConfig small_config(std::size_t dims = 128) {
  CyberHdConfig cfg;
  cfg.dims = dims;
  cfg.regen_rate = 0.2;
  cfg.regen_steps = 5;
  cfg.epochs_per_step = 1;
  cfg.final_epochs = 3;
  cfg.parallel = false;
  return cfg;
}

TEST(CyberHdClassifier, RejectsBadConfig) {
  CyberHdConfig bad_dims;
  bad_dims.dims = 0;
  EXPECT_THROW(CyberHdClassifier{bad_dims}, std::invalid_argument);
  CyberHdConfig bad_rate;
  bad_rate.regen_rate = 1.0;
  EXPECT_THROW(CyberHdClassifier{bad_rate}, std::invalid_argument);
  CyberHdConfig negative_rate;
  negative_rate.regen_rate = -0.1;
  EXPECT_THROW(CyberHdClassifier{negative_rate}, std::invalid_argument);
}

TEST(CyberHdClassifier, FitRejectsEmptyData) {
  CyberHdClassifier model(small_config());
  core::Matrix empty(0, 4);
  EXPECT_THROW(model.fit(empty, {}, 2), std::invalid_argument);
}

TEST(CyberHdClassifier, LearnsBlobs) {
  const Blobs data(80);
  CyberHdClassifier model(small_config());
  model.fit(data.x, data.y, 3);
  EXPECT_GT(model.evaluate(data.x, data.y), 0.95);
}

TEST(CyberHdClassifier, EffectiveDimsLedger) {
  const Blobs data(40);
  auto cfg = small_config(100);
  cfg.regen_rate = 0.2;  // 20 dims/step before annealing
  cfg.regen_steps = 4;
  cfg.regen_anneal = false;
  CyberHdClassifier model(cfg);
  model.fit(data.x, data.y, 3);
  EXPECT_EQ(model.effective_dims(), 100u + 4u * 20u);
  EXPECT_EQ(model.physical_dims(), 100u);
  EXPECT_EQ(model.last_fit_report().effective_dims, 180u);
  EXPECT_EQ(model.last_fit_report().regenerated_per_step.size(), 4u);
}

TEST(CyberHdClassifier, AnnealedLedgerIsHalved) {
  const Blobs data(40);
  auto cfg = small_config(100);
  cfg.regen_rate = 0.4;
  cfg.regen_steps = 4;  // 40 + 30 + 20 + 10 = 100 regenerated
  cfg.regen_anneal = true;
  CyberHdClassifier model(cfg);
  model.fit(data.x, data.y, 3);
  EXPECT_EQ(model.effective_dims(), 200u);
}

TEST(CyberHdClassifier, ZeroRateIsStaticBaseline) {
  const Blobs data(50);
  auto cfg = small_config();
  cfg.regen_rate = 0.0;
  cfg.regen_steps = 0;
  CyberHdClassifier model(cfg);
  model.fit(data.x, data.y, 3);
  EXPECT_EQ(model.effective_dims(), cfg.dims);
  EXPECT_NE(model.name().find("BaselineHD"), std::string::npos);
}

TEST(CyberHdClassifier, NameReflectsMode) {
  CyberHdClassifier regen(small_config());
  EXPECT_NE(regen.name().find("CyberHD"), std::string::npos);
  EXPECT_NE(regen.name().find("128"), std::string::npos);
  CyberHdClassifier base(baseline_hd_config(256));
  EXPECT_NE(base.name().find("BaselineHD"), std::string::npos);
}

TEST(CyberHdClassifier, DeterministicAcrossRuns) {
  const Blobs data(60);
  CyberHdClassifier a(small_config()), b(small_config());
  a.fit(data.x, data.y, 3);
  b.fit(data.x, data.y, 3);
  for (std::size_t i = 0; i < data.x.rows(); ++i) {
    EXPECT_EQ(a.predict(data.x.row(i)), b.predict(data.x.row(i)));
  }
}

TEST(CyberHdClassifier, DifferentSeedsDifferentEncoders) {
  const Blobs data(60);
  auto cfg_a = small_config();
  auto cfg_b = small_config();
  cfg_b.seed = cfg_a.seed + 1;
  CyberHdClassifier a(cfg_a), b(cfg_b);
  a.fit(data.x, data.y, 3);
  b.fit(data.x, data.y, 3);
  std::vector<float> ha(cfg_a.dims), hb(cfg_a.dims);
  a.encode(data.x.row(0), ha);
  b.encode(data.x.row(0), hb);
  EXPECT_NE(ha, hb);
}

TEST(CyberHdClassifier, ScoresAreCosines) {
  const Blobs data(60);
  CyberHdClassifier model(small_config());
  model.fit(data.x, data.y, 3);
  std::vector<float> scores(3);
  model.scores(data.x.row(0), scores);
  for (float s : scores) {
    EXPECT_GE(s, -1.0f - 1e-5f);
    EXPECT_LE(s, 1.0f + 1e-5f);
  }
  // Prediction agrees with argmax of scores.
  const int pred = model.predict(data.x.row(0));
  EXPECT_EQ(pred, static_cast<int>(core::argmax(scores)));
}

TEST(CyberHdClassifier, FitReportTracksEpochs) {
  const Blobs data(40);
  auto cfg = small_config();
  cfg.regen_steps = 3;
  cfg.epochs_per_step = 2;
  cfg.final_epochs = 4;
  CyberHdClassifier model(cfg);
  model.fit(data.x, data.y, 3);
  EXPECT_EQ(model.last_fit_report().epochs, 3u * 2u + 4u);
  EXPECT_EQ(model.last_fit_report().epoch_accuracy.size(), 10u);
}

TEST(CyberHdClassifier, RefitResetsState) {
  const Blobs data(40);
  CyberHdClassifier model(small_config());
  model.fit(data.x, data.y, 3);
  const std::size_t eff_first = model.effective_dims();
  model.fit(data.x, data.y, 3);
  EXPECT_EQ(model.effective_dims(), eff_first);  // ledger reset, not doubled
}

TEST(CyberHdClassifier, EncoderAccessAfterFit) {
  const Blobs data(40);
  CyberHdClassifier model(small_config());
  model.fit(data.x, data.y, 3);
  EXPECT_EQ(model.encoder().output_dim(), 128u);
  EXPECT_EQ(model.encoder().input_dim(), 4u);
}

TEST(CyberHdClassifier, ParallelAndSerialAgree) {
  const Blobs data(60);
  auto serial_cfg = small_config();
  serial_cfg.parallel = false;
  auto parallel_cfg = small_config();
  parallel_cfg.parallel = true;
  CyberHdClassifier s(serial_cfg), p(parallel_cfg);
  s.fit(data.x, data.y, 3);
  p.fit(data.x, data.y, 3);
  for (std::size_t i = 0; i < data.x.rows(); i += 7) {
    EXPECT_EQ(s.predict(data.x.row(i)), p.predict(data.x.row(i)));
  }
}

TEST(CyberHdClassifier, BaselineConfigDisablesRegeneration) {
  const CyberHdConfig cfg = baseline_hd_config(333, 9);
  EXPECT_EQ(cfg.dims, 333u);
  EXPECT_EQ(cfg.regen_rate, 0.0);
  EXPECT_EQ(cfg.regen_steps, 0u);
  EXPECT_EQ(cfg.seed, 9u);
}

// ---- tiled / streaming training engine --------------------------------------

TEST(CyberHdTiledTraining, StreamedFitIsBitIdenticalToInMemoryFit) {
  // batch_size = 1 and a tile smaller than the dataset: the streamed
  // encode→train path must rebuild the exact in-memory model (same epoch
  // orders from the same generator, same per-row encodes, same updates).
  const Blobs data(80);  // 240 rows
  auto cfg = small_config();
  CyberHdClassifier in_memory(cfg);
  in_memory.fit(data.x, data.y, 3);
  auto streamed_cfg = cfg;
  streamed_cfg.train_tile_rows = 64;
  CyberHdClassifier streamed(streamed_cfg);
  streamed.fit(data.x, data.y, 3);
  ASSERT_EQ(streamed.model().weights(), in_memory.model().weights());
  EXPECT_EQ(streamed.last_fit_report().epochs,
            in_memory.last_fit_report().epochs);
  EXPECT_EQ(streamed.last_fit_report().epoch_accuracy,
            in_memory.last_fit_report().epoch_accuracy);
}

TEST(CyberHdTiledTraining, StreamingBoundsPeakEncodeBuffer) {
  // A dataset much larger than the configured tile: the resident encode
  // buffer must stay at O(tile x D), not O(n x D).
  const Blobs data(200);  // 600 rows
  auto cfg = small_config();
  cfg.regen_steps = 2;
  cfg.final_epochs = 2;
  cfg.train_tile_rows = 48;
  CyberHdClassifier model(cfg);
  model.fit(data.x, data.y, 3);
  EXPECT_EQ(model.last_fit_report().peak_encode_rows, 48u);
  EXPECT_GT(model.evaluate(data.x, data.y), 0.9);

  auto dense_cfg = cfg;
  dense_cfg.train_tile_rows = 0;
  CyberHdClassifier dense(dense_cfg);
  dense.fit(data.x, data.y, 3);
  EXPECT_EQ(dense.last_fit_report().peak_encode_rows, data.x.rows());
}

TEST(CyberHdTiledTraining, OversizedTileFallsBackToInMemory) {
  const Blobs data(40);  // 120 rows
  auto cfg = small_config();
  cfg.train_tile_rows = 4096;  // larger than the dataset
  CyberHdClassifier tiled(cfg);
  tiled.fit(data.x, data.y, 3);
  EXPECT_EQ(tiled.last_fit_report().peak_encode_rows, data.x.rows());
  CyberHdClassifier plain(small_config());
  plain.fit(data.x, data.y, 3);
  ASSERT_EQ(tiled.model().weights(), plain.model().weights());
}

TEST(CyberHdTiledTraining, MinibatchFitStaysAccurate) {
  const Blobs data(100);
  auto cfg = small_config();
  CyberHdClassifier sequential(cfg);
  sequential.fit(data.x, data.y, 3);
  auto mb_cfg = cfg;
  mb_cfg.batch_size = 32;
  CyberHdClassifier minibatch(mb_cfg);
  minibatch.fit(data.x, data.y, 3);
  const double seq_acc = sequential.evaluate(data.x, data.y);
  const double mb_acc = minibatch.evaluate(data.x, data.y);
  EXPECT_NEAR(mb_acc, seq_acc, 0.01);
  EXPECT_GT(mb_acc, 0.93);
}

TEST(CyberHdTiledTraining, StreamedMinibatchFitStaysAccurate) {
  // Streaming and minibatching compose: regen retrain cycles ride the
  // tiled path with sub-batched updates.
  const Blobs data(100);
  auto cfg = small_config();
  CyberHdClassifier sequential(cfg);
  sequential.fit(data.x, data.y, 3);
  auto mb_cfg = cfg;
  mb_cfg.batch_size = 16;
  mb_cfg.train_tile_rows = 64;
  CyberHdClassifier streamed(mb_cfg);
  streamed.fit(data.x, data.y, 3);
  EXPECT_EQ(streamed.last_fit_report().peak_encode_rows, 64u);
  EXPECT_NEAR(streamed.evaluate(data.x, data.y),
              sequential.evaluate(data.x, data.y), 0.02);
}

// ---- golden fit: the pre-ScheduleDriver control flow, replicated ------------

/// The pre-refactor in-memory fit() loop at batch_size = 1, reconstructed
/// verbatim from public APIs: same RNG forks, same encoder construction,
/// same epoch/regen/rebundle sequence. The ScheduleDriver-based fit() must
/// reproduce it bit-for-bit — this is the regression guard for the
/// schedule-loop collapse.
HdcModel golden_fit(const CyberHdConfig& cfg, const core::Matrix& x,
                    std::span<const int> y, std::size_t num_classes) {
  core::Rng rng(cfg.seed);
  core::Rng encoder_rng = rng.fork(1);
  core::Rng train_rng = rng.fork(2);
  core::Rng regen_rng = rng.fork(3);

  float lengthscale = cfg.lengthscale;
  if (cfg.encoder == EncoderKind::kRbf && lengthscale <= 0.0f) {
    core::Rng median_rng = rng.fork(4);
    lengthscale = cfg.lengthscale_factor *
                  median_heuristic_lengthscale(x, median_rng);
  }
  const auto encoder = make_encoder(cfg.encoder, x.cols(), cfg.dims,
                                    encoder_rng, lengthscale);
  HdcModel model(num_classes, cfg.dims);
  RegenController regen(cfg.dims, cfg.regen_rate,
                        cfg.regen_anneal ? cfg.regen_steps : 0);
  Trainer trainer(TrainerConfig{
      .learning_rate = cfg.learning_rate,
      .similarity_weighted = cfg.similarity_weighted_update,
      .batch_size = cfg.batch_size});

  core::Matrix encoded;
  encoder->encode_batch(x, encoded);
  trainer.initialize(model, encoded, y);

  const auto run_epochs = [&](std::size_t count) {
    for (std::size_t e = 0; e < count; ++e) {
      trainer.train_epoch(model, encoded, y, train_rng);
    }
  };
  // The historical centered re-bundle of regenerated columns, through the
  // same compiled RegenRebundle the library uses (duplicating the float
  // arithmetic here would let per-TU codegen differences — e.g.
  // -march=native FMA contraction in the library but not the test —
  // masquerade as regressions).
  const auto rebundle = [&](std::span<const std::size_t> dims) {
    RegenRebundle rb(num_classes, dims);
    for (std::size_t i = 0; i < encoded.rows(); ++i) {
      rb.add_row(encoded.row(i), static_cast<std::size_t>(y[i]));
    }
    rb.apply(model, y);
  };

  if (cfg.regen_rate > 0.0 && cfg.regen_steps > 0) {
    for (std::size_t s = 0; s < cfg.regen_steps; ++s) {
      run_epochs(cfg.epochs_per_step);
      const RegenStep step = regen.step(model, *encoder, regen_rng);
      if (!step.dims.empty()) {
        encoder->encode_batch_dims(x, step.dims, encoded);
        if (cfg.rebundle_after_regen) rebundle(step.dims);
      }
    }
  }
  run_epochs(cfg.final_epochs);
  return model;
}

TEST(CyberHdGoldenFit, ScheduleDriverFitIsBitIdenticalToPreRefactorLoop) {
  const Blobs data(60);
  auto cfg = small_config();  // batch_size = 1, parallel = false
  const HdcModel golden = golden_fit(cfg, data.x, data.y, 3);
  CyberHdClassifier model(cfg);
  model.fit(data.x, data.y, 3);
  ASSERT_EQ(model.model().weights(), golden.weights());
}

TEST(CyberHdGoldenFit, StaticBaselineMatchesGoldenLoopToo) {
  const Blobs data(60);
  auto cfg = small_config();
  cfg.regen_rate = 0.0;
  cfg.regen_steps = 0;
  const HdcModel golden = golden_fit(cfg, data.x, data.y, 3);
  CyberHdClassifier model(cfg);
  model.fit(data.x, data.y, 3);
  ASSERT_EQ(model.model().weights(), golden.weights());
}

// Encoder-kind sweep: the facade learns blobs with every encoder family.
class CyberHdEncoderSweep : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(CyberHdEncoderSweep, LearnsBlobs) {
  const Blobs data(80);
  auto cfg = small_config(256);
  cfg.encoder = GetParam();
  CyberHdClassifier model(cfg);
  model.fit(data.x, data.y, 3);
  EXPECT_GT(model.evaluate(data.x, data.y), 0.9)
      << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Encoders, CyberHdEncoderSweep,
                         ::testing::Values(EncoderKind::kRbf,
                                           EncoderKind::kSignProjection,
                                           EncoderKind::kIdLevel));

}  // namespace
}  // namespace cyberhd::hdc
