// Tests for hw/perf_model: the structural properties Table I rests on
// (CPU monotonicity, FPGA interior maximum, normalization semantics).
#include "hw/perf_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cyberhd::hw {
namespace {

Workload workload_at(int bits, std::size_t dims = 1024) {
  Workload w;
  w.dims = dims;
  w.features = 100;
  w.classes = 5;
  w.samples = 1000;
  w.bits = bits;
  return w;
}

TEST(ElementOps, Formula) {
  Workload w;
  w.dims = 10;
  w.features = 3;
  w.classes = 2;
  w.samples = 7;
  EXPECT_DOUBLE_EQ(element_ops(w), 7.0 * 10.0 * 5.0);
}

TEST(CpuModel, EnergyPerOpNearlyFlatBelowByte) {
  const CpuModel cpu;
  // Sub-byte widths share the 8-bit lane: identical energy.
  EXPECT_DOUBLE_EQ(cpu.energy_per_op_pj(1), cpu.energy_per_op_pj(8));
  EXPECT_DOUBLE_EQ(cpu.energy_per_op_pj(4), cpu.energy_per_op_pj(8));
  // Wider ops cost somewhat more, but far less than proportionally.
  EXPECT_GT(cpu.energy_per_op_pj(32), cpu.energy_per_op_pj(8));
  EXPECT_LT(cpu.energy_per_op_pj(32), 2.0 * cpu.energy_per_op_pj(8));
}

TEST(CpuModel, ThroughputImprovesWithNarrowLanesUntilByte) {
  const CpuModel cpu;
  EXPECT_GT(cpu.ops_per_second(8), cpu.ops_per_second(32));
  EXPECT_DOUBLE_EQ(cpu.ops_per_second(1), cpu.ops_per_second(8));
}

TEST(CpuModel, EfficiencyMonotoneInBitwidthAtIsoAccuracyDims) {
  // With the paper's effective-D ladder, CPU efficiency must decrease
  // monotonically toward 1 bit.
  const CpuModel cpu;
  const std::size_t dims[] = {1200, 2100, 3600, 5600, 7500, 8800};
  const int bits[] = {32, 16, 8, 4, 2, 1};
  const Workload ref = workload_at(1, 8800);
  double prev = 1e18;
  for (int i = 0; i < 6; ++i) {
    const double eff =
        relative_efficiency(cpu, workload_at(bits[i], dims[i]), cpu, ref);
    EXPECT_LT(eff, prev) << "bits=" << bits[i];
    prev = eff;
  }
  // Normalization anchor: 1-bit CPU vs itself is exactly 1.
  EXPECT_DOUBLE_EQ(relative_efficiency(cpu, ref, cpu, ref), 1.0);
}

TEST(FpgaModel, ParallelismPeaksTowardNarrowWidths) {
  const FpgaModel fpga;
  EXPECT_GT(fpga.parallel_pes(1), fpga.parallel_pes(8));
  EXPECT_GT(fpga.parallel_pes(8), fpga.parallel_pes(16));
  EXPECT_GT(fpga.parallel_pes(16), fpga.parallel_pes(32));
}

TEST(FpgaModel, EnergyPerOpGrowsWithWidth) {
  const FpgaModel fpga;
  double prev = 0;
  for (int bits : {1, 2, 4, 8, 16, 32}) {
    const double e = fpga.energy_per_op_pj(bits);
    EXPECT_GT(e, prev) << "bits=" << bits;
    prev = e;
  }
}

TEST(FpgaModel, EfficiencyHasInteriorMaximum) {
  // Table I's signature: with the effective-D ladder, the FPGA column
  // peaks at an interior bitwidth (8 in the paper), not at an endpoint.
  const CpuModel cpu;
  const FpgaModel fpga;
  const std::size_t dims[] = {1200, 2100, 3600, 5600, 7500, 8800};
  const int bits[] = {32, 16, 8, 4, 2, 1};
  const Workload ref = workload_at(1, 8800);
  double eff[6];
  for (int i = 0; i < 6; ++i) {
    eff[i] = relative_efficiency(fpga, workload_at(bits[i], dims[i]), cpu,
                                 ref);
  }
  int peak = 0;
  for (int i = 1; i < 6; ++i) {
    if (eff[i] > eff[peak]) peak = i;
  }
  EXPECT_GT(peak, 0);  // not at 32 bits
  EXPECT_LT(peak, 5);  // not at 1 bit
}

TEST(FpgaModel, BeatsCpuEverywhereOnTheLadder) {
  const CpuModel cpu;
  const FpgaModel fpga;
  const std::size_t dims[] = {1200, 2100, 3600, 5600, 7500, 8800};
  const int bits[] = {32, 16, 8, 4, 2, 1};
  const Workload ref = workload_at(1, 8800);
  for (int i = 0; i < 6; ++i) {
    const Workload w = workload_at(bits[i], dims[i]);
    EXPECT_GT(relative_efficiency(fpga, w, cpu, ref),
              relative_efficiency(cpu, w, cpu, ref))
        << "bits=" << bits[i];
  }
}

TEST(DeviceModel, EnergyScalesLinearlyWithSamples) {
  const CpuModel cpu;
  Workload w = workload_at(8);
  const double e1 = cpu.energy_joules(w);
  w.samples *= 10;
  EXPECT_NEAR(cpu.energy_joules(w), 10.0 * e1, 1e-9 * e1);
}

TEST(DeviceModel, RuntimePositiveAndFinite) {
  const CpuModel cpu;
  const FpgaModel fpga;
  for (int bits : {1, 2, 4, 8, 16, 32}) {
    const Workload w = workload_at(bits);
    EXPECT_GT(cpu.runtime_seconds(w), 0.0);
    EXPECT_GT(fpga.runtime_seconds(w), 0.0);
    EXPECT_TRUE(std::isfinite(cpu.runtime_seconds(w)));
    EXPECT_TRUE(std::isfinite(fpga.runtime_seconds(w)));
  }
}

TEST(DeviceModel, FpgaEnergyConsistentWithPowerBudget) {
  // energy = power * runtime must hold by construction.
  const FpgaModel fpga;
  const Workload w = workload_at(8);
  EXPECT_NEAR(fpga.energy_joules(w),
              fpga.power_watts * fpga.runtime_seconds(w),
              1e-9 * fpga.energy_joules(w));
}

TEST(DeviceModel, Names) {
  EXPECT_NE(CpuModel{}.name().find("CPU"), std::string::npos);
  EXPECT_NE(FpgaModel{}.name().find("FPGA"), std::string::npos);
}

}  // namespace
}  // namespace cyberhd::hw
