// Unit tests for hdc/regen: variance-ranked dropping, the effective-D
// ledger, annealing, and the fresh-dimension grace period.
#include "hdc/regen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/rng.hpp"
#include "hdc/encoder.hpp"
#include "hdc/model.hpp"

namespace cyberhd::hdc {
namespace {

struct RegenFixture {
  HdcModel model{3, 64};
  std::unique_ptr<Encoder> encoder;
  core::Rng rng{11};

  RegenFixture() {
    core::Rng enc_rng(7);
    encoder = std::make_unique<RbfEncoder>(4, 64, enc_rng);
    // Give the model non-trivial per-dimension variance.
    core::Rng data_rng(13);
    for (std::size_t c = 0; c < 3; ++c) {
      std::vector<float> h(64);
      core::fill_gaussian(data_rng, h.data(), h.size(), 0.0f, 1.0f);
      model.bundle(c, h);
    }
  }
};

TEST(RegenController, DimsPerStep) {
  RegenController c(512, 0.25);
  EXPECT_EQ(c.dims_per_step(), 128u);
  RegenController zero(512, 0.0);
  EXPECT_EQ(zero.dims_per_step(), 0u);
  RegenController small(10, 0.05);
  EXPECT_EQ(small.dims_per_step(), 0u);  // floor
}

TEST(RegenController, ZeroRateStepIsNoop) {
  RegenFixture f;
  RegenController c(64, 0.0);
  const HdcModel before = f.model;
  const RegenStep step = c.step(f.model, *f.encoder, f.rng);
  EXPECT_TRUE(step.dims.empty());
  EXPECT_EQ(step.effective_dims, 64u);
  EXPECT_EQ(c.total_regenerated(), 0u);
  EXPECT_EQ(f.model.weights(), before.weights());
}

TEST(RegenController, StepZeroesModelAndBooksLedger) {
  RegenFixture f;
  RegenController c(64, 0.25);
  const RegenStep step = c.step(f.model, *f.encoder, f.rng);
  ASSERT_EQ(step.dims.size(), 16u);
  for (std::size_t d : step.dims) {
    for (std::size_t cls = 0; cls < 3; ++cls) {
      EXPECT_EQ(f.model.class_vector(cls)[d], 0.0f);
    }
  }
  EXPECT_EQ(c.total_regenerated(), 16u);
  EXPECT_EQ(c.effective_dims(), 80u);
  EXPECT_EQ(step.effective_dims, 80u);
  EXPECT_EQ(c.steps(), 1u);
}

TEST(RegenController, DropsLowestVarianceDims) {
  HdcModel model(2, 4);
  // dim 2 constant across classes (lowest variance after normalize);
  // dims 0,1,3 vary.
  model.bundle(0, std::vector<float>{1.0f, -1.0f, 0.5f, 0.3f});
  model.bundle(1, std::vector<float>{-1.0f, 1.0f, 0.5f, -0.3f});
  core::Rng enc_rng(3);
  RbfEncoder enc(2, 4, enc_rng);
  RegenController c(4, 0.25);  // one dim per step
  core::Rng rng(5);
  const RegenStep step = c.step(model, enc, rng);
  ASSERT_EQ(step.dims.size(), 1u);
  EXPECT_EQ(step.dims[0], 2u);
}

TEST(RegenController, GracePeriodProtectsFreshDims) {
  RegenFixture f;
  RegenController c(64, 0.25);
  const RegenStep first = c.step(f.model, *f.encoder, f.rng);
  // Freshly zeroed dims have variance 0 — without the grace period the
  // second step would pick exactly the same dims again.
  const RegenStep second = c.step(f.model, *f.encoder, f.rng);
  std::set<std::size_t> first_set(first.dims.begin(), first.dims.end());
  for (std::size_t d : second.dims) {
    EXPECT_FALSE(first_set.contains(d)) << "dim " << d << " re-dropped";
  }
}

TEST(RegenController, LedgerAccumulatesAcrossSteps) {
  RegenFixture f;
  RegenController c(64, 0.125);  // 8 dims/step
  for (int s = 1; s <= 5; ++s) {
    c.step(f.model, *f.encoder, f.rng);
    EXPECT_EQ(c.total_regenerated(), 8u * static_cast<std::size_t>(s));
    EXPECT_EQ(c.effective_dims(), 64u + 8u * static_cast<std::size_t>(s));
  }
  EXPECT_EQ(c.steps(), 5u);
}

TEST(RegenController, AnnealDecaysLinearly) {
  RegenController c(100, 0.40, /*anneal_steps=*/4);
  EXPECT_DOUBLE_EQ(c.current_rate(), 0.40);
  EXPECT_EQ(c.dims_per_step(), 40u);
  RegenFixture f;
  HdcModel model(3, 100);
  core::Rng enc_rng(17);
  RbfEncoder enc(4, 100, enc_rng);
  core::Rng data_rng(19);
  for (std::size_t cls = 0; cls < 3; ++cls) {
    std::vector<float> h(100);
    core::fill_gaussian(data_rng, h.data(), h.size(), 0.0f, 1.0f);
    model.bundle(cls, h);
  }
  core::Rng rng(23);
  std::vector<std::size_t> per_step;
  for (int s = 0; s < 6; ++s) {
    per_step.push_back(c.step(model, enc, rng).dims.size());
  }
  EXPECT_EQ(per_step[0], 40u);  // 0.40
  EXPECT_EQ(per_step[1], 30u);  // 0.30
  EXPECT_EQ(per_step[2], 20u);  // 0.20
  EXPECT_EQ(per_step[3], 10u);  // 0.10
  EXPECT_EQ(per_step[4], 0u);   // annealed out
  EXPECT_EQ(per_step[5], 0u);
  EXPECT_EQ(c.total_regenerated(), 100u);
}

TEST(RegenController, NoAnnealKeepsConstantRate) {
  RegenController c(100, 0.20, /*anneal_steps=*/0);
  EXPECT_DOUBLE_EQ(c.current_rate(), 0.20);
  RegenFixture f;
  HdcModel model(2, 100);
  core::Rng data_rng(29);
  for (std::size_t cls = 0; cls < 2; ++cls) {
    std::vector<float> h(100);
    core::fill_gaussian(data_rng, h.data(), h.size(), 0.0f, 1.0f);
    model.bundle(cls, h);
  }
  core::Rng enc_rng(31);
  RbfEncoder enc(4, 100, enc_rng);
  core::Rng rng(37);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(c.step(model, enc, rng).dims.size(), 20u);
  }
}

TEST(RegenController, StepRegeneratesEncoderRows) {
  RegenFixture f;
  RegenController c(64, 0.25);
  const auto* rbf = dynamic_cast<RbfEncoder*>(f.encoder.get());
  ASSERT_NE(rbf, nullptr);
  const core::Matrix bases_before = rbf->bases();
  const RegenStep step = c.step(f.model, *f.encoder, f.rng);
  const core::Matrix& bases_after = rbf->bases();
  for (std::size_t d : step.dims) {
    bool changed = false;
    for (std::size_t col = 0; col < bases_before.cols(); ++col) {
      if (bases_before(d, col) != bases_after(d, col)) changed = true;
    }
    EXPECT_TRUE(changed) << "dim " << d;
  }
}

TEST(RegenController, DimsAreUniqueWithinStep) {
  RegenFixture f;
  RegenController c(64, 0.5);
  const RegenStep step = c.step(f.model, *f.encoder, f.rng);
  std::set<std::size_t> unique(step.dims.begin(), step.dims.end());
  EXPECT_EQ(unique.size(), step.dims.size());
}

// Parameterized sweep over regeneration rates: ledger arithmetic holds.
class RegenRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(RegenRateSweep, EffectiveDimsArithmetic) {
  const double rate = GetParam();
  RegenFixture f;
  RegenController c(64, rate);
  core::Rng rng(41);
  const std::size_t per_step = c.dims_per_step();
  for (int s = 0; s < 4; ++s) c.step(f.model, *f.encoder, rng);
  EXPECT_EQ(c.effective_dims(), 64u + 4u * per_step);
}

INSTANTIATE_TEST_SUITE_P(Rates, RegenRateSweep,
                         ::testing::Values(0.0, 0.05, 0.125, 0.25, 0.4));

}  // namespace
}  // namespace cyberhd::hdc
