// Unit tests for core/exec: cache-topology detection (and its env
// override), the cache-derived tile sizes, and the context's parallel_for
// semantics.
#include "core/exec/execution_context.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "core/thread_pool.hpp"

namespace cyberhd::core {
namespace {

TEST(CacheTopology, DetectionYieldsSaneValues) {
  const CacheTopology topo = CacheTopology::detect();
  EXPECT_GE(topo.line_bytes, 16u);
  EXPECT_LE(topo.line_bytes, 1024u);
  EXPECT_GE(topo.l1d_bytes, 4u * 1024);
  EXPECT_GE(topo.l2_bytes, 64u * 1024);
  EXPECT_GE(topo.l2_bytes, topo.l1d_bytes);
}

TEST(CacheTopology, DetectedIsCachedAndConsistent) {
  const CacheTopology& a = CacheTopology::detected();
  const CacheTopology& b = CacheTopology::detected();
  EXPECT_EQ(&a, &b);
}

TEST(CacheTopology, EnvOverridePinsL2) {
  ::setenv("CYBERHD_L2_BYTES", "1048576", 1);
  EXPECT_EQ(CacheTopology::detect().l2_bytes, 1048576u);
  ::setenv("CYBERHD_L2_BYTES", "4m", 1);
  EXPECT_EQ(CacheTopology::detect().l2_bytes, 4u * 1024 * 1024);
  ::setenv("CYBERHD_L2_BYTES", "512k", 1);
  EXPECT_EQ(CacheTopology::detect().l2_bytes, 512u * 1024);
  // Malformed values fall back to detection, never to zero — including
  // negative numbers (which strtoull would wrap to ULLONG_MAX) and
  // absurdly large "cache sizes".
  for (const char* bad : {"banana", "-1", "-4096", "99999g", "1mm", ""}) {
    ::setenv("CYBERHD_L2_BYTES", bad, 1);
    const std::size_t l2 = CacheTopology::detect().l2_bytes;
    EXPECT_GT(l2, 0u) << bad;
    EXPECT_LT(l2, std::size_t{1} << 41) << bad;
  }
  ::unsetenv("CYBERHD_L2_BYTES");
}

TEST(CacheTopology, DetectionYieldsSaneL3) {
  const CacheTopology topo = CacheTopology::detect();
  // The conservative fallback is 8 MiB / 1 domain; real detection can only
  // replace those with plausible values.
  EXPECT_GE(topo.l3_bytes, 512u * 1024);
  EXPECT_GE(topo.l3_domains, 1u);
}

TEST(CacheTopology, EnvOverridePinsL3) {
  ::setenv("CYBERHD_L3_BYTES", "33554432", 1);
  EXPECT_EQ(CacheTopology::detect().l3_bytes, 32u * 1024 * 1024);
  ::setenv("CYBERHD_L3_BYTES", "16m", 1);
  EXPECT_EQ(CacheTopology::detect().l3_bytes, 16u * 1024 * 1024);
  ::setenv("CYBERHD_L3_BYTES", "512k", 1);
  EXPECT_EQ(CacheTopology::detect().l3_bytes, 512u * 1024);
  // Malformed values fall back to detection, never to zero.
  for (const char* bad : {"banana", "-1", "-4096", "99999g", "1mm", ""}) {
    ::setenv("CYBERHD_L3_BYTES", bad, 1);
    const std::size_t l3 = CacheTopology::detect().l3_bytes;
    EXPECT_GT(l3, 0u) << bad;
    EXPECT_LT(l3, std::size_t{1} << 41) << bad;
  }
  ::unsetenv("CYBERHD_L3_BYTES");
}

TEST(CacheTopology, L2AndL3OverridesAreIndependent) {
  ::setenv("CYBERHD_L2_BYTES", "1m", 1);
  ::setenv("CYBERHD_L3_BYTES", "24m", 1);
  const CacheTopology topo = CacheTopology::detect();
  EXPECT_EQ(topo.l2_bytes, 1u * 1024 * 1024);
  EXPECT_EQ(topo.l3_bytes, 24u * 1024 * 1024);
  ::unsetenv("CYBERHD_L2_BYTES");
  ::unsetenv("CYBERHD_L3_BYTES");
}

TEST(ExecutionContext, SerialHasNoPoolProcessHasOne) {
  EXPECT_EQ(ExecutionContext::serial().pool(), nullptr);
  EXPECT_EQ(ExecutionContext::serial().workers(), 1u);
  EXPECT_NE(ExecutionContext::process().pool(), nullptr);
  EXPECT_GE(ExecutionContext::process().workers(), 1u);
}

TEST(ExecutionContext, DefaultConstructionIsSerialActiveKernels) {
  const ExecutionContext ctx;
  EXPECT_EQ(ctx.pool(), nullptr);
  EXPECT_EQ(&ctx.kernels(), &active_kernels());
}

TEST(ExecutionContext, ParallelForRunsInlineWithoutPool) {
  const ExecutionContext ctx;
  std::vector<int> hits(100, 0);
  ctx.parallel_for(100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ExecutionContext, ParallelForCoversRangeExactlyOnPool) {
  ThreadPool pool(4);
  const ExecutionContext ctx(&pool);
  std::vector<std::atomic<int>> hits(1000);
  ctx.parallel_for(
      1000,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      /*grain=*/16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutionContext, ScoreBlockRowsDerivesFromL2) {
  // A 2 MiB L2 at D = 10240 must derive the 16-row block that used to be
  // hand-tuned (2 MiB / 3 / 40 KiB ~ 17 -> pow2 16).
  const CacheTopology two_mb{.line_bytes = 64,
                             .l1d_bytes = 32 * 1024,
                             .l2_bytes = 2 * 1024 * 1024};
  const ExecutionContext ctx(nullptr, nullptr, two_mb);
  EXPECT_EQ(ctx.score_block_rows(10240), 16u);
  // Small hypervectors hit the 64-row cap.
  EXPECT_EQ(ctx.score_block_rows(512), 64u);
  // Huge hypervectors degrade gracefully to one row, never zero.
  EXPECT_EQ(ctx.score_block_rows(100'000'000), 1u);
  // A smaller L2 derives a smaller block.
  const CacheTopology one_mb{.line_bytes = 64,
                             .l1d_bytes = 32 * 1024,
                             .l2_bytes = 1024 * 1024};
  const ExecutionContext small(nullptr, nullptr, one_mb);
  EXPECT_EQ(small.score_block_rows(10240), 8u);
}

TEST(ExecutionContext, ScoreBlockRowsIsMonotonicInDims) {
  const ExecutionContext ctx;
  std::size_t prev = ctx.score_block_rows(64);
  for (std::size_t dims : {128u, 512u, 2048u, 10240u, 65536u}) {
    const std::size_t rows = ctx.score_block_rows(dims);
    EXPECT_LE(rows, prev) << dims;
    EXPECT_GE(rows, 1u) << dims;
    prev = rows;
  }
}

TEST(ExecutionContext, TrainBatchRowsMatchesScoreBlock) {
  const ExecutionContext ctx;
  for (std::size_t dims : {512u, 4096u, 10240u}) {
    EXPECT_EQ(ctx.train_batch_rows(dims), ctx.score_block_rows(dims));
  }
}

TEST(ExecutionContext, ServingBlockRowsDerivesFromL3) {
  // A 32 MiB shared L3 at D = 10240 derives a 256-row sub-batch
  // (32 MiB / 3 / 40 KiB ~ 273 -> pow2 256), the exact analogue of the
  // L2 -> 16-row derivation of score_block_rows.
  const CacheTopology topo{.line_bytes = 64,
                           .l1d_bytes = 32 * 1024,
                           .l2_bytes = 2 * 1024 * 1024,
                           .l3_bytes = 32 * 1024 * 1024,
                           .l3_domains = 1};
  const ExecutionContext ctx(nullptr, nullptr, topo);
  EXPECT_EQ(ctx.serving_block_rows(10240), 256u);
  // Small hypervectors hit the 4096-row cap.
  EXPECT_EQ(ctx.serving_block_rows(512), 4096u);
  // Huge hypervectors degrade to the L2 scoring tile, never to zero.
  EXPECT_EQ(ctx.serving_block_rows(100'000'000), 1u);
  // A smaller L3 derives a smaller sub-batch.
  CacheTopology small = topo;
  small.l3_bytes = 8 * 1024 * 1024;
  EXPECT_EQ(ExecutionContext(nullptr, nullptr, small)
                .serving_block_rows(10240),
            64u);
  // The sub-batch never drops below the L2 scoring block it feeds, even
  // when a (mis)detected L3 is no bigger than L2.
  CacheTopology tiny = topo;
  tiny.l3_bytes = 2 * 1024 * 1024;
  const ExecutionContext tiny_ctx(nullptr, nullptr, tiny);
  EXPECT_GE(tiny_ctx.serving_block_rows(10240),
            tiny_ctx.score_block_rows(10240));
}

TEST(ExecutionContext, ServingPlanCoversEveryL3Domain) {
  CacheTopology topo{.line_bytes = 64,
                     .l1d_bytes = 32 * 1024,
                     .l2_bytes = 2 * 1024 * 1024,
                     .l3_bytes = 32 * 1024 * 1024,
                     .l3_domains = 2};
  const ExecutionContext ctx(nullptr, nullptr, topo);
  const ServingPlan plan = ctx.plan_serving(10240);
  EXPECT_EQ(plan.block_rows, 256u);
  EXPECT_EQ(plan.domains, 2u);
  EXPECT_EQ(plan.batch_rows, 512u);
  // A zeroed domain count (hand-built topologies) still yields a plan.
  topo.l3_domains = 0;
  const ServingPlan fallback =
      ExecutionContext(nullptr, nullptr, topo).plan_serving(10240);
  EXPECT_EQ(fallback.domains, 1u);
  EXPECT_EQ(fallback.batch_rows, fallback.block_rows);
}

TEST(ExecutionContext, ServingPlanPinnedByL3EnvOverride) {
  // The acceptance pin: CYBERHD_L3_BYTES drives the serving split end to
  // end — detect() -> topology -> planner.
  ::setenv("CYBERHD_L3_BYTES", "12m", 1);
  const ExecutionContext ctx(nullptr, nullptr, CacheTopology::detect());
  EXPECT_EQ(ctx.cache().l3_bytes, 12u * 1024 * 1024);
  // 12 MiB / 3 / 40 KiB ~ 102 -> pow2 64.
  EXPECT_EQ(ctx.plan_serving(10240).block_rows, 64u);
  ::unsetenv("CYBERHD_L3_BYTES");
}

TEST(ExecutionContext, InjectedKernelsAreUsed) {
  const ExecutionContext ctx(nullptr, &scalar_kernels(),
                             CacheTopology::detected());
  EXPECT_EQ(&ctx.kernels(), &scalar_kernels());
}

}  // namespace
}  // namespace cyberhd::core
