// Unit tests for core/exec: cache-topology detection (and its env
// override), the cache-derived tile sizes, and the context's parallel_for
// semantics.
#include "core/exec/execution_context.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "core/thread_pool.hpp"

namespace cyberhd::core {
namespace {

TEST(CacheTopology, DetectionYieldsSaneValues) {
  const CacheTopology topo = CacheTopology::detect();
  EXPECT_GE(topo.line_bytes, 16u);
  EXPECT_LE(topo.line_bytes, 1024u);
  EXPECT_GE(topo.l1d_bytes, 4u * 1024);
  EXPECT_GE(topo.l2_bytes, 64u * 1024);
  EXPECT_GE(topo.l2_bytes, topo.l1d_bytes);
}

TEST(CacheTopology, DetectedIsCachedAndConsistent) {
  const CacheTopology& a = CacheTopology::detected();
  const CacheTopology& b = CacheTopology::detected();
  EXPECT_EQ(&a, &b);
}

TEST(CacheTopology, EnvOverridePinsL2) {
  ::setenv("CYBERHD_L2_BYTES", "1048576", 1);
  EXPECT_EQ(CacheTopology::detect().l2_bytes, 1048576u);
  ::setenv("CYBERHD_L2_BYTES", "4m", 1);
  EXPECT_EQ(CacheTopology::detect().l2_bytes, 4u * 1024 * 1024);
  ::setenv("CYBERHD_L2_BYTES", "512k", 1);
  EXPECT_EQ(CacheTopology::detect().l2_bytes, 512u * 1024);
  // Malformed values fall back to detection, never to zero — including
  // negative numbers (which strtoull would wrap to ULLONG_MAX) and
  // absurdly large "cache sizes".
  for (const char* bad : {"banana", "-1", "-4096", "99999g", "1mm", ""}) {
    ::setenv("CYBERHD_L2_BYTES", bad, 1);
    const std::size_t l2 = CacheTopology::detect().l2_bytes;
    EXPECT_GT(l2, 0u) << bad;
    EXPECT_LT(l2, std::size_t{1} << 41) << bad;
  }
  ::unsetenv("CYBERHD_L2_BYTES");
}

TEST(ExecutionContext, SerialHasNoPoolProcessHasOne) {
  EXPECT_EQ(ExecutionContext::serial().pool(), nullptr);
  EXPECT_EQ(ExecutionContext::serial().workers(), 1u);
  EXPECT_NE(ExecutionContext::process().pool(), nullptr);
  EXPECT_GE(ExecutionContext::process().workers(), 1u);
}

TEST(ExecutionContext, DefaultConstructionIsSerialActiveKernels) {
  const ExecutionContext ctx;
  EXPECT_EQ(ctx.pool(), nullptr);
  EXPECT_EQ(&ctx.kernels(), &active_kernels());
}

TEST(ExecutionContext, ParallelForRunsInlineWithoutPool) {
  const ExecutionContext ctx;
  std::vector<int> hits(100, 0);
  ctx.parallel_for(100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ExecutionContext, ParallelForCoversRangeExactlyOnPool) {
  ThreadPool pool(4);
  const ExecutionContext ctx(&pool);
  std::vector<std::atomic<int>> hits(1000);
  ctx.parallel_for(
      1000,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      /*grain=*/16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutionContext, ScoreBlockRowsDerivesFromL2) {
  // A 2 MiB L2 at D = 10240 must derive the 16-row block that used to be
  // hand-tuned (2 MiB / 3 / 40 KiB ~ 17 -> pow2 16).
  const CacheTopology two_mb{.line_bytes = 64,
                             .l1d_bytes = 32 * 1024,
                             .l2_bytes = 2 * 1024 * 1024};
  const ExecutionContext ctx(nullptr, nullptr, two_mb);
  EXPECT_EQ(ctx.score_block_rows(10240), 16u);
  // Small hypervectors hit the 64-row cap.
  EXPECT_EQ(ctx.score_block_rows(512), 64u);
  // Huge hypervectors degrade gracefully to one row, never zero.
  EXPECT_EQ(ctx.score_block_rows(100'000'000), 1u);
  // A smaller L2 derives a smaller block.
  const CacheTopology one_mb{.line_bytes = 64,
                             .l1d_bytes = 32 * 1024,
                             .l2_bytes = 1024 * 1024};
  const ExecutionContext small(nullptr, nullptr, one_mb);
  EXPECT_EQ(small.score_block_rows(10240), 8u);
}

TEST(ExecutionContext, ScoreBlockRowsIsMonotonicInDims) {
  const ExecutionContext ctx;
  std::size_t prev = ctx.score_block_rows(64);
  for (std::size_t dims : {128u, 512u, 2048u, 10240u, 65536u}) {
    const std::size_t rows = ctx.score_block_rows(dims);
    EXPECT_LE(rows, prev) << dims;
    EXPECT_GE(rows, 1u) << dims;
    prev = rows;
  }
}

TEST(ExecutionContext, TrainBatchRowsMatchesScoreBlock) {
  const ExecutionContext ctx;
  for (std::size_t dims : {512u, 4096u, 10240u}) {
    EXPECT_EQ(ctx.train_batch_rows(dims), ctx.score_block_rows(dims));
  }
}

TEST(ExecutionContext, InjectedKernelsAreUsed) {
  const ExecutionContext ctx(nullptr, &scalar_kernels(),
                             CacheTopology::detected());
  EXPECT_EQ(&ctx.kernels(), &scalar_kernels());
}

}  // namespace
}  // namespace cyberhd::core
