// Pins the tentpole contract of the zero-copy serving work: after warmup,
// a steady-state serving flush performs ZERO heap allocations — across
// cache routing (flat workspace arrays), stage 1 (borrowed hits, misses
// into reused staging), and stage 2 (workspace accumulator tiles, gather
// scoring straight out of the ring).
//
// The probe is a counting replacement of the global allocation functions:
// an atomic flag arms a counter around exactly the flush under test. The
// whole apparatus is compiled out under ASan/TSan — the sanitizers must
// keep their own operator new interposed — so the CI sanitize legs run
// this file as a plain (skipped-assertion) determinism pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/cyberhd.hpp"
#include "hdc/quantized.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CYBERHD_ZERO_ALLOC_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CYBERHD_ZERO_ALLOC_DISABLED 1
#endif
#endif

#ifndef CYBERHD_ZERO_ALLOC_DISABLED

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

inline void count_alloc() noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

void* operator new(std::size_t n) {
  count_alloc();
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  count_alloc();
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void* operator new(std::size_t n, std::align_val_t a) {
  count_alloc();
  void* p = nullptr;
  const std::size_t align =
      std::max(static_cast<std::size_t>(a), sizeof(void*));
  if (posix_memalign(&p, align, n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // !CYBERHD_ZERO_ALLOC_DISABLED

namespace cyberhd::hdc {
namespace {

/// A small trained classifier, serial execution (the steady-state contract
/// is per serving thread; the pool's own scheduling is out of scope), and
/// a query batch with in-batch replays — ServingFixture's shape.
struct ZeroAllocFixture {
  core::Matrix train{150, 5};
  std::vector<int> y = std::vector<int>(150);
  core::Matrix queries{128, 5};
  CyberHdClassifier model;

  ZeroAllocFixture() : model(config()) {
    core::Rng rng(17);
    for (std::size_t i = 0; i < train.rows(); ++i) {
      const int cls = static_cast<int>(i % 3);
      for (std::size_t f = 0; f < train.cols(); ++f) {
        train(i, f) = 0.4f * static_cast<float>(cls) +
                      static_cast<float>(rng.gaussian(0.0, 0.08));
      }
      y[i] = cls;
    }
    for (std::size_t i = 0; i < 64; ++i) {
      for (std::size_t f = 0; f < queries.cols(); ++f) {
        queries(i, f) = 0.4f * static_cast<float>(i % 3) +
                        static_cast<float>(rng.gaussian(0.0, 0.08));
        queries(i + 64, f) = queries(i, f);
      }
    }
    model.fit(train, y, 3);
  }

  static CyberHdConfig config() {
    CyberHdConfig cfg;
    cfg.dims = 128;
    cfg.regen_steps = 2;
    cfg.final_epochs = 2;
    cfg.parallel = false;
    return cfg;
  }
};

/// Heap allocations performed by `flush()` after two warmup passes grow
/// every workspace to steady-state capacity. Returns 0 unconditionally on
/// sanitizer builds (the counting hooks are compiled out).
template <typename Fn>
std::uint64_t allocations_in_steady_state(Fn&& flush) {
  flush();
  flush();
#ifndef CYBERHD_ZERO_ALLOC_DISABLED
  g_allocs.store(0);
  g_counting.store(true);
  flush();
  g_counting.store(false);
  return g_allocs.load();
#else
  flush();
  return 0;
#endif
}

TEST(ZeroAlloc, FloatServingFlushIsAllocationFree) {
  ZeroAllocFixture t;
  t.model.set_encode_cache(1024);  // capacity >= working set: warm = hits
  core::Matrix out;
  const std::uint64_t allocs = allocations_in_steady_state(
      [&] { t.model.scores_batch(t.queries, out); });
#ifdef CYBERHD_ZERO_ALLOC_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  EXPECT_EQ(allocs, 0u);
#endif
}

TEST(ZeroAlloc, Quantized1BitServingFlushIsAllocationFree) {
  ZeroAllocFixture t;
  QuantizedCyberHd q(t.model, 1);
  q.set_encode_cache(1024);
  core::Matrix out;
  const std::uint64_t allocs = allocations_in_steady_state(
      [&] { q.scores_batch(t.queries, out); });
#ifdef CYBERHD_ZERO_ALLOC_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  EXPECT_EQ(allocs, 0u);
#endif
}

TEST(ZeroAlloc, Quantized8BitServingFlushIsAllocationFree) {
  ZeroAllocFixture t;
  QuantizedCyberHd q(t.model, 8);
  q.set_encode_cache(1024);
  core::Matrix out;
  const std::uint64_t allocs = allocations_in_steady_state(
      [&] { q.scores_batch(t.queries, out); });
#ifdef CYBERHD_ZERO_ALLOC_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  EXPECT_EQ(allocs, 0u);
#endif
}

}  // namespace
}  // namespace cyberhd::hdc
