// Unit tests for core/stats: Welford accumulation, column variances (the
// statistic regeneration ranks by), and confusion-matrix metrics.
#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cyberhd::core {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance_population(), 0.0);
  EXPECT_EQ(s.variance_sample(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance_population(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance_population(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.variance_sample(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.37) * 10;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance_population(), all.variance_population(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(ColumnVariances, MatchesManual) {
  // 3 rows x 2 cols.
  const float data[] = {1, 10, 2, 10, 3, 10};
  std::vector<float> out(2);
  column_variances(data, 3, 2, out);
  EXPECT_NEAR(out[0], 2.0f / 3.0f, 1e-6f);  // var of {1,2,3}
  EXPECT_NEAR(out[1], 0.0f, 1e-6f);         // constant column
}

TEST(ColumnVariances, ZeroRows) {
  std::vector<float> out(3, 99.0f);
  column_variances(nullptr, 0, 3, out);
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(ColumnVariances, SingleRowIsZero) {
  const float data[] = {5, -3, 7};
  std::vector<float> out(3);
  column_variances(data, 1, 3, out);
  for (float v : out) EXPECT_NEAR(v, 0.0f, 1e-7f);
}

TEST(ConfusionMatrix, AccuracyAndCounts) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 1);
  cm.add(1, 2);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_EQ(cm.at(1, 2), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 4.0 / 5.0);
}

TEST(ConfusionMatrix, EmptyAccuracyZero) {
  ConfusionMatrix cm(2);
  EXPECT_EQ(cm.accuracy(), 0.0);
  EXPECT_EQ(cm.macro_f1(), 0.0);
}

TEST(ConfusionMatrix, PrecisionRecallF1) {
  ConfusionMatrix cm(2);
  // class 1: TP=3, FP=1, FN=2.
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(0, 1);
  cm.add(1, 0);
  cm.add(1, 0);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 3.0 / 5.0);
  const double p = 0.75, r = 0.6;
  EXPECT_NEAR(cm.f1(1), 2 * p * r / (p + r), 1e-12);
}

TEST(ConfusionMatrix, NeverPredictedClassHasZeroPrecision) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(2, 0);
  EXPECT_EQ(cm.precision(1), 0.0);
  EXPECT_EQ(cm.recall(1), 0.0);
  EXPECT_EQ(cm.f1(1), 0.0);
}

TEST(ConfusionMatrix, MacroF1SkipsAbsentClasses) {
  ConfusionMatrix cm(3);
  // Only classes 0 and 1 occur; both perfectly predicted.
  cm.add(0, 0);
  cm.add(1, 1);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrix, DetectionRateExcludesBenign) {
  ConfusionMatrix cm(3);  // class 0 benign
  cm.add(0, 0);
  cm.add(1, 1);  // attack detected
  cm.add(1, 0);  // attack missed
  cm.add(2, 2);  // attack detected
  // class 1 recall 0.5, class 2 recall 1.0 -> mean 0.75
  EXPECT_DOUBLE_EQ(cm.detection_rate(0), 0.75);
}

TEST(ConfusionMatrix, FalsePositiveRate) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);  // benign flagged
  cm.add(1, 1);
  EXPECT_DOUBLE_EQ(cm.false_positive_rate(0), 1.0 / 3.0);
}

TEST(ConfusionMatrix, ToStringContainsNames) {
  ConfusionMatrix cm(2);
  cm.add(0, 1);
  const std::string s = cm.to_string({"benign", "attack"});
  EXPECT_NE(s.find("benign"), std::string::npos);
  EXPECT_NE(s.find("attack"), std::string::npos);
}

TEST(Aggregates, MeanOf) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Aggregates, GeometricMean) {
  const std::vector<double> xs = {1, 4, 16};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-10);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
}

// Property sweep: column_variances agrees with RunningStats per column.
class ColumnVarianceProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ColumnVarianceProperty, AgreesWithWelford) {
  const auto [rows, cols] = GetParam();
  std::vector<float> data(rows * cols);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(std::sin(0.91 * static_cast<double>(i)));
  }
  std::vector<float> out(cols);
  column_variances(data.data(), rows, cols, out);
  for (std::size_t c = 0; c < cols; ++c) {
    RunningStats s;
    for (std::size_t r = 0; r < rows; ++r) s.add(data[r * cols + c]);
    EXPECT_NEAR(out[c], static_cast<float>(s.variance_population()), 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ColumnVarianceProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{5, 1},
                      std::pair<std::size_t, std::size_t>{10, 64},
                      std::pair<std::size_t, std::size_t>{3, 512}));

}  // namespace
}  // namespace cyberhd::core
