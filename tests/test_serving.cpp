// Tests for the stage-split serving pipeline: the EncodedBatch view, the
// content-addressed encode cache (bit-identical scores cache on / off /
// evicting, with and without the thread pool — CI's kernels and threads
// matrix legs re-run this file per backend and per worker count), the
// staged encode_block / scores_encoded API, and the CYBERHD_ENCODE_CACHE
// knob.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/cyberhd.hpp"
#include "hdc/encode_cache.hpp"
#include "hdc/encoded_batch.hpp"
#include "hdc/quantized.hpp"
#include "hdc/scoring_workspace.hpp"

namespace cyberhd::hdc {
namespace {

/// Three separated Gaussian blobs plus a query batch whose second half
/// repeats the first half row-for-row (the replay shape the cache serves).
struct ServingFixture {
  core::Matrix train{150, 5};
  std::vector<int> y = std::vector<int>(150);
  core::Matrix queries{128, 5};

  explicit ServingFixture(bool parallel = false)
      : model(config(parallel)) {
    core::Rng rng(17);
    for (std::size_t i = 0; i < train.rows(); ++i) {
      const int cls = static_cast<int>(i % 3);
      for (std::size_t f = 0; f < train.cols(); ++f) {
        train(i, f) = 0.4f * static_cast<float>(cls) +
                      static_cast<float>(rng.gaussian(0.0, 0.08));
      }
      y[i] = cls;
    }
    for (std::size_t i = 0; i < 64; ++i) {
      for (std::size_t f = 0; f < queries.cols(); ++f) {
        queries(i, f) = 0.4f * static_cast<float>(i % 3) +
                        static_cast<float>(rng.gaussian(0.0, 0.08));
        queries(i + 64, f) = queries(i, f);  // exact replay
      }
    }
    model.fit(train, y, 3);
  }

  static CyberHdConfig config(bool parallel) {
    CyberHdConfig cfg;
    cfg.dims = 128;
    cfg.regen_steps = 3;
    cfg.final_epochs = 2;
    cfg.parallel = parallel;
    return cfg;
  }

  CyberHdClassifier model;
};

/// Reference scores via the per-sample path (never touches the pipeline).
core::Matrix per_sample_scores(const core::Classifier& model,
                               const core::Matrix& x) {
  core::Matrix out(x.rows(), model.num_classes());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    model.scores(x.row(i), out.row(i));
  }
  return out;
}

TEST(EncodedBatch, ViewsAddressRowsLikeTheMatrix) {
  core::Matrix m(4, 3);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      m(r, c) = static_cast<float>(r * 3 + c);
    }
  }
  const EncodedBatch all = EncodedBatch::of(m);
  EXPECT_EQ(all.rows(), 4u);
  EXPECT_EQ(all.dims(), 3u);
  EXPECT_EQ(all.row(2).data(), m.row(2).data());

  const EncodedBatch front = EncodedBatch::front_of(m, 2);
  EXPECT_EQ(front.rows(), 2u);
  EXPECT_EQ(front.row(1)[0], 3.0f);

  const EncodedBatch slice = all.slice(1, 2);
  EXPECT_EQ(slice.rows(), 2u);
  EXPECT_EQ(slice.row(0).data(), m.row(1).data());
  EXPECT_TRUE(EncodedBatch().empty());
}

/// Snapshot/restore an environment variable around a test that mutates
/// it — CI's matrix legs pin these knobs for the *whole* binary, so a
/// test must never leave a different value behind for the tests after it.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* value = std::getenv(name);
    if (value != nullptr) saved_ = value;
    had_value_ = value != nullptr;
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(EncodeCacheKnob, ParsesRowsZeroAndMalformed) {
  const ScopedEnv guard("CYBERHD_ENCODE_CACHE");
  ::setenv("CYBERHD_ENCODE_CACHE", "0", 1);
  EXPECT_EQ(EncodeCache::capacity_from_env(), 0u);
  ::setenv("CYBERHD_ENCODE_CACHE", "256", 1);
  EXPECT_EQ(EncodeCache::capacity_from_env(), 256u);
  for (const char* bad : {"banana", "-1", "12x", ""}) {
    ::setenv("CYBERHD_ENCODE_CACHE", bad, 1);
    EXPECT_EQ(EncodeCache::capacity_from_env(),
              EncodeCache::kDefaultCapacityRows)
        << bad;
  }
  ::unsetenv("CYBERHD_ENCODE_CACHE");
  EXPECT_EQ(EncodeCache::capacity_from_env(),
            EncodeCache::kDefaultCapacityRows);
}

class ServingDeterminism : public ::testing::TestWithParam<bool> {};

TEST_P(ServingDeterminism, ScoresBitIdenticalCacheOnOffEvicting) {
  ServingFixture t(/*parallel=*/GetParam());
  const core::Matrix reference = per_sample_scores(t.model, t.queries);

  // Cache off.
  t.model.set_encode_cache(0);
  ASSERT_EQ(t.model.encode_cache(), nullptr);
  core::Matrix off;
  t.model.scores_batch(t.queries, off);
  EXPECT_EQ(off, reference);

  // Cache on: the cold pass (fills + in-batch replays) and the warm pass
  // (every row a hit) must both reproduce the reference bit-for-bit.
  t.model.set_encode_cache(1024);
  ASSERT_NE(t.model.encode_cache(), nullptr);
  core::Matrix cold, warm;
  t.model.scores_batch(t.queries, cold);
  t.model.scores_batch(t.queries, warm);
  EXPECT_EQ(cold, reference);
  EXPECT_EQ(warm, reference);
  EXPECT_GT(t.model.encode_cache()->stats().hits, 0u);

  // A 3-row cache evicts on nearly every insert; correctness must not
  // depend on residency.
  t.model.set_encode_cache(3);
  core::Matrix evicting;
  t.model.scores_batch(t.queries, evicting);
  EXPECT_EQ(evicting, reference);
  EXPECT_GT(t.model.encode_cache()->stats().evictions, 0u);
}

TEST_P(ServingDeterminism, PredictBatchRidesTheStagedDriver) {
  ServingFixture t(/*parallel=*/GetParam());
  t.model.set_encode_cache(64);
  std::vector<int> batched(t.queries.rows());
  t.model.predict_batch(t.queries, batched);
  for (std::size_t i = 0; i < t.queries.rows(); ++i) {
    EXPECT_EQ(batched[i], t.model.predict(t.queries.row(i))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(SerialAndPool, ServingDeterminism,
                         ::testing::Values(false, true));

TEST(ServingPipeline, StagedApiMatchesTheDriver) {
  ServingFixture t;
  t.model.set_encode_cache(256);
  core::Matrix driver_scores;
  t.model.scores_batch(t.queries, driver_scores);

  // Stage 1 + stage 2 run by hand over two arbitrary blocks.
  core::Matrix staging, out;
  for (const auto& [begin, end] :
       std::vector<std::pair<std::size_t, std::size_t>>{{0, 50},
                                                        {50, 128}}) {
    const EncodedBatch encoded =
        t.model.encode_block(t.queries, begin, end, staging);
    ASSERT_EQ(encoded.rows(), end - begin);
    ASSERT_EQ(encoded.dims(), t.model.physical_dims());
    t.model.scores_encoded(encoded, out);
    for (std::size_t r = 0; r < encoded.rows(); ++r) {
      for (std::size_t c = 0; c < out.cols(); ++c) {
        EXPECT_EQ(out(r, c), driver_scores(begin + r, c))
            << begin << "+" << r << "," << c;
      }
    }
  }
}

TEST(ServingPipeline, WarmPassHitsEveryRow) {
  ServingFixture t;
  t.model.set_encode_cache(1024);
  core::Matrix scores;
  t.model.scores_batch(t.queries, scores);  // cold: 64 misses + 64 replays
  const EncodeCacheStats cold = t.model.encode_cache()->stats();
  EXPECT_EQ(cold.misses, 64u);  // distinct rows
  EXPECT_EQ(cold.hits, 64u);    // the in-batch replays
  t.model.scores_batch(t.queries, scores);
  const EncodeCacheStats warm = t.model.encode_cache()->stats();
  EXPECT_EQ(warm.misses, cold.misses);  // no new encodes
  EXPECT_EQ(warm.hits, cold.hits + t.queries.rows());
  // 64 + 128 hits over 256 probes.
  EXPECT_NEAR(warm.hit_rate(), 0.75, 1e-9);
}

TEST(ServingPipeline, ClearResetsResidencyAndStats) {
  ServingFixture t;
  t.model.set_encode_cache(1024);
  core::Matrix scores;
  t.model.scores_batch(t.queries, scores);
  EXPECT_GT(t.model.encode_cache()->size(), 0u);
  t.model.encode_cache()->clear();
  EXPECT_EQ(t.model.encode_cache()->size(), 0u);
  EXPECT_EQ(t.model.encode_cache()->stats().hits, 0u);
  EXPECT_EQ(t.model.encode_cache()->stats().misses, 0u);
  // And scoring after a clear is still bit-identical.
  core::Matrix again;
  t.model.scores_batch(t.queries, again);
  EXPECT_EQ(again, scores);
}

TEST(ServingPipeline, RefitRearmsTheCacheWithFreshEncodings) {
  ServingFixture t;
  t.model.set_encode_cache(1024);
  core::Matrix scores;
  t.model.scores_batch(t.queries, scores);
  EXPECT_GT(t.model.encode_cache()->size(), 0u);
  // Refit replaces the encoder; stale encodings must not survive. Pin the
  // env knob for the refit so the re-armed-cache assertions hold even on
  // the CI leg that exports CYBERHD_ENCODE_CACHE=0.
  {
    const ScopedEnv guard("CYBERHD_ENCODE_CACHE");
    ::setenv("CYBERHD_ENCODE_CACHE", "1024", 1);
    t.model.fit(t.train, t.y, 3);
  }
  ASSERT_NE(t.model.encode_cache(), nullptr);
  EXPECT_EQ(t.model.encode_cache()->stats().hits, 0u);
  const core::Matrix reference = per_sample_scores(t.model, t.queries);
  core::Matrix refit_scores;
  t.model.scores_batch(t.queries, refit_scores);
  EXPECT_EQ(refit_scores, reference);
}

class QuantizedServing : public ::testing::TestWithParam<int> {};

TEST_P(QuantizedServing, ScoresBitIdenticalCacheOnOffEvicting) {
  ServingFixture t;
  QuantizedCyberHd q(t.model, GetParam());
  const core::Matrix reference = per_sample_scores(q, t.queries);

  q.set_encode_cache(0);
  core::Matrix off;
  q.scores_batch(t.queries, off);
  EXPECT_EQ(off, reference);

  q.set_encode_cache(1024);
  core::Matrix cold, warm;
  q.scores_batch(t.queries, cold);
  q.scores_batch(t.queries, warm);
  EXPECT_EQ(cold, reference);
  EXPECT_EQ(warm, reference);
  EXPECT_GT(q.encode_cache()->stats().hits, 0u);

  q.set_encode_cache(3);
  core::Matrix evicting;
  q.scores_batch(t.queries, evicting);
  EXPECT_EQ(evicting, reference);
}

TEST_P(QuantizedServing, ScoresEncodedConsumesAnyView) {
  ServingFixture t;
  QuantizedCyberHd q(t.model, GetParam());
  core::Matrix reference;
  q.scores_batch(t.queries, reference);

  // Encode through the float classifier's stage 1 (same cloned encoder
  // weights), then hand the view to the quantized stage 2.
  core::Matrix staging;
  const EncodedBatch encoded =
      t.model.encode_block(t.queries, 0, t.queries.rows(), staging);
  core::Matrix out;
  q.scores_encoded(encoded, out);
  EXPECT_EQ(out, reference);
  // A sub-slice scores exactly its rows.
  core::Matrix slice_out;
  q.scores_encoded(encoded.slice(8, 16), slice_out);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < slice_out.cols(); ++c) {
      EXPECT_EQ(slice_out(r, c), reference(8 + r, c));
    }
  }
}

TEST_P(QuantizedServing, PackedStageSplitMatchesTheDriver) {
  // The packed stage-1/stage-2 API pulled apart: encode_block_packed's
  // view scored through the packed scores_encoded must equal the fused
  // scores_batch driver, and a sub-slice must score exactly its rows.
  ServingFixture t;
  QuantizedCyberHd q(t.model, GetParam());
  core::Matrix reference;
  q.scores_batch(t.queries, reference);

  PackedStaging staging;
  const PackedBatch packed =
      q.encode_block_packed(t.queries, 0, t.queries.rows(), staging);
  EXPECT_EQ(packed.rows(), t.queries.rows());
  EXPECT_EQ(packed.bits(), GetParam());
  EXPECT_EQ(packed.row_bytes(),
            PackedBatch::row_bytes(q.model().dims(), GetParam()));
  core::Matrix out;
  q.scores_encoded(packed, out);
  EXPECT_EQ(out, reference);

  core::Matrix slice_out;
  q.scores_encoded(packed.slice(8, 16), slice_out);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < slice_out.cols(); ++c) {
      EXPECT_EQ(slice_out(r, c), reference(8 + r, c));
    }
  }
}

TEST_P(QuantizedServing, CacheStoresPackedEntriesAndCountsBytes) {
  // The quantized cache ring is armed with the PACKED entry size — the
  // whole point of the packed pipeline's memory win — and the byte
  // residency stats must track occupied slots times that entry size.
  ServingFixture t;
  QuantizedCyberHd q(t.model, GetParam());
  q.set_encode_cache(256);
  ASSERT_NE(q.encode_cache(), nullptr);
  const std::size_t entry =
      PackedBatch::row_bytes(q.model().dims(), GetParam());
  EXPECT_EQ(q.encode_cache()->entry_bytes(), entry);

  const EncodeCacheStats before = q.encode_cache()->stats();
  EXPECT_EQ(before.bytes_resident, 0u);
  EXPECT_EQ(before.bytes_capacity, 256u * entry);

  core::Matrix scores;
  q.scores_batch(t.queries, scores);
  const EncodeCacheStats after = q.encode_cache()->stats();
  EXPECT_EQ(after.bytes_resident, q.encode_cache()->size() * entry);
  EXPECT_GT(after.bytes_resident, 0u);
  EXPECT_LE(after.bytes_resident, after.bytes_capacity);
}

TEST_P(QuantizedServing, FusedTileEncodeMatchesEncodeThenPack) {
  // The fused quantize-on-encode epilogue: encode_tile_packed's bytes must
  // be identical to float-encoding the same rows (the cloned encoder's
  // stage 1) and pack_row-ing them one at a time — the contract that lets
  // the cache-miss batch and the cache-off path ride the tile without
  // perturbing a single packed entry.
  ServingFixture t;
  QuantizedCyberHd q(t.model, GetParam());
  const std::size_t row_bytes = q.model().packed_row_bytes();

  const std::size_t stride = row_bytes + 9;
  std::vector<unsigned char> fused(t.queries.rows() * stride, 0xc3);
  q.encode_tile_packed(t.queries, 0, t.queries.rows(), fused.data(), stride);

  core::Matrix staging;
  const EncodedBatch encoded =
      t.model.encode_block(t.queries, 0, t.queries.rows(), staging);
  std::vector<unsigned char> ref(row_bytes);
  for (std::size_t i = 0; i < t.queries.rows(); ++i) {
    q.model().pack_row(encoded.row(i), ref.data());
    EXPECT_EQ(std::memcmp(fused.data() + i * stride, ref.data(), row_bytes),
              0)
        << "row " << i;
    for (std::size_t b = row_bytes; b < stride; ++b) {
      EXPECT_EQ(fused[i * stride + b], 0xc3) << "pad overwritten, row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bitwidths, QuantizedServing,
                         ::testing::Values(1, 2, 4, 8));

TEST(PackedBatchView, RowBytesAndSlicesAddressPackedRows) {
  // int8 rows: one byte per dimension; 1-bit rows: whole 64-bit words.
  EXPECT_EQ(PackedBatch::row_bytes(128, 8), 128u);
  EXPECT_EQ(PackedBatch::row_bytes(128, 2), 128u);
  EXPECT_EQ(PackedBatch::row_bytes(128, 1), 16u);
  EXPECT_EQ(PackedBatch::row_bytes(65, 1), 16u);  // tail word rounds up
  EXPECT_TRUE(PackedBatch().empty());

  PackedStaging staging;
  unsigned char* base = staging.prepare(4, 16, 8);
  for (std::size_t i = 0; i < 4 * 16; ++i) {
    base[i] = static_cast<unsigned char>(i);
  }
  const PackedBatch view = staging.view(4, 16, 8);
  EXPECT_EQ(view.rows(), 4u);
  EXPECT_EQ(view.row_bytes(), 16u);
  EXPECT_EQ(view.i8_row(2)[0], static_cast<std::int8_t>(32));
  const PackedBatch slice = view.slice(1, 2);
  EXPECT_EQ(slice.rows(), 2u);
  EXPECT_EQ(slice.i8_row(0), view.i8_row(1));

  unsigned char* wbase = staging.prepare(2, 130, 1);
  const PackedBatch words = staging.view(2, 130, 1);
  EXPECT_EQ(words.words(), 3u);
  EXPECT_EQ(words.row_bytes(), 24u);
  EXPECT_EQ(reinterpret_cast<const unsigned char*>(words.word_row(1)),
            wbase + 24);
}

// ---- zero-copy borrow protocol ---------------------------------------------

TEST(BorrowPin, PinnedRowsSurviveFullRingWrap) {
  // Pin two ring slots, then wrap the ring many times over with fresh
  // inserts: eviction must route around the pinned slots, so the borrowed
  // pointers keep serving the ORIGINAL encodings bit for bit the whole
  // time, and the pinned rows are still resident afterwards.
  ServingFixture t;
  t.model.set_encode_cache(8, /*shards=*/1);  // one ring: wrap is total
  EncodeCache* cache = t.model.encode_cache();
  ASSERT_NE(cache, nullptr);
  const core::ExecutionContext& exec = core::ExecutionContext::serial();
  const std::size_t dims = t.model.physical_dims();

  // Fill all 8 slots, then re-probe rows 0..2 in borrow mode: both rows
  // hit and pin their slots.
  core::Matrix fill(8, dims);
  cache->encode_rows(t.model.encoder(), t.queries, 0, 8, fill, exec);
  ScoringWorkspace ws;
  core::Matrix staging;
  const std::size_t hits = cache->encode_rows_borrowed(
      t.model.encoder(), t.queries, 0, 2, staging, ws, exec);
  EXPECT_EQ(hits, 2u);
  EXPECT_EQ(ws.borrow.size(), 2u);
  std::vector<float> snapshot(2 * dims);
  for (std::size_t r = 0; r < 2; ++r) {
    std::memcpy(snapshot.data() + r * dims, ws.f32_rows[r],
                dims * sizeof(float));
  }

  // 48 distinct rows through a full 8-slot ring: several complete wraps'
  // worth of eviction pressure while the pins are held.
  core::Matrix churn(16, dims);
  for (std::size_t begin = 8; begin < 56; begin += 16) {
    cache->encode_rows(t.model.encoder(), t.queries, begin, begin + 16,
                       churn, exec);
  }
  EXPECT_GT(cache->stats().evictions, 0u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(std::memcmp(ws.f32_rows[r], snapshot.data() + r * dims,
                          dims * sizeof(float)),
              0)
        << "pinned row " << r << " was overwritten during ring wrap";
  }

  // The pinned rows were never evicted: a fresh probe of them still hits.
  const EncodeCacheStats before = cache->stats();
  cache->encode_rows(t.model.encoder(), t.queries, 0, 2, fill, exec);
  EXPECT_EQ(cache->stats().hits, before.hits + 2);

  ws.borrow.release();
  EXPECT_TRUE(ws.borrow.empty());
  ws.borrow.release();  // idempotent
}

TEST(BorrowPin, WarmFlushBorrowsEveryHitWithoutCopying) {
  // The zero-copy contract, observable in the stats: a warm flush serves
  // every row as a borrowed pointer and the serving path never memcpys a
  // hit (in-batch replays alias the fresh encode, so even the cold pass
  // moves no hit bytes).
  ServingFixture t;
  t.model.set_encode_cache(1024);
  core::Matrix scores;
  t.model.scores_batch(t.queries, scores);  // cold: 64 misses + 64 replays
  const EncodeCacheStats cold = t.model.encode_cache()->stats();
  EXPECT_EQ(cold.copied_bytes, 0u);
  t.model.scores_batch(t.queries, scores);  // warm: every row a ring hit
  const EncodeCacheStats warm = t.model.encode_cache()->stats();
  EXPECT_EQ(warm.borrowed_rows, cold.borrowed_rows + t.queries.rows());
  EXPECT_EQ(warm.copied_bytes, 0u);
}

TEST(BorrowPin, ConcurrentBorrowAndEvictionKeepScoresBitIdentical) {
  // Eviction-under-load stress (the TSan/ASan CI legs re-run this file):
  // four threads flush the same query batch through a 16-slot cache, so
  // every flush borrows hits while the other threads' misses hammer the
  // same shards with inserts and evictions. Every score of every flush
  // must still be bit-identical to the per-sample reference.
  ServingFixture t;
  t.model.set_encode_cache(16);
  const core::Matrix reference = per_sample_scores(t.model, t.queries);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&] {
      core::Matrix out;
      for (int pass = 0; pass < 8; ++pass) {
        t.model.scores_batch(t.queries, out);
        if (!(out == reference)) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(t.model.encode_cache()->stats().borrowed_rows, 0u);
}

TEST_P(QuantizedServing, WarmFlushBorrowsPackedHits) {
  // The packed pipeline rides the same borrow protocol: after a cold fill,
  // a warm flush pins every row in the ring and copies nothing.
  ServingFixture t;
  QuantizedCyberHd q(t.model, GetParam());
  q.set_encode_cache(1024);
  core::Matrix scores;
  q.scores_batch(t.queries, scores);
  q.scores_batch(t.queries, scores);
  const EncodeCacheStats stats = q.encode_cache()->stats();
  EXPECT_EQ(stats.borrowed_rows, t.queries.rows());
  EXPECT_EQ(stats.copied_bytes, 0u);
}

TEST(EncodeCacheUnit, ContentVerificationDefeatsHashAliasing) {
  // Two different rows forced through the same cache: whatever the hash
  // does, the content check must re-encode rather than replay the wrong
  // vector. (A real collision is impractical to construct; this pins the
  // path where the ring slot holds a different row than the probe.)
  ServingFixture t;
  t.model.set_encode_cache(1);  // one slot: constant aliasing pressure
  const core::Matrix reference = per_sample_scores(t.model, t.queries);
  core::Matrix scores;
  t.model.scores_batch(t.queries, scores);
  EXPECT_EQ(scores, reference);
}

}  // namespace
}  // namespace cyberhd::hdc
