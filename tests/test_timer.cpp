// Unit tests for core/timer: monotonic stopwatch semantics, unit
// conversions, and reset behavior.
#include "core/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace cyberhd::core {
namespace {

TEST(Timer, StartsNearZero) {
  Timer t;
  // A fresh timer has essentially no elapsed time; allow generous slack
  // for scheduler noise on loaded CI machines.
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(Timer, IsMonotonic) {
  Timer t;
  double prev = t.seconds();
  for (int i = 0; i < 100; ++i) {
    const double now = t.seconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Timer, MeasuresSleepAtLeast) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // steady_clock guarantees at least the slept duration has passed.
  EXPECT_GE(t.millis(), 20.0);
}

TEST(Timer, ResetRestartsFromZero) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const double before_reset = t.millis();
  t.reset();
  // Compare against the pre-reset reading rather than an absolute bound:
  // the post-reset clock restarted, so it reads below the 200ms accumulated
  // value unless the thread is descheduled for 200ms+ between these two
  // statements, which is far beyond normal CI scheduler noise.
  EXPECT_LT(t.millis(), before_reset);
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Timer, UnitConversionsAgree) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = t.seconds();
  const double ms = t.millis();
  const double us = t.micros();
  // Separate now() calls, so later reads may only be larger.
  EXPECT_GE(ms, s * 1e3);
  EXPECT_GE(us, s * 1e6);
  EXPECT_LT(ms, (s + 1.0) * 1e3);
  EXPECT_LT(us, (s + 1.0) * 1e6);
}

}  // namespace
}  // namespace cyberhd::core
