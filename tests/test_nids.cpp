// Tests for the nids substrate: schema fidelity against the real datasets,
// synthesizer determinism and class structure, and the CSV ingestion path.
#include "nids/datasets.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <cstdio>
#include <fstream>
#include <set>

#include "core/csv.hpp"
#include "nids/preprocess.hpp"
#include "nids/synth.hpp"

namespace cyberhd::nids {
namespace {

TEST(Schema, NslKddShape) {
  const DatasetSchema s = make_schema(DatasetId::kNslKdd);
  EXPECT_EQ(s.num_features(), 41u);  // the canonical 41 KDD features
  EXPECT_EQ(s.num_categorical(), 3u);
  EXPECT_EQ(s.num_classes(), 5u);
  EXPECT_EQ(s.class_names[0], "normal");
  EXPECT_EQ(s.benign_class, 0u);
  EXPECT_EQ(s.features[1].name, "protocol_type");
  EXPECT_EQ(s.features[1].cardinality, 3u);
}

TEST(Schema, NslKddAttackAliases) {
  const DatasetSchema s = make_schema(DatasetId::kNslKdd);
  EXPECT_EQ(s.resolve_label("neptune"), 1u);   // dos
  EXPECT_EQ(s.resolve_label("nmap"), 2u);      // probe
  EXPECT_EQ(s.resolve_label("warezmaster"), 3u);  // r2l
  EXPECT_EQ(s.resolve_label("rootkit"), 4u);   // u2r
  EXPECT_EQ(s.resolve_label("normal"), 0u);
  EXPECT_EQ(s.resolve_label("NORMAL"), 0u);    // case-insensitive
  EXPECT_EQ(s.resolve_label("no-such-attack"), s.num_classes());
}

TEST(Schema, UnswShape) {
  const DatasetSchema s = make_schema(DatasetId::kUnswNb15);
  EXPECT_EQ(s.num_features(), 42u);
  EXPECT_EQ(s.num_categorical(), 3u);
  EXPECT_EQ(s.num_classes(), 10u);
  EXPECT_EQ(s.resolve_label("backdoors"), 7u);  // alias for backdoor
}

TEST(Schema, CicIds2017Shape) {
  const DatasetSchema s = make_schema(DatasetId::kCicIds2017);
  EXPECT_EQ(s.num_features(), 78u);  // CICFlowMeter features
  EXPECT_EQ(s.num_categorical(), 0u);
  EXPECT_EQ(s.num_classes(), 8u);
  EXPECT_EQ(s.resolve_label("DoS Hulk"), 1u);
  EXPECT_EQ(s.resolve_label("FTP-Patator"), 5u);
}

TEST(Schema, CicIds2018Shape) {
  const DatasetSchema s = make_schema(DatasetId::kCicIds2018);
  EXPECT_EQ(s.num_features(), 79u);  // 2017 set plus protocol
  EXPECT_EQ(s.num_classes(), 7u);
  EXPECT_EQ(s.features[0].name, "protocol");
  EXPECT_EQ(s.resolve_label("SSH-Bruteforce"), 5u);
}

TEST(Schema, EncodedWidth) {
  const DatasetSchema s = make_schema(DatasetId::kNslKdd);
  // 38 numeric + 3 + 66 + 11 one-hot = 118.
  EXPECT_EQ(s.encoded_width(), 38u + 3u + 66u + 11u);
}

TEST(Schema, DatasetNames) {
  EXPECT_STREQ(to_string(DatasetId::kNslKdd), "NSL-KDD");
  EXPECT_STREQ(to_string(DatasetId::kUnswNb15), "UNSW-NB15");
  EXPECT_STREQ(to_string(DatasetId::kCicIds2017), "CIC-IDS-2017");
  EXPECT_STREQ(to_string(DatasetId::kCicIds2018), "CIC-IDS-2018");
}

TEST(Synthesizer, GenerateIsDeterministic) {
  const FlowSynthesizer a = make_synthesizer(DatasetId::kNslKdd, 7);
  const FlowSynthesizer b = make_synthesizer(DatasetId::kNslKdd, 7);
  const Dataset da = a.generate(500, 0);
  const Dataset db = b.generate(500, 0);
  EXPECT_EQ(da.x, db.x);
  EXPECT_EQ(da.y, db.y);
}

TEST(Synthesizer, StreamsAreIndependent) {
  const FlowSynthesizer s = make_synthesizer(DatasetId::kNslKdd, 7);
  const Dataset train = s.generate(300, 0);
  const Dataset test = s.generate(300, 1);
  EXPECT_NE(train.x, test.x);
}

TEST(Synthesizer, SeedChangesData) {
  const Dataset a = make_synthesizer(DatasetId::kNslKdd, 7).generate(200, 0);
  const Dataset b = make_synthesizer(DatasetId::kNslKdd, 8).generate(200, 0);
  EXPECT_NE(a.x, b.x);
}

TEST(Synthesizer, ClassCountsFollowPrior) {
  const FlowSynthesizer s = make_synthesizer(DatasetId::kNslKdd, 7);
  const std::size_t n = 10000;
  const Dataset d = s.generate(n, 0);
  const auto hist = class_histogram(d.y, d.schema.num_classes());
  const auto& prior = s.class_prior();
  for (std::size_t c = 0; c < hist.size(); ++c) {
    // Counts follow the prior up to label noise (tolerance 2%).
    EXPECT_NEAR(static_cast<double>(hist[c]) / n, prior[c], 0.02)
        << "class " << c;
    EXPECT_GE(hist[c], 1u);  // every class represented
  }
}

TEST(Synthesizer, EveryClassPresentEvenWhenRare) {
  // u2r has prior 0.002; at n = 1000 exact allocation would round to 2.
  const FlowSynthesizer s = make_synthesizer(DatasetId::kNslKdd, 7);
  const Dataset d = s.generate(1000, 0);
  const auto hist = class_histogram(d.y, 5);
  for (std::size_t c = 0; c < 5; ++c) EXPECT_GE(hist[c], 1u);
}

TEST(Synthesizer, CategoricalCodesWithinCardinality) {
  const FlowSynthesizer s = make_synthesizer(DatasetId::kUnswNb15, 7);
  const Dataset d = s.generate(500, 0);
  for (std::size_t f = 0; f < d.schema.num_features(); ++f) {
    if (d.schema.features[f].type != FeatureType::kCategorical) continue;
    for (std::size_t r = 0; r < d.size(); ++r) {
      const float v = d.x(r, f);
      EXPECT_GE(v, 0.0f);
      EXPECT_LT(v, static_cast<float>(d.schema.features[f].cardinality));
      EXPECT_EQ(v, std::floor(v));  // integral code
    }
  }
}

TEST(Synthesizer, RadialClassesAreMarked) {
  const FlowSynthesizer s = make_synthesizer(DatasetId::kUnswNb15, 7);
  EXPECT_FALSE(s.is_radial_class(0));  // benign is never radial
  std::size_t radial = 0;
  for (std::size_t c = 0; c < 10; ++c) {
    if (s.is_radial_class(c)) ++radial;
  }
  EXPECT_EQ(radial, s.config().radial_classes);
}

TEST(Synthesizer, HeavyTailedFeaturesSpanDecades) {
  const FlowSynthesizer s = make_synthesizer(DatasetId::kNslKdd, 7);
  const Dataset d = s.generate(3000, 0);
  // src_bytes (index 4) is heavy-tailed: max/median should be large.
  std::vector<float> col;
  for (std::size_t r = 0; r < d.size(); ++r) col.push_back(d.x(r, 4));
  std::sort(col.begin(), col.end());
  const float median = col[col.size() / 2];
  const float max = col.back();
  EXPECT_GT(max / std::max(std::abs(median), 1e-3f), 20.0f);
}

TEST(Synthesizer, SampleFlowMatchesSchemaWidth) {
  const FlowSynthesizer s = make_synthesizer(DatasetId::kCicIds2017, 7);
  core::Rng rng(3);
  std::vector<float> flow(s.schema().num_features());
  s.sample_flow(0, flow, rng);  // must not crash; width enforced by assert
  SUCCEED();
}

TEST(LoadCsv, RoundTripsSyntheticData) {
  // Write a small synthetic NSL-KDD-style CSV with symbolic labels, read it
  // back through the schema, and compare labels and numeric columns.
  const DatasetSchema schema = make_schema(DatasetId::kNslKdd);
  const FlowSynthesizer s = make_synthesizer(DatasetId::kNslKdd, 7);
  const Dataset d = s.generate(50, 0);
  const std::string path = ::testing::TempDir() + "/nsl_test.csv";
  {
    std::ofstream out(path);
    for (std::size_t r = 0; r < d.size(); ++r) {
      core::CsvRow row;
      for (std::size_t f = 0; f < schema.num_features(); ++f) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6f", d.x(r, f));
        row.push_back(buf);
      }
      row.push_back(schema.class_names[static_cast<std::size_t>(d.y[r])]);
      row.push_back("21");  // NSL-KDD difficulty column, must be ignored
      out << core::to_csv_line(row) << "\n";
    }
  }
  const Dataset loaded = load_csv(schema, path, /*header=*/false);
  ASSERT_EQ(loaded.size(), d.size());
  EXPECT_EQ(loaded.y, d.y);
  // Numeric columns match to print precision.
  for (std::size_t r = 0; r < d.size(); ++r) {
    EXPECT_NEAR(loaded.x(r, 0), d.x(r, 0), 1e-4f);
    EXPECT_NEAR(loaded.x(r, 4), d.x(r, 4), 1e-2f);
  }
  std::remove(path.c_str());
}

TEST(LoadCsv, SkipsUnknownLabelsAndShortRows) {
  const DatasetSchema schema = make_schema(DatasetId::kNslKdd);
  const std::string path = ::testing::TempDir() + "/nsl_bad.csv";
  {
    std::ofstream out(path);
    // Too-short row, unknown label row: both skipped.
    out << "1,2,3\n";
    std::string row;
    for (std::size_t f = 0; f < schema.num_features(); ++f) row += "0,";
    out << row << "martian\n";
    out << row << "neptune\n";  // valid: dos
  }
  const Dataset loaded = load_csv(schema, path, false);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.y[0], 1);
  std::remove(path.c_str());
}

TEST(LoadCsv, ThrowsOnMissingFile) {
  const DatasetSchema schema = make_schema(DatasetId::kNslKdd);
  EXPECT_THROW(load_csv(schema, "/no/such/file.csv", false),
               std::runtime_error);
}

TEST(LoadCsv, HandlesInfinityAndNanCells) {
  const DatasetSchema schema = make_schema(DatasetId::kCicIds2017);
  const std::string path = ::testing::TempDir() + "/cic_inf.csv";
  {
    std::ofstream out(path);
    std::string row;
    for (std::size_t f = 0; f < schema.num_features(); ++f) {
      row += (f == 14 ? std::string("Infinity,") : std::string("1.5,"));
    }
    out << row << "BENIGN\n";
  }
  const Dataset loaded = load_csv(schema, path, false);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.x(0, 14), 0.0f);  // Infinity zeroed like standard scripts
  EXPECT_EQ(loaded.x(0, 0), 1.5f);
  std::remove(path.c_str());
}

// Sweep: all four datasets generate, with correct schema wiring.
class DatasetSweep : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetSweep, GeneratesConsistentDataset) {
  const FlowSynthesizer s = make_synthesizer(GetParam(), 11);
  const Dataset d = s.generate(400, 0);
  EXPECT_EQ(d.size(), 400u);
  EXPECT_EQ(d.x.cols(), d.schema.num_features());
  EXPECT_EQ(d.y.size(), 400u);
  for (int label : d.y) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(d.schema.num_classes()));
  }
  for (std::size_t i = 0; i < d.x.size(); ++i) {
    EXPECT_TRUE(std::isfinite(d.x.data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(All, DatasetSweep,
                         ::testing::Values(DatasetId::kNslKdd,
                                           DatasetId::kUnswNb15,
                                           DatasetId::kCicIds2017,
                                           DatasetId::kCicIds2018));

}  // namespace
}  // namespace cyberhd::nids
