// Unit tests for core/matrix: the dense kernels every higher layer builds on.
#include "core/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cyberhd::core {
namespace {

TEST(Matrix, ConstructionZeroInitializes) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0f);
  }
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 1.5f);
  EXPECT_EQ(m(0, 0), 1.5f);
  EXPECT_EQ(m(1, 1), 1.5f);
}

TEST(Matrix, ElementAccessIsRowMajor) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 3;
  m(1, 0) = 4;
  EXPECT_EQ(m.data()[0], 1.0f);
  EXPECT_EQ(m.data()[2], 3.0f);
  EXPECT_EQ(m.data()[3], 4.0f);
}

TEST(Matrix, RowSpanAliasesStorage) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0f;
  EXPECT_EQ(m(1, 2), 9.0f);
}

TEST(Matrix, FillAndResize) {
  Matrix m(2, 2);
  m.fill(7.0f);
  EXPECT_EQ(m(1, 1), 7.0f);
  m.resize(3, 5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m(2, 4), 0.0f);
}

TEST(Matrix, Transposed) {
  Matrix m(2, 3);
  float v = 0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  }
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(t(c, r), m(r, c));
  }
}

TEST(Matrix, EqualityIsValueBased) {
  Matrix a(2, 2, 1.0f), b(2, 2, 1.0f), c(2, 2, 2.0f);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(VectorKernels, DotBasic) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, 5, 6};
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(VectorKernels, DotHandlesTail) {
  // Length not divisible by the 4-wide unroll.
  const std::vector<float> a = {1, 1, 1, 1, 1, 1, 1};
  const std::vector<float> b = {2, 2, 2, 2, 2, 2, 2};
  EXPECT_FLOAT_EQ(dot(a, b), 14.0f);
}

TEST(VectorKernels, DotEmpty) {
  const std::vector<float> a, b;
  EXPECT_FLOAT_EQ(dot(a, b), 0.0f);
}

TEST(VectorKernels, Norm2) {
  const std::vector<float> a = {3, 4};
  EXPECT_FLOAT_EQ(norm2(a), 5.0f);
}

TEST(VectorKernels, Axpy) {
  const std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {10, 10, 10};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 14.0f);
  EXPECT_FLOAT_EQ(y[2], 16.0f);
}

TEST(VectorKernels, Scale) {
  std::vector<float> x = {1, -2, 3};
  scale(x, -2.0f);
  EXPECT_FLOAT_EQ(x[0], -2.0f);
  EXPECT_FLOAT_EQ(x[1], 4.0f);
  EXPECT_FLOAT_EQ(x[2], -6.0f);
}

TEST(VectorKernels, NormalizeL2) {
  std::vector<float> x = {3, 4};
  const float n = normalize_l2(x);
  EXPECT_FLOAT_EQ(n, 5.0f);
  EXPECT_NEAR(norm2(x), 1.0f, 1e-6f);
}

TEST(VectorKernels, NormalizeZeroVectorIsNoop) {
  std::vector<float> x = {0, 0, 0};
  const float n = normalize_l2(x);
  EXPECT_FLOAT_EQ(n, 0.0f);
  for (float v : x) EXPECT_EQ(v, 0.0f);
}

TEST(VectorKernels, CosineIdenticalIsOne) {
  const std::vector<float> a = {1, 2, 3};
  EXPECT_NEAR(cosine(a, a), 1.0f, 1e-6f);
}

TEST(VectorKernels, CosineOppositeIsMinusOne) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {-1, -2, -3};
  EXPECT_NEAR(cosine(a, b), -1.0f, 1e-6f);
}

TEST(VectorKernels, CosineOrthogonalIsZero) {
  const std::vector<float> a = {1, 0};
  const std::vector<float> b = {0, 1};
  EXPECT_NEAR(cosine(a, b), 0.0f, 1e-6f);
}

TEST(VectorKernels, CosineZeroNormReturnsZero) {
  const std::vector<float> a = {0, 0};
  const std::vector<float> b = {1, 1};
  EXPECT_FLOAT_EQ(cosine(a, b), 0.0f);
}

TEST(VectorKernels, CosineScaleInvariant) {
  const std::vector<float> a = {1, 2, 3, 4};
  std::vector<float> b = {2, -1, 0, 5};
  const float c1 = cosine(a, b);
  scale(b, 7.0f);
  EXPECT_NEAR(cosine(a, b), c1, 1e-6f);
}

TEST(MatrixKernels, GemvMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const std::vector<float> x = {1, 1, 1};
  std::vector<float> y(2);
  gemv(a, x, y);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 15.0f);
}

TEST(MatrixKernels, GemvTransposedMatchesTransposeThenGemv) {
  Matrix a(3, 4);
  float v = 1;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = v++ * 0.5f;
  }
  const std::vector<float> x = {1, -1, 2};
  std::vector<float> y1(4), y2(4);
  gemv_transposed(a, x, y1);
  gemv(a.transposed(), x, y2);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-5f);
}

TEST(MatrixKernels, GemmMatchesNaive) {
  Matrix a(3, 2), b(2, 4);
  float v = 1;
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = v++;
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = v++ * 0.1f;
  Matrix c;
  gemm(a, b, c);
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      float expect = 0;
      for (std::size_t p = 0; p < 2; ++p) expect += a(i, p) * b(p, j);
      EXPECT_NEAR(c(i, j), expect, 1e-5f);
    }
  }
}

TEST(MatrixKernels, GemmWithZerosSkipsWork) {
  Matrix a(2, 2), b(2, 2, 1.0f);
  a(0, 0) = 0; a(0, 1) = 2; a(1, 0) = 0; a(1, 1) = 0;
  Matrix c;
  gemm(a, b, c);
  EXPECT_FLOAT_EQ(c(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 0.0f);
}

TEST(MatrixKernels, Argmax) {
  const std::vector<float> x = {1, 5, 3, 5, 2};
  EXPECT_EQ(argmax(x), 1u);  // first of ties
  const std::vector<float> neg = {-3, -1, -2};
  EXPECT_EQ(argmax(neg), 1u);
  const std::vector<float> empty;
  EXPECT_EQ(argmax(empty), 0u);
}

TEST(MatrixKernels, ShapeString) {
  Matrix m(3, 7);
  EXPECT_EQ(shape_string(m), "(3 x 7)");
}

// Property: dot(a,b) == dot(b,a) and |dot| <= |a||b| for random data.
class DotProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DotProperty, SymmetricAndCauchySchwarz) {
  const std::size_t n = GetParam();
  std::vector<float> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(std::sin(0.7 * static_cast<double>(i + 1)));
    b[i] = static_cast<float>(std::cos(1.3 * static_cast<double>(i + 1)));
  }
  EXPECT_FLOAT_EQ(dot(a, b), dot(b, a));
  EXPECT_LE(std::abs(dot(a, b)), norm2(a) * norm2(b) + 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DotProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 17,
                                           64, 100, 513));

}  // namespace
}  // namespace cyberhd::core
