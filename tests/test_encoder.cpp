// Unit tests for hdc/encoder: shape/determinism contracts, per-dimension
// regeneration semantics, batch-vs-single consistency, and the RFF kernel
// approximation property that justifies the RBF encoder.
#include "hdc/encoder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"

namespace cyberhd::hdc {
namespace {

std::vector<float> random_input(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<float> x(n);
  core::fill_uniform(rng, x.data(), n, 0.0f, 1.0f);
  return x;
}

TEST(RbfEncoder, Shapes) {
  core::Rng rng(1);
  RbfEncoder enc(10, 64, rng);
  EXPECT_EQ(enc.input_dim(), 10u);
  EXPECT_EQ(enc.output_dim(), 64u);
  EXPECT_EQ(enc.bases().rows(), 64u);
  EXPECT_EQ(enc.bases().cols(), 10u);
  EXPECT_EQ(enc.biases().size(), 64u);
}

TEST(RbfEncoder, OutputsBoundedByCosine) {
  core::Rng rng(2);
  RbfEncoder enc(8, 256, rng);
  const auto x = random_input(8, 3);
  std::vector<float> h(256);
  enc.encode(x, h);
  for (float v : h) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(RbfEncoder, DeterministicGivenSeed) {
  core::Rng rng1(5), rng2(5);
  RbfEncoder a(6, 32, rng1), b(6, 32, rng2);
  const auto x = random_input(6, 7);
  std::vector<float> ha(32), hb(32);
  a.encode(x, ha);
  b.encode(x, hb);
  EXPECT_EQ(ha, hb);
}

TEST(RbfEncoder, EncodeDimsMatchesEncode) {
  core::Rng rng(9);
  RbfEncoder enc(5, 40, rng);
  const auto x = random_input(5, 11);
  std::vector<float> full(40), partial(40, -99.0f);
  enc.encode(x, full);
  const std::vector<std::size_t> dims = {0, 7, 13, 39};
  enc.encode_dims(x, dims, partial);
  for (std::size_t d : dims) EXPECT_FLOAT_EQ(partial[d], full[d]);
  EXPECT_FLOAT_EQ(partial[1], -99.0f);  // untouched
}

TEST(RbfEncoder, RegenerateChangesOnlySelectedDims) {
  core::Rng rng(13);
  RbfEncoder enc(6, 50, rng);
  const auto x = random_input(6, 17);
  std::vector<float> before(50);
  enc.encode(x, before);
  const std::vector<std::size_t> dims = {3, 20, 49};
  core::Rng regen_rng(99);
  enc.regenerate(dims, regen_rng);
  std::vector<float> after(50);
  enc.encode(x, after);
  for (std::size_t d = 0; d < 50; ++d) {
    const bool selected =
        std::find(dims.begin(), dims.end(), d) != dims.end();
    if (!selected) {
      EXPECT_FLOAT_EQ(after[d], before[d]) << "dim " << d;
    }
  }
  // With continuous resampling the selected dims change almost surely.
  int changed = 0;
  for (std::size_t d : dims) {
    if (after[d] != before[d]) ++changed;
  }
  EXPECT_EQ(changed, 3);
}

TEST(RbfEncoder, CloneIsIndependent) {
  core::Rng rng(19);
  RbfEncoder enc(4, 16, rng);
  auto copy = enc.clone();
  core::Rng regen_rng(7);
  const std::vector<std::size_t> dims = {0, 1};
  enc.regenerate(dims, regen_rng);
  const auto x = random_input(4, 23);
  std::vector<float> h1(16), h2(16);
  enc.encode(x, h1);
  copy->encode(x, h2);
  EXPECT_NE(h1[0], h2[0]);  // original changed, clone did not
}

TEST(RbfEncoder, KernelApproximation) {
  // E[h(x).h(y)] / (D/2) ~ exp(-|x-y|^2 / (2 ls^2)); check at D large.
  core::Rng rng(29);
  const float ls = 1.0f;
  RbfEncoder enc(4, 16384, rng, ls);
  std::vector<float> x = {0.1f, 0.4f, 0.7f, 0.2f};
  std::vector<float> y = {0.3f, 0.2f, 0.5f, 0.6f};
  std::vector<float> hx(enc.output_dim()), hy(enc.output_dim());
  enc.encode(x, hx);
  enc.encode(y, hy);
  float dist_sq = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    dist_sq += (x[i] - y[i]) * (x[i] - y[i]);
  }
  const double expect = std::exp(-dist_sq / (2.0 * ls * ls));
  const double got = core::dot(hx, hy) /
                     (static_cast<double>(enc.output_dim()) / 2.0);
  EXPECT_NEAR(got, expect, 0.05);
}

TEST(RbfEncoder, LengthscaleControlsSmoothness) {
  // A sharper kernel (smaller lengthscale) separates nearby points more.
  core::Rng rng1(31), rng2(31);
  RbfEncoder smooth(3, 4096, rng1, 4.0f);
  RbfEncoder sharp(3, 4096, rng2, 0.25f);
  const std::vector<float> x = {0.5f, 0.5f, 0.5f};
  const std::vector<float> y = {0.6f, 0.4f, 0.55f};
  std::vector<float> a(4096), b(4096);
  smooth.encode(x, a);
  smooth.encode(y, b);
  const float cos_smooth = core::cosine(a, b);
  sharp.encode(x, a);
  sharp.encode(y, b);
  const float cos_sharp = core::cosine(a, b);
  EXPECT_GT(cos_smooth, cos_sharp);
}

TEST(SignProjectionEncoder, OutputsAreBipolar) {
  core::Rng rng(37);
  SignProjectionEncoder enc(7, 128, rng);
  const auto x = random_input(7, 41);
  std::vector<float> h(128);
  enc.encode(x, h);
  for (float v : h) EXPECT_TRUE(v == 1.0f || v == -1.0f);
}

TEST(SignProjectionEncoder, EncodeDimsMatches) {
  core::Rng rng(43);
  SignProjectionEncoder enc(5, 64, rng);
  const auto x = random_input(5, 47);
  std::vector<float> full(64), partial(64, 0.0f);
  enc.encode(x, full);
  std::vector<std::size_t> dims;
  for (std::size_t d = 0; d < 64; d += 3) dims.push_back(d);
  enc.encode_dims(x, dims, partial);
  for (std::size_t d : dims) EXPECT_EQ(partial[d], full[d]);
}

TEST(IdLevelEncoder, NeighbourLevelsAreSimilar) {
  core::Rng rng(53);
  IdLevelEncoder enc(1, 8192, rng, 32);
  std::vector<float> h0(8192), h1(8192), h31(8192);
  const std::vector<float> v0 = {0.0f};
  const std::vector<float> v1 = {1.0f / 31.0f};
  const std::vector<float> v31 = {1.0f};
  enc.encode(v0, h0);
  enc.encode(v1, h1);
  enc.encode(v31, h31);
  const float near = core::cosine(h0, h1);
  const float far = core::cosine(h0, h31);
  EXPECT_GT(near, 0.9f);  // adjacent levels nearly identical
  EXPECT_LT(far, 0.2f);   // extreme levels near orthogonal
}

TEST(IdLevelEncoder, ClampsOutOfRangeInputs) {
  core::Rng rng(59);
  IdLevelEncoder enc(2, 256, rng);
  std::vector<float> h1(256), h2(256);
  enc.encode(std::vector<float>{-5.0f, 2.0f}, h1);
  enc.encode(std::vector<float>{0.0f, 1.0f}, h2);
  EXPECT_EQ(h1, h2);
}

TEST(IdLevelEncoder, RegenerateChangesOnlySelectedDims) {
  core::Rng rng(61);
  IdLevelEncoder enc(3, 64, rng);
  const std::vector<float> x = {0.2f, 0.8f, 0.5f};
  std::vector<float> before(64), after(64);
  enc.encode(x, before);
  core::Rng regen_rng(5);
  const std::vector<std::size_t> dims = {10, 11};
  enc.regenerate(dims, regen_rng);
  enc.encode(x, after);
  for (std::size_t d = 0; d < 64; ++d) {
    if (d != 10 && d != 11) EXPECT_EQ(after[d], before[d]);
  }
}

TEST(EncoderBatch, MatchesSingleEncodes) {
  core::Rng rng(67);
  RbfEncoder enc(6, 48, rng);
  core::Matrix x(20, 6);
  core::Rng data_rng(71);
  core::fill_uniform(data_rng, x.data(), x.size(), 0.0f, 1.0f);
  core::Matrix h_serial, h_parallel;
  enc.encode_batch(x, h_serial);
  core::ThreadPool pool(4);
  enc.encode_batch(x, h_parallel, core::ExecutionContext(&pool));
  EXPECT_EQ(h_serial, h_parallel);
  std::vector<float> one(48);
  enc.encode(x.row(7), one);
  for (std::size_t d = 0; d < 48; ++d) {
    EXPECT_FLOAT_EQ(h_serial(7, d), one[d]);
  }
}

TEST(EncoderBatch, BatchDimsUpdatesColumns) {
  core::Rng rng(73);
  RbfEncoder enc(4, 32, rng);
  core::Matrix x(10, 4);
  core::Rng data_rng(79);
  core::fill_uniform(data_rng, x.data(), x.size(), 0.0f, 1.0f);
  core::Matrix h;
  enc.encode_batch(x, h);
  core::Rng regen_rng(83);
  const std::vector<std::size_t> dims = {5, 6, 7};
  enc.regenerate(dims, regen_rng);
  core::Matrix h_updated = h;
  enc.encode_batch_dims(x, dims, h_updated);
  core::Matrix h_full;
  enc.encode_batch(x, h_full);
  EXPECT_EQ(h_updated, h_full);
}

TEST(Factory, CreatesAllKinds) {
  core::Rng rng(89);
  for (EncoderKind kind : {EncoderKind::kRbf, EncoderKind::kSignProjection,
                           EncoderKind::kIdLevel}) {
    auto enc = make_encoder(kind, 5, 32, rng);
    ASSERT_NE(enc, nullptr);
    EXPECT_EQ(enc->input_dim(), 5u);
    EXPECT_EQ(enc->output_dim(), 32u);
  }
}

TEST(Factory, KindNames) {
  EXPECT_STREQ(to_string(EncoderKind::kRbf), "rbf");
  EXPECT_STREQ(to_string(EncoderKind::kSignProjection), "sign-projection");
  EXPECT_STREQ(to_string(EncoderKind::kIdLevel), "id-level");
}

TEST(MedianHeuristic, RecoversKnownScale) {
  // Points on a grid with typical pairwise distance ~ known value.
  core::Matrix x(200, 2);
  core::Rng rng(97);
  core::fill_gaussian(rng, x.data(), x.size(), 0.0f, 1.0f);
  core::Rng h_rng(101);
  const float ls = median_heuristic_lengthscale(x, h_rng);
  // For 2-d standard normals, median pair distance ~ sqrt(2 * 2 * ln 2)
  // ~ 1.66; allow generous tolerance.
  EXPECT_GT(ls, 1.0f);
  EXPECT_LT(ls, 2.5f);
}

TEST(MedianHeuristic, DegenerateInputsReturnOne) {
  core::Matrix single(1, 3);
  core::Rng rng(103);
  EXPECT_EQ(median_heuristic_lengthscale(single, rng), 1.0f);
  core::Matrix constant(10, 3, 2.0f);
  EXPECT_EQ(median_heuristic_lengthscale(constant, rng), 1.0f);
}

// Property sweep: every encoder kind keeps encode_dims consistent with
// encode after interleaved regeneration.
class EncoderKindSweep : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(EncoderKindSweep, RegenerateThenEncodeDimsConsistent) {
  core::Rng rng(107);
  auto enc = make_encoder(GetParam(), 6, 40, rng);
  const auto x = random_input(6, 109);
  core::Rng regen_rng(113);
  for (int round = 0; round < 3; ++round) {
    const std::vector<std::size_t> dims = {static_cast<std::size_t>(round),
                                           10u + round, 30u + round};
    enc->regenerate(dims, regen_rng);
    std::vector<float> full(40), partial(40, 0.0f);
    enc->encode(x, full);
    enc->encode_dims(x, dims, partial);
    for (std::size_t d : dims) EXPECT_FLOAT_EQ(partial[d], full[d]);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, EncoderKindSweep,
                         ::testing::Values(EncoderKind::kRbf,
                                           EncoderKind::kSignProjection,
                                           EncoderKind::kIdLevel));

}  // namespace
}  // namespace cyberhd::hdc
