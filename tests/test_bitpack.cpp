// Unit tests for core/bitpack: packed bipolar vectors and the XOR/popcount
// similarity kernel behind 1-bit HDC inference.
#include "core/bitpack.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"

namespace cyberhd::core {
namespace {

TEST(PackedBits, DefaultIsAllMinusOne) {
  PackedBits p(70);
  EXPECT_EQ(p.dims(), 70u);
  EXPECT_EQ(p.num_words(), 2u);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_EQ(p.get(i), -1);
  EXPECT_EQ(p.popcount(), 0u);
}

TEST(PackedBits, SetGetFlip) {
  PackedBits p(100);
  p.set(3, 1);
  p.set(64, 1);
  p.set(99, 1);
  EXPECT_EQ(p.get(3), 1);
  EXPECT_EQ(p.get(64), 1);
  EXPECT_EQ(p.get(99), 1);
  EXPECT_EQ(p.get(4), -1);
  EXPECT_EQ(p.popcount(), 3u);
  p.flip(3);
  EXPECT_EQ(p.get(3), -1);
  p.flip(3);
  EXPECT_EQ(p.get(3), 1);
  p.set(64, -1);
  EXPECT_EQ(p.get(64), -1);
}

TEST(PackedBits, PackSigns) {
  const std::vector<float> x = {1.0f, -0.5f, 0.0f, -2.0f, 3.0f};
  const PackedBits p = pack_signs(x);
  EXPECT_EQ(p.dims(), 5u);
  EXPECT_EQ(p.get(0), 1);
  EXPECT_EQ(p.get(1), -1);
  EXPECT_EQ(p.get(2), 1);  // zero counts as +1
  EXPECT_EQ(p.get(3), -1);
  EXPECT_EQ(p.get(4), 1);
}

TEST(PackedBits, UnpackRoundTrip) {
  Rng rng(3);
  std::vector<float> x(130);
  fill_gaussian(rng, x.data(), x.size(), 0.0f, 1.0f);
  const PackedBits p = pack_signs(x);
  std::vector<float> back(x.size());
  unpack_to_floats(p, back);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(back[i], x[i] >= 0.0f ? 1.0f : -1.0f);
  }
}

TEST(PackedBits, HammingBasics) {
  PackedBits a(64), b(64);
  EXPECT_EQ(hamming(a, b), 0u);
  b.flip(0);
  b.flip(63);
  EXPECT_EQ(hamming(a, b), 2u);
}

TEST(PackedBits, DotBipolarIdentity) {
  // dot = D - 2 * hamming, verified against an explicit bipolar dot.
  Rng rng(5);
  std::vector<float> x(200), y(200);
  fill_gaussian(rng, x.data(), x.size(), 0.0f, 1.0f);
  fill_gaussian(rng, y.data(), y.size(), 0.0f, 1.0f);
  const PackedBits a = pack_signs(x);
  const PackedBits b = pack_signs(y);
  std::int64_t expect = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    expect += static_cast<std::int64_t>(a.get(i)) * b.get(i);
  }
  EXPECT_EQ(dot_bipolar(a, b), expect);
}

TEST(PackedBits, CosineBipolarSelf) {
  Rng rng(7);
  std::vector<float> x(128);
  fill_gaussian(rng, x.data(), x.size(), 0.0f, 1.0f);
  const PackedBits a = pack_signs(x);
  EXPECT_FLOAT_EQ(cosine_bipolar(a, a), 1.0f);
}

TEST(PackedBits, CosineBipolarOpposite) {
  PackedBits a(64), b(64);
  for (std::size_t i = 0; i < 64; ++i) {
    a.set(i, 1);
    b.set(i, -1);
  }
  EXPECT_FLOAT_EQ(cosine_bipolar(a, b), -1.0f);
}

TEST(PackedBits, RandomVectorsNearOrthogonal) {
  // Two independent random bipolar vectors have cosine ~ N(0, 1/D).
  Rng rng(11);
  std::vector<float> x(4096), y(4096);
  fill_gaussian(rng, x.data(), x.size(), 0.0f, 1.0f);
  fill_gaussian(rng, y.data(), y.size(), 0.0f, 1.0f);
  const float c = cosine_bipolar(pack_signs(x), pack_signs(y));
  EXPECT_LT(std::abs(c), 0.08f);  // ~5 sigma
}

TEST(PackedBits, EqualityAndTailMasking) {
  // pack_signs masks unused tail bits, so equality is well-defined.
  const std::vector<float> x = {1.0f, -1.0f, 1.0f};
  const PackedBits a = pack_signs(x);
  PackedBits b(3);
  b.set(0, 1);
  b.set(2, 1);
  EXPECT_EQ(a, b);
}

// Property sweep across dimensions incl. word-boundary cases.
class BitpackDimSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitpackDimSweep, HammingConsistentWithGet) {
  const std::size_t dims = GetParam();
  Rng rng(dims + 1);
  std::vector<float> x(dims), y(dims);
  fill_gaussian(rng, x.data(), dims, 0.0f, 1.0f);
  fill_gaussian(rng, y.data(), dims, 0.0f, 1.0f);
  const PackedBits a = pack_signs(x);
  const PackedBits b = pack_signs(y);
  std::size_t expect = 0;
  for (std::size_t i = 0; i < dims; ++i) {
    if (a.get(i) != b.get(i)) ++expect;
  }
  EXPECT_EQ(hamming(a, b), expect);
  EXPECT_EQ(dot_bipolar(a, b),
            static_cast<std::int64_t>(dims) - 2 * static_cast<std::int64_t>(expect));
}

INSTANTIATE_TEST_SUITE_P(Dims, BitpackDimSweep,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 129,
                                           512, 1000));

}  // namespace
}  // namespace cyberhd::core
