// Multilayer perceptron baseline — the paper's "SOTA DNN" [8].
//
// A from-scratch fully-connected network: ReLU hidden layers, softmax
// cross-entropy output, He initialization, Adam optimizer, minibatch SGD.
// Deliberately the standard recipe NIDS papers use, so Fig. 3/4/5
// comparisons are against the model family the paper cites.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/matrix.hpp"
#include "core/rng.hpp"

namespace cyberhd::baselines {

/// MLP hyper-parameters.
struct MlpConfig {
  /// Hidden layer widths, e.g. {256, 256}.
  std::vector<std::size_t> hidden = {256, 256};
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  float learning_rate = 1e-3f;
  /// Adam moment decay rates and epsilon.
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  /// L2 weight decay (0 disables).
  float weight_decay = 0.0f;
  std::uint64_t seed = 17;
};

/// Fully-connected ReLU network with a softmax cross-entropy head.
class Mlp final : public core::Classifier {
 public:
  explicit Mlp(MlpConfig config = {});

  void fit(const core::Matrix& x, std::span<const int> y,
           std::size_t num_classes) override;
  std::size_t num_classes() const noexcept override { return num_classes_; }
  int predict(std::span<const float> x) const override;
  /// Scores are the softmax class probabilities.
  void scores(std::span<const float> x, std::span<float> out) const override;
  std::string name() const override;

  /// Class probabilities for one sample (softmax output); alias of
  /// scores(), kept for the fault-injection study's call sites.
  void predict_proba(std::span<const float> x, std::span<float> out) const;

  /// Mean cross-entropy loss recorded at the end of each epoch.
  std::span<const double> loss_history() const noexcept { return losses_; }

  /// Total trainable parameter count (valid after fit()).
  std::size_t num_parameters() const noexcept;

  // -- weight access for the fault-injection study (Fig. 5) -----------------
  /// Number of layers (hidden + output).
  std::size_t num_layers() const noexcept { return layers_.size(); }
  /// Mutable weight matrix of layer `i` (out x in).
  core::Matrix& layer_weights(std::size_t i) { return layers_[i].w; }
  /// Mutable bias vector of layer `i`.
  std::vector<float>& layer_biases(std::size_t i) { return layers_[i].b; }

 private:
  struct Layer {
    core::Matrix w;        // out x in
    std::vector<float> b;  // out
    // Adam state.
    core::Matrix mw, vw;
    std::vector<float> mb, vb;
  };

  /// Forward pass; fills per-layer activations (post-ReLU, final = logits).
  void forward(std::span<const float> x,
               std::vector<std::vector<float>>& acts) const;
  void adam_step(Layer& layer, const core::Matrix& gw,
                 std::span<const float> gb, std::size_t t);

  MlpConfig config_;
  std::vector<Layer> layers_;
  std::size_t input_dim_ = 0;
  std::size_t num_classes_ = 0;
  std::vector<double> losses_;
};

/// Numerically-stable softmax of `logits` into `out` (may alias).
void softmax(std::span<const float> logits, std::span<float> out) noexcept;

}  // namespace cyberhd::baselines
