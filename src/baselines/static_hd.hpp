// Static-encoder HDC baseline — the paper's "BaselineHD".
//
// Identical machinery to CyberHD with regeneration disabled: the encoder
// sampled at construction is never revisited, so accuracy is whatever the
// initial random bases afford. The paper evaluates it at the physical
// dimensionality of CyberHD (D = 0.5k) and at CyberHD's *effective*
// dimensionality (D* = 4k).
#pragma once

#include "hdc/cyberhd.hpp"

namespace cyberhd::baselines {

/// Static-encoder HDC at dimensionality `dims`: a CyberHdClassifier with
/// regeneration off and the same total training-epoch budget, so any
/// accuracy gap against CyberHD isolates the effect of regeneration.
/// Being a CyberHdClassifier it inherits the batched inference path
/// (predict_batch/scores_batch over the SIMD kernel layer), so efficiency
/// comparisons against CyberHD measure identical machinery at different
/// dimensionalities.
inline hdc::CyberHdClassifier make_baseline_hd(std::size_t dims,
                                               std::uint64_t seed = 1) {
  return hdc::CyberHdClassifier(hdc::baseline_hd_config(dims, seed));
}

}  // namespace cyberhd::baselines
