#include "baselines/mlp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cyberhd::baselines {

void softmax(std::span<const float> logits, std::span<float> out) noexcept {
  assert(logits.size() == out.size());
  float max_logit = logits.empty() ? 0.0f : logits[0];
  for (float v : logits) max_logit = std::max(max_logit, v);
  float sum = 0.0f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max_logit);
    sum += out[i];
  }
  const float inv = 1.0f / sum;
  for (float& v : out) v *= inv;
}

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {
  if (config_.batch_size == 0) {
    throw std::invalid_argument("batch_size must be positive");
  }
}

void Mlp::fit(const core::Matrix& x, std::span<const int> y,
              std::size_t num_classes) {
  assert(x.rows() == y.size());
  if (x.rows() == 0) throw std::invalid_argument("empty training set");
  input_dim_ = x.cols();
  num_classes_ = num_classes;
  losses_.clear();

  core::Rng rng(config_.seed);

  // Build layer stack: input -> hidden... -> num_classes.
  std::vector<std::size_t> widths;
  widths.push_back(input_dim_);
  for (std::size_t h : config_.hidden) widths.push_back(h);
  widths.push_back(num_classes);
  layers_.clear();
  layers_.resize(widths.size() - 1);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Layer& layer = layers_[l];
    const std::size_t fan_in = widths[l];
    const std::size_t fan_out = widths[l + 1];
    layer.w.resize(fan_out, fan_in);
    layer.b.assign(fan_out, 0.0f);
    // He initialization for the ReLU stack.
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    core::fill_gaussian(rng, layer.w.data(), layer.w.size(), 0.0f, stddev);
    layer.mw.resize(fan_out, fan_in);
    layer.vw.resize(fan_out, fan_in);
    layer.mb.assign(fan_out, 0.0f);
    layer.vb.assign(fan_out, 0.0f);
  }

  const std::size_t n = x.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Reusable gradient buffers.
  std::vector<core::Matrix> grad_w(layers_.size());
  std::vector<std::vector<float>> grad_b(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    grad_w[l].resize(layers_[l].w.rows(), layers_[l].w.cols());
    grad_b[l].assign(layers_[l].b.size(), 0.0f);
  }

  std::vector<std::vector<float>> acts;    // forward activations
  std::vector<std::vector<float>> deltas;  // backward errors per layer
  deltas.resize(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    deltas[l].assign(layers_[l].b.size(), 0.0f);
  }
  std::vector<float> probs(num_classes);

  std::size_t adam_t = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(n, start + config_.batch_size);
      const float inv_batch = 1.0f / static_cast<float>(end - start);
      for (auto& g : grad_w) g.fill(0.0f);
      for (auto& g : grad_b) std::fill(g.begin(), g.end(), 0.0f);

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t idx = order[bi];
        forward(x.row(idx), acts);
        const auto& logits = acts.back();
        softmax(logits, probs);
        const auto truth = static_cast<std::size_t>(y[idx]);
        epoch_loss += -std::log(std::max(probs[truth], 1e-12f));

        // Output delta: softmax-CE gradient.
        auto& out_delta = deltas.back();
        for (std::size_t c = 0; c < num_classes; ++c) {
          out_delta[c] = probs[c] - (c == truth ? 1.0f : 0.0f);
        }
        // Backward through layers.
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const auto& input =
              l == 0 ? std::span<const float>(x.row(idx))
                     : std::span<const float>(acts[l - 1]);
          auto& delta = deltas[l];
          // Accumulate gradients.
          for (std::size_t o = 0; o < layers_[l].w.rows(); ++o) {
            const float d = delta[o];
            if (d == 0.0f) continue;
            core::axpy(d, input, grad_w[l].row(o));
            grad_b[l][o] += d;
          }
          if (l == 0) break;
          // Propagate to previous layer through W^T, gated by ReLU.
          auto& prev_delta = deltas[l - 1];
          core::gemv_transposed(layers_[l].w, delta, prev_delta);
          const auto& prev_act = acts[l - 1];
          for (std::size_t i = 0; i < prev_delta.size(); ++i) {
            if (prev_act[i] <= 0.0f) prev_delta[i] = 0.0f;
          }
        }
      }

      // Mean gradients + Adam update.
      ++adam_t;
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        core::scale({grad_w[l].data(), grad_w[l].size()}, inv_batch);
        core::scale(grad_b[l], inv_batch);
        if (config_.weight_decay > 0.0f) {
          core::axpy(config_.weight_decay,
                     {layers_[l].w.data(), layers_[l].w.size()},
                     {grad_w[l].data(), grad_w[l].size()});
        }
        adam_step(layers_[l], grad_w[l], grad_b[l], adam_t);
      }
    }
    losses_.push_back(epoch_loss / static_cast<double>(n));
  }
}

void Mlp::forward(std::span<const float> x,
                  std::vector<std::vector<float>>& acts) const {
  acts.resize(layers_.size());
  std::span<const float> input = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    auto& out = acts[l];
    out.assign(layers_[l].b.size(), 0.0f);
    core::gemv(layers_[l].w, input, out);
    for (std::size_t o = 0; o < out.size(); ++o) out[o] += layers_[l].b[o];
    if (l + 1 < layers_.size()) {
      for (float& v : out) v = std::max(v, 0.0f);  // ReLU
    }
    input = out;
  }
}

void Mlp::adam_step(Layer& layer, const core::Matrix& gw,
                    std::span<const float> gb, std::size_t t) {
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float correction1 =
      1.0f - std::pow(b1, static_cast<float>(t));
  const float correction2 =
      1.0f - std::pow(b2, static_cast<float>(t));
  const float lr = config_.learning_rate;

  float* w = layer.w.data();
  float* mw = layer.mw.data();
  float* vw = layer.vw.data();
  const float* g = gw.data();
  for (std::size_t i = 0; i < layer.w.size(); ++i) {
    mw[i] = b1 * mw[i] + (1.0f - b1) * g[i];
    vw[i] = b2 * vw[i] + (1.0f - b2) * g[i] * g[i];
    const float mhat = mw[i] / correction1;
    const float vhat = vw[i] / correction2;
    w[i] -= lr * mhat / (std::sqrt(vhat) + config_.epsilon);
  }
  for (std::size_t i = 0; i < layer.b.size(); ++i) {
    layer.mb[i] = b1 * layer.mb[i] + (1.0f - b1) * gb[i];
    layer.vb[i] = b2 * layer.vb[i] + (1.0f - b2) * gb[i] * gb[i];
    const float mhat = layer.mb[i] / correction1;
    const float vhat = layer.vb[i] / correction2;
    layer.b[i] -= lr * mhat / (std::sqrt(vhat) + config_.epsilon);
  }
}

int Mlp::predict(std::span<const float> x) const {
  assert(!layers_.empty() && "predict() before fit()");
  std::vector<std::vector<float>> acts;
  forward(x, acts);
  const auto& logits = acts.back();
  return static_cast<int>(core::argmax(logits));
}

void Mlp::scores(std::span<const float> x, std::span<float> out) const {
  assert(out.size() == num_classes_);
  std::vector<std::vector<float>> acts;
  forward(x, acts);
  softmax(acts.back(), out);
}

void Mlp::predict_proba(std::span<const float> x,
                        std::span<float> out) const {
  scores(x, out);
}

std::string Mlp::name() const {
  std::string arch;
  for (std::size_t h : config_.hidden) {
    arch += std::to_string(h) + "-";
  }
  if (!arch.empty()) arch.pop_back();
  return "MLP(" + arch + ")";
}

std::size_t Mlp::num_parameters() const noexcept {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    n += layer.w.size() + layer.b.size();
  }
  return n;
}

}  // namespace cyberhd::baselines
