// Support-vector-machine baselines — the paper's "SOTA SVM" [9].
//
// Two variants:
//  * LinearSvm  — one-vs-rest L2-regularized hinge loss trained with the
//    Pegasos stochastic subgradient method. Fast; the accuracy-fair
//    comparator on (mostly) linearly separable corpora.
//  * KernelSvm  — one-vs-rest RBF-kernel Pegasos with a support-vector
//    budget. Faithfully reproduces *why* the paper finds SVMs
//    "extraordinarily slow" on flow corpora: every prediction and every
//    training step costs O(#SV) kernel evaluations, and #SV grows with the
//    training set.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/matrix.hpp"
#include "core/rng.hpp"

namespace cyberhd::baselines {

/// Linear SVM hyper-parameters.
struct LinearSvmConfig {
  /// Pegasos regularization lambda (larger = stronger regularization).
  float lambda = 1e-4f;
  /// Passes over the training data.
  std::size_t epochs = 20;
  std::uint64_t seed = 23;
};

/// One-vs-rest linear SVM (Pegasos).
class LinearSvm final : public core::Classifier {
 public:
  explicit LinearSvm(LinearSvmConfig config = {});

  void fit(const core::Matrix& x, std::span<const int> y,
           std::size_t num_classes) override;
  std::size_t num_classes() const noexcept override {
    return weights_.rows();
  }
  int predict(std::span<const float> x) const override;
  /// Scores are the one-vs-rest margins (decision_function).
  void scores(std::span<const float> x, std::span<float> out) const override {
    decision_function(x, out);
  }
  std::string name() const override;

  /// Raw one-vs-rest margins of one sample; `out` has num_classes entries.
  void decision_function(std::span<const float> x,
                         std::span<float> out) const;

  /// Per-class weight vector (valid after fit()).
  std::span<const float> weights(std::size_t cls) const {
    return weights_.row(cls);
  }
  float bias(std::size_t cls) const { return biases_[cls]; }

 private:
  LinearSvmConfig config_;
  core::Matrix weights_;        // num_classes x dims
  std::vector<float> biases_;   // num_classes
};

/// Kernel SVM hyper-parameters.
struct KernelSvmConfig {
  /// RBF kernel width: k(x,z) = exp(-gamma |x-z|^2). A value <= 0 selects
  /// the median heuristic at fit() time (gamma = 1 / (2 median^2)).
  float gamma = 0.0f;
  /// Pegasos regularization lambda.
  float lambda = 1e-4f;
  /// Passes over the training data.
  std::size_t epochs = 3;
  /// Maximum retained support vectors per class (0 = unbounded). When the
  /// budget is exceeded the SV with the smallest |coefficient| is evicted.
  std::size_t sv_budget = 2048;
  std::uint64_t seed = 29;
};

/// One-vs-rest RBF-kernel SVM (budget Pegasos).
class KernelSvm final : public core::Classifier {
 public:
  explicit KernelSvm(KernelSvmConfig config = {});

  void fit(const core::Matrix& x, std::span<const int> y,
           std::size_t num_classes) override;
  std::size_t num_classes() const noexcept override {
    return models_.size();
  }
  int predict(std::span<const float> x) const override;
  /// Scores are the one-vs-rest kernel margins.
  void scores(std::span<const float> x, std::span<float> out) const override;
  std::string name() const override;

  /// Support vectors currently held for a class.
  std::size_t num_support_vectors(std::size_t cls) const;
  /// Total support vectors across classes (the slowness driver).
  std::size_t total_support_vectors() const;

 private:
  struct ClassModel {
    /// Retained support vectors (each dims_ long) and their signed
    /// Pegasos coefficients.
    std::vector<std::vector<float>> vectors;
    std::vector<float> alpha;
    std::size_t steps = 0;  // Pegasos step counter (learning-rate schedule)
  };

  float kernel(std::span<const float> a, std::span<const float> b) const;
  float margin(const ClassModel& m, std::span<const float> x) const;

  KernelSvmConfig config_;
  std::vector<ClassModel> models_;
  std::size_t dims_ = 0;
};

}  // namespace cyberhd::baselines
