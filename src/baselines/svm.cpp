#include "baselines/svm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hdc/encoder.hpp"

namespace cyberhd::baselines {

// ---- LinearSvm ---------------------------------------------------------------

LinearSvm::LinearSvm(LinearSvmConfig config) : config_(config) {
  if (config_.lambda <= 0.0f) {
    throw std::invalid_argument("lambda must be positive");
  }
}

void LinearSvm::fit(const core::Matrix& x, std::span<const int> y,
                    std::size_t num_classes) {
  assert(x.rows() == y.size());
  if (x.rows() == 0) throw std::invalid_argument("empty training set");
  weights_.resize(num_classes, x.cols());
  biases_.assign(num_classes, 0.0f);

  core::Rng rng(config_.seed);
  const std::size_t n = x.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Pegasos with one shared step counter per class; the 1/(lambda t)
  // learning rate gives the method its convergence guarantee.
  std::vector<std::size_t> steps(num_classes, 0);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const auto xi = x.row(idx);
      for (std::size_t c = 0; c < num_classes; ++c) {
        const float target =
            y[idx] == static_cast<int>(c) ? 1.0f : -1.0f;
        const std::size_t t = ++steps[c];
        const float eta =
            1.0f / (config_.lambda * static_cast<float>(t));
        auto w = weights_.row(c);
        const float margin = core::dot(w, xi) + biases_[c];
        // Shrink (the subgradient of the L2 term), then, on hinge
        // violation, step toward the sample. The bias is treated as an
        // augmented always-1 feature so it shares the regularization —
        // without shrinkage its huge early 1/(lambda t) steps never decay.
        const float shrink = 1.0f - eta * config_.lambda;
        core::scale(w, shrink);
        biases_[c] *= shrink;
        if (target * margin < 1.0f) {
          core::axpy(eta * target, xi, w);
          biases_[c] += eta * target;
        }
      }
    }
  }
}

void LinearSvm::decision_function(std::span<const float> x,
                                  std::span<float> out) const {
  assert(out.size() == weights_.rows());
  for (std::size_t c = 0; c < weights_.rows(); ++c) {
    out[c] = core::dot(weights_.row(c), x) + biases_[c];
  }
}

int LinearSvm::predict(std::span<const float> x) const {
  assert(weights_.rows() > 0 && "predict() before fit()");
  std::vector<float> margins(weights_.rows());
  decision_function(x, margins);
  return static_cast<int>(core::argmax(margins));
}

std::string LinearSvm::name() const { return "LinearSVM"; }

// ---- KernelSvm ---------------------------------------------------------------

KernelSvm::KernelSvm(KernelSvmConfig config) : config_(config) {
  if (config_.lambda <= 0.0f) {
    throw std::invalid_argument("lambda must be positive");
  }
}

float KernelSvm::kernel(std::span<const float> a,
                        std::span<const float> b) const {
  assert(a.size() == b.size());
  float dist_sq = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    dist_sq += d * d;
  }
  return std::exp(-config_.gamma * dist_sq);
}

float KernelSvm::margin(const ClassModel& m, std::span<const float> x) const {
  if (m.steps == 0 || m.vectors.empty()) return 0.0f;
  float sum = 0.0f;
  for (std::size_t j = 0; j < m.vectors.size(); ++j) {
    sum += m.alpha[j] * kernel(m.vectors[j], x);
  }
  return sum / (config_.lambda * static_cast<float>(m.steps));
}

void KernelSvm::fit(const core::Matrix& x, std::span<const int> y,
                    std::size_t num_classes) {
  assert(x.rows() == y.size());
  if (x.rows() == 0) throw std::invalid_argument("empty training set");
  dims_ = x.cols();
  models_.assign(num_classes, {});

  core::Rng rng(config_.seed);
  if (config_.gamma <= 0.0f) {
    core::Rng median_rng = rng.fork(11);
    const float ls = hdc::median_heuristic_lengthscale(x, median_rng);
    config_.gamma = 1.0f / (2.0f * ls * ls);
  }
  const std::size_t n = x.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const auto xi = x.row(idx);
      for (std::size_t c = 0; c < num_classes; ++c) {
        ClassModel& m = models_[c];
        ++m.steps;
        const float target =
            y[idx] == static_cast<int>(c) ? 1.0f : -1.0f;
        if (target * margin(m, xi) < 1.0f) {
          m.vectors.emplace_back(xi.begin(), xi.end());
          m.alpha.push_back(target);
          if (config_.sv_budget > 0 &&
              m.vectors.size() > config_.sv_budget) {
            // Evict the least influential support vector.
            std::size_t victim = 0;
            for (std::size_t j = 1; j < m.alpha.size(); ++j) {
              if (std::abs(m.alpha[j]) < std::abs(m.alpha[victim])) {
                victim = j;
              }
            }
            m.vectors.erase(m.vectors.begin() +
                            static_cast<std::ptrdiff_t>(victim));
            m.alpha.erase(m.alpha.begin() +
                          static_cast<std::ptrdiff_t>(victim));
          }
        }
      }
    }
  }
}

void KernelSvm::scores(std::span<const float> x,
                       std::span<float> out) const {
  assert(out.size() == models_.size());
  for (std::size_t c = 0; c < models_.size(); ++c) {
    out[c] = margin(models_[c], x);
  }
}

int KernelSvm::predict(std::span<const float> x) const {
  assert(!models_.empty() && "predict() before fit()");
  std::vector<float> margins(models_.size());
  scores(x, margins);
  return static_cast<int>(core::argmax(margins));
}

std::string KernelSvm::name() const { return "KernelSVM(rbf)"; }

std::size_t KernelSvm::num_support_vectors(std::size_t cls) const {
  assert(cls < models_.size());
  return models_[cls].vectors.size();
}

std::size_t KernelSvm::total_support_vectors() const {
  std::size_t total = 0;
  for (const auto& m : models_) total += m.vectors.size();
  return total;
}

}  // namespace cyberhd::baselines
