#include "fault/bitflip.hpp"

#include <bit>
#include <cassert>

#include "core/quantize.hpp"

namespace cyberhd::fault {

namespace {

/// Flip each of the low `bits` bits of `pattern` independently with
/// probability `rate`; updates the report.
std::uint32_t flip_pattern(std::uint32_t pattern, int bits, double rate,
                           core::Rng& rng, FlipReport& report) {
  for (int b = 0; b < bits; ++b) {
    ++report.bits_considered;
    if (rng.bernoulli(rate)) {
      pattern ^= 1u << b;
      ++report.bits_flipped;
    }
  }
  return pattern;
}

/// Quantize -> flip -> dequantize one float tensor at b-bit fixed point.
void inject_fixed_point(std::span<float> values, int bits, double rate,
                        core::Rng& rng, FlipReport& report) {
  core::QuantizedVector q = core::quantize(values, bits);
  for (auto& level : q.levels) {
    const std::uint32_t pattern = core::level_to_bits(level, bits);
    const std::uint32_t flipped =
        flip_pattern(pattern, bits, rate, rng, report);
    if (flipped != pattern) {
      level = core::bits_to_level(flipped, bits);
    }
  }
  core::dequantize(q, values);
}

}  // namespace

FlipReport inject_hdc(hdc::QuantizedHdcModel& model, double rate,
                      core::Rng& rng) {
  assert(rate >= 0.0 && rate <= 1.0);
  FlipReport report;
  if (rate == 0.0) {
    report.bits_considered = model.storage_bits();
    return report;
  }
  if (model.bits() == 1) {
    for (auto& packed : model.packed_classes()) {
      for (std::size_t i = 0; i < packed.dims(); ++i) {
        ++report.bits_considered;
        if (rng.bernoulli(rate)) {
          packed.flip(i);
          ++report.bits_flipped;
        }
      }
    }
    // The packed store was edited in place; rebuild the contiguous
    // class-word block the hamming tile streams so inference sees the
    // upsets.
    model.resync();
    return report;
  }
  const int bits = model.bits();
  for (auto& qv : model.level_classes()) {
    for (auto& level : qv.levels) {
      const std::uint32_t pattern = core::level_to_bits(level, bits);
      const std::uint32_t flipped =
          flip_pattern(pattern, bits, rate, rng, report);
      if (flipped != pattern) {
        level = core::bits_to_level(flipped, bits);
      }
    }
  }
  // The raw level store was edited in place; rebuild the model's scoring
  // caches (int8 mirrors + class norms) so inference sees the upsets.
  model.resync();
  return report;
}

FlipReport inject_mlp_quantized(baselines::Mlp& model, int bits, double rate,
                                core::Rng& rng) {
  assert(rate >= 0.0 && rate <= 1.0);
  FlipReport report;
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    auto& w = model.layer_weights(l);
    inject_fixed_point({w.data(), w.size()}, bits, rate, rng, report);
    inject_fixed_point(model.layer_biases(l), bits, rate, rng, report);
  }
  return report;
}

FlipReport inject_floats(std::span<float> values, double rate,
                         core::Rng& rng) {
  assert(rate >= 0.0 && rate <= 1.0);
  FlipReport report;
  for (float& v : values) {
    auto bits = std::bit_cast<std::uint32_t>(v);
    bool changed = false;
    for (int b = 0; b < 32; ++b) {
      ++report.bits_considered;
      if (rate > 0.0 && rng.bernoulli(rate)) {
        bits ^= 1u << b;
        changed = true;
        ++report.bits_flipped;
      }
    }
    if (changed) v = std::bit_cast<float>(bits);
  }
  return report;
}

FlipReport inject_mlp(baselines::Mlp& model, double rate, core::Rng& rng) {
  FlipReport report;
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    auto& w = model.layer_weights(l);
    const FlipReport rw = inject_floats({w.data(), w.size()}, rate, rng);
    auto& b = model.layer_biases(l);
    const FlipReport rb = inject_floats(b, rate, rng);
    report.bits_considered += rw.bits_considered + rb.bits_considered;
    report.bits_flipped += rw.bits_flipped + rb.bits_flipped;
  }
  return report;
}

}  // namespace cyberhd::fault
