// Hardware-fault injection for the robustness study (paper Fig. 5).
//
// The paper's x-axis is a *hardware error rate*: the fraction of memory
// bits holding model parameters that flip (SRAM soft errors, voltage
// scaling). Accordingly every injector here flips each stored bit
// independently with probability `rate`:
//
//  * Quantized HDC models store b bits per hypervector element. At 1 bit a
//    flip changes an element by at most its own magnitude and the
//    holographic distribution absorbs it. As b grows, the most significant
//    bit's weight (2^(b-1) LSB steps) grows, so an identical bit-flip rate
//    does progressively more damage — the paper's "an increase in
//    precision lowers the robustness".
//  * The DNN comparator is injected at its *deployed* representation:
//    inject_mlp_quantized() quantizes each layer to b-bit fixed point,
//    flips bits, and dequantizes — the standard edge-inference setup. A
//    raw fp32 injector (inject_mlp / inject_floats) is also provided; an
//    exponent-bit flip there rescales a weight by orders of magnitude, so
//    fp32 networks collapse almost immediately.
//
// All injection is deterministic in the provided RNG.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "baselines/mlp.hpp"
#include "core/rng.hpp"
#include "hdc/quantized.hpp"

namespace cyberhd::fault {

/// Bit-level accounting of one injection run.
struct FlipReport {
  std::size_t bits_considered = 0;
  std::size_t bits_flipped = 0;
  /// Fraction of bits flipped; converges to the requested rate.
  double observed_rate() const noexcept {
    return bits_considered == 0
               ? 0.0
               : static_cast<double>(bits_flipped) /
                     static_cast<double>(bits_considered);
  }
};

/// Flip each stored bit of a quantized HDC model independently with
/// probability `rate`. For 1-bit models that is each packed sign bit; for
/// b-bit models, each bit of every two's-complement level code (decoded
/// levels are re-clamped into the symmetric range).
FlipReport inject_hdc(hdc::QuantizedHdcModel& model, double rate,
                      core::Rng& rng);

/// Deployed-DNN injection: quantize every layer's weights and biases to
/// `bits`-bit fixed point (per-tensor scale), flip each stored bit with
/// probability `rate`, and write the dequantized parameters back.
FlipReport inject_mlp_quantized(baselines::Mlp& model, int bits, double rate,
                                core::Rng& rng);

/// Flip each bit of every fp32 weight and bias of an MLP with probability
/// `rate`. NaNs/Infs produced by exponent flips are kept: that *is* the
/// fp32 failure mode.
FlipReport inject_mlp(baselines::Mlp& model, double rate, core::Rng& rng);

/// Flip bits of a raw float span (IEEE-754). Building block of inject_mlp.
FlipReport inject_floats(std::span<float> values, double rate,
                         core::Rng& rng);

}  // namespace cyberhd::fault
