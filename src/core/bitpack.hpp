// Packed 1-bit hypervectors and popcount similarity.
//
// At 1-bit precision a bipolar hypervector {-1,+1}^D packs into D/64 words;
// the dot product of two bipolar vectors becomes
//   dot = D - 2 * popcount(a XOR b)
// which is the kernel behind the paper's "15.29x faster inference" and its
// FPGA efficiency at low bitwidths. The XOR/popcount scan dispatches through
// core/kernels/ (hardware POPCNT in the scalar backend, a vpshufb nibble-LUT
// reduction in the AVX2 backend).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace cyberhd::core {

/// A {-1,+1}^D hypervector packed one bit per element (bit set = +1).
///
/// Invariant (tail masking): when D is not a multiple of 64, the padding
/// bits of the last word are always zero. popcount(), hamming(), and
/// dot_bipolar() scan whole words and rely on this — a stray padding bit
/// would silently corrupt every similarity score. All mutators restore the
/// invariant; code writing through words() must do the same (clear bits
/// at positions >= dims() in the final word).
class PackedBits {
 public:
  PackedBits() = default;
  /// All-(-1) vector of `dims` elements.
  explicit PackedBits(std::size_t dims);

  /// Logical dimensionality D.
  std::size_t dims() const noexcept { return dims_; }
  /// Storage size: ceil(D / 64) 64-bit words.
  std::size_t num_words() const noexcept { return words_.size(); }
  /// Raw word storage (e.g. for fault injection). Writers must preserve
  /// the tail-masking invariant documented on the class.
  std::uint64_t* words() noexcept { return words_.data(); }
  const std::uint64_t* words() const noexcept { return words_.data(); }

  /// Element i as +1 / -1. Precondition: i < dims().
  int get(std::size_t i) const noexcept;
  /// Set element i from a sign (+1 when v >= 0). Precondition: i < dims().
  void set(std::size_t i, int v) noexcept;
  /// Flip a single element. Precondition: i < dims().
  void flip(std::size_t i) noexcept;

  /// Number of +1 elements. Exact because padding bits are always zero.
  std::size_t popcount() const noexcept;

  bool operator==(const PackedBits&) const = default;

 private:
  std::size_t dims_ = 0;
  std::vector<std::uint64_t> words_;
  void mask_tail() noexcept;
  friend PackedBits pack_signs(std::span<const float> x);
  friend std::size_t hamming(const PackedBits& a, const PackedBits& b) noexcept;
};

/// Pack sign(x) (zeros count as +1) into a PackedBits of x.size() dims.
PackedBits pack_signs(std::span<const float> x);

/// Unpack to bipolar floats (+1.0f / -1.0f).
/// Precondition: out.size() == p.dims().
void unpack_to_floats(const PackedBits& p, std::span<float> out);

/// Hamming distance (number of differing elements).
/// Precondition: a.dims() == b.dims().
std::size_t hamming(const PackedBits& a, const PackedBits& b) noexcept;

/// Bipolar dot product via XOR/popcount: D - 2 * hamming.
/// Precondition: a.dims() == b.dims().
std::int64_t dot_bipolar(const PackedBits& a, const PackedBits& b) noexcept;

/// Cosine similarity of the underlying bipolar vectors: dot / D, in [-1, 1].
/// Returns 0 when dims() == 0. Precondition: a.dims() == b.dims().
float cosine_bipolar(const PackedBits& a, const PackedBits& b) noexcept;

}  // namespace cyberhd::core
