#include "core/quantize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cyberhd::core {

bool is_supported_bitwidth(int bits) noexcept {
  for (int b : kSupportedBitwidths) {
    if (b == bits) return true;
  }
  return false;
}

std::int32_t max_level(int bits) noexcept {
  assert(is_supported_bitwidth(bits));
  if (bits == 1) return 1;
  if (bits >= 32) return (1 << 30);  // effectively unquantized
  return (1 << (bits - 1)) - 1;
}

QuantizedVector quantize(std::span<const float> x, int bits) {
  assert(is_supported_bitwidth(bits));
  QuantizedVector q;
  q.bits = bits;
  q.levels.resize(x.size());

  if (bits == 1) {
    // Bipolar: sign(x), scale = mean absolute value so dequantization
    // preserves magnitude on average.
    double sum_abs = 0.0;
    for (float v : x) sum_abs += std::abs(v);
    q.scale = x.empty() ? 1.0f
                        : static_cast<float>(sum_abs /
                                             static_cast<double>(x.size()));
    if (q.scale == 0.0f) q.scale = 1.0f;
    for (std::size_t i = 0; i < x.size(); ++i) {
      q.levels[i] = x[i] < 0.0f ? -1 : 1;
    }
    return q;
  }

  // Resolution-biased fixed point: the LSB step starts at the 1-bit scale
  // (mean |x|) and shrinks by 2^-0.75 per extra bit, so added precision is
  // split ~3:1 between finer resolution and extra dynamic range — the way
  // fixed-point datapaths typically allocate headroom bits. Consequences
  // the experiments rely on: (a) narrow widths clamp the distribution's
  // tails, so iso-accuracy dimensionality grows as bitwidth shrinks
  // (Table I), and (b) the most-significant bit's weight grows with
  // bitwidth, so higher-precision models are *less* robust to bit upsets
  // (Fig. 5).
  double sum_abs = 0.0;
  for (float v : x) sum_abs += std::abs(v);
  const float mean_abs =
      x.empty() ? 0.0f
                : static_cast<float>(sum_abs / static_cast<double>(x.size()));
  const std::int32_t lmax = max_level(bits);
  if (mean_abs == 0.0f) {
    q.scale = 1.0f;
    return q;  // all-zero levels
  }
  q.scale = mean_abs *
            std::pow(2.0f, -0.75f * static_cast<float>(bits - 1));
  const float inv_scale = 1.0f / q.scale;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float scaled = x[i] * inv_scale;
    std::int32_t l = static_cast<std::int32_t>(std::lround(scaled));
    l = std::clamp(l, -lmax, lmax);
    q.levels[i] = l;
  }
  return q;
}

void dequantize(const QuantizedVector& q, std::span<float> out) {
  assert(out.size() == q.levels.size());
  for (std::size_t i = 0; i < q.levels.size(); ++i) {
    out[i] = static_cast<float>(q.levels[i]) * q.scale;
  }
}

std::int64_t dot_levels(const QuantizedVector& a,
                        const QuantizedVector& b) noexcept {
  assert(a.size() == b.size());
  std::int64_t s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += static_cast<std::int64_t>(a.levels[i]) * b.levels[i];
  }
  return s;
}

float cosine_quantized(const QuantizedVector& a,
                       const QuantizedVector& b) noexcept {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double av = a.levels[i];
    const double bv = b.levels[i];
    dot += av * bv;
    na += av * av;
    nb += bv * bv;
  }
  if (na == 0.0 || nb == 0.0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

std::uint32_t level_to_bits(std::int32_t level, int bits) noexcept {
  assert(is_supported_bitwidth(bits));
  if (bits >= 32) return static_cast<std::uint32_t>(level);
  if (bits == 1) return level < 0 ? 0u : 1u;  // 0 encodes -1, 1 encodes +1
  const std::uint32_t mask = (1u << bits) - 1u;
  return static_cast<std::uint32_t>(level) & mask;
}

std::int32_t bits_to_level(std::uint32_t pattern, int bits) noexcept {
  assert(is_supported_bitwidth(bits));
  if (bits >= 32) return static_cast<std::int32_t>(pattern);
  if (bits == 1) return pattern & 1u ? 1 : -1;
  const std::uint32_t mask = (1u << bits) - 1u;
  std::uint32_t p = pattern & mask;
  // Sign-extend from `bits`.
  const std::uint32_t sign_bit = 1u << (bits - 1);
  std::int32_t level;
  if (p & sign_bit) {
    level = static_cast<std::int32_t>(p | ~mask);
  } else {
    level = static_cast<std::int32_t>(p);
  }
  const std::int32_t lmax = max_level(bits);
  return std::clamp(level, -lmax, lmax);
}

}  // namespace cyberhd::core
