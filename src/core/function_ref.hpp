// FunctionRef — a non-owning, non-allocating callable reference.
//
// std::function construction type-erases by COPY, and a capturing lambda
// big enough to miss the small-object buffer heap-allocates at every call
// site — exactly the per-flush malloc the allocation-free serving path
// forbids. FunctionRef erases by REFERENCE instead: two words (object
// pointer + invoke thunk), no ownership, no allocation, trivially
// copyable. The referenced callable must outlive every call through the
// FunctionRef — which a temporary lambda does for the duration of the
// full-expression it is passed in, the only way the serving drivers use
// it (EncodeCache::encode_entries invokes its miss callback before
// returning).
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace cyberhd::core {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Bind to any callable invocable as R(Args...). Intentionally
  /// non-explicit so call sites keep passing lambdas directly.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*invoke_)(void*, Args...);
};

}  // namespace cyberhd::core
