// Deterministic pseudo-random number generation for CyberHD.
//
// Everything stochastic in the library (encoder bases, dataset synthesis,
// fault injection, train/test splits) draws from these generators so that a
// single 64-bit seed reproduces an entire experiment bit-for-bit.
//
// The core generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend. Both are tiny, allocation-free, and
// much faster than std::mt19937_64 while passing BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace cyberhd::core {

/// SplitMix64: a 64-bit mixer used for seeding and for cheap stateless
/// hashing of (seed, index) pairs. Passes through every 64-bit value exactly
/// once over its period of 2^64.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library-wide PRNG. Satisfies the essentials of
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed. Two generators with different seeds
  /// produce statistically independent streams (seeded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Raw 64 random bits.
  result_type operator()() noexcept { return next_u64(); }
  result_type next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;
  /// Uniform float in [0, 1).
  float next_float() noexcept;
  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Standard normal via Box-Muller (cached second value).
  double gaussian() noexcept;
  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;
  /// Exponential with the given rate lambda (> 0).
  double exponential(double lambda) noexcept;
  /// Sample an index in [0, weights.size()) proportional to weights.
  /// Weights must be non-negative and not all zero.
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Derive an independent child generator; stream `k` from the same parent
  /// seed is reproducible regardless of draw order elsewhere.
  Rng fork(std::uint64_t stream) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Fill `out` with i.i.d. N(mean, stddev) floats.
void fill_gaussian(Rng& rng, float* out, std::size_t n, float mean,
                   float stddev);

/// Fill `out` with i.i.d. U[lo, hi) floats.
void fill_uniform(Rng& rng, float* out, std::size_t n, float lo, float hi);

}  // namespace cyberhd::core
