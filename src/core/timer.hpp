// Monotonic wall-clock timing for the efficiency benchmarks (Fig. 4).
#pragma once

#include <chrono>

namespace cyberhd::core {

/// Stopwatch over std::chrono::steady_clock.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

  /// Microseconds elapsed.
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cyberhd::core
