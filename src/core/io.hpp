// Minimal binary (de)serialization helpers for model persistence.
//
// Fixed little-endian-style encoding via raw memcpy of fixed-width types;
// all numeric fields go through the u64/f32 helpers so the format is
// identical across builds. Readers throw std::runtime_error on truncated
// or malformed input.
//
// Checksummed sections (write_section / read_section) wrap a serialized
// payload as tag | size | bytes | CRC32C, so loaders detect payload
// corruption — not just structural drift — before parsing a single field.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cyberhd::core::io {

inline void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated stream (u64)");
  return v;
}

inline void write_f32(std::ostream& out, float v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline float read_f32(std::istream& in) {
  float v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated stream (f32)");
  return v;
}

inline void write_f32_array(std::ostream& out, std::span<const float> v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

inline std::vector<float> read_f32_array(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  if (n > (1ULL << 32)) throw std::runtime_error("implausible array size");
  std::vector<float> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw std::runtime_error("truncated stream (f32 array)");
  return v;
}

/// Write a 4-byte tag and verify it on read (format sanity checks).
inline void write_tag(std::ostream& out, const char (&tag)[5]) {
  out.write(tag, 4);
}

inline void expect_tag(std::istream& in, const char (&tag)[5]) {
  char buf[4];
  in.read(buf, 4);
  if (!in || std::memcmp(buf, tag, 4) != 0) {
    throw std::runtime_error(std::string("bad tag, expected ") + tag);
  }
}

// ---- CRC32C + checksummed sections -----------------------------------------

/// CRC32C (Castagnoli polynomial, reflected) over `n` bytes. Table-driven
/// software implementation — portable, no SSE4.2 dependency; persistence
/// is far from any hot path.
inline std::uint32_t crc32c(const void* data, std::size_t n,
                            std::uint32_t seed = 0) noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

/// Write one checksummed section: 4-byte tag, u64 payload size, payload
/// bytes, u64 checksum word (CRC32C in the low 32 bits).
inline void write_section(std::ostream& out, const char (&tag)[5],
                          std::string_view payload) {
  write_tag(out, tag);
  write_u64(out, payload.size());
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  write_u64(out, crc32c(payload.data(), payload.size()));
}

/// Read one checksummed section written by write_section: verifies the
/// tag, bounds the size, and recomputes the CRC before returning the
/// payload bytes. Throws std::runtime_error naming the section on any
/// mismatch — a corrupt payload never reaches a field parser.
inline std::string read_section(std::istream& in, const char (&tag)[5]) {
  expect_tag(in, tag);
  const std::uint64_t size = read_u64(in);
  // The size word sits outside the CRC, so a flipped bit in it must fail
  // cleanly too: before allocating, bound the size by what the stream can
  // actually supply (seekable streams — files and stringstreams, i.e.
  // every loader path) so a corrupt size never triggers a multi-GiB
  // allocation. Non-seekable streams fall back to the plausibility cap.
  const std::istream::pos_type here = in.tellg();
  if (here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type stream_end = in.tellg();
    in.seekg(here);
    if (!in || stream_end < here ||
        size > static_cast<std::uint64_t>(stream_end - here)) {
      throw std::runtime_error(std::string("truncated section ") + tag);
    }
  }
  if (size > (1ULL << 33)) {
    throw std::runtime_error(std::string("implausible size for section ") +
                             tag);
  }
  std::string payload(static_cast<std::size_t>(size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(size));
  if (!in) {
    throw std::runtime_error(std::string("truncated section ") + tag);
  }
  const std::uint64_t stored = read_u64(in);
  const std::uint32_t computed = crc32c(payload.data(), payload.size());
  if (stored != computed) {
    throw std::runtime_error(
        std::string("checksum mismatch in section ") + tag + " (stored " +
        std::to_string(stored) + ", computed " + std::to_string(computed) +
        ")");
  }
  return payload;
}

}  // namespace cyberhd::core::io
