// Minimal binary (de)serialization helpers for model persistence.
//
// Fixed little-endian-style encoding via raw memcpy of fixed-width types;
// all numeric fields go through the u64/f32 helpers so the format is
// identical across builds. Readers throw std::runtime_error on truncated
// or malformed input.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cyberhd::core::io {

inline void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated stream (u64)");
  return v;
}

inline void write_f32(std::ostream& out, float v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline float read_f32(std::istream& in) {
  float v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated stream (f32)");
  return v;
}

inline void write_f32_array(std::ostream& out, std::span<const float> v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

inline std::vector<float> read_f32_array(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  if (n > (1ULL << 32)) throw std::runtime_error("implausible array size");
  std::vector<float> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw std::runtime_error("truncated stream (f32 array)");
  return v;
}

/// Write a 4-byte tag and verify it on read (format sanity checks).
inline void write_tag(std::ostream& out, const char (&tag)[5]) {
  out.write(tag, 4);
}

inline void expect_tag(std::istream& in, const char (&tag)[5]) {
  char buf[4];
  in.read(buf, 4);
  if (!in || std::memcmp(buf, tag, 4) != 0) {
    throw std::runtime_error(std::string("bad tag, expected ") + tag);
  }
}

}  // namespace cyberhd::core::io
