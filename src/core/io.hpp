// Minimal binary (de)serialization helpers for model persistence.
//
// Fixed little-endian-style encoding via raw memcpy of fixed-width types;
// all numeric fields go through the u64/f32 helpers so the format is
// identical across builds. Readers throw std::runtime_error on truncated
// or malformed input.
//
// Checksummed sections (write_section / read_section) wrap a serialized
// payload as tag | size | bytes | CRC32C, so loaders detect payload
// corruption — not just structural drift — before parsing a single field.
//
// For payloads too large to buffer (a D x classes model beyond RAM), the
// chunked section streambufs frame the same logical bytes as a sequence of
// fixed-size chunks, each carrying its own CRC32C, terminated by a zero
// length word — writer and reader both hold one chunk of memory, and a
// flipped byte still fails with an error naming the section.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <streambuf>
#include <string>
#include <string_view>
#include <vector>

namespace cyberhd::core::io {

inline void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated stream (u64)");
  return v;
}

inline void write_f32(std::ostream& out, float v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline float read_f32(std::istream& in) {
  float v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated stream (f32)");
  return v;
}

inline void write_f32_array(std::ostream& out, std::span<const float> v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

inline std::vector<float> read_f32_array(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  if (n > (1ULL << 32)) throw std::runtime_error("implausible array size");
  std::vector<float> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw std::runtime_error("truncated stream (f32 array)");
  return v;
}

/// Write a 4-byte tag and verify it on read (format sanity checks).
inline void write_tag(std::ostream& out, const char (&tag)[5]) {
  out.write(tag, 4);
}

inline void expect_tag(std::istream& in, const char (&tag)[5]) {
  char buf[4];
  in.read(buf, 4);
  if (!in || std::memcmp(buf, tag, 4) != 0) {
    throw std::runtime_error(std::string("bad tag, expected ") + tag);
  }
}

/// Read and return the next 4-byte tag (loaders that accept more than one
/// section layout branch on it, then parse the matching body — no seeking,
/// so non-seekable streams keep working).
inline std::string read_tag(std::istream& in) {
  char buf[4];
  in.read(buf, 4);
  if (!in) throw std::runtime_error("truncated stream (tag)");
  return std::string(buf, 4);
}

// ---- CRC32C + checksummed sections -----------------------------------------

/// CRC32C (Castagnoli polynomial, reflected) over `n` bytes. Table-driven
/// software implementation — portable, no SSE4.2 dependency; persistence
/// is far from any hot path.
inline std::uint32_t crc32c(const void* data, std::size_t n,
                            std::uint32_t seed = 0) noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

/// Write one checksummed section: 4-byte tag, u64 payload size, payload
/// bytes, u64 checksum word (CRC32C in the low 32 bits).
inline void write_section(std::ostream& out, const char (&tag)[5],
                          std::string_view payload) {
  write_tag(out, tag);
  write_u64(out, payload.size());
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  write_u64(out, crc32c(payload.data(), payload.size()));
}

/// Read the size | payload | CRC body of a checksummed section whose tag
/// has already been consumed (read_section wraps this; loaders that
/// branched on read_tag() call it directly). Bounds the size and
/// recomputes the CRC before returning the payload bytes; throws
/// std::runtime_error naming the section on any mismatch — a corrupt
/// payload never reaches a field parser.
inline std::string read_section_body(std::istream& in,
                                     const std::string& tag) {
  const std::uint64_t size = read_u64(in);
  // The size word sits outside the CRC, so a flipped bit in it must fail
  // cleanly too: before allocating, bound the size by what the stream can
  // actually supply (seekable streams — files and stringstreams, i.e.
  // every loader path) so a corrupt size never triggers a multi-GiB
  // allocation. Non-seekable streams fall back to the plausibility cap.
  const std::istream::pos_type here = in.tellg();
  if (here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type stream_end = in.tellg();
    in.seekg(here);
    if (!in || stream_end < here ||
        size > static_cast<std::uint64_t>(stream_end - here)) {
      throw std::runtime_error(std::string("truncated section ") + tag);
    }
  }
  if (size > (1ULL << 33)) {
    throw std::runtime_error(std::string("implausible size for section ") +
                             tag);
  }
  std::string payload(static_cast<std::size_t>(size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(size));
  if (!in) {
    throw std::runtime_error(std::string("truncated section ") + tag);
  }
  const std::uint64_t stored = read_u64(in);
  const std::uint32_t computed = crc32c(payload.data(), payload.size());
  if (stored != computed) {
    throw std::runtime_error(
        std::string("checksum mismatch in section ") + tag + " (stored " +
        std::to_string(stored) + ", computed " + std::to_string(computed) +
        ")");
  }
  return payload;
}

/// Read one checksummed section written by write_section: verifies the
/// expected tag, then parses the body (see read_section_body).
inline std::string read_section(std::istream& in, const char (&tag)[5]) {
  expect_tag(in, tag);
  return read_section_body(in, tag);
}

// ---- chunked sections: streaming CRC32C framing ----------------------------

/// Largest chunk size a chunked section may declare (a corrupt header word
/// must never turn into a multi-GiB chunk-buffer allocation).
inline constexpr std::size_t kMaxSectionChunkBytes = std::size_t{1} << 28;

/// Output streambuf that frames everything written through it as
/// fixed-size CRC32C-checksummed chunks: [u64 n | n bytes | u64 crc]...,
/// closed by a zero length word (finish()). Memory is bounded by one
/// chunk regardless of the logical payload size — the writer side of the
/// "model bigger than RAM" persistence path.
class ChunkedSectionWriter final : public std::streambuf {
 public:
  ChunkedSectionWriter(std::ostream& out, std::size_t chunk_bytes)
      : out_(out), buf_(chunk_bytes) {
    setp(buf_.data(), buf_.data() + buf_.size());
  }
  ChunkedSectionWriter(const ChunkedSectionWriter&) = delete;
  ChunkedSectionWriter& operator=(const ChunkedSectionWriter&) = delete;

  /// Flush the partial chunk and write the terminator. Must be called
  /// exactly once, after the last byte.
  void finish() {
    flush_chunk();
    write_u64(out_, 0);
  }

 protected:
  int_type overflow(int_type ch) override {
    flush_chunk();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

 private:
  void flush_chunk() {
    const std::size_t n = static_cast<std::size_t>(pptr() - pbase());
    if (n > 0) {
      write_u64(out_, n);
      out_.write(pbase(), static_cast<std::streamsize>(n));
      write_u64(out_, crc32c(pbase(), n));
    }
    setp(buf_.data(), buf_.data() + buf_.size());
  }

  std::ostream& out_;
  std::vector<char> buf_;
};

/// Input streambuf over a chunk sequence written by ChunkedSectionWriter:
/// each underflow pulls the next chunk, bounds its size, and verifies its
/// CRC before serving a single byte — a corrupt chunk throws a
/// std::runtime_error naming `tag` instead of reaching any field parser.
/// After the zero terminator the buf reports EOF and finished() is true;
/// a stream that ends without a terminator throws (so a truncated tail
/// can never load silently).
class ChunkedSectionReader final : public std::streambuf {
 public:
  ChunkedSectionReader(std::istream& in, std::string tag,
                       std::size_t chunk_bytes)
      : in_(in), tag_(std::move(tag)) {
    if (chunk_bytes == 0 || chunk_bytes > kMaxSectionChunkBytes) {
      throw std::runtime_error("implausible chunk size in section " + tag_);
    }
    // Bound the chunk buffer by what the stream can actually supply, so a
    // corrupt chunk-size header never allocates past the file itself.
    const std::istream::pos_type here = in_.tellg();
    if (here != std::istream::pos_type(-1)) {
      in_.seekg(0, std::ios::end);
      const std::istream::pos_type end = in_.tellg();
      in_.seekg(here);
      if (in_ && end >= here) {
        chunk_bytes = std::min<std::size_t>(
            chunk_bytes, static_cast<std::size_t>(end - here));
      }
    }
    buf_.resize(std::max<std::size_t>(1, chunk_bytes));
  }
  ChunkedSectionReader(const ChunkedSectionReader&) = delete;
  ChunkedSectionReader& operator=(const ChunkedSectionReader&) = delete;

  /// True once the zero terminator has been consumed cleanly.
  bool finished() const noexcept { return done_; }

 protected:
  int_type underflow() override {
    if (done_) return traits_type::eof();
    const std::uint64_t n = read_word("chunk length");
    if (n == 0) {
      done_ = true;
      return traits_type::eof();
    }
    if (n > buf_.size()) {
      throw std::runtime_error("oversized chunk in section " + tag_);
    }
    in_.read(buf_.data(), static_cast<std::streamsize>(n));
    if (!in_) {
      throw std::runtime_error("truncated chunk in section " + tag_);
    }
    const std::uint64_t stored = read_word("chunk checksum");
    const std::uint32_t computed =
        crc32c(buf_.data(), static_cast<std::size_t>(n));
    if (stored != computed) {
      throw std::runtime_error(
          "checksum mismatch in section " + tag_ + " (chunk " +
          std::to_string(chunk_index_) + ", stored " +
          std::to_string(stored) + ", computed " + std::to_string(computed) +
          ")");
    }
    ++chunk_index_;
    setg(buf_.data(), buf_.data(), buf_.data() + n);
    return traits_type::to_int_type(buf_[0]);
  }

 private:
  std::uint64_t read_word(const char* what) {
    std::uint64_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in_) {
      throw std::runtime_error(std::string("truncated section ") + tag_ +
                               " (" + what + ")");
    }
    return v;
  }

  std::istream& in_;
  std::string tag_;
  std::vector<char> buf_;
  std::size_t chunk_index_ = 0;
  bool done_ = false;
};

}  // namespace cyberhd::core::io
