// CSV parsing and writing.
//
// Two consumers: (1) the nids loader, so users can drop in the real NSL-KDD
// / UNSW-NB15 / CIC-IDS files and run the identical pipeline the synthetic
// generators exercise, and (2) benchmark harnesses, which emit their tables
// as CSV next to the printed report. Handles RFC-4180 quoting (embedded
// commas, quotes, and newlines inside quoted fields).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cyberhd::core {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parse a single CSV record from `line` (no embedded newlines).
/// Quoted fields may contain commas and doubled quotes.
CsvRow parse_csv_line(std::string_view line);

/// Streaming CSV reader over an istream; handles quoted fields that span
/// physical lines.
class CsvReader {
 public:
  /// The stream must outlive the reader.
  explicit CsvReader(std::istream& in) : in_(in) {}

  /// Read the next record, or nullopt at end of stream. Blank lines are
  /// skipped.
  std::optional<CsvRow> next();

  /// Number of records returned so far.
  std::size_t rows_read() const noexcept { return rows_read_; }

 private:
  std::istream& in_;
  std::size_t rows_read_ = 0;
};

/// Quote a field if it needs quoting, per RFC 4180.
std::string csv_escape(std::string_view field);

/// Serialize one row (adds no trailing newline).
std::string to_csv_line(const CsvRow& row);

/// Write rows (with header first if non-empty) to a file. Returns false on
/// I/O failure.
bool write_csv(const std::string& path, const CsvRow& header,
               const std::vector<CsvRow>& rows);

}  // namespace cyberhd::core
