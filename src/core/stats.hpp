// Streaming statistics and classification metrics.
//
// Used by the regeneration controller (per-dimension cross-class variance),
// dataset synthesis validation, and every benchmark's reporting layer.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cyberhd::core {

/// Welford online mean/variance accumulator. Numerically stable for the
/// long, skewed feature streams NIDS data produces.
class RunningStats {
 public:
  /// Observe one value.
  void add(double x) noexcept;
  /// Number of observations so far.
  std::size_t count() const noexcept { return n_; }
  /// Sample mean (0 when empty).
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (denominator n; 0 when fewer than 1 sample).
  double variance_population() const noexcept;
  /// Sample variance (denominator n-1; 0 when fewer than 2 samples).
  double variance_sample() const noexcept;
  /// Population standard deviation.
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Merge another accumulator (Chan's parallel combination).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Population variance of each column of a row-major buffer:
/// out[c] = Var over rows of data[r*cols + c]. This is the exact statistic
/// CyberHD ranks dimensions by (variance of each dimension across the
/// normalized class hypervectors).
void column_variances(const float* data, std::size_t rows, std::size_t cols,
                      std::span<float> out) noexcept;

/// Confusion matrix plus derived multi-class metrics.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  /// Record one (truth, prediction) pair.
  void add(std::size_t truth, std::size_t predicted);
  /// Count at (truth, predicted).
  std::size_t at(std::size_t truth, std::size_t predicted) const;
  std::size_t num_classes() const noexcept { return k_; }
  std::size_t total() const noexcept { return total_; }

  /// Overall accuracy in [0, 1].
  double accuracy() const noexcept;
  /// Precision of one class (0 when the class was never predicted).
  double precision(std::size_t cls) const noexcept;
  /// Recall of one class (0 when the class never occurs).
  double recall(std::size_t cls) const noexcept;
  /// F1 of one class.
  double f1(std::size_t cls) const noexcept;
  /// Unweighted mean of per-class F1 (classes absent from the data are
  /// skipped, matching common NIDS reporting).
  double macro_f1() const noexcept;
  /// Detection rate for binary-style reporting: recall averaged over all
  /// classes except `benign_class`.
  double detection_rate(std::size_t benign_class) const noexcept;
  /// False-positive rate for `benign_class`: fraction of benign samples
  /// flagged as any attack.
  double false_positive_rate(std::size_t benign_class) const noexcept;

  /// Fixed-width printable table with class names.
  std::string to_string(const std::vector<std::string>& class_names) const;

 private:
  std::size_t k_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // k x k row-major, row = truth
};

/// Mean of a span (0 when empty).
double mean_of(std::span<const double> xs) noexcept;

/// Geometric mean of strictly positive values (0 when empty).
double geometric_mean(std::span<const double> xs) noexcept;

}  // namespace cyberhd::core
