// Symmetric linear quantization of float vectors to b-bit signed integers.
//
// CyberHD deploys hypervectors at 32/16/8/4/2/1-bit precision (Table I of
// the paper). This module implements the post-training quantizer shared by
// the quantized inference path (hdc/quantized) and the fault injector
// (fault/bitflip): values are mapped to signed integers in
// [-(2^(b-1)-1), 2^(b-1)-1] with a per-vector scale, except b == 1 which is
// the sign function (the classic bipolar hypervector).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cyberhd::core {

/// Supported bitwidths for quantized hypervectors.
inline constexpr int kSupportedBitwidths[] = {1, 2, 4, 8, 16, 32};

/// True when `bits` is one of the supported widths.
bool is_supported_bitwidth(int bits) noexcept;

/// Largest representable level for a signed b-bit code (symmetric range);
/// e.g. 1 for b=1 (bipolar), 1 for b=2, 7 for b=4, 127 for b=8.
std::int32_t max_level(int bits) noexcept;

/// A float vector quantized to b-bit signed levels.
///
/// Levels are stored widened to int32 for arithmetic convenience; the
/// *representational* width (what the fault injector flips and what the
/// hardware model prices) is `bits`. `scale` maps levels back to floats:
/// value ~= level * scale.
struct QuantizedVector {
  int bits = 32;
  float scale = 1.0f;
  std::vector<std::int32_t> levels;

  std::size_t size() const noexcept { return levels.size(); }
};

/// Quantize `x` symmetrically to `bits` bits. For bits == 1 the result is
/// sign(x) in {-1, +1} (zeros map to +1) with scale = mean(|x|).
QuantizedVector quantize(std::span<const float> x, int bits);

/// Reconstruct floats: out[i] = levels[i] * scale.
void dequantize(const QuantizedVector& q, std::span<float> out);

/// Integer dot product of two quantized vectors (levels only).
std::int64_t dot_levels(const QuantizedVector& a,
                        const QuantizedVector& b) noexcept;

/// Cosine similarity computed in the quantized domain. Scales cancel, so
/// this equals the cosine of the dequantized vectors.
float cosine_quantized(const QuantizedVector& a,
                       const QuantizedVector& b) noexcept;

/// Encode a signed level into its b-bit two's-complement bit pattern
/// (low `bits` bits of the result).
std::uint32_t level_to_bits(std::int32_t level, int bits) noexcept;

/// Decode a b-bit two's-complement pattern back to a signed level,
/// clamping to the symmetric range (so e.g. the 4-bit pattern 1000 = -8
/// decodes to -7, keeping codes within the quantizer's range).
std::int32_t bits_to_level(std::uint32_t pattern, int bits) noexcept;

}  // namespace cyberhd::core
