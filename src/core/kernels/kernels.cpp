// Backend selection: CPUID once at first use, env override for CI and
// benchmarking.
#include "core/kernels/kernels.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cyberhd::core {

bool cpu_supports_avx2() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

namespace {

const Kernels* select_kernels() noexcept {
  const Kernels* chosen =
      cpu_supports_avx2() ? avx2_kernels() : &scalar_kernels();
  // CYBERHD_KERNELS=scalar forces the portable backend (the CI leg that
  // exercises it everywhere); =avx2 requests the SIMD backend explicitly.
  // Requests this process cannot honor are reported on stderr rather than
  // silently ignored, so benchmark runs never record the wrong backend.
  if (const char* env = std::getenv("CYBERHD_KERNELS")) {
    if (std::strcmp(env, "scalar") == 0) {
      chosen = &scalar_kernels();
    } else if (std::strcmp(env, "avx2") == 0) {
      if (cpu_supports_avx2() && avx2_kernels() != nullptr) {
        chosen = avx2_kernels();
      } else {
        std::fprintf(stderr,
                     "cyberhd: CYBERHD_KERNELS=avx2 requested but this "
                     "host/build cannot run it; using scalar\n");
        chosen = &scalar_kernels();
      }
    } else {
      std::fprintf(stderr,
                   "cyberhd: unrecognized CYBERHD_KERNELS value \"%s\" "
                   "(expected \"scalar\" or \"avx2\"); keeping \"%s\"\n",
                   env, chosen != nullptr ? chosen->name : "scalar");
    }
  }
  return chosen != nullptr ? chosen : &scalar_kernels();
}

}  // namespace

const Kernels& active_kernels() noexcept {
  static const Kernels& selected = *select_kernels();
  return selected;
}

}  // namespace cyberhd::core
