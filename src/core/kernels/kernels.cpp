// Backend selection: CPUID once at first use, env override for CI and
// benchmarking.
#include "core/kernels/kernels.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cyberhd::core {

bool cpu_supports_avx2() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_supports_avx512() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // The avx512 table layers over avx2 kernels, so both feature families
  // must be present (every AVX-512 CPU to date also has AVX2+FMA, but the
  // check is cheap and keeps the contract explicit).
  return cpu_supports_avx2() && __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

bool cpu_supports_avx512_vpopcntdq() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return cpu_supports_avx512() &&
         __builtin_cpu_supports("avx512vpopcntdq");
#else
  return false;
#endif
}

bool cpu_supports_avx512_vnni() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return cpu_supports_avx512() && __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vnni");
#else
  return false;
#endif
}

namespace {

/// The best backend the CPUID feature bits allow.
const Kernels* best_supported_kernels() noexcept {
  if (cpu_supports_avx512() && avx512_kernels() != nullptr) {
    return avx512_kernels();
  }
  if (cpu_supports_avx2() && avx2_kernels() != nullptr) {
    return avx2_kernels();
  }
  return &scalar_kernels();
}

const Kernels* select_kernels() noexcept {
  const Kernels* chosen = best_supported_kernels();
  // CYBERHD_KERNELS=scalar forces the portable backend (the CI leg that
  // exercises it everywhere); =avx2/=avx512 request a SIMD backend
  // explicitly. Requests this process cannot honor are reported on stderr
  // rather than silently ignored (falling back to the best supported
  // backend), so benchmark runs never record the wrong backend.
  if (const char* env = std::getenv("CYBERHD_KERNELS")) {
    if (std::strcmp(env, "scalar") == 0) {
      chosen = &scalar_kernels();
    } else if (std::strcmp(env, "avx2") == 0) {
      if (cpu_supports_avx2() && avx2_kernels() != nullptr) {
        chosen = avx2_kernels();
      } else {
        std::fprintf(stderr,
                     "cyberhd: CYBERHD_KERNELS=avx2 requested but this "
                     "host/build cannot run it; using scalar\n");
        chosen = &scalar_kernels();
      }
    } else if (std::strcmp(env, "avx512") == 0) {
      if (cpu_supports_avx512() && avx512_kernels() != nullptr) {
        chosen = avx512_kernels();
      } else {
        chosen = best_supported_kernels();
        std::fprintf(stderr,
                     "cyberhd: CYBERHD_KERNELS=avx512 requested but this "
                     "host/build cannot run it; using %s\n",
                     chosen->name);
      }
    } else {
      std::fprintf(stderr,
                   "cyberhd: unrecognized CYBERHD_KERNELS value \"%s\" "
                   "(expected \"scalar\", \"avx2\", or \"avx512\"); "
                   "keeping \"%s\"\n",
                   env, chosen->name);
    }
  }
  return chosen;
}

}  // namespace

const Kernels& active_kernels() noexcept {
  static const Kernels& selected = *select_kernels();
  return selected;
}

}  // namespace cyberhd::core
