// AVX-512 backend.
//
// Layered over the avx2 table: the 32-lane float kernels (dot, axpy,
// mul_acc, the blocked similarity tile) and — when the CPU reports
// AVX512VPOPCNTDQ — a vpopcntq popcount replace their avx2 counterparts,
// while the polynomial cosine and the int8 dot are inherited unchanged
// (every AVX-512 CPU also runs AVX2 code, and those two kernels gain
// little from wider vectors relative to their avx2 forms).
//
// Compiled via per-function target attributes like the avx2 backend, so
// the translation unit is safe inside a portable binary: nothing here
// executes unless the runtime dispatcher saw the matching CPUID bits
// (kernels.cpp). The popcount kernel carries its own vpopcntdq target and
// is only wired into the table when cpu_supports_avx512_vpopcntdq() —
// a Skylake-X class machine (AVX-512F but no VPOPCNTDQ) keeps the avx2
// nibble-LUT popcount.
//
// Note on numerics: dot_f32 here reduces two 16-lane accumulators with
// _mm512_reduce_add_ps, so float sums associate differently from both the
// scalar and avx2 backends (tests bound the difference). Within this
// backend, similarities_tile_f32 reproduces dot_f32's accumulation order
// exactly — the bit-identical tile contract of kernels.hpp holds per
// backend, as elsewhere.
#include "core/kernels/kernels.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

// GCC 12's AVX-512 headers build some intrinsics on _mm512_undefined_*(),
// which -Wuninitialized flags under -Werror (GCC PR105593). File-scoped
// suppression; the warnings point inside avx512fintrin.h, not this code.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include <bit>

#define CYBERHD_AVX512 __attribute__((target("avx512f,avx512dq,avx2,fma")))
#define CYBERHD_AVX512_POPCNT \
  __attribute__((target("avx512f,avx512vpopcntdq")))

namespace cyberhd::core {
namespace {

CYBERHD_AVX512 float dot_f32_avx512(const float* a, const float* b,
                                    std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  float sum = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

CYBERHD_AVX512 void axpy_f32_avx512(float alpha, const float* x, float* y,
                                    std::size_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 r =
        _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i));
    _mm512_storeu_ps(y + i, r);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

CYBERHD_AVX512 void mul_acc_f32_avx512(const float* a, const float* b,
                                       float* acc, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 r =
        _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                        _mm512_loadu_ps(acc + i));
    _mm512_storeu_ps(acc + i, r);
  }
  for (; i < n; ++i) acc[i] += a[i] * b[i];
}

// Register-blocked similarity tile, the AVX-512 sibling of the avx2
// version: 4 query rows share each class-row load, and every dot keeps its
// own (acc0, acc1) pair walking dims in dot_f32_avx512's exact order so
// the per-pair bit-identity contract holds.
CYBERHD_AVX512 void similarities_tile_f32_avx512(
    const float* h, std::size_t rows, const float* classes,
    std::size_t num_classes, std::size_t dims, float* out) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* h0 = h + (r + 0) * dims;
    const float* h1 = h + (r + 1) * dims;
    const float* h2 = h + (r + 2) * dims;
    const float* h3 = h + (r + 3) * dims;
    for (std::size_t c = 0; c < num_classes; ++c) {
      const float* cls = classes + c * dims;
      __m512 a00 = _mm512_setzero_ps(), a01 = _mm512_setzero_ps();
      __m512 a10 = _mm512_setzero_ps(), a11 = _mm512_setzero_ps();
      __m512 a20 = _mm512_setzero_ps(), a21 = _mm512_setzero_ps();
      __m512 a30 = _mm512_setzero_ps(), a31 = _mm512_setzero_ps();
      std::size_t i = 0;
      for (; i + 32 <= dims; i += 32) {
        const __m512 v0 = _mm512_loadu_ps(cls + i);
        const __m512 v1 = _mm512_loadu_ps(cls + i + 16);
        a00 = _mm512_fmadd_ps(_mm512_loadu_ps(h0 + i), v0, a00);
        a01 = _mm512_fmadd_ps(_mm512_loadu_ps(h0 + i + 16), v1, a01);
        a10 = _mm512_fmadd_ps(_mm512_loadu_ps(h1 + i), v0, a10);
        a11 = _mm512_fmadd_ps(_mm512_loadu_ps(h1 + i + 16), v1, a11);
        a20 = _mm512_fmadd_ps(_mm512_loadu_ps(h2 + i), v0, a20);
        a21 = _mm512_fmadd_ps(_mm512_loadu_ps(h2 + i + 16), v1, a21);
        a30 = _mm512_fmadd_ps(_mm512_loadu_ps(h3 + i), v0, a30);
        a31 = _mm512_fmadd_ps(_mm512_loadu_ps(h3 + i + 16), v1, a31);
      }
      for (; i + 16 <= dims; i += 16) {
        const __m512 v0 = _mm512_loadu_ps(cls + i);
        a00 = _mm512_fmadd_ps(_mm512_loadu_ps(h0 + i), v0, a00);
        a10 = _mm512_fmadd_ps(_mm512_loadu_ps(h1 + i), v0, a10);
        a20 = _mm512_fmadd_ps(_mm512_loadu_ps(h2 + i), v0, a20);
        a30 = _mm512_fmadd_ps(_mm512_loadu_ps(h3 + i), v0, a30);
      }
      float s0 = _mm512_reduce_add_ps(_mm512_add_ps(a00, a01));
      float s1 = _mm512_reduce_add_ps(_mm512_add_ps(a10, a11));
      float s2 = _mm512_reduce_add_ps(_mm512_add_ps(a20, a21));
      float s3 = _mm512_reduce_add_ps(_mm512_add_ps(a30, a31));
      for (; i < dims; ++i) {
        const float v = cls[i];
        s0 += h0[i] * v;
        s1 += h1[i] * v;
        s2 += h2[i] * v;
        s3 += h3[i] * v;
      }
      out[(r + 0) * num_classes + c] = s0;
      out[(r + 1) * num_classes + c] = s1;
      out[(r + 2) * num_classes + c] = s2;
      out[(r + 3) * num_classes + c] = s3;
    }
  }
  for (; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] =
          dot_f32_avx512(h + r * dims, classes + c * dims, dims);
    }
  }
}

CYBERHD_AVX512_POPCNT std::size_t xor_popcount_words_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_xor_si512(
        _mm512_loadu_si512(reinterpret_cast<const void*>(a + i)),
        _mm512_loadu_si512(reinterpret_cast<const void*>(b + i)));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t count =
      static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return count;
}

/// Assembled once at first use: start from the avx2 table (cosine, int8
/// dot), overlay the 32-lane float kernels, and take the VPOPCNTDQ
/// popcount only when the CPU has it.
const Kernels make_avx512_table() noexcept {
  Kernels k = *avx2_kernels();
  k.name = "avx512";
  k.dot_f32 = dot_f32_avx512;
  k.axpy_f32 = axpy_f32_avx512;
  k.mul_acc_f32 = mul_acc_f32_avx512;
  k.similarities_tile_f32 = similarities_tile_f32_avx512;
  if (cpu_supports_avx512_vpopcntdq()) {
    k.xor_popcount_words = xor_popcount_words_avx512;
  }
  return k;
}

}  // namespace

const Kernels* avx512_kernels() noexcept {
  static const Kernels table = make_avx512_table();
  return &table;
}

}  // namespace cyberhd::core

#else  // non-x86 or unsupported compiler: no AVX-512 backend in this binary.

namespace cyberhd::core {
const Kernels* avx512_kernels() noexcept { return nullptr; }
}  // namespace cyberhd::core

#endif
