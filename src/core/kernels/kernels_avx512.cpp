// AVX-512 backend.
//
// Layered over the avx2 table: the 32-lane float kernels (dot, axpy,
// mul_acc, the blocked similarity tile) and — when the CPU reports
// AVX512VPOPCNTDQ — a vpopcntq popcount replace their avx2 counterparts,
// while the polynomial cosine and the int8 dot are inherited unchanged
// (every AVX-512 CPU also runs AVX2 code, and those two kernels gain
// little from wider vectors relative to their avx2 forms).
//
// Compiled via per-function target attributes like the avx2 backend, so
// the translation unit is safe inside a portable binary: nothing here
// executes unless the runtime dispatcher saw the matching CPUID bits
// (kernels.cpp). The popcount kernel carries its own vpopcntdq target and
// is only wired into the table when cpu_supports_avx512_vpopcntdq() —
// a Skylake-X class machine (AVX-512F but no VPOPCNTDQ) keeps the avx2
// nibble-LUT popcount.
//
// Note on numerics: dot_f32 here reduces two 16-lane accumulators with
// _mm512_reduce_add_ps, so float sums associate differently from both the
// scalar and avx2 backends (tests bound the difference). Within this
// backend, similarities_tile_f32 reproduces dot_f32's accumulation order
// exactly — the bit-identical tile contract of kernels.hpp holds per
// backend, as elsewhere.
#include "core/kernels/kernels.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

// GCC 12's AVX-512 headers build some intrinsics on _mm512_undefined_*(),
// which -Wuninitialized flags under -Werror (GCC PR105593). File-scoped
// suppression; the warnings point inside avx512fintrin.h, not this code.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include <algorithm>
#include <bit>

#define CYBERHD_AVX512 __attribute__((target("avx512f,avx512dq,avx2,fma")))
#define CYBERHD_AVX512_POPCNT \
  __attribute__((target("avx512f,avx512vpopcntdq")))
#define CYBERHD_AVX512_VNNI \
  __attribute__((target("avx512f,avx512bw,avx512vnni")))

namespace cyberhd::core {
namespace {

CYBERHD_AVX512 float dot_f32_avx512(const float* a, const float* b,
                                    std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  float sum = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

CYBERHD_AVX512 void axpy_f32_avx512(float alpha, const float* x, float* y,
                                    std::size_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 r =
        _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i));
    _mm512_storeu_ps(y + i, r);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

CYBERHD_AVX512 void mul_acc_f32_avx512(const float* a, const float* b,
                                       float* acc, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 r =
        _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                        _mm512_loadu_ps(acc + i));
    _mm512_storeu_ps(acc + i, r);
  }
  for (; i < n; ++i) acc[i] += a[i] * b[i];
}

// Register-blocked similarity tile, the AVX-512 sibling of the avx2
// version: 4 query rows share each class-row load, and every dot keeps its
// own (acc0, acc1) pair walking dims in dot_f32_avx512's exact order so
// the per-pair bit-identity contract holds.
//
// As in the avx2 backend, the 4-row inner body is factored over explicit
// row pointers so the contiguous tile and the gather (row-pointer-table)
// variant share the identical instruction sequence.
CYBERHD_AVX512 inline void sim_tile_f32_block4_avx512(
    const float* h0, const float* h1, const float* h2, const float* h3,
    const float* classes, std::size_t num_classes, std::size_t dims,
    float* out_block) {
  for (std::size_t c = 0; c < num_classes; ++c) {
    const float* cls = classes + c * dims;
    __m512 a00 = _mm512_setzero_ps(), a01 = _mm512_setzero_ps();
    __m512 a10 = _mm512_setzero_ps(), a11 = _mm512_setzero_ps();
    __m512 a20 = _mm512_setzero_ps(), a21 = _mm512_setzero_ps();
    __m512 a30 = _mm512_setzero_ps(), a31 = _mm512_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= dims; i += 32) {
      const __m512 v0 = _mm512_loadu_ps(cls + i);
      const __m512 v1 = _mm512_loadu_ps(cls + i + 16);
      a00 = _mm512_fmadd_ps(_mm512_loadu_ps(h0 + i), v0, a00);
      a01 = _mm512_fmadd_ps(_mm512_loadu_ps(h0 + i + 16), v1, a01);
      a10 = _mm512_fmadd_ps(_mm512_loadu_ps(h1 + i), v0, a10);
      a11 = _mm512_fmadd_ps(_mm512_loadu_ps(h1 + i + 16), v1, a11);
      a20 = _mm512_fmadd_ps(_mm512_loadu_ps(h2 + i), v0, a20);
      a21 = _mm512_fmadd_ps(_mm512_loadu_ps(h2 + i + 16), v1, a21);
      a30 = _mm512_fmadd_ps(_mm512_loadu_ps(h3 + i), v0, a30);
      a31 = _mm512_fmadd_ps(_mm512_loadu_ps(h3 + i + 16), v1, a31);
    }
    for (; i + 16 <= dims; i += 16) {
      const __m512 v0 = _mm512_loadu_ps(cls + i);
      a00 = _mm512_fmadd_ps(_mm512_loadu_ps(h0 + i), v0, a00);
      a10 = _mm512_fmadd_ps(_mm512_loadu_ps(h1 + i), v0, a10);
      a20 = _mm512_fmadd_ps(_mm512_loadu_ps(h2 + i), v0, a20);
      a30 = _mm512_fmadd_ps(_mm512_loadu_ps(h3 + i), v0, a30);
    }
    float s0 = _mm512_reduce_add_ps(_mm512_add_ps(a00, a01));
    float s1 = _mm512_reduce_add_ps(_mm512_add_ps(a10, a11));
    float s2 = _mm512_reduce_add_ps(_mm512_add_ps(a20, a21));
    float s3 = _mm512_reduce_add_ps(_mm512_add_ps(a30, a31));
    for (; i < dims; ++i) {
      const float v = cls[i];
      s0 += h0[i] * v;
      s1 += h1[i] * v;
      s2 += h2[i] * v;
      s3 += h3[i] * v;
    }
    out_block[0 * num_classes + c] = s0;
    out_block[1 * num_classes + c] = s1;
    out_block[2 * num_classes + c] = s2;
    out_block[3 * num_classes + c] = s3;
  }
}

CYBERHD_AVX512 void similarities_tile_f32_avx512(
    const float* h, std::size_t rows, const float* classes,
    std::size_t num_classes, std::size_t dims, float* out) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    sim_tile_f32_block4_avx512(h + (r + 0) * dims, h + (r + 1) * dims,
                               h + (r + 2) * dims, h + (r + 3) * dims,
                               classes, num_classes, dims,
                               out + r * num_classes);
  }
  for (; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] =
          dot_f32_avx512(h + r * dims, classes + c * dims, dims);
    }
  }
}

CYBERHD_AVX512 void similarities_tile_f32_gather_avx512(
    const float* const* h_rows, std::size_t rows, const float* classes,
    std::size_t num_classes, std::size_t dims, float* out) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    sim_tile_f32_block4_avx512(h_rows[r + 0], h_rows[r + 1], h_rows[r + 2],
                               h_rows[r + 3], classes, num_classes, dims,
                               out + r * num_classes);
  }
  for (; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] =
          dot_f32_avx512(h_rows[r], classes + c * dims, dims);
    }
  }
}

CYBERHD_AVX512_POPCNT std::size_t xor_popcount_words_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_xor_si512(
        _mm512_loadu_si512(reinterpret_cast<const void*>(a + i)),
        _mm512_loadu_si512(reinterpret_cast<const void*>(b + i)));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t count =
      static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return count;
}

CYBERHD_AVX512_POPCNT void hamming_tile_1b_avx512(
    const std::uint64_t* h, std::size_t rows, const std::uint64_t* classes,
    std::size_t num_classes, std::size_t words, std::uint32_t* out) {
  // Per-pair vpopcntq word scans — same structure as the avx2 tile, with
  // the hardware 64-bit popcount doing the counting.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] = static_cast<std::uint32_t>(
          xor_popcount_words_avx512(h + r * words, classes + c * words,
                                    words));
    }
  }
}

CYBERHD_AVX512_POPCNT void hamming_tile_1b_gather_avx512(
    const std::uint64_t* const* h_rows, std::size_t rows,
    const std::uint64_t* classes, std::size_t num_classes, std::size_t words,
    std::uint32_t* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] = static_cast<std::uint32_t>(
          xor_popcount_words_avx512(h_rows[r], classes + c * words, words));
    }
  }
}

/// acc64 += the 16 i32 lanes of acc32, widened.
CYBERHD_AVX512 inline __m512i widen_add_i32_to_i64_512(__m512i acc64,
                                                       __m512i acc32) {
  const __m512i lo = _mm512_cvtepi32_epi64(_mm512_castsi512_si256(acc32));
  const __m512i hi =
      _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(acc32, 1));
  return _mm512_add_epi64(acc64, _mm512_add_epi64(lo, hi));
}

// VNNI int8 similarity tile. vpdpbusd multiplies UNSIGNED bytes by signed
// bytes, so the signed query rows go in biased: with a' = a XOR 0x80
// (i.e. a + 128 read as u8),
//   sum_i a'_i * b_i  =  dot(a, b) + 128 * sum_i b_i
// and the true dot is recovered by subtracting 128 * sum(b), where sum(b)
// is accumulated by the same instruction against an all-ones vector —
// once per class, shared by the 4 register-blocked query rows. All sums
// are exact integers, so the recovered dot is bit-identical to the scalar
// reference. Overflow cap: each 64-element vpdpbusd round moves an i32
// lane by at most 4 * 255 * 128, so 8192 rounds (512k dims) stay inside
// i32 before the i64 widening.
// Per-row-block VNNI body over an explicit 4-entry row-pointer block
// (tail blocks alias hr[0]; lanes beyond `block` compute values that go
// unused). Shared by the contiguous tile and the gather variant.
CYBERHD_AVX512_VNNI inline void sim_tile_i8_vnni_block4(
    const std::int8_t* const hr[4], std::size_t block,
    const std::int8_t* classes, std::size_t num_classes, std::size_t dims,
    std::int64_t* out_block) {
  const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
  const __m512i ones = _mm512_set1_epi8(1);
  const std::size_t vec_dims = dims & ~std::size_t{63};
  {
    for (std::size_t c = 0; c < num_classes; ++c) {
      const std::int8_t* cls = classes + c * dims;
      __m512i a0 = _mm512_setzero_si512(), a1 = _mm512_setzero_si512();
      __m512i a2 = _mm512_setzero_si512(), a3 = _mm512_setzero_si512();
      __m512i asum = _mm512_setzero_si512();
      std::size_t i = 0;
      while (vec_dims - i >= 64) {
        const std::size_t rounds =
            std::min<std::size_t>((vec_dims - i) / 64, 8192);
        __m512i b0 = _mm512_setzero_si512(), b1 = _mm512_setzero_si512();
        __m512i b2 = _mm512_setzero_si512(), b3 = _mm512_setzero_si512();
        __m512i bsum = _mm512_setzero_si512();
        for (std::size_t k = 0; k < rounds; ++k, i += 64) {
          const __m512i cv = _mm512_loadu_si512(
              reinterpret_cast<const void*>(cls + i));
          bsum = _mm512_dpbusd_epi32(bsum, ones, cv);
          b0 = _mm512_dpbusd_epi32(
              b0,
              _mm512_xor_si512(_mm512_loadu_si512(reinterpret_cast<const void*>(
                                   hr[0] + i)),
                               bias),
              cv);
          b1 = _mm512_dpbusd_epi32(
              b1,
              _mm512_xor_si512(_mm512_loadu_si512(reinterpret_cast<const void*>(
                                   hr[1] + i)),
                               bias),
              cv);
          b2 = _mm512_dpbusd_epi32(
              b2,
              _mm512_xor_si512(_mm512_loadu_si512(reinterpret_cast<const void*>(
                                   hr[2] + i)),
                               bias),
              cv);
          b3 = _mm512_dpbusd_epi32(
              b3,
              _mm512_xor_si512(_mm512_loadu_si512(reinterpret_cast<const void*>(
                                   hr[3] + i)),
                               bias),
              cv);
        }
        a0 = widen_add_i32_to_i64_512(a0, b0);
        a1 = widen_add_i32_to_i64_512(a1, b1);
        a2 = widen_add_i32_to_i64_512(a2, b2);
        a3 = widen_add_i32_to_i64_512(a3, b3);
        asum = widen_add_i32_to_i64_512(asum, bsum);
      }
      const std::int64_t comp = 128 * _mm512_reduce_add_epi64(asum);
      std::int64_t s[4] = {_mm512_reduce_add_epi64(a0) - comp,
                           _mm512_reduce_add_epi64(a1) - comp,
                           _mm512_reduce_add_epi64(a2) - comp,
                           _mm512_reduce_add_epi64(a3) - comp};
      for (; i < dims; ++i) {
        const std::int64_t v = cls[i];
        s[0] += static_cast<std::int64_t>(hr[0][i]) * v;
        s[1] += static_cast<std::int64_t>(hr[1][i]) * v;
        s[2] += static_cast<std::int64_t>(hr[2][i]) * v;
        s[3] += static_cast<std::int64_t>(hr[3][i]) * v;
      }
      for (std::size_t k = 0; k < block; ++k) {
        out_block[k * num_classes + c] = s[k];
      }
    }
  }
}

CYBERHD_AVX512_VNNI void similarities_tile_i8_avx512vnni(
    const std::int8_t* h, std::size_t rows, const std::int8_t* classes,
    std::size_t num_classes, std::size_t dims, std::int64_t* out) {
  for (std::size_t r0 = 0; r0 < rows; r0 += 4) {
    const std::size_t block = std::min<std::size_t>(4, rows - r0);
    const std::int8_t* hr[4];
    for (std::size_t k = 0; k < 4; ++k) {
      hr[k] = h + (r0 + (k < block ? k : 0)) * dims;
    }
    sim_tile_i8_vnni_block4(hr, block, classes, num_classes, dims,
                            out + r0 * num_classes);
  }
}

CYBERHD_AVX512_VNNI void similarities_tile_i8_gather_avx512vnni(
    const std::int8_t* const* h_rows, std::size_t rows,
    const std::int8_t* classes, std::size_t num_classes, std::size_t dims,
    std::int64_t* out) {
  for (std::size_t r0 = 0; r0 < rows; r0 += 4) {
    const std::size_t block = std::min<std::size_t>(4, rows - r0);
    const std::int8_t* hr[4];
    for (std::size_t k = 0; k < 4; ++k) {
      hr[k] = h_rows[r0 + (k < block ? k : 0)];
    }
    sim_tile_i8_vnni_block4(hr, block, classes, num_classes, dims,
                            out + r0 * num_classes);
  }
}

/// Assembled once at first use: start from the avx2 table (cosine, int8
/// dot and tile), overlay the 32-lane float kernels, and take the
/// VPOPCNTDQ popcount / VNNI int8 tile only when the CPU has them.
const Kernels make_avx512_table() noexcept {
  Kernels k = *avx2_kernels();
  k.name = "avx512";
  // cos_rbf_rows AND cos_rbf_tile_f32 stay inherited from avx2: the
  // avx512 backend has always encoded through the avx2 cosine path, and a
  // 512-bit tile would change the per-dot accumulation order — breaking
  // the tile's bit-identity with this backend's cos_rbf_rows and with
  // every pre-tile golden output.
  k.dot_f32 = dot_f32_avx512;
  k.axpy_f32 = axpy_f32_avx512;
  k.mul_acc_f32 = mul_acc_f32_avx512;
  k.similarities_tile_f32 = similarities_tile_f32_avx512;
  k.similarities_tile_f32_gather = similarities_tile_f32_gather_avx512;
  if (cpu_supports_avx512_vpopcntdq()) {
    k.xor_popcount_words = xor_popcount_words_avx512;
    k.hamming_tile_1b = hamming_tile_1b_avx512;
    k.hamming_tile_1b_gather = hamming_tile_1b_gather_avx512;
  }
  if (cpu_supports_avx512_vnni()) {
    k.similarities_tile_i8 = similarities_tile_i8_avx512vnni;
    k.similarities_tile_i8_gather = similarities_tile_i8_gather_avx512vnni;
  }
  return k;
}

}  // namespace

const Kernels* avx512_kernels() noexcept {
  static const Kernels table = make_avx512_table();
  return &table;
}

}  // namespace cyberhd::core

#else  // non-x86 or unsupported compiler: no AVX-512 backend in this binary.

namespace cyberhd::core {
const Kernels* avx512_kernels() noexcept { return nullptr; }
}  // namespace cyberhd::core

#endif
