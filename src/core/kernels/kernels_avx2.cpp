// AVX2+FMA backend.
//
// Compiled via per-function target attributes, so no special -m flags are
// needed and the translation unit is safe to build into a portable binary:
// nothing here executes unless the runtime dispatcher saw AVX2+FMA in
// CPUID (kernels.cpp).
//
// The fused RBF encode uses an 8-lane polynomial cosine (the classic
// Cephes/cosf reduction: octant selection, 3-part extended-precision pi/4
// subtraction, then a degree-4 minimax polynomial per octant). It is
// accurate to a couple of float ulps for |angle| < 8192; lanes beyond that
// range fall back to libm per lane, so results stay sane even for
// degenerate lengthscales. Every lane is computed independently of its
// neighbours, which keeps cos_rbf_rows(rows=N) bit-identical to N rows=1
// calls — the consistency encode()/encode_dims() relies on.
#include "core/kernels/kernels.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cmath>

#define CYBERHD_AVX2 __attribute__((target("avx2,fma")))

namespace cyberhd::core {
namespace {

CYBERHD_AVX2 inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

CYBERHD_AVX2 float dot_f32_avx2(const float* a, const float* b,
                                std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float sum = hsum8(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

// Register-blocked similarity tile: 4 query rows advance together against
// one class row, so each class load is amortized across 4 dots. Every dot
// keeps its own (acc0, acc1) pair and walks dims in exactly dot_f32_avx2's
// order — the out entries are bit-identical to per-pair dot_f32 calls,
// which is the contract HdcModel::similarities_batch relies on.
//
// The 4-row inner body is factored out over explicit row pointers so the
// contiguous tile and its gather (row-pointer-table) variant share the
// IDENTICAL instruction sequence — bit-identity between the two is by
// construction, not by parallel maintenance.
CYBERHD_AVX2 inline void sim_tile_f32_block4_avx2(
    const float* h0, const float* h1, const float* h2, const float* h3,
    const float* classes, std::size_t num_classes, std::size_t dims,
    float* out_block) {
  for (std::size_t c = 0; c < num_classes; ++c) {
    const float* cls = classes + c * dims;
    __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
    __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
    __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
    __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= dims; i += 16) {
      const __m256 v0 = _mm256_loadu_ps(cls + i);
      const __m256 v1 = _mm256_loadu_ps(cls + i + 8);
      a00 = _mm256_fmadd_ps(_mm256_loadu_ps(h0 + i), v0, a00);
      a01 = _mm256_fmadd_ps(_mm256_loadu_ps(h0 + i + 8), v1, a01);
      a10 = _mm256_fmadd_ps(_mm256_loadu_ps(h1 + i), v0, a10);
      a11 = _mm256_fmadd_ps(_mm256_loadu_ps(h1 + i + 8), v1, a11);
      a20 = _mm256_fmadd_ps(_mm256_loadu_ps(h2 + i), v0, a20);
      a21 = _mm256_fmadd_ps(_mm256_loadu_ps(h2 + i + 8), v1, a21);
      a30 = _mm256_fmadd_ps(_mm256_loadu_ps(h3 + i), v0, a30);
      a31 = _mm256_fmadd_ps(_mm256_loadu_ps(h3 + i + 8), v1, a31);
    }
    for (; i + 8 <= dims; i += 8) {
      const __m256 v0 = _mm256_loadu_ps(cls + i);
      a00 = _mm256_fmadd_ps(_mm256_loadu_ps(h0 + i), v0, a00);
      a10 = _mm256_fmadd_ps(_mm256_loadu_ps(h1 + i), v0, a10);
      a20 = _mm256_fmadd_ps(_mm256_loadu_ps(h2 + i), v0, a20);
      a30 = _mm256_fmadd_ps(_mm256_loadu_ps(h3 + i), v0, a30);
    }
    float s0 = hsum8(_mm256_add_ps(a00, a01));
    float s1 = hsum8(_mm256_add_ps(a10, a11));
    float s2 = hsum8(_mm256_add_ps(a20, a21));
    float s3 = hsum8(_mm256_add_ps(a30, a31));
    for (; i < dims; ++i) {
      const float v = cls[i];
      s0 += h0[i] * v;
      s1 += h1[i] * v;
      s2 += h2[i] * v;
      s3 += h3[i] * v;
    }
    out_block[0 * num_classes + c] = s0;
    out_block[1 * num_classes + c] = s1;
    out_block[2 * num_classes + c] = s2;
    out_block[3 * num_classes + c] = s3;
  }
}

CYBERHD_AVX2 void similarities_tile_f32_avx2(const float* h, std::size_t rows,
                                             const float* classes,
                                             std::size_t num_classes,
                                             std::size_t dims, float* out) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    sim_tile_f32_block4_avx2(h + (r + 0) * dims, h + (r + 1) * dims,
                             h + (r + 2) * dims, h + (r + 3) * dims, classes,
                             num_classes, dims, out + r * num_classes);
  }
  for (; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] =
          dot_f32_avx2(h + r * dims, classes + c * dims, dims);
    }
  }
}

CYBERHD_AVX2 void similarities_tile_f32_gather_avx2(
    const float* const* h_rows, std::size_t rows, const float* classes,
    std::size_t num_classes, std::size_t dims, float* out) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    sim_tile_f32_block4_avx2(h_rows[r + 0], h_rows[r + 1], h_rows[r + 2],
                             h_rows[r + 3], classes, num_classes, dims,
                             out + r * num_classes);
  }
  for (; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] =
          dot_f32_avx2(h_rows[r], classes + c * dims, dims);
    }
  }
}

CYBERHD_AVX2 void axpy_f32_avx2(float alpha, const float* x, float* y,
                                std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 r =
        _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, r);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

CYBERHD_AVX2 void mul_acc_f32_avx2(const float* a, const float* b, float* acc,
                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 r = _mm256_fmadd_ps(
        _mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
        _mm256_loadu_ps(acc + i));
    _mm256_storeu_ps(acc + i, r);
  }
  for (; i < n; ++i) acc[i] += a[i] * b[i];
}

// 8-lane cosine, Cephes cosf ported to AVX2 (cf. the public-domain
// sse_mathfun). Valid reduction range |x| < 8192.
CYBERHD_AVX2 inline __m256 cos8(__m256 x) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 four_over_pi = _mm256_set1_ps(1.27323954473516f);
  const __m256 dp1 = _mm256_set1_ps(-0.78515625f);
  const __m256 dp2 = _mm256_set1_ps(-2.4187564849853515625e-4f);
  const __m256 dp3 = _mm256_set1_ps(-3.77489497744594108e-8f);

  x = _mm256_and_ps(x, abs_mask);

  // Octant index j = round-to-even-ish of x / (pi/4).
  __m256i j = _mm256_cvttps_epi32(_mm256_mul_ps(x, four_over_pi));
  j = _mm256_add_epi32(j, _mm256_set1_epi32(1));
  j = _mm256_and_si256(j, _mm256_set1_epi32(~1));
  const __m256 y = _mm256_cvtepi32_ps(j);
  j = _mm256_sub_epi32(j, _mm256_set1_epi32(2));

  // Sign of the result and which polynomial (sin vs cos) per octant.
  __m256i sign_i = _mm256_andnot_si256(j, _mm256_set1_epi32(4));
  sign_i = _mm256_slli_epi32(sign_i, 29);
  const __m256 poly_mask = _mm256_castsi256_ps(_mm256_cmpeq_epi32(
      _mm256_and_si256(j, _mm256_set1_epi32(2)), _mm256_setzero_si256()));
  const __m256 sign = _mm256_castsi256_ps(sign_i);

  // Extended-precision argument reduction: x - j * pi/4 in three parts.
  x = _mm256_fmadd_ps(y, dp1, x);
  x = _mm256_fmadd_ps(y, dp2, x);
  x = _mm256_fmadd_ps(y, dp3, x);
  const __m256 z = _mm256_mul_ps(x, x);

  // Cosine polynomial on [-pi/4, pi/4].
  __m256 yc = _mm256_set1_ps(2.443315711809948e-5f);
  yc = _mm256_fmadd_ps(yc, z, _mm256_set1_ps(-1.388731625493765e-3f));
  yc = _mm256_fmadd_ps(yc, z, _mm256_set1_ps(4.166664568298827e-2f));
  yc = _mm256_mul_ps(_mm256_mul_ps(yc, z), z);
  yc = _mm256_fnmadd_ps(_mm256_set1_ps(0.5f), z, yc);
  yc = _mm256_add_ps(yc, _mm256_set1_ps(1.0f));

  // Sine polynomial on [-pi/4, pi/4].
  __m256 ys = _mm256_set1_ps(-1.9515295891e-4f);
  ys = _mm256_fmadd_ps(ys, z, _mm256_set1_ps(8.3321608736e-3f));
  ys = _mm256_fmadd_ps(ys, z, _mm256_set1_ps(-1.6666654611e-1f));
  ys = _mm256_mul_ps(ys, _mm256_mul_ps(z, x));
  ys = _mm256_add_ps(ys, x);

  const __m256 r = _mm256_or_ps(_mm256_and_ps(poly_mask, ys),
                                _mm256_andnot_ps(poly_mask, yc));
  return _mm256_xor_ps(r, sign);
}

CYBERHD_AVX2 void cos_rbf_rows_avx2(const float* bases, std::size_t rows,
                                    std::size_t cols, const float* x,
                                    const float* biases, float* h) {
  // Beyond this the 3-part reduction in cos8 loses the argument; those
  // (pathological-lengthscale) lanes take libm instead.
  const __m256 range = _mm256_set1_ps(8192.0f);
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  alignas(32) float angle[8];
  alignas(32) float value[8];
  for (std::size_t r = 0; r < rows; r += 8) {
    const std::size_t m = std::min<std::size_t>(8, rows - r);
    for (std::size_t k = 0; k < m; ++k) {
      angle[k] = dot_f32_avx2(bases + (r + k) * cols, x, cols) + biases[r + k];
    }
    for (std::size_t k = m; k < 8; ++k) angle[k] = 0.0f;
    const __m256 t = _mm256_load_ps(angle);
    _mm256_store_ps(value, cos8(t));
    const int out_of_range = _mm256_movemask_ps(
        _mm256_cmp_ps(_mm256_and_ps(t, abs_mask), range, _CMP_GE_OQ));
    for (std::size_t k = 0; k < m; ++k) {
      h[r + k] =
          (out_of_range >> k) & 1 ? std::cos(angle[k]) : value[k];
    }
  }
}

// Multi-flow fused RBF encode tile. Two phases:
//
//  1. Angles: 4 flow rows advance together against one base row, so each
//     base row loaded from L2/L3 is amortized across 4 dots — the same
//     register blocking as similarities_tile_f32_avx2 with flows in the
//     role of query rows and bases in the role of classes. Every dot keeps
//     its own (acc0, acc1) pair and walks cols in exactly dot_f32_avx2's
//     order, so each angle is bit-identical to the one cos_rbf_rows_avx2
//     computes for that (flow, base) pair. Angles (dot + bias) are staged
//     straight into the output rows.
//
//     When cols is a small multiple of 8 (the NIDS feature widths), the
//     whole flow vector lives in registers and the per-(base,flow) hsum8
//     becomes the bottleneck instead of the base loads. The small-cols
//     path batches 8 base rows per flow: each row's (acc0 + acc1) vector
//     is kept whole, the 8 vectors are transposed, and the horizontal
//     reduction runs vertically with hsum8's exact add tree
//     ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) — per-lane float adds in the
//     same order, so every angle is still bit-identical, and the 8 results
//     land as one contiguous vector store instead of 8 scalar hsums.
//  2. Cosine epilogue: each flow's angle row is passed through cos8 with
//     the same range mask and libm fallback as cos_rbf_rows_avx2. cos8 is
//     lane-independent, so the different grouping of angles into vectors
//     cannot change any lane — the tile output is bit-identical per
//     backend to per-flow cos_rbf_rows calls. Four 8-angle groups advance
//     per iteration so their cos8 dependency chains overlap (the per-row
//     path is latency-bound on one chain at a time), and in-range groups
//     load and store the row directly instead of staging through scalars.
CYBERHD_AVX2 void cos_rbf_tile_f32_avx2(const float* bases, std::size_t rows,
                                        std::size_t cols, const float* x,
                                        std::size_t num_x,
                                        std::size_t x_stride,
                                        const float* biases, float* h,
                                        std::size_t h_stride) {
  std::size_t f = 0;
  if (cols != 0 && cols % 8 == 0 && cols <= 32) {
    const std::size_t nv = cols / 8;
    for (; f < num_x; ++f) {
      const float* xf = x + f * x_stride;
      float* hf = h + f * h_stride;
      __m256 xv[4];
      for (std::size_t c = 0; c < nv; ++c) {
        xv[c] = _mm256_loadu_ps(xf + 8 * c);
      }
      std::size_t r = 0;
      for (; r + 8 <= rows; r += 8) {
        __m256 v[8];
        for (int k = 0; k < 8; ++k) {
          const float* base = bases + (r + k) * cols;
          // dot_f32_avx2's chunk order: even 8-chunks into acc0, odd into
          // acc1 (the 16-wide loop pairs them; a leftover 8-chunk lands in
          // acc0) — reproduced exactly so each lane matches.
          __m256 acc0 = _mm256_setzero_ps();
          __m256 acc1 = _mm256_setzero_ps();
          for (std::size_t c = 0; c < nv; ++c) {
            if (c & 1) {
              acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(base + 8 * c), xv[c],
                                     acc1);
            } else {
              acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(base + 8 * c), xv[c],
                                     acc0);
            }
          }
          v[k] = _mm256_add_ps(acc0, acc1);
        }
        const __m256 t0 = _mm256_unpacklo_ps(v[0], v[1]);
        const __m256 t1 = _mm256_unpackhi_ps(v[0], v[1]);
        const __m256 t2 = _mm256_unpacklo_ps(v[2], v[3]);
        const __m256 t3 = _mm256_unpackhi_ps(v[2], v[3]);
        const __m256 t4 = _mm256_unpacklo_ps(v[4], v[5]);
        const __m256 t5 = _mm256_unpackhi_ps(v[4], v[5]);
        const __m256 t6 = _mm256_unpacklo_ps(v[6], v[7]);
        const __m256 t7 = _mm256_unpackhi_ps(v[6], v[7]);
        const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
        const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
        const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
        const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
        const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
        const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
        const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
        const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
        // Lane j of Vi is v[j] lane i; the vertical tree below is then
        // hsum8's scalar tree evaluated for all 8 rows at once.
        const __m256 V0 = _mm256_permute2f128_ps(u0, u4, 0x20);
        const __m256 V1 = _mm256_permute2f128_ps(u1, u5, 0x20);
        const __m256 V2 = _mm256_permute2f128_ps(u2, u6, 0x20);
        const __m256 V3 = _mm256_permute2f128_ps(u3, u7, 0x20);
        const __m256 V4 = _mm256_permute2f128_ps(u0, u4, 0x31);
        const __m256 V5 = _mm256_permute2f128_ps(u1, u5, 0x31);
        const __m256 V6 = _mm256_permute2f128_ps(u2, u6, 0x31);
        const __m256 V7 = _mm256_permute2f128_ps(u3, u7, 0x31);
        const __m256 s = _mm256_add_ps(
            _mm256_add_ps(_mm256_add_ps(V0, V4), _mm256_add_ps(V2, V6)),
            _mm256_add_ps(_mm256_add_ps(V1, V5), _mm256_add_ps(V3, V7)));
        _mm256_storeu_ps(hf + r,
                         _mm256_add_ps(s, _mm256_loadu_ps(biases + r)));
      }
      for (; r < rows; ++r) {
        hf[r] = dot_f32_avx2(bases + r * cols, xf, cols) + biases[r];
      }
    }
  }
  for (; f + 4 <= num_x; f += 4) {
    const float* x0 = x + (f + 0) * x_stride;
    const float* x1 = x + (f + 1) * x_stride;
    const float* x2 = x + (f + 2) * x_stride;
    const float* x3 = x + (f + 3) * x_stride;
    for (std::size_t r = 0; r < rows; ++r) {
      const float* base = bases + r * cols;
      __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
      __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
      __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
      __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
      std::size_t i = 0;
      for (; i + 16 <= cols; i += 16) {
        const __m256 v0 = _mm256_loadu_ps(base + i);
        const __m256 v1 = _mm256_loadu_ps(base + i + 8);
        a00 = _mm256_fmadd_ps(_mm256_loadu_ps(x0 + i), v0, a00);
        a01 = _mm256_fmadd_ps(_mm256_loadu_ps(x0 + i + 8), v1, a01);
        a10 = _mm256_fmadd_ps(_mm256_loadu_ps(x1 + i), v0, a10);
        a11 = _mm256_fmadd_ps(_mm256_loadu_ps(x1 + i + 8), v1, a11);
        a20 = _mm256_fmadd_ps(_mm256_loadu_ps(x2 + i), v0, a20);
        a21 = _mm256_fmadd_ps(_mm256_loadu_ps(x2 + i + 8), v1, a21);
        a30 = _mm256_fmadd_ps(_mm256_loadu_ps(x3 + i), v0, a30);
        a31 = _mm256_fmadd_ps(_mm256_loadu_ps(x3 + i + 8), v1, a31);
      }
      for (; i + 8 <= cols; i += 8) {
        const __m256 v0 = _mm256_loadu_ps(base + i);
        a00 = _mm256_fmadd_ps(_mm256_loadu_ps(x0 + i), v0, a00);
        a10 = _mm256_fmadd_ps(_mm256_loadu_ps(x1 + i), v0, a10);
        a20 = _mm256_fmadd_ps(_mm256_loadu_ps(x2 + i), v0, a20);
        a30 = _mm256_fmadd_ps(_mm256_loadu_ps(x3 + i), v0, a30);
      }
      float s0 = hsum8(_mm256_add_ps(a00, a01));
      float s1 = hsum8(_mm256_add_ps(a10, a11));
      float s2 = hsum8(_mm256_add_ps(a20, a21));
      float s3 = hsum8(_mm256_add_ps(a30, a31));
      for (; i < cols; ++i) {
        const float v = base[i];
        s0 += x0[i] * v;
        s1 += x1[i] * v;
        s2 += x2[i] * v;
        s3 += x3[i] * v;
      }
      const float bias = biases[r];
      h[(f + 0) * h_stride + r] = s0 + bias;
      h[(f + 1) * h_stride + r] = s1 + bias;
      h[(f + 2) * h_stride + r] = s2 + bias;
      h[(f + 3) * h_stride + r] = s3 + bias;
    }
  }
  for (; f < num_x; ++f) {
    const float* xf = x + f * x_stride;
    float* hf = h + f * h_stride;
    for (std::size_t r = 0; r < rows; ++r) {
      hf[r] = dot_f32_avx2(bases + r * cols, xf, cols) + biases[r];
    }
  }
  // Cosine epilogue over the staged angles — cos_rbf_rows_avx2's exact
  // cos pass, run per flow row.
  const __m256 range = _mm256_set1_ps(8192.0f);
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  alignas(32) float angle[8];
  alignas(32) float value[8];
  for (f = 0; f < num_x; ++f) {
    float* hf = h + f * h_stride;
    std::size_t r = 0;
    for (; r + 32 <= rows; r += 32) {
      __m256 t[4], c[4];
      for (int g = 0; g < 4; ++g) t[g] = _mm256_loadu_ps(hf + r + 8 * g);
      for (int g = 0; g < 4; ++g) c[g] = cos8(t[g]);
      int oob = 0;
      for (int g = 0; g < 4; ++g) {
        oob |= _mm256_movemask_ps(_mm256_cmp_ps(
                   _mm256_and_ps(t[g], abs_mask), range, _CMP_GE_OQ))
               << (8 * g);
      }
      if (oob == 0) {
        for (int g = 0; g < 4; ++g) _mm256_storeu_ps(hf + r + 8 * g, c[g]);
      } else {
        // Pathological lengthscales only: spill the offending groups and
        // route their flagged lanes through libm, exactly as the per-row
        // path does.
        for (int g = 0; g < 4; ++g) {
          _mm256_store_ps(angle, t[g]);
          _mm256_store_ps(value, c[g]);
          const int bits = (oob >> (8 * g)) & 0xff;
          for (std::size_t k = 0; k < 8; ++k) {
            hf[r + 8 * g + k] = (bits >> k) & 1 ? std::cos(angle[k])
                                                : value[k];
          }
        }
      }
    }
    for (; r < rows; r += 8) {
      const std::size_t m = std::min<std::size_t>(8, rows - r);
      for (std::size_t k = 0; k < m; ++k) angle[k] = hf[r + k];
      for (std::size_t k = m; k < 8; ++k) angle[k] = 0.0f;
      const __m256 t = _mm256_load_ps(angle);
      _mm256_store_ps(value, cos8(t));
      const int out_of_range = _mm256_movemask_ps(
          _mm256_cmp_ps(_mm256_and_ps(t, abs_mask), range, _CMP_GE_OQ));
      for (std::size_t k = 0; k < m; ++k) {
        hf[r + k] =
            (out_of_range >> k) & 1 ? std::cos(angle[k]) : value[k];
      }
    }
  }
}

CYBERHD_AVX2 std::size_t xor_popcount_words_avx2(const std::uint64_t* a,
                                                 const std::uint64_t* b,
                                                 std::size_t n) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t i = 0;
  // 8 nibble-LUT rounds (32 words) per vpsadbw: byte counters reach at
  // most 8 * 8 = 64, well under overflow.
  while (n - i >= 4) {
    const std::size_t rounds = std::min<std::size_t>((n - i) / 4, 8);
    __m256i bytes = zero;
    for (std::size_t k = 0; k < rounds; ++k, i += 4) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
      const __m256i lo = _mm256_and_si256(v, nibble);
      const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), nibble);
      bytes = _mm256_add_epi8(bytes, _mm256_shuffle_epi8(lut, lo));
      bytes = _mm256_add_epi8(bytes, _mm256_shuffle_epi8(lut, hi));
    }
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t count = static_cast<std::size_t>(lanes[0] + lanes[1] +
                                               lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return count;
}

CYBERHD_AVX2 std::int64_t quantized_dot_i8_avx2(const std::int8_t* a,
                                                const std::int8_t* b,
                                                std::size_t n) {
  __m256i acc64 = _mm256_setzero_si256();
  std::size_t i = 0;
  while (n - i >= 16) {
    // Each 16-element round adds at most 2 * 127^2 to an i32 lane; cap the
    // rounds per i32 accumulator far below overflow before widening.
    const std::size_t rounds = std::min<std::size_t>((n - i) / 16, 32768);
    __m256i acc32 = _mm256_setzero_si256();
    for (std::size_t k = 0; k < rounds; ++k, i += 16) {
      const __m256i av = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
      const __m256i bv = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
      acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(av, bv));
    }
    const __m256i lo =
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(acc32));
    const __m256i hi =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(acc32, 1));
    acc64 = _mm256_add_epi64(acc64, _mm256_add_epi64(lo, hi));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc64);
  std::int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += static_cast<std::int64_t>(a[i]) * b[i];
  return sum;
}

// Register-blocked int8 similarity tile, the quantized sibling of
// similarities_tile_f32_avx2: 4 query rows advance together against one
// class row, each class load amortized over 4 vpmaddwd dots. Integer sums
// are order-independent, so unlike the float tile no accumulation-order
// mirroring is needed — every out entry is the exact dot. The i32
// accumulators follow quantized_dot_i8_avx2's widening cap: each 16-element
// round adds at most 2 * 127^2 per lane, so 32768 rounds stay far below
// i32 overflow before the i64 widening.
/// acc64 += the 8 i32 lanes of acc32, widened (the overflow-safe widening
/// step shared with quantized_dot_i8_avx2).
CYBERHD_AVX2 inline __m256i widen_add_i32_to_i64(__m256i acc64,
                                                 __m256i acc32) {
  const __m256i lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(acc32));
  const __m256i hi =
      _mm256_cvtepi32_epi64(_mm256_extracti128_si256(acc32, 1));
  return _mm256_add_epi64(acc64, _mm256_add_epi64(lo, hi));
}

CYBERHD_AVX2 inline std::int64_t hsum_i64x4(__m256i acc64) {
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc64);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

// 4-row inner body over explicit row pointers, shared by the contiguous
// tile and its gather variant (exact-integer contract: both are exact, so
// the sharing is about code size, not numerics).
CYBERHD_AVX2 inline void sim_tile_i8_block4_avx2(
    const std::int8_t* h0, const std::int8_t* h1, const std::int8_t* h2,
    const std::int8_t* h3, const std::int8_t* classes,
    std::size_t num_classes, std::size_t dims, std::int64_t* out_block) {
  for (std::size_t c = 0; c < num_classes; ++c) {
    const std::int8_t* cls = classes + c * dims;
    __m256i a0 = _mm256_setzero_si256(), a1 = _mm256_setzero_si256();
    __m256i a2 = _mm256_setzero_si256(), a3 = _mm256_setzero_si256();
    std::size_t i = 0;
    while (dims - i >= 16) {
      const std::size_t rounds =
          std::min<std::size_t>((dims - i) / 16, 32768);
      __m256i b0 = _mm256_setzero_si256(), b1 = _mm256_setzero_si256();
      __m256i b2 = _mm256_setzero_si256(), b3 = _mm256_setzero_si256();
      for (std::size_t k = 0; k < rounds; ++k, i += 16) {
        const __m256i cv = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cls + i)));
        b0 = _mm256_add_epi32(
            b0, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(h0 + i))),
                    cv));
        b1 = _mm256_add_epi32(
            b1, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(h1 + i))),
                    cv));
        b2 = _mm256_add_epi32(
            b2, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(h2 + i))),
                    cv));
        b3 = _mm256_add_epi32(
            b3, _mm256_madd_epi16(
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(h3 + i))),
                    cv));
      }
      a0 = widen_add_i32_to_i64(a0, b0);
      a1 = widen_add_i32_to_i64(a1, b1);
      a2 = widen_add_i32_to_i64(a2, b2);
      a3 = widen_add_i32_to_i64(a3, b3);
    }
    std::int64_t s0 = hsum_i64x4(a0), s1 = hsum_i64x4(a1);
    std::int64_t s2 = hsum_i64x4(a2), s3 = hsum_i64x4(a3);
    for (; i < dims; ++i) {
      const std::int64_t v = cls[i];
      s0 += static_cast<std::int64_t>(h0[i]) * v;
      s1 += static_cast<std::int64_t>(h1[i]) * v;
      s2 += static_cast<std::int64_t>(h2[i]) * v;
      s3 += static_cast<std::int64_t>(h3[i]) * v;
    }
    out_block[0 * num_classes + c] = s0;
    out_block[1 * num_classes + c] = s1;
    out_block[2 * num_classes + c] = s2;
    out_block[3 * num_classes + c] = s3;
  }
}

CYBERHD_AVX2 void similarities_tile_i8_avx2(const std::int8_t* h,
                                            std::size_t rows,
                                            const std::int8_t* classes,
                                            std::size_t num_classes,
                                            std::size_t dims,
                                            std::int64_t* out) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    sim_tile_i8_block4_avx2(h + (r + 0) * dims, h + (r + 1) * dims,
                            h + (r + 2) * dims, h + (r + 3) * dims, classes,
                            num_classes, dims, out + r * num_classes);
  }
  for (; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] =
          quantized_dot_i8_avx2(h + r * dims, classes + c * dims, dims);
    }
  }
}

CYBERHD_AVX2 void similarities_tile_i8_gather_avx2(
    const std::int8_t* const* h_rows, std::size_t rows,
    const std::int8_t* classes, std::size_t num_classes, std::size_t dims,
    std::int64_t* out) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    sim_tile_i8_block4_avx2(h_rows[r + 0], h_rows[r + 1], h_rows[r + 2],
                            h_rows[r + 3], classes, num_classes, dims,
                            out + r * num_classes);
  }
  for (; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] =
          quantized_dot_i8_avx2(h_rows[r], classes + c * dims, dims);
    }
  }
}

CYBERHD_AVX2 void hamming_tile_1b_avx2(const std::uint64_t* h,
                                       std::size_t rows,
                                       const std::uint64_t* classes,
                                       std::size_t num_classes,
                                       std::size_t words,
                                       std::uint32_t* out) {
  // Per-pair word scans through the nibble-LUT popcount: at serving widths
  // (D <= 16k -> words <= 256) a packed row block plus the class block fit
  // in L1, so the tile gains nothing from further register blocking.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] = static_cast<std::uint32_t>(
          xor_popcount_words_avx2(h + r * words, classes + c * words, words));
    }
  }
}

CYBERHD_AVX2 void hamming_tile_1b_gather_avx2(const std::uint64_t* const* h_rows,
                                              std::size_t rows,
                                              const std::uint64_t* classes,
                                              std::size_t num_classes,
                                              std::size_t words,
                                              std::uint32_t* out) {
  // Same per-pair structure as the contiguous tile with row r read through
  // h_rows[r]; exact-integer, so trivially bit-identical.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] = static_cast<std::uint32_t>(
          xor_popcount_words_avx2(h_rows[r], classes + c * words, words));
    }
  }
}

constexpr Kernels kAvx2Kernels = {
    .name = "avx2",
    .dot_f32 = dot_f32_avx2,
    .axpy_f32 = axpy_f32_avx2,
    .mul_acc_f32 = mul_acc_f32_avx2,
    .similarities_tile_f32 = similarities_tile_f32_avx2,
    .cos_rbf_rows = cos_rbf_rows_avx2,
    .cos_rbf_tile_f32 = cos_rbf_tile_f32_avx2,
    .xor_popcount_words = xor_popcount_words_avx2,
    .quantized_dot_i8 = quantized_dot_i8_avx2,
    .similarities_tile_i8 = similarities_tile_i8_avx2,
    .hamming_tile_1b = hamming_tile_1b_avx2,
    .similarities_tile_f32_gather = similarities_tile_f32_gather_avx2,
    .similarities_tile_i8_gather = similarities_tile_i8_gather_avx2,
    .hamming_tile_1b_gather = hamming_tile_1b_gather_avx2,
};

}  // namespace

const Kernels* avx2_kernels() noexcept { return &kAvx2Kernels; }

}  // namespace cyberhd::core

#else  // non-x86 or unsupported compiler: no AVX2 backend in this binary.

namespace cyberhd::core {
const Kernels* avx2_kernels() noexcept { return nullptr; }
}  // namespace cyberhd::core

#endif
