// Portable scalar backend — the reference semantics of every kernel.
//
// The float loops are ported verbatim from the pre-kernel implementations
// (core/matrix.cpp, hdc/encoder.cpp, core/bitpack.cpp), so a scalar-selected
// build reproduces the library's historical numerics bit-for-bit.
#include <bit>
#include <cmath>

#include "core/kernels/kernels.hpp"

namespace cyberhd::core {
namespace {

float dot_f32_scalar(const float* a, const float* b, std::size_t n) {
  // Four accumulators to break the dependency chain; gcc vectorizes this.
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

void axpy_f32_scalar(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void mul_acc_f32_scalar(const float* a, const float* b, float* acc,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += a[i] * b[i];
}

void similarities_tile_f32_scalar(const float* h, std::size_t rows,
                                  const float* classes,
                                  std::size_t num_classes, std::size_t dims,
                                  float* out) {
  // Reference semantics: one dot per (row, class) pair, each in dot_f32's
  // accumulation order. SIMD backends block over rows for locality but
  // must reproduce exactly these per-pair values.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] =
          dot_f32_scalar(h + r * dims, classes + c * dims, dims);
    }
  }
}

void cos_rbf_rows_scalar(const float* bases, std::size_t rows,
                         std::size_t cols, const float* x, const float* biases,
                         float* h) {
  for (std::size_t r = 0; r < rows; ++r) {
    h[r] = std::cos(dot_f32_scalar(bases + r * cols, x, cols) + biases[r]);
  }
}

void cos_rbf_tile_f32_scalar(const float* bases, std::size_t rows,
                             std::size_t cols, const float* x,
                             std::size_t num_x, std::size_t x_stride,
                             const float* biases, float* h,
                             std::size_t h_stride) {
  // Reference semantics: per (flow, base) pair exactly the cos_rbf_rows
  // expression. SIMD backends block over flows for base-row reuse but must
  // reproduce exactly these per-pair values.
  for (std::size_t f = 0; f < num_x; ++f) {
    const float* xf = x + f * x_stride;
    float* hf = h + f * h_stride;
    for (std::size_t r = 0; r < rows; ++r) {
      hf[r] =
          std::cos(dot_f32_scalar(bases + r * cols, xf, cols) + biases[r]);
    }
  }
}

std::size_t xor_popcount_words_scalar(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return count;
}

std::int64_t quantized_dot_i8_scalar(const std::int8_t* a,
                                     const std::int8_t* b, std::size_t n) {
  std::int64_t s = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<std::int64_t>(a[i]) * b[i];
  }
  return s;
}

void similarities_tile_i8_scalar(const std::int8_t* h, std::size_t rows,
                                 const std::int8_t* classes,
                                 std::size_t num_classes, std::size_t dims,
                                 std::int64_t* out) {
  // Reference semantics: one exact integer dot per (row, class) pair.
  // SIMD backends may block and reassociate freely — integer sums are
  // order-independent, so exact equality is the contract, not a tolerance.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] =
          quantized_dot_i8_scalar(h + r * dims, classes + c * dims, dims);
    }
  }
}

void hamming_tile_1b_scalar(const std::uint64_t* h, std::size_t rows,
                            const std::uint64_t* classes,
                            std::size_t num_classes, std::size_t words,
                            std::uint32_t* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] = static_cast<std::uint32_t>(
          xor_popcount_words_scalar(h + r * words, classes + c * words,
                                    words));
    }
  }
}

// Gather (indirect) tile variants: identical per-pair loops, with row r
// read through h_rows[r] instead of h + r * dims. Same dot per pair, so
// each out entry is bit-identical to the contiguous kernel over the same
// row bytes.
void similarities_tile_f32_gather_scalar(const float* const* h_rows,
                                         std::size_t rows,
                                         const float* classes,
                                         std::size_t num_classes,
                                         std::size_t dims, float* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] =
          dot_f32_scalar(h_rows[r], classes + c * dims, dims);
    }
  }
}

void similarities_tile_i8_gather_scalar(const std::int8_t* const* h_rows,
                                        std::size_t rows,
                                        const std::int8_t* classes,
                                        std::size_t num_classes,
                                        std::size_t dims, std::int64_t* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] =
          quantized_dot_i8_scalar(h_rows[r], classes + c * dims, dims);
    }
  }
}

void hamming_tile_1b_gather_scalar(const std::uint64_t* const* h_rows,
                                   std::size_t rows,
                                   const std::uint64_t* classes,
                                   std::size_t num_classes,
                                   std::size_t words, std::uint32_t* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      out[r * num_classes + c] = static_cast<std::uint32_t>(
          xor_popcount_words_scalar(h_rows[r], classes + c * words, words));
    }
  }
}

constexpr Kernels kScalarKernels = {
    .name = "scalar",
    .dot_f32 = dot_f32_scalar,
    .axpy_f32 = axpy_f32_scalar,
    .mul_acc_f32 = mul_acc_f32_scalar,
    .similarities_tile_f32 = similarities_tile_f32_scalar,
    .cos_rbf_rows = cos_rbf_rows_scalar,
    .cos_rbf_tile_f32 = cos_rbf_tile_f32_scalar,
    .xor_popcount_words = xor_popcount_words_scalar,
    .quantized_dot_i8 = quantized_dot_i8_scalar,
    .similarities_tile_i8 = similarities_tile_i8_scalar,
    .hamming_tile_1b = hamming_tile_1b_scalar,
    .similarities_tile_f32_gather = similarities_tile_f32_gather_scalar,
    .similarities_tile_i8_gather = similarities_tile_i8_gather_scalar,
    .hamming_tile_1b_gather = hamming_tile_1b_gather_scalar,
};

}  // namespace

const Kernels& scalar_kernels() noexcept { return kScalarKernels; }

}  // namespace cyberhd::core
