// Runtime-dispatched SIMD kernel layer.
//
// Every arithmetic hot path in the library — float dot products, the fused
// RBF encode (dot + bias + cos), packed XOR/popcount similarity, and the
// quantized int8 dot — funnels through one table of function pointers, the
// Kernels struct. Two backends are provided:
//
//  * scalar — portable C++, the reference semantics. Identical loop
//    structure to the pre-kernel code, so a scalar-selected build computes
//    bit-for-bit what the library always computed.
//  * avx2   — AVX2+FMA intrinsics (x86-64 only), selected at startup via
//    CPUID. 8/16-lane float kernels, a vpshufb nibble-LUT popcount, a
//    vpmaddwd int8 dot, and an 8-lane polynomial cosine for the fused RBF
//    encode.
//
// Selection happens exactly once (first call to active_kernels()):
// AVX2+FMA hardware picks the avx2 table, everything else the scalar table.
// The environment variable CYBERHD_KERNELS overrides the choice
// ("scalar" forces the portable backend anywhere; "avx2" asks for the SIMD
// backend and falls back to scalar when the CPU lacks it). The dispatch is
// independent of the CYBERHD_NATIVE build flag: a portable -march=x86-64
// binary still runs the AVX2 backend on capable hardware.
//
// Contracts shared by all backends:
//  * integer kernels (xor_popcount_words, quantized_dot_i8) are exact —
//    backends must agree bit-for-bit;
//  * float kernels may reassociate sums, so backends agree only to rounding
//    (tests pin the tolerance);
//  * within one backend, cos_rbf_rows(rows=N) and N calls with rows=1 yield
//    bit-identical values per row — encode() and encode_dims() stay
//    consistent after regeneration.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cyberhd::core {

/// Table of the library's arithmetic hot-path kernels. All pointers are
/// always non-null; spans are passed as raw pointer + length because these
/// are the innermost loops.
struct Kernels {
  /// Backend name for logs/benches ("scalar", "avx2").
  const char* name;

  /// sum_i a[i] * b[i].
  float (*dot_f32)(const float* a, const float* b, std::size_t n);

  /// y[i] += alpha * x[i].
  void (*axpy_f32)(float alpha, const float* x, float* y, std::size_t n);

  /// acc[i] += a[i] * b[i] (elementwise bind-and-bundle of the ID/level
  /// encoder).
  void (*mul_acc_f32)(const float* a, const float* b, float* acc,
                      std::size_t n);

  /// Fused RBF encode over contiguous base rows:
  ///   h[r] = cos(dot(bases + r * cols, x) + biases[r])   for r in [0, rows).
  /// `bases` is a row-major rows x cols block.
  void (*cos_rbf_rows)(const float* bases, std::size_t rows, std::size_t cols,
                       const float* x, const float* biases, float* h);

  /// sum_i popcount(a[i] ^ b[i]) — the Hamming distance of two packed
  /// bipolar hypervectors (bitpack.hpp guarantees padding bits are zero).
  std::size_t (*xor_popcount_words)(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t n);

  /// sum_i a[i] * b[i] over signed 8-bit levels, accumulated in int64 —
  /// the quantized-domain dot for bitwidths <= 8.
  std::int64_t (*quantized_dot_i8)(const std::int8_t* a, const std::int8_t* b,
                                   std::size_t n);
};

/// The portable reference backend. Always available.
const Kernels& scalar_kernels() noexcept;

/// The AVX2+FMA backend, or nullptr when this binary was built for a
/// non-x86 target. A non-null return says the code exists, not that the
/// CPU can run it — check cpu_supports_avx2() before calling it directly.
const Kernels* avx2_kernels() noexcept;

/// True when the running CPU reports AVX2 and FMA.
bool cpu_supports_avx2() noexcept;

/// The backend selected for this process (CPUID once at first use;
/// overridable via CYBERHD_KERNELS=scalar|avx2).
const Kernels& active_kernels() noexcept;

}  // namespace cyberhd::core
