// Runtime-dispatched SIMD kernel layer.
//
// Every arithmetic hot path in the library — float dot products, the fused
// RBF encode (dot + bias + cos), packed XOR/popcount similarity, and the
// quantized int8 dot — funnels through one table of function pointers, the
// Kernels struct. Two backends are provided:
//
//  * scalar — portable C++, the reference semantics. Identical loop
//    structure to the pre-kernel code, so a scalar-selected build computes
//    bit-for-bit what the library always computed.
//  * avx2   — AVX2+FMA intrinsics (x86-64 only), selected at startup via
//    CPUID. 8/16-lane float kernels, a vpshufb nibble-LUT popcount, a
//    vpmaddwd int8 dot, and an 8-lane polynomial cosine for the fused RBF
//    encode.
//  * avx512 — AVX-512F 32-lane float kernels (dot, axpy, the blocked
//    similarity tile) plus a VPOPCNTDQ popcount when the CPU has it;
//    everything else (the polynomial cosine, the int8 dot) is inherited
//    from the avx2 table, which any AVX-512 machine also runs.
//
// Selection happens exactly once (first call to active_kernels()): the
// best table the CPUID feature bits allow — avx512, then avx2, then
// scalar. The environment variable CYBERHD_KERNELS overrides the choice
// ("scalar" forces the portable backend anywhere; "avx2"/"avx512" ask for
// a SIMD backend and fall back to the best available when the CPU lacks
// it). The dispatch is independent of the CYBERHD_NATIVE build flag: a
// portable -march=x86-64 binary still runs the AVX2/AVX-512 backends on
// capable hardware.
//
// Contracts shared by all backends:
//  * integer kernels (xor_popcount_words, quantized_dot_i8, and the packed
//    serving tiles similarities_tile_i8 / hamming_tile_1b) are exact —
//    backends must agree bit-for-bit;
//  * float kernels may reassociate sums, so backends agree only to rounding
//    (tests pin the tolerance);
//  * within one backend, cos_rbf_rows(rows=N) and N calls with rows=1 yield
//    bit-identical values per row — encode() and encode_dims() stay
//    consistent after regeneration.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cyberhd::core {

/// Table of the library's arithmetic hot-path kernels. All pointers are
/// always non-null; spans are passed as raw pointer + length because these
/// are the innermost loops.
struct Kernels {
  /// Backend name for logs/benches ("scalar", "avx2").
  const char* name;

  /// sum_i a[i] * b[i].
  float (*dot_f32)(const float* a, const float* b, std::size_t n);

  /// y[i] += alpha * x[i].
  void (*axpy_f32)(float alpha, const float* x, float* y, std::size_t n);

  /// acc[i] += a[i] * b[i] (elementwise bind-and-bundle of the ID/level
  /// encoder).
  void (*mul_acc_f32)(const float* a, const float* b, float* acc,
                      std::size_t n);

  /// Blocked similarity tile: raw dot products of a tile of encoded rows
  /// against every class hypervector,
  ///   out[r * num_classes + c] = dot(h + r * dims, classes + c * dims)
  /// for r in [0, rows), c in [0, num_classes). `h` is a row-major
  /// rows x dims tile, `classes` a row-major num_classes x dims block.
  /// SIMD backends register-block over query rows so each class row is
  /// loaded once per row block (class vectors stay cache-resident while the
  /// tile streams), but every individual dot accumulates in exactly
  /// dot_f32's order — each out entry is bit-identical to a per-pair
  /// dot_f32 call on the same backend. This is the kernel behind
  /// HdcModel::similarities_batch and the minibatch trainer.
  void (*similarities_tile_f32)(const float* h, std::size_t rows,
                                const float* classes, std::size_t num_classes,
                                std::size_t dims, float* out);

  /// Fused RBF encode over contiguous base rows:
  ///   h[r] = cos(dot(bases + r * cols, x) + biases[r])   for r in [0, rows).
  /// `bases` is a row-major rows x cols block.
  void (*cos_rbf_rows)(const float* bases, std::size_t rows, std::size_t cols,
                       const float* x, const float* biases, float* h);

  /// Multi-flow fused RBF encode tile — the GEMM-shaped batched form of
  /// cos_rbf_rows:
  ///   h[f * h_stride + r] =
  ///       cos(dot(bases + r * cols, x + f * x_stride) + biases[r])
  /// for f in [0, num_x), r in [0, rows). `bases` is a row-major
  /// rows x cols panel, `x` holds num_x flow rows at stride `x_stride`
  /// floats, and `h` receives each flow's encodings at stride `h_stride`
  /// floats (callers pass bases + p0 * cols, biases + p0, and
  /// h + p0 to fill an interior base panel [p0, p0 + rows)). SIMD
  /// backends register-block over FLOWS so each base row loaded from
  /// L2/L3 is reused once per flow in the block, but every (base, flow)
  /// dot accumulates in exactly dot_f32's order and the cosine epilogue
  /// is lane-independent — so each h entry is bit-identical to a
  /// cos_rbf_rows call over the same flow on the same backend.
  void (*cos_rbf_tile_f32)(const float* bases, std::size_t rows,
                           std::size_t cols, const float* x,
                           std::size_t num_x, std::size_t x_stride,
                           const float* biases, float* h,
                           std::size_t h_stride);

  /// sum_i popcount(a[i] ^ b[i]) — the Hamming distance of two packed
  /// bipolar hypervectors (bitpack.hpp guarantees padding bits are zero).
  std::size_t (*xor_popcount_words)(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t n);

  /// sum_i a[i] * b[i] over signed 8-bit levels, accumulated in int64 —
  /// the quantized-domain dot for bitwidths <= 8.
  std::int64_t (*quantized_dot_i8)(const std::int8_t* a, const std::int8_t* b,
                                   std::size_t n);

  /// Blocked int8 similarity tile: raw integer dot products of a tile of
  /// quantized query rows against every quantized class row,
  ///   out[r * num_classes + c] = sum_i h[r*dims + i] * classes[c*dims + i]
  /// for r in [0, rows), c in [0, num_classes). Same register-blocking
  /// contract as similarities_tile_f32 (SIMD backends amortize each class
  /// load over a block of query rows), but exact-integer like
  /// quantized_dot_i8: every backend must agree bit-for-bit with a
  /// per-pair scalar dot. This is the stage-2 kernel of the packed
  /// quantized serving pipeline (bits in {2, 4, 8}).
  void (*similarities_tile_i8)(const std::int8_t* h, std::size_t rows,
                               const std::int8_t* classes,
                               std::size_t num_classes, std::size_t dims,
                               std::int64_t* out);

  /// Packed-XOR/popcount Hamming tile over 64-bit words:
  ///   out[r * num_classes + c] =
  ///       sum_w popcount(h[r*words + w] ^ classes[c*words + w])
  /// for r in [0, rows), c in [0, num_classes). `h` is a row-major
  /// rows x words tile of packed bipolar rows, `classes` a row-major
  /// num_classes x words block (bitpack.hpp's tail-masking invariant
  /// applies to both). Exact-integer: all backends agree bit-for-bit.
  /// This is the stage-2 kernel of the 1-bit packed serving pipeline.
  void (*hamming_tile_1b)(const std::uint64_t* h, std::size_t rows,
                          const std::uint64_t* classes,
                          std::size_t num_classes, std::size_t words,
                          std::uint32_t* out);

  // -- gather (indirect) tile variants ---------------------------------------
  // The zero-copy serving path scores cache hits IN PLACE: instead of
  // memcpying each hit row into a contiguous staging batch, stage 1 hands
  // stage 2 a per-row pointer table (rows borrowed from the cache ring,
  // miss rows from the staging block — any mix). The gather variants below
  // read query rows through that table; each backend implements them with
  // THE SAME register-blocked inner body as its contiguous sibling (only
  // the row-pointer derivation differs), so every out entry is
  // bit-identical to the contiguous kernel over the same row bytes — the
  // float contract per backend, the exact-integer contract everywhere.

  /// similarities_tile_f32 over a row-pointer table: h_rows[r] points at
  /// row r's dims floats (rows need not be contiguous or ordered).
  void (*similarities_tile_f32_gather)(const float* const* h_rows,
                                       std::size_t rows, const float* classes,
                                       std::size_t num_classes,
                                       std::size_t dims, float* out);

  /// similarities_tile_i8 over a row-pointer table.
  void (*similarities_tile_i8_gather)(const std::int8_t* const* h_rows,
                                      std::size_t rows,
                                      const std::int8_t* classes,
                                      std::size_t num_classes,
                                      std::size_t dims, std::int64_t* out);

  /// hamming_tile_1b over a row-pointer table.
  void (*hamming_tile_1b_gather)(const std::uint64_t* const* h_rows,
                                 std::size_t rows,
                                 const std::uint64_t* classes,
                                 std::size_t num_classes, std::size_t words,
                                 std::uint32_t* out);
};

/// The portable reference backend. Always available.
const Kernels& scalar_kernels() noexcept;

/// The AVX2+FMA backend, or nullptr when this binary was built for a
/// non-x86 target. A non-null return says the code exists, not that the
/// CPU can run it — check cpu_supports_avx2() before calling it directly.
const Kernels* avx2_kernels() noexcept;

/// The AVX-512 backend (32-lane float kernels layered over the avx2 table,
/// VPOPCNTDQ popcount when the CPU reports it), or nullptr when this binary
/// was built for a non-x86 target. As with avx2_kernels(), a non-null
/// return says the code exists — check cpu_supports_avx512() before
/// calling it directly.
const Kernels* avx512_kernels() noexcept;

/// True when the running CPU reports AVX2 and FMA.
bool cpu_supports_avx2() noexcept;

/// True when the running CPU reports the AVX-512 foundation set this
/// backend needs (F + DQ, plus the AVX2+FMA the inherited kernels use).
bool cpu_supports_avx512() noexcept;

/// True when the running CPU additionally reports AVX512VPOPCNTDQ (the
/// vectorized 64-bit popcount; Ice Lake and newer).
bool cpu_supports_avx512_vpopcntdq() noexcept;

/// True when the running CPU additionally reports AVX512VNNI (vpdpbusd,
/// the fused 8-bit dot-product accumulate; Cascade Lake and newer). Gates
/// the VNNI variant of similarities_tile_i8 the same way VPOPCNTDQ gates
/// the vectorized popcount — requested-but-absent falls back to the
/// inherited avx2 tile.
bool cpu_supports_avx512_vnni() noexcept;

/// The backend selected for this process (CPUID once at first use;
/// overridable via CYBERHD_KERNELS=scalar|avx2|avx512).
const Kernels& active_kernels() noexcept;

}  // namespace cyberhd::core
