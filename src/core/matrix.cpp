#include "core/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/kernels/kernels.hpp"

namespace cyberhd::core {

void Matrix::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

float dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return active_kernels().dot_f32(a.data(), b.data(), a.size());
}

float norm2(std::span<const float> a) noexcept {
  return std::sqrt(dot(a, a));
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  active_kernels().axpy_f32(alpha, x.data(), y.data(), x.size());
}

void scale(std::span<float> x, float alpha) noexcept {
  for (float& v : x) v *= alpha;
}

float normalize_l2(std::span<float> x) noexcept {
  const float n = norm2(x);
  if (n > 0.0f) scale(x, 1.0f / n);
  return n;
}

float cosine(std::span<const float> a, std::span<const float> b) noexcept {
  const float na = norm2(a);
  const float nb = norm2(b);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return dot(a, b) / (na * nb);
}

void gemv(const Matrix& a, std::span<const float> x,
          std::span<float> y) noexcept {
  assert(x.size() == a.cols());
  assert(y.size() == a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    y[r] = dot(a.row(r), x);
  }
}

void gemv_transposed(const Matrix& a, std::span<const float> x,
                     std::span<float> y) noexcept {
  assert(x.size() == a.rows());
  assert(y.size() == a.cols());
  std::fill(y.begin(), y.end(), 0.0f);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    axpy(x[r], a.row(r), y);
  }
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.cols() == b.rows());
  c.resize(a.rows(), b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  // ikj order: streams through B and C rows, auto-vectorizes the inner loop.
  for (std::size_t i = 0; i < m; ++i) {
    float* ci = c.data() + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = a(i, p);
      if (aip == 0.0f) continue;
      const float* bp = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

std::size_t argmax(std::span<const float> x) noexcept {
  if (x.empty()) return 0;
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

std::string shape_string(const Matrix& m) {
  // Built with append rather than chained operator+ to sidestep a GCC 12
  // -Wrestrict false positive (GCC PR105329) at -O2 and above.
  std::string s = "(";
  s += std::to_string(m.rows());
  s += " x ";
  s += std::to_string(m.cols());
  s += ")";
  return s;
}

}  // namespace cyberhd::core
