#include "core/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace cyberhd::core {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance_population() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::variance_sample() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance_population());
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void column_variances(const float* data, std::size_t rows, std::size_t cols,
                      std::span<float> out) noexcept {
  assert(out.size() == cols);
  std::fill(out.begin(), out.end(), 0.0f);
  if (rows == 0) return;
  // Two passes: means then squared deviations. rows (= #classes) is small,
  // cols (= dimensionality) is large, so both passes stream row-major.
  std::vector<double> mean(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = data + r * cols;
    for (std::size_t c = 0; c < cols; ++c) mean[c] += row[c];
  }
  const double inv = 1.0 / static_cast<double>(rows);
  for (std::size_t c = 0; c < cols; ++c) mean[c] *= inv;
  std::vector<double> acc(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = data + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      const double d = row[c] - mean[c];
      acc[c] += d * d;
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    out[c] = static_cast<float>(acc[c] * inv);
  }
}

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : k_(num_classes), cells_(num_classes * num_classes, 0) {
  assert(num_classes > 0);
}

void ConfusionMatrix::add(std::size_t truth, std::size_t predicted) {
  assert(truth < k_ && predicted < k_);
  ++cells_[truth * k_ + predicted];
  ++total_;
}

std::size_t ConfusionMatrix::at(std::size_t truth,
                                std::size_t predicted) const {
  assert(truth < k_ && predicted < k_);
  return cells_[truth * k_ + predicted];
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < k_; ++c) correct += cells_[c * k_ + c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::size_t cls) const noexcept {
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < k_; ++t) predicted += cells_[t * k_ + cls];
  if (predicted == 0) return 0.0;
  return static_cast<double>(cells_[cls * k_ + cls]) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t cls) const noexcept {
  std::size_t actual = 0;
  for (std::size_t p = 0; p < k_; ++p) actual += cells_[cls * k_ + p];
  if (actual == 0) return 0.0;
  return static_cast<double>(cells_[cls * k_ + cls]) /
         static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::size_t cls) const noexcept {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const noexcept {
  double sum = 0.0;
  std::size_t present = 0;
  for (std::size_t c = 0; c < k_; ++c) {
    std::size_t actual = 0;
    for (std::size_t p = 0; p < k_; ++p) actual += cells_[c * k_ + p];
    if (actual == 0) continue;
    sum += f1(c);
    ++present;
  }
  return present ? sum / static_cast<double>(present) : 0.0;
}

double ConfusionMatrix::detection_rate(std::size_t benign_class) const noexcept {
  double sum = 0.0;
  std::size_t present = 0;
  for (std::size_t c = 0; c < k_; ++c) {
    if (c == benign_class) continue;
    std::size_t actual = 0;
    for (std::size_t p = 0; p < k_; ++p) actual += cells_[c * k_ + p];
    if (actual == 0) continue;
    sum += recall(c);
    ++present;
  }
  return present ? sum / static_cast<double>(present) : 0.0;
}

double ConfusionMatrix::false_positive_rate(
    std::size_t benign_class) const noexcept {
  std::size_t benign_total = 0;
  for (std::size_t p = 0; p < k_; ++p) {
    benign_total += cells_[benign_class * k_ + p];
  }
  if (benign_total == 0) return 0.0;
  const std::size_t flagged =
      benign_total - cells_[benign_class * k_ + benign_class];
  return static_cast<double>(flagged) / static_cast<double>(benign_total);
}

std::string ConfusionMatrix::to_string(
    const std::vector<std::string>& class_names) const {
  std::ostringstream os;
  os << "truth \\ pred";
  for (std::size_t c = 0; c < k_; ++c) {
    os << '\t' << (c < class_names.size() ? class_names[c] : std::to_string(c));
  }
  os << '\n';
  for (std::size_t t = 0; t < k_; ++t) {
    os << (t < class_names.size() ? class_names[t] : std::to_string(t));
    for (std::size_t p = 0; p < k_; ++p) os << '\t' << at(t, p);
    os << '\n';
  }
  return os.str();
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geometric_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    assert(x > 0.0);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

}  // namespace cyberhd::core
