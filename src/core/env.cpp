#include "core/env.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cyberhd::core::env {

namespace {

/// Parse a non-negative integer digit-by-digit (strtoull would wrap "-1"
/// to ULLONG_MAX and accept leading whitespace/signs we want to reject).
/// Returns false on any non-digit character or overflow.
bool parse_u64(const char* raw, std::uint64_t& out) noexcept {
  std::uint64_t v = 0;
  const char* p = raw;
  if (*p == '\0') return false;
  for (; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    const auto digit = static_cast<std::uint64_t>(*p - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

void warn(const char* name, const char* raw, const char* expected,
          const char* used) noexcept {
  std::fprintf(stderr,
               "cyberhd: ignoring %s=\"%s\" (expected %s); using %s\n",
               name, raw, expected, used);
}

}  // namespace

std::uint64_t u64(const char* name, std::uint64_t fallback,
                  std::uint64_t min_value, std::uint64_t max_value) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::uint64_t v = 0;
  if (parse_u64(raw, v) && v >= min_value && v <= max_value) return v;
  char expected[96];
  std::snprintf(expected, sizeof(expected),
                "an integer in [%" PRIu64 ", %" PRIu64 "]", min_value,
                max_value);
  char used[32];
  std::snprintf(used, sizeof(used), "%" PRIu64, fallback);
  warn(name, raw, expected, used);
  return fallback;
}

double probability(const char* name, double fallback) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  // Reject leading signs/whitespace ourselves ("-0.1" must warn, and
  // strtod skips whitespace); strtod handles the digits and the dot.
  if ((*raw >= '0' && *raw <= '9') || *raw == '.') {
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end != raw && *end == '\0' && std::isfinite(v) && v >= 0.0 &&
        v <= 1.0) {
      return v;
    }
  }
  char used[48];
  std::snprintf(used, sizeof(used), "%g", fallback);
  warn(name, raw, "a probability in [0, 1]", used);
  return fallback;
}

std::size_t bytes(const char* name, std::size_t fallback) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  constexpr std::uint64_t kMaxBytes = std::uint64_t{1} << 40;  // 1 TiB
  // Split off one optional suffix character, then reuse the strict
  // integer parser for the digits.
  char digits[32];
  std::size_t n = 0;
  const char* p = raw;
  while (*p >= '0' && *p <= '9' && n + 1 < sizeof(digits)) {
    digits[n++] = *p++;
  }
  digits[n] = '\0';
  std::uint64_t scale = 1;
  bool ok = n > 0;
  if (ok && *p != '\0') {
    if (p[1] != '\0') {
      ok = false;
    } else {
      switch (*p) {
        case 'k': case 'K': scale = std::uint64_t{1} << 10; break;
        case 'm': case 'M': scale = std::uint64_t{1} << 20; break;
        case 'g': case 'G': scale = std::uint64_t{1} << 30; break;
        default: ok = false; break;
      }
    }
  }
  std::uint64_t v = 0;
  if (ok) ok = parse_u64(digits, v) && v <= kMaxBytes / scale;
  if (ok) return static_cast<std::size_t>(v * scale);
  char used[32];
  std::snprintf(used, sizeof(used), "%zu", fallback);
  warn(name, raw, "bytes with optional k/m/g suffix, at most 1 TiB", used);
  return fallback;
}

}  // namespace cyberhd::core::env
