// The common classifier interface every model in the repository implements
// (CyberHD, static-encoder HDC, the MLP and SVM baselines), so benchmarks
// and examples can sweep over heterogeneous models uniformly.
//
// Inference is exposed at two granularities: per-sample (predict/scores)
// and batched over the rows of a Matrix (predict_batch/scores_batch). The
// batch entry points have looping defaults, so every model supports them;
// models with an amortizable encode stage (CyberHD and its quantized
// snapshots) override them to encode a whole tile at once and split the
// work across the thread pool. Per-row results are identical between the
// two granularities — batching is a throughput optimization, never a
// semantics change.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/matrix.hpp"

namespace cyberhd::core {

/// Multi-class classifier over dense float features.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on rows of `x` with integer labels in [0, num_classes).
  virtual void fit(const Matrix& x, std::span<const int> y,
                   std::size_t num_classes) = 0;

  /// Number of classes the model was fitted for (0 before fit()).
  virtual std::size_t num_classes() const noexcept = 0;

  /// Predict the label of one sample.
  virtual int predict(std::span<const float> x) const = 0;

  /// Per-class decision scores of one sample — higher means more likely.
  /// The scale is model-specific (cosine similarities for HDC, softmax
  /// probabilities for the MLP, margins for the SVMs); argmax(out) always
  /// equals predict(x). Precondition: out.size() == num_classes().
  virtual void scores(std::span<const float> x,
                      std::span<float> out) const = 0;

  /// Predict every row of `x` into `out` (out.size() == x.rows()).
  /// Implemented as argmax over scores_batch — since argmax(scores(x))
  /// equals predict(x) by contract, any model that overrides scores_batch
  /// gets batch prediction for free.
  virtual void predict_batch(const Matrix& x, std::span<int> out) const {
    assert(out.size() == x.rows());
    Matrix scores;
    scores_batch(x, scores);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      out[i] = static_cast<int>(argmax(scores.row(i)));
    }
  }

  /// Scores for every row of `x`; `out` is resized to
  /// x.rows() x num_classes(). Default loops scores(); batch-capable models
  /// override.
  virtual void scores_batch(const Matrix& x, Matrix& out) const {
    out.resize(x.rows(), num_classes());
    for (std::size_t i = 0; i < x.rows(); ++i) {
      scores(x.row(i), out.row(i));
    }
  }

  /// Short human-readable model name for reports.
  virtual std::string name() const = 0;

  /// Accuracy over a labeled set (fraction of correct predictions). Runs
  /// through predict_batch so batch-capable models evaluate at batch speed.
  double evaluate(const Matrix& x, std::span<const int> y) const {
    assert(y.size() == x.rows());
    if (x.rows() == 0) return 0.0;
    std::vector<int> predicted(x.rows());
    predict_batch(x, predicted);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      if (predicted[i] == y[i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(x.rows());
  }
};

}  // namespace cyberhd::core
