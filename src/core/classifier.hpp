// The common classifier interface every model in the repository implements
// (CyberHD, static-encoder HDC, the MLP and SVM baselines), so benchmarks
// and examples can sweep over heterogeneous models uniformly.
//
// Inference is exposed at two granularities: per-sample (predict/scores)
// and batched over the rows of a Matrix (predict_batch/scores_batch).
//
// scores_batch is a *staged driver*, not a virtual: it walks the input in
// sub-batches the model plans (preferred_batch_rows — CyberHD derives it
// from the shared-L3 topology via ExecutionContext::plan_serving) and
// hands each block to the virtual scores_block hook. Models with an
// amortizable encode stage (CyberHD and its quantized snapshots) override
// scores_block to run the block through their stage-split pipeline
// (cached encode, then tile scoring); everything else inherits the
// looping default. Per-row results are identical between the per-sample
// and batched granularities for any block split — batching is a
// throughput optimization, never a semantics change.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/matrix.hpp"

namespace cyberhd::core {

/// Multi-class classifier over dense float features.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on rows of `x` with integer labels in [0, num_classes).
  virtual void fit(const Matrix& x, std::span<const int> y,
                   std::size_t num_classes) = 0;

  /// Number of classes the model was fitted for (0 before fit()).
  virtual std::size_t num_classes() const noexcept = 0;

  /// Predict the label of one sample.
  virtual int predict(std::span<const float> x) const = 0;

  /// Per-class decision scores of one sample — higher means more likely.
  /// The scale is model-specific (cosine similarities for HDC, softmax
  /// probabilities for the MLP, margins for the SVMs); argmax(out) always
  /// equals predict(x). Precondition: out.size() == num_classes().
  virtual void scores(std::span<const float> x,
                      std::span<float> out) const = 0;

  /// Predict every row of `x` into `out` (out.size() == x.rows()).
  /// Implemented as argmax over scores_batch — since argmax(scores(x))
  /// equals predict(x) by contract, any model that overrides scores_batch
  /// gets batch prediction for free.
  virtual void predict_batch(const Matrix& x, std::span<int> out) const {
    assert(out.size() == x.rows());
    Matrix scores;
    scores_batch(x, scores);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      out[i] = static_cast<int>(argmax(scores.row(i)));
    }
  }

  /// Scores for every row of `x`; `out` is resized to
  /// x.rows() x num_classes(). The staged driver: walks the rows in
  /// preferred_batch_rows() blocks and scores each through scores_block(),
  /// so a planner-aware model processes one cache-resident sub-batch at a
  /// time end-to-end instead of materializing whole-batch intermediates.
  void scores_batch(const Matrix& x, Matrix& out) const {
    out.resize(x.rows(), num_classes());
    const std::size_t block = std::max<std::size_t>(
        1, preferred_batch_rows(x));
    for (std::size_t t = 0; t < x.rows(); t += block) {
      scores_block(x, t, std::min(t + block, x.rows()), out);
    }
  }

  /// Score rows [begin, end) of `x` into the matching rows of `out` (`out`
  /// is already sized to x.rows() x num_classes()). The default loops
  /// scores(); pipeline-capable models override with their staged path.
  virtual void scores_block(const Matrix& x, std::size_t begin,
                            std::size_t end, Matrix& out) const {
    assert(end <= x.rows() && end <= out.rows());
    for (std::size_t i = begin; i < end; ++i) {
      scores(x.row(i), out.row(i));
    }
  }

  /// How many rows of `x` one scores_block call should cover. The default
  /// (everything at once) preserves the historical single-pass behavior;
  /// models whose intermediates are large — an encoded HDC block is
  /// D / F times bigger than its input rows — override this with a
  /// cache-topology-derived plan.
  virtual std::size_t preferred_batch_rows(const Matrix& x) const {
    return x.rows();
  }

  /// Short human-readable model name for reports.
  virtual std::string name() const = 0;

  /// Accuracy over a labeled set (fraction of correct predictions). Runs
  /// through predict_batch so batch-capable models evaluate at batch speed.
  double evaluate(const Matrix& x, std::span<const int> y) const {
    assert(y.size() == x.rows());
    if (x.rows() == 0) return 0.0;
    std::vector<int> predicted(x.rows());
    predict_batch(x, predicted);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      if (predicted[i] == y[i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(x.rows());
  }
};

}  // namespace cyberhd::core
