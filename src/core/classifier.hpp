// The common classifier interface every model in the repository implements
// (CyberHD, static-encoder HDC, the MLP and SVM baselines), so benchmarks
// and examples can sweep over heterogeneous models uniformly.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "core/matrix.hpp"

namespace cyberhd::core {

/// Multi-class classifier over dense float features.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on rows of `x` with integer labels in [0, num_classes).
  virtual void fit(const Matrix& x, std::span<const int> y,
                   std::size_t num_classes) = 0;

  /// Predict the label of one sample.
  virtual int predict(std::span<const float> x) const = 0;

  /// Short human-readable model name for reports.
  virtual std::string name() const = 0;

  /// Accuracy over a labeled set (fraction of correct predictions).
  double evaluate(const Matrix& x, std::span<const int> y) const {
    if (x.rows() == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      if (predict(x.row(i)) == y[i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(x.rows());
  }
};

}  // namespace cyberhd::core
