// A small fixed-size thread pool with a parallel_for helper.
//
// The encoding stage is the library's hot loop: every training epoch encodes
// the whole dataset (a D x F gemv + cos per sample). parallel_for splits the
// sample range into contiguous chunks, which is the parallelization the
// paper describes ("leverages matrix operations to train the encoded data in
// a highly-parallel way").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cyberhd::core {

/// Fixed-size worker pool. Tasks are std::function<void()>; exceptions in
/// tasks terminate (tasks in this library are noexcept by construction).
class ThreadPool {
 public:
  /// Spawn `num_threads` workers (0 = hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueue one task.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into roughly equal contiguous
  /// chunks, one per worker, and wait for completion. Falls back to a direct
  /// call for tiny ranges (n < grain) to avoid dispatch overhead.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 256);

  /// Process-wide default pool (lazily constructed; hardware_concurrency,
  /// or the CYBERHD_THREADS environment variable when set to a positive
  /// integer — CI uses it to pin the worker count).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace cyberhd::core
