// A fixed-size thread pool with per-caller completion tracking, worker
// groups, and a reentrancy-safe parallel_for.
//
// The encoding stage is the library's hot loop: every training epoch encodes
// the whole dataset (a D x F gemv + cos per sample). parallel_for splits the
// sample range into contiguous chunks, which is the parallelization the
// paper describes ("leverages matrix operations to train the encoded data in
// a highly-parallel way").
//
// Concurrency contract (the serving front-end leans on all three):
//
//  * parallel_for tracks completion per caller (a TaskGroup under the
//    hood), so two threads driving parallel_for on the same pool each wait
//    only for their own chunks — concurrent client streams never serialize
//    on global pool idleness.
//  * parallel_for called from inside a pool task runs inline instead of
//    deadlocking on its own worker: workers carry a thread_local marker of
//    the pool they belong to. This is what lets a whole serving sub-batch
//    run as one task whose inner stages still call parallel_for.
//  * Workers are partitioned into `num_groups` groups (one per shared-L3
//    domain in the process pool; see ThreadPool::global()). submit() feeds
//    the shared queue any worker drains; TaskGroup::submit_to_group feeds a
//    per-group queue only that group's workers drain — how the serving
//    batcher pins each planner sub-batch to the workers of one L3 domain
//    instead of splitting every stage blindly across the machine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cyberhd::core {

/// Fixed-size worker pool. Tasks are std::function<void()>; exceptions in
/// tasks terminate (tasks in this library are noexcept by construction).
class ThreadPool {
 public:
  /// "Not a worker of this pool" sentinel of current_group().
  static constexpr std::size_t kNoGroup = ~std::size_t{0};

  /// Spawn `num_threads` workers (0 = hardware_concurrency, min 1) split
  /// into `num_groups` round-robin-contiguous groups (clamped to
  /// [1, num_threads]; group g gets workers [g*n/G, (g+1)*n/G)).
  explicit ThreadPool(std::size_t num_threads = 0,
                      std::size_t num_groups = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const noexcept { return workers_.size(); }
  std::size_t num_groups() const noexcept { return group_queues_.size(); }

  /// Group index of the calling thread when it is a worker of this pool,
  /// kNoGroup otherwise (external threads, workers of other pools).
  std::size_t current_group() const noexcept;
  /// True when the calling thread is a worker of this pool — parallel_for
  /// and TaskGroup::wait must not block on the pool from such a thread.
  bool on_worker_thread() const noexcept;

  /// Enqueue one task on the shared queue (any worker runs it).
  void submit(std::function<void()> task);

  /// Block until every submitted task (all callers, all groups) has
  /// finished. Deadlocks if called from a worker thread — use TaskGroup
  /// for per-caller waiting instead.
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into roughly equal contiguous
  /// chunks, one per worker, and wait for completion of *these* chunks
  /// only. Falls back to a direct fn(0, n) call for tiny ranges
  /// (n < grain), single-worker pools, and — the reentrant case — when the
  /// calling thread is itself a worker of this pool.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 256);

  /// A batch of tasks whose completion is awaited by the submitting
  /// caller alone. The serving batcher uses one per coalesced batch:
  /// submit each planner sub-batch to one worker group, wait for exactly
  /// those sub-batches while other streams keep the pool busy.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) noexcept : pool_(pool) {}
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    /// Outstanding tasks must be waited for before destruction.
    ~TaskGroup() { wait(); }

    /// Enqueue on the shared queue, counted toward this group.
    void submit(std::function<void()> task);
    /// Enqueue on group `group`'s queue (only that group's workers run
    /// it), counted toward this group. group is taken modulo num_groups().
    void submit_to_group(std::size_t group, std::function<void()> task);
    /// Block until every task submitted through *this* TaskGroup is done.
    /// Must not be called from a worker of the same pool (the submit
    /// helpers in ExecutionContext fall back to inline execution there).
    void wait();

   private:
    std::function<void()> wrap(std::function<void()> task);

    ThreadPool& pool_;
    std::atomic<std::size_t> remaining_{0};
  };

  /// Best-effort: pin each worker's OS thread to one CPU, workers of group
  /// g onto the CPUs [g*ncpu/G, (g+1)*ncpu/G) — aligning worker groups
  /// with shared-L3 domains when G was derived from the cache topology.
  /// Returns false (leaving threads unpinned) when the platform or the
  /// container's cpuset forbids affinity changes.
  bool pin_workers_to_cpus(std::size_t online_cpus) noexcept;

  /// Process-wide default pool (lazily constructed on first use; magic
  /// statics make concurrent first touch from many streams construct it
  /// exactly once). Worker count: hardware_concurrency, or CYBERHD_THREADS
  /// when set to a positive integer (CI pins determinism legs this way).
  /// Group count: one group per detected shared-L3 domain, overridable
  /// with CYBERHD_POOL_GROUPS. CYBERHD_PIN_CPUS=1 additionally pins
  /// workers to CPUs group-contiguously (best effort; containers that
  /// forbid sched_setaffinity simply stay unpinned).
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t group);
  /// Pop the next runnable task for a worker of `group`. Caller holds
  /// mutex_; returns false when no task is available.
  bool take_task(std::size_t group, std::function<void()>& out);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;               // shared queue
  std::vector<std::queue<std::function<void()>>> group_queues_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;  // submitted, not yet finished (all queues)
  bool stopping_ = false;
};

}  // namespace cyberhd::core
