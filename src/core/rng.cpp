#include "core/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace cyberhd::core {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_float() noexcept {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) noexcept { return next_double() < p; }

double Rng::exponential(double lambda) noexcept {
  double u = next_double();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  // Mix the parent seed with the stream id through SplitMix64 twice so that
  // adjacent stream ids land far apart in seed space.
  SplitMix64 sm(seed_ ^ (0xd1342543de82ef95ULL * (stream + 1)));
  return Rng(sm.next());
}

void fill_gaussian(Rng& rng, float* out, std::size_t n, float mean,
                   float stddev) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(rng.gaussian(mean, stddev));
  }
}

void fill_uniform(Rng& rng, float* out, std::size_t n, float lo, float hi) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + (hi - lo) * rng.next_float();
  }
}

}  // namespace cyberhd::core
