#include "core/bitpack.hpp"

#include <cassert>

#include "core/kernels/kernels.hpp"

namespace cyberhd::core {

PackedBits::PackedBits(std::size_t dims)
    : dims_(dims), words_((dims + 63) / 64, 0) {}

int PackedBits::get(std::size_t i) const noexcept {
  assert(i < dims_);
  return (words_[i >> 6] >> (i & 63)) & 1u ? 1 : -1;
}

void PackedBits::set(std::size_t i, int v) noexcept {
  assert(i < dims_);
  const std::uint64_t bit = 1ULL << (i & 63);
  if (v >= 0) {
    words_[i >> 6] |= bit;
  } else {
    words_[i >> 6] &= ~bit;
  }
}

void PackedBits::flip(std::size_t i) noexcept {
  assert(i < dims_);
  words_[i >> 6] ^= 1ULL << (i & 63);
}

std::size_t PackedBits::popcount() const noexcept {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

void PackedBits::mask_tail() noexcept {
  const std::size_t rem = dims_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1ULL;
  }
}

PackedBits pack_signs(std::span<const float> x) {
  PackedBits p(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] >= 0.0f) p.words_[i >> 6] |= 1ULL << (i & 63);
  }
  return p;
}

void unpack_to_floats(const PackedBits& p, std::span<float> out) {
  assert(out.size() == p.dims());
  for (std::size_t i = 0; i < p.dims(); ++i) {
    out[i] = p.get(i) > 0 ? 1.0f : -1.0f;
  }
}

std::size_t hamming(const PackedBits& a, const PackedBits& b) noexcept {
  assert(a.dims() == b.dims());
  return active_kernels().xor_popcount_words(a.words_.data(), b.words_.data(),
                                             a.num_words());
}

std::int64_t dot_bipolar(const PackedBits& a, const PackedBits& b) noexcept {
  const std::int64_t d = static_cast<std::int64_t>(a.dims());
  return d - 2 * static_cast<std::int64_t>(hamming(a, b));
}

float cosine_bipolar(const PackedBits& a, const PackedBits& b) noexcept {
  if (a.dims() == 0) return 0.0f;
  return static_cast<float>(dot_bipolar(a, b)) /
         static_cast<float>(a.dims());
}

}  // namespace cyberhd::core
