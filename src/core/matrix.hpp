// Minimal dense linear algebra for CyberHD.
//
// The library deliberately avoids external BLAS: hypervector work is
// embarrassingly data-parallel and dominated by a handful of kernels
// (gemv, axpy, dot, cosine). The innermost loops route through the
// runtime-dispatched SIMD layer in core/kernels/ (scalar reference or AVX2,
// chosen once at startup); everything above stays portable C++. Matrices
// are row-major, value-semantic, and expose raw spans for the hot paths.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <span>
#include <string>
#include <vector>

namespace cyberhd::core {

/// Minimal cache-line-aligned allocator for hot-path storage. SIMD loads
/// that straddle cache lines halve effective load throughput (measured
/// ~1.6x on the AVX-512 similarity tile), so Matrix data starts 64-byte
/// aligned — and every row stays aligned whenever cols is a multiple of 16
/// floats, which all the library's power-of-two hypervector widths are.
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) = default;
};

/// Row-major dense float matrix with value semantics.
class Matrix {
 public:
  Matrix() = default;
  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}
  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, float fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Mutable view of row `r`.
  std::span<float> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  /// Read-only view of row `r`.
  std::span<const float> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }

  /// Set every element to `v`.
  void fill(float v);
  /// Resize to rows x cols, discarding contents (zero-filled).
  void resize(std::size_t rows, std::size_t cols);

  /// Returns the transpose (new matrix).
  Matrix transposed() const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float, AlignedAllocator<float>> data_;
};

// ---- vector kernels (the hot path) ----------------------------------------

/// Dot product of two equal-length spans.
float dot(std::span<const float> a, std::span<const float> b) noexcept;

/// Euclidean norm.
float norm2(std::span<const float> a) noexcept;

/// y += alpha * x (in place).
void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept;

/// x *= alpha (in place).
void scale(std::span<float> x, float alpha) noexcept;

/// L2-normalize in place; zero vectors are left untouched. Returns the
/// pre-normalization norm.
float normalize_l2(std::span<float> x) noexcept;

/// Cosine similarity; returns 0 when either vector has zero norm.
float cosine(std::span<const float> a, std::span<const float> b) noexcept;

// ---- matrix kernels --------------------------------------------------------

/// y = A x  (A: m x n, x: n, y: m).
void gemv(const Matrix& a, std::span<const float> x,
          std::span<float> y) noexcept;

/// y = A^T x  (A: m x n, x: m, y: n).
void gemv_transposed(const Matrix& a, std::span<const float> x,
                     std::span<float> y) noexcept;

/// C = A B  (A: m x k, B: k x n, C: m x n). Cache-blocked ikj loop.
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// argmax over a span; returns 0 for empty input.
std::size_t argmax(std::span<const float> x) noexcept;

/// Human-readable (rows x cols) description for error messages.
std::string shape_string(const Matrix& m);

}  // namespace cyberhd::core
