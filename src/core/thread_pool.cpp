#include "core/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace cyberhd::core {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  const std::size_t nthreads = num_threads();
  if (n < grain || nthreads == 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(nthreads, (n + grain - 1) / grain);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait_idle();
}

ThreadPool& ThreadPool::global() {
  // CYBERHD_THREADS pins the global pool's worker count (CI runs the
  // determinism suites at a fixed width this way; deployments cap cores).
  // Unset, empty, or malformed falls through to hardware_concurrency.
  // Parsed digit-by-digit: strtoull would wrap "-1" to ULLONG_MAX and
  // the constructor would then try to reserve 2^64 workers. Anything
  // above 4096 workers is treated as malformed, not a real request.
  static ThreadPool pool([] {
    const char* env = std::getenv("CYBERHD_THREADS");
    if (env == nullptr || *env == '\0') return std::size_t{0};
    std::size_t v = 0;
    for (const char* p = env; *p != '\0'; ++p) {
      if (*p < '0' || *p > '9' || v > 4096) return std::size_t{0};
      v = v * 10 + static_cast<std::size_t>(*p - '0');
    }
    return v <= 4096 ? v : std::size_t{0};
  }());
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace cyberhd::core
