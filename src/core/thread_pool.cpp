#include "core/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "core/env.hpp"
#include "core/exec/execution_context.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace cyberhd::core {

namespace {

/// The pool (and group) the calling thread works for, when it is a pool
/// worker. This is what makes parallel_for reentrancy-safe: a task that
/// calls back into its own pool runs the nested body inline instead of
/// queueing work it would then deadlock waiting for.
struct WorkerMark {
  const ThreadPool* pool = nullptr;
  std::size_t group = ThreadPool::kNoGroup;
};
thread_local WorkerMark t_worker;

/// A small positive integer knob; `fallback` when unset or (with a
/// stderr warning) malformed/out-of-range — the shared env-parsing
/// contract.
std::size_t env_count(const char* name, std::size_t fallback,
                      std::size_t max) {
  return static_cast<std::size_t>(env::u64(name, fallback, 1, max));
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t num_groups) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_groups = std::clamp<std::size_t>(num_groups, 1, num_threads);
  group_queues_.resize(num_groups);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    // Contiguous split: worker i serves group i * G / n, so each group's
    // workers are neighbors (and, when pinned, share one L3 domain).
    const std::size_t group = i * num_groups / num_threads;
    workers_.emplace_back([this, group] { worker_loop(group); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::current_group() const noexcept {
  return t_worker.pool == this ? t_worker.group : kNoGroup;
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_worker.pool == this;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::take_task(std::size_t group, std::function<void()>& out) {
  // Affine work first: a group's queue holds the sub-batches pinned to it.
  if (!group_queues_[group].empty()) {
    out = std::move(group_queues_[group].front());
    group_queues_[group].pop();
    return true;
  }
  if (!tasks_.empty()) {
    out = std::move(tasks_.front());
    tasks_.pop();
    return true;
  }
  return false;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  const std::size_t nthreads = num_threads();
  // Inline for tiny ranges, single-worker pools, and the reentrant case
  // (a pool task splitting more work across its own pool must not block
  // on a worker it is occupying).
  if (n < grain || nthreads == 1 || on_worker_thread()) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(nthreads, (n + grain - 1) / grain);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  TaskGroup group(*this);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    group.submit([&fn, begin, end] { fn(begin, end); });
  }
  // Per-caller wait: returns when *these* chunks are done, even while
  // other streams keep feeding the pool.
  group.wait();
}

std::function<void()> ThreadPool::TaskGroup::wrap(
    std::function<void()> task) {
  remaining_.fetch_add(1, std::memory_order_relaxed);
  return [this, task = std::move(task)] {
    task();
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.notify_all();
    }
  };
}

void ThreadPool::TaskGroup::submit(std::function<void()> task) {
  pool_.submit(wrap(std::move(task)));
}

void ThreadPool::TaskGroup::submit_to_group(std::size_t group,
                                            std::function<void()> task) {
  auto wrapped = wrap(std::move(task));
  const std::size_t g = group % pool_.num_groups();
  {
    std::lock_guard lock(pool_.mutex_);
    pool_.group_queues_[g].push(std::move(wrapped));
    ++pool_.in_flight_;
  }
  // notify_all, not notify_one: a one-notify could land on a worker of a
  // different group, which would re-check its predicate and go back to
  // sleep — losing the only wakeup meant for group g.
  pool_.cv_task_.notify_all();
}

void ThreadPool::TaskGroup::wait() {
  for (;;) {
    const std::size_t r = remaining_.load(std::memory_order_acquire);
    if (r == 0) return;
    remaining_.wait(r, std::memory_order_acquire);
  }
}

bool ThreadPool::pin_workers_to_cpus(std::size_t online_cpus) noexcept {
#if defined(__linux__)
  if (online_cpus == 0 || workers_.empty()) return false;
  const std::size_t n = workers_.size();
  const std::size_t groups = num_groups();
  bool all_ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t g = i * groups / n;
    // Group g's CPU share: the contiguous slice [g*C/G, (g+1)*C/G) —
    // matching how sysfs enumerates shared-L3 siblings contiguously on
    // the common topologies.
    const std::size_t cpu_begin = g * online_cpus / groups;
    const std::size_t cpu_end =
        std::max(cpu_begin + 1, (g + 1) * online_cpus / groups);
    cpu_set_t set;
    CPU_ZERO(&set);
    for (std::size_t c = cpu_begin; c < cpu_end && c < online_cpus; ++c) {
      CPU_SET(c, &set);
    }
    if (CPU_COUNT(&set) == 0) CPU_SET(cpu_begin % online_cpus, &set);
    if (pthread_setaffinity_np(workers_[i].native_handle(), sizeof(set),
                               &set) != 0) {
      all_ok = false;  // cpuset-restricted container: stay unpinned
    }
  }
  return all_ok;
#else
  (void)online_cpus;
  return false;
#endif
}

ThreadPool& ThreadPool::global() {
  // Magic statics make concurrent first touch construct the pool exactly
  // once (every other thread blocks until the winner finishes) — the
  // serving front-end's N streams may all race here on their first
  // submission. CYBERHD_THREADS pins the worker count (CI determinism
  // legs; deployments cap cores); CYBERHD_POOL_GROUPS overrides the
  // one-group-per-shared-L3-domain default.
  static ThreadPool pool(
      env_count("CYBERHD_THREADS", 0, 4096),
      env_count("CYBERHD_POOL_GROUPS",
                CacheTopology::detected().l3_domains, 1024));
  static const bool pinned = [] {
    const char* pin = std::getenv("CYBERHD_PIN_CPUS");
    if (pin == nullptr || std::strcmp(pin, "1") != 0) return false;
#if defined(__linux__)
    const long ncpu = ::sysconf(_SC_NPROCESSORS_ONLN);
    return pool.pin_workers_to_cpus(
        ncpu > 0 ? static_cast<std::size_t>(ncpu) : 0);
#else
    return false;
#endif
  }();
  (void)pinned;
  return pool;
}

void ThreadPool::worker_loop(std::size_t group) {
  t_worker = {this, group};
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this, group] {
        return stopping_ || !tasks_.empty() ||
               !group_queues_[group].empty();
      });
      if (!take_task(group, task)) {
        if (stopping_) return;
        continue;  // woken for another group's task; sleep again
      }
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace cyberhd::core
