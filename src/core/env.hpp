// Shared parsing of CYBERHD_* environment knobs.
//
// Every runtime knob routes through these helpers so malformed values fail
// the same way everywhere: unset (or empty) silently uses the documented
// default; anything that does not parse cleanly — garbage, trailing junk,
// negative numbers, overflow, out-of-range — earns exactly one stderr line
// naming the variable, the offending value, and the default that replaced
// it, then uses the default. Silent clamping is deliberately absent: a
// typo'd knob that quietly pins the wrong value is how bad benchmark
// numbers get published and how production misconfigurations hide.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cyberhd::core::env {

/// Unsigned integer knob constrained to [min_value, max_value]. `fallback`
/// is returned verbatim when the variable is unset/empty (no range check —
/// 0 is a common "auto" sentinel) and after a warning when the value is
/// malformed or out of range.
std::uint64_t u64(const char* name, std::uint64_t fallback,
                  std::uint64_t min_value, std::uint64_t max_value) noexcept;

/// Probability knob: a decimal in [0, 1] (e.g. "0.05"). Same
/// unset-is-silent / malformed-warns contract as u64().
double probability(const char* name, double fallback) noexcept;

/// Byte-count knob with an optional k/K, m/M, g/G binary suffix
/// ("2m" == 2 MiB), capped at 1 TiB — beyond that is a typo, not a cache
/// model. "0" parses as 0 (callers use it as "unset/auto").
std::size_t bytes(const char* name, std::size_t fallback) noexcept;

}  // namespace cyberhd::core::env
