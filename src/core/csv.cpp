#include "core/csv.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>

namespace cyberhd::core {

CsvRow parse_csv_line(std::string_view line) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      field.push_back(c);
    }
  }
  row.push_back(std::move(field));
  return row;
}

std::optional<CsvRow> CsvReader::next() {
  std::string line;
  while (std::getline(in_, line)) {
    // Re-join physical lines while a quote is open.
    while (std::count(line.begin(), line.end(), '"') % 2 != 0) {
      std::string cont;
      if (!std::getline(in_, cont)) break;
      line.push_back('\n');
      line += cont;
    }
    if (line.empty() || line == "\r") continue;
    ++rows_read_;
    return parse_csv_line(line);
  }
  return std::nullopt;
}

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string to_csv_line(const CsvRow& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out.push_back(',');
    out += csv_escape(row[i]);
  }
  return out;
}

bool write_csv(const std::string& path, const CsvRow& header,
               const std::vector<CsvRow>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  if (!header.empty()) out << to_csv_line(header) << '\n';
  for (const auto& row : rows) out << to_csv_line(row) << '\n';
  return static_cast<bool>(out);
}

}  // namespace cyberhd::core
