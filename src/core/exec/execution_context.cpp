#include "core/exec/execution_context.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/env.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace cyberhd::core {

namespace {

/// A cache-size override knob: bytes with k/m/g suffixes so container
/// launch scripts stay readable; 0 when unset or (with a stderr warning)
/// malformed — 0 means "use the detected topology".
std::size_t env_bytes(const char* name) { return env::bytes(name, 0); }

#if defined(__unix__) || defined(__APPLE__)
std::size_t sysconf_bytes(int name) {
  const long v = ::sysconf(name);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}
#endif

/// Read one sysfs cache attribute ("64", "2048K") as bytes; 0 on failure.
std::size_t sysfs_bytes(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  unsigned long long value = 0;
  in >> value;
  if (!in || value == 0) return 0;
  char suffix = '\0';
  in >> suffix;
  if (suffix == 'K' || suffix == 'k') value *= 1024;
  if (suffix == 'M' || suffix == 'm') value *= 1024 * 1024;
  return static_cast<std::size_t>(value);
}

std::string sysfs_string(const std::string& path) {
  std::ifstream in(path);
  std::string s;
  if (in) in >> s;
  return s;
}

/// Walk /sys/devices/system/cpu/cpu0/cache/index*/ for the first data or
/// unified cache of `level`; returns its size in bytes, 0 when absent.
std::size_t sysfs_cache_size(int level) {
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx) + "/";
    std::ifstream probe(dir + "level");
    int l = 0;
    if (!(probe >> l) || l != level) continue;
    const std::string type = sysfs_string(dir + "type");
    if (type == "Instruction") continue;
    const std::size_t size = sysfs_bytes(dir + "size");
    if (size > 0) return size;
  }
  return 0;
}

std::size_t sysfs_line_size() {
  return sysfs_bytes(
      "/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size");
}

/// Count the CPUs in a sysfs shared_cpu_list string ("0-7,16-23"); 0 when
/// the file is absent or unparseable.
std::size_t count_cpu_list(const std::string& list) {
  std::size_t count = 0;
  const char* p = list.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long first = std::strtol(p, &end, 10);
    if (end == p || first < 0) return 0;
    long last = first;
    p = end;
    if (*p == '-') {
      last = std::strtol(p + 1, &end, 10);
      if (end == p + 1 || last < first) return 0;
      p = end;
    }
    count += static_cast<std::size_t>(last - first + 1);
    if (*p == ',') ++p;
  }
  return count;
}

/// CPUs sharing cpu0's level-3 cache per sysfs; 0 when undetectable.
std::size_t sysfs_l3_shared_cpus() {
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx) + "/";
    std::ifstream probe(dir + "level");
    int l = 0;
    if (!(probe >> l) || l != 3) continue;
    if (sysfs_string(dir + "type") == "Instruction") continue;
    std::ifstream in(dir + "shared_cpu_list");
    std::string list;
    if (in) in >> list;
    return count_cpu_list(list);
  }
  return 0;
}

std::size_t largest_pow2_at_most(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

}  // namespace

CacheTopology CacheTopology::detect() {
  CacheTopology topo;  // field initializers are the conservative fallback
  std::size_t line = 0, l1d = 0, l2 = 0, l3 = 0, online_cpus = 0;
#if defined(__unix__) || defined(__APPLE__)
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
  line = sysconf_bytes(_SC_LEVEL1_DCACHE_LINESIZE);
#endif
#ifdef _SC_LEVEL1_DCACHE_SIZE
  l1d = sysconf_bytes(_SC_LEVEL1_DCACHE_SIZE);
#endif
#ifdef _SC_LEVEL2_CACHE_SIZE
  l2 = sysconf_bytes(_SC_LEVEL2_CACHE_SIZE);
#endif
#ifdef _SC_LEVEL3_CACHE_SIZE
  l3 = sysconf_bytes(_SC_LEVEL3_CACHE_SIZE);
#endif
#ifdef _SC_NPROCESSORS_ONLN
  online_cpus = sysconf_bytes(_SC_NPROCESSORS_ONLN);
#endif
#endif
  if (line == 0) line = sysfs_line_size();
  if (l1d == 0) l1d = sysfs_cache_size(1);
  if (l2 == 0) l2 = sysfs_cache_size(2);
  if (l3 == 0) l3 = sysfs_cache_size(3);
  // Containers often mask /sys and return 0 from sysconf; the env override
  // wins over whatever detection produced so deployments can pin tiling.
  if (const std::size_t env_l2 = env_bytes("CYBERHD_L2_BYTES"); env_l2 > 0) {
    l2 = env_l2;
  }
  if (const std::size_t env_l3 = env_bytes("CYBERHD_L3_BYTES"); env_l3 > 0) {
    l3 = env_l3;
  }
  if (line > 0) topo.line_bytes = line;
  if (l1d > 0) topo.l1d_bytes = l1d;
  if (l2 > 0) topo.l2_bytes = l2;
  if (l3 > 0) topo.l3_bytes = l3;
  // Shared-L3 domains: how many CPU groups each see their own last-level
  // cache. cpu0's shared_cpu_list says how many CPUs share one L3; the
  // online count divided by that (rounded up) is the domain count. When
  // either read fails — masked /sys, exotic topologies — one domain is the
  // safe model (the serving plan degrades to a single sub-batch stream).
  const std::size_t per_domain = sysfs_l3_shared_cpus();
  if (per_domain > 0 && online_cpus > per_domain) {
    topo.l3_domains = (online_cpus + per_domain - 1) / per_domain;
  }
  return topo;
}

const CacheTopology& CacheTopology::detected() {
  static const CacheTopology topo = detect();
  return topo;
}

ExecutionContext::ExecutionContext(ThreadPool* pool, const Kernels* kernels,
                                   CacheTopology cache)
    : kernels_(kernels != nullptr ? kernels : &active_kernels()),
      pool_(pool),
      cache_(cache) {}

const ExecutionContext& ExecutionContext::process() {
  static const ExecutionContext ctx(&ThreadPool::global(), nullptr,
                                    CacheTopology::detected());
  return ctx;
}

const ExecutionContext& ExecutionContext::serial() {
  static const ExecutionContext ctx(nullptr, nullptr,
                                    CacheTopology::detected());
  return ctx;
}

void ExecutionContext::for_each_block(
    std::size_t n, std::size_t block_rows,
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  if (n == 0) return;
  block_rows = std::max<std::size_t>(1, block_rows);
  if (pool_ == nullptr || block_rows >= n || pool_->on_worker_thread()) {
    for (std::size_t t = 0; t < n; t += block_rows) {
      fn(t, std::min(t + block_rows, n));
    }
    return;
  }
  ThreadPool::TaskGroup group(*pool_);
  std::size_t block = 0;
  for (std::size_t t = 0; t < n; t += block_rows, ++block) {
    const std::size_t end = std::min(t + block_rows, n);
    group.submit_to_group(block, [&fn, t, end] { fn(t, end); });
  }
  group.wait();
}

std::size_t ExecutionContext::score_block_rows(
    std::size_t dims) const noexcept {
  if (dims == 0) return 1;
  // One third of L2 for the streaming row block (the class block and the
  // norm pass's re-read take the rest); power of two for stable blocking.
  const std::size_t budget = cache_.l2_bytes / 3;
  const std::size_t rows = budget / (dims * sizeof(float));
  return std::clamp<std::size_t>(largest_pow2_at_most(std::max<std::size_t>(
                                     1, rows)),
                                 1, 64);
}

std::size_t ExecutionContext::serving_block_rows(
    std::size_t dims) const noexcept {
  return serving_block_rows_bytes(dims * sizeof(float),
                                  score_block_rows(dims));
}

std::size_t ExecutionContext::serving_block_rows_bytes(
    std::size_t row_bytes, std::size_t floor_rows) const noexcept {
  floor_rows = std::clamp<std::size_t>(floor_rows, 1, 4096);
  if (row_bytes == 0) return floor_rows;
  // One third of the shared L3 for the sub-batch's rows (scores, inputs,
  // and slack take the rest); power of two, never below the L2 scoring
  // tile this block feeds, capped where batching stops paying.
  const std::size_t budget = cache_.l3_bytes / 3;
  const std::size_t rows = budget / row_bytes;
  return std::clamp<std::size_t>(
      largest_pow2_at_most(std::max<std::size_t>(1, rows)), floor_rows,
      4096);
}

EncodeTilePlan ExecutionContext::plan_encode_tile(
    std::size_t dims, std::size_t features) const noexcept {
  EncodeTilePlan plan;
  const std::size_t row_bytes =
      std::max<std::size_t>(1, features) * sizeof(float);
  // Flow block from L1d: a third for the block's raw feature rows (the
  // current base row and the angle stores take the rest), so the rows a
  // base panel is replayed against never leave level 1.
  const std::size_t flows = (cache_.l1d_bytes / 3) / row_bytes;
  plan.flow_rows = std::clamp<std::size_t>(
      largest_pow2_at_most(std::max<std::size_t>(1, flows)), 8, 256);
  // Base panel from L2: a third for the panel's base rows (the flow block
  // and slack take the rest) — the panel streams from L2 once per flow
  // block instead of from memory once per flow.
  const std::size_t panel = (cache_.l2_bytes / 3) / row_bytes;
  plan.panel_rows = std::clamp<std::size_t>(
      largest_pow2_at_most(std::max<std::size_t>(1, panel)), 16, 8192);
  if (dims > 0 && plan.panel_rows > dims) {
    // Wider than D buys nothing; snap to the pow2 that covers D in one
    // panel when it can.
    plan.panel_rows =
        std::max<std::size_t>(16, largest_pow2_at_most(dims));
  }
  return plan;
}

ServingPlan ExecutionContext::plan_serving(std::size_t dims) const noexcept {
  return plan_serving_bytes(dims * sizeof(float), score_block_rows(dims));
}

ServingPlan ExecutionContext::plan_serving_bytes(
    std::size_t row_bytes, std::size_t floor_rows) const noexcept {
  ServingPlan plan;
  plan.block_rows = serving_block_rows_bytes(row_bytes, floor_rows);
  plan.domains = std::max<std::size_t>(1, cache_.l3_domains);
  plan.batch_rows = plan.block_rows * plan.domains;
  return plan;
}

}  // namespace cyberhd::core
