// Unified execution policy: which kernels run, on which threads, tiled how.
//
// Before this layer existed, every stage carried its own ThreadPool* and its
// own hand-tuned tile constants (a 16-row score block here, a 32-row
// similarity tile there, batch_size = 16 "because 2 MB L2"). The
// ExecutionContext gathers those three decisions into one value-semantic
// object that is threaded through the trainer, the encoders, the model's
// batch scorer, and the quantized deployment path:
//
//  * kernels() — the resolved SIMD backend (active_kernels() by default,
//    injectable for tests);
//  * pool()    — the worker pool, or nullptr for strictly serial execution
//    (parallel_for() runs inline in that case, so call sites never branch);
//  * cache()   — a model of the machine's cache hierarchy, read once from
//    sysconf//sys, from which every tile and batch size is *derived* rather
//    than hand-tuned: score_block_rows() sizes the L2-resident row block of
//    the tile-kernel scoring passes, train_batch_rows() the default
//    minibatch of the adaptive trainer.
//
// Determinism contract: for a fixed training configuration the context
// never changes results. Tiling choices feed kernels whose outputs are
// row-wise bit-identical for any block size, and the pool only splits
// work whose merge order is fixed — so two contexts over the same kernels
// compute bit-identical models regardless of worker count or cache model.
// One deliberate carve-out: TrainerConfig::batch_size = 0 (auto) resolves
// the *minibatch size* from the cache model, and minibatch training at
// different batch sizes is a different (OnlineHD-style) update schedule —
// pin batch_size explicitly when cross-host bit-reproducibility of the
// trained model matters. Everything else (score blocks, worker counts) is
// a throughput lever only (pin via CYBERHD_L2_BYTES / CYBERHD_THREADS for
// cross-host reproducible *timing*).
#pragma once

#include <cstddef>
#include <functional>

#include "core/kernels/kernels.hpp"
#include "core/thread_pool.hpp"

namespace cyberhd::core {

/// The cache hierarchy model the tiling derivations read. Detection order
/// per field: CYBERHD_L2_BYTES / CYBERHD_L3_BYTES env overrides (for
/// containers whose /sys is masked), sysconf(_SC_LEVEL*_CACHE_*), the sysfs
/// cache directory, then conservative defaults (64 B lines, 32 KiB L1d,
/// 2 MiB L2, 8 MiB L3, one shared-L3 domain).
struct CacheTopology {
  std::size_t line_bytes = 64;
  std::size_t l1d_bytes = 32 * 1024;
  std::size_t l2_bytes = 2 * 1024 * 1024;
  /// Last-level cache size. Per-core caches (L1/L2) size the training and
  /// scoring tiles; the shared L3 sizes the *serving* sub-batches — the
  /// unit of work a batch of flows moves through the encode→score pipeline
  /// in, so a sub-batch's encoded rows are still LLC-resident when the
  /// scoring stage streams them.
  std::size_t l3_bytes = 8 * 1024 * 1024;
  /// Number of distinct shared-L3 CPU domains (multi-CCD and multi-socket
  /// parts have several; each gets its own sub-batch in the serving plan).
  /// Derived from how many online CPUs share cpu0's L3 per the sysfs
  /// shared_cpu_list; 1 when that is unreadable.
  std::size_t l3_domains = 1;

  /// Fresh detection (re-reads the environment; tests use this).
  static CacheTopology detect();
  /// Process-wide cached detection result.
  static const CacheTopology& detected();
};

/// How ExecutionContext::plan_serving splits a serving batch: each of the
/// machine's shared-L3 domains works one `block_rows`-row, L3-resident
/// sub-batch at a time, so one driver iteration covers `batch_rows` rows.
/// The per-domain residency is approximate, not enforced: parallel_for
/// hands every worker one contiguous chunk and splits the encode and
/// score stages of a block identically, so each worker revisits in stage
/// 2 the ~block_rows-per-domain range it encoded in stage 1 — but workers
/// are not pinned to domains. Explicit domain-affine dispatch (and a NUMA
/// model above it) is the next placement step (see ROADMAP).
struct ServingPlan {
  /// Rows per L3-resident sub-batch (one in flight per L3 domain).
  std::size_t block_rows = 1;
  /// Shared-L3 CPU domains contributing a sub-batch each.
  std::size_t domains = 1;
  /// Rows one pipeline iteration covers: block_rows * domains.
  std::size_t batch_rows = 1;
};

/// How ExecutionContext::plan_encode_tile shapes the batched RBF encode:
/// flows are walked in `flow_rows`-row blocks (the unit parallel_for
/// splits), and inside a block the encoder streams the base matrix in
/// `panel_rows`-row panels through the cos_rbf_tile_f32 kernel — so each
/// base row fetched into L2 is reused once per flow in the block instead
/// of once per call.
struct EncodeTilePlan {
  /// Flow rows per tile block: the block's raw feature rows stay
  /// L1-resident while every base row of a panel streams past them.
  std::size_t flow_rows = 8;
  /// Base rows per L2-resident panel.
  std::size_t panel_rows = 16;
};

/// The execution policy threaded through training and batch inference.
/// Cheap to copy (three pointers and a small struct); holders keep it by
/// value. A default-constructed context is strictly serial.
class ExecutionContext {
 public:
  /// Serial context: active kernels, no pool, detected topology.
  ExecutionContext()
      : ExecutionContext(nullptr, nullptr, CacheTopology::detected()) {}
  /// Context over an explicit pool (nullptr = serial), active kernels.
  explicit ExecutionContext(ThreadPool* pool)
      : ExecutionContext(pool, nullptr, CacheTopology::detected()) {}
  /// Fully explicit (tests inject kernels and cache models here).
  /// kernels == nullptr resolves to active_kernels().
  ExecutionContext(ThreadPool* pool, const Kernels* kernels,
                   CacheTopology cache);

  /// The process-default parallel context: global thread pool (sized by
  /// hardware_concurrency, overridable via CYBERHD_THREADS), active
  /// kernels, detected topology.
  static const ExecutionContext& process();
  /// The process-default serial context (no pool).
  static const ExecutionContext& serial();

  const Kernels& kernels() const noexcept { return *kernels_; }
  ThreadPool* pool() const noexcept { return pool_; }
  const CacheTopology& cache() const noexcept { return cache_; }
  /// Workers available to parallel_for (1 when serial).
  std::size_t workers() const noexcept {
    return pool_ != nullptr ? pool_->num_threads() : 1;
  }

  /// Run fn(begin, end) over [0, n): split across the pool when one is
  /// attached, inline otherwise. The single call site replaces the
  /// `if (pool) pool->parallel_for(...) else body(0, n)` pattern.
  ///
  /// Templated so the serial path invokes the callable DIRECTLY — no
  /// std::function is ever constructed, which is what keeps a serial
  /// steady-state serving flush at zero heap allocations. The pooled path
  /// wraps `fn` in a std::reference_wrapper (guaranteed non-allocating by
  /// [func.wrap.func.con]) before handing it to the pool; only the pool's
  /// own per-chunk task boxing allocates there.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 256) const {
    if (n == 0) return;
    if (pool_ == nullptr) {
      fn(0, n);
      return;
    }
    pool_->parallel_for(
        n, std::function<void(std::size_t, std::size_t)>(std::ref(fn)),
        grain);
  }

  /// Domain-affine block dispatch — the serving shape. Run
  /// fn(begin, end) over [0, n) in `block_rows`-row blocks, each block
  /// submitted as ONE task pinned to one worker group (groups map to
  /// shared-L3 domains in the process pool), block b to group
  /// b mod num_groups. A block's whole encode→score pipeline therefore
  /// runs on the workers of one L3 domain, instead of every stage being
  /// split blindly across the machine; nested parallel_for calls inside
  /// fn run inline on that worker. Waits for these blocks only (other
  /// streams' work on the pool is not awaited). Falls back to a serial
  /// block walk when there is no pool, only one block, or the calling
  /// thread is itself a pool worker.
  void for_each_block(
      std::size_t n, std::size_t block_rows,
      const std::function<void(std::size_t, std::size_t)>& fn) const;

  /// Rows per L2-resident block of the tile-kernel scoring passes
  /// (HdcModel::similarities_batch, the trainer's minibatch scoring): the
  /// largest power of two whose row block fills at most a third of L2 —
  /// one third each for the streaming rows, the class block, and slack —
  /// clamped to [1, 64]. At D = 10k on a 2 MiB L2 this derives the 16 rows
  /// that were previously hand-tuned.
  std::size_t score_block_rows(std::size_t dims) const noexcept;

  /// Default minibatch size of the adaptive trainer when
  /// TrainerConfig::batch_size == 0 (auto): the L2 sweet spot is the same
  /// block the scorer streams, so this equals score_block_rows().
  std::size_t train_batch_rows(std::size_t dims) const noexcept {
    return score_block_rows(dims);
  }

  /// Rows per L3-resident sub-batch of the serving pipeline: the largest
  /// power of two whose encoded block (rows x dims floats) fills at most a
  /// third of the shared L3 — one third each for the encoded rows, the
  /// score/output traffic, and slack — exactly how score_block_rows derives
  /// L2 tiles. Clamped to [score_block_rows(dims), 4096]: a sub-batch never
  /// drops below the L2 scoring tile (the stage it feeds), and never grows
  /// past the point where batching stops amortizing anything.
  std::size_t serving_block_rows(std::size_t dims) const noexcept;

  /// serving_block_rows generalized to an arbitrary bytes-per-row — the
  /// quantized serving pipeline plans from its PACKED row size (dims int8
  /// bytes, or dims/8 packed-bit bytes), not from a float row, so a packed
  /// sub-batch fills the same third-of-L3 budget with 4-32x more rows.
  /// `floor_rows` is the lower clamp (the L2 scoring tile the block
  /// feeds); the upper clamp stays 4096.
  std::size_t serving_block_rows_bytes(std::size_t row_bytes,
                                       std::size_t floor_rows = 1)
      const noexcept;

  /// The serving split for a batch of `dims`-wide encoded rows: one
  /// serving_block_rows sub-batch per shared-L3 domain. The stage-split
  /// scores_batch drivers walk their input in batch_rows chunks, encoding
  /// then scoring each chunk while it is still L3-resident.
  ServingPlan plan_serving(std::size_t dims) const noexcept;

  /// plan_serving from an explicit packed bytes-per-row (see
  /// serving_block_rows_bytes).
  ServingPlan plan_serving_bytes(std::size_t row_bytes,
                                 std::size_t floor_rows = 1) const noexcept;

  /// The batched-encode tile shape for a D = `dims` encoder over
  /// `features`-wide input rows: flow_rows from a third of L1d (the flow
  /// block's raw rows), panel_rows from a third of L2 (the base panel the
  /// tile kernel streams), both powers of two, the panel never wider than
  /// D. At NIDS widths (F ~ 40, 2 MiB L2) the whole base matrix is one
  /// panel, so the tile degenerates to a single GEMM-shaped pass.
  EncodeTilePlan plan_encode_tile(std::size_t dims,
                                  std::size_t features) const noexcept;

 private:
  const Kernels* kernels_;
  ThreadPool* pool_;
  CacheTopology cache_;
};

}  // namespace cyberhd::core
