// Analytic CPU / FPGA performance-and-energy models for Table I.
//
// The paper reports *relative* energy efficiency of HDC training across
// hypervector bitwidths on an Intel i9-12900 CPU and a Xilinx Alveo U50
// FPGA, normalized to the 1-bit CPU implementation. Absolute joules are a
// property of the authors' boards; what is reproducible is the structure,
// which follows from first-order architecture facts these models encode:
//
//  CPU  — a fixed wide pipeline. Power is dominated by the front-end,
//         caches, and out-of-order machinery, so energy per element-op is
//         nearly independent of operand width: narrow (sub-byte) elements
//         buy almost nothing (no sub-byte SIMD lanes; pack/unpack overhead
//         eats the lane gains). Since iso-accuracy dimensionality D grows
//         as bitwidth shrinks, the CPU's efficiency *decreases* monotonically
//         toward 1 bit — the paper's 6.6x .. 1.0x row.
//
//  FPGA — a fixed 20 W, 200 MHz fabric (Alveo U50 budget from the paper)
//         whose throughput is set by how many multiply-accumulate
//         processing elements fit. PE area shrinks sub-linearly below
//         8 bits (routing and control dominate) and grows super-linearly
//         above 8 bits (wide multipliers), so efficiency peaks at mid
//         bitwidths — the paper's 16x .. 34x .. 26x row with its interior
//         maximum at 8 bits.
//
// Constants are calibrated to the i9-12900 / U50 class of hardware and are
// documented fields, not magic numbers buried in formulas.
#pragma once

#include <cstddef>
#include <string>

namespace cyberhd::hw {

/// One HDC training/inference workload to be priced.
struct Workload {
  /// Hypervector dimensionality (use the *physical* D of the deployed
  /// model; iso-accuracy comparisons pass each bitwidth's required D).
  std::size_t dims = 512;
  /// Input feature count F (encoding cost is D x F MACs per sample).
  std::size_t features = 64;
  /// Class count k (similarity cost is D x k MACs per sample).
  std::size_t classes = 5;
  /// Samples processed.
  std::size_t samples = 1;
  /// Element bitwidth (1, 2, 4, 8, 16, 32).
  int bits = 32;
};

/// Total element-operations (MAC-equivalents) of a workload:
/// samples * dims * (features + classes).
double element_ops(const Workload& w) noexcept;

/// Abstract device cost model.
class DeviceModel {
 public:
  virtual ~DeviceModel() = default;
  virtual std::string name() const = 0;
  /// Energy of one element-op at the given bitwidth, picojoules.
  virtual double energy_per_op_pj(int bits) const = 0;
  /// Sustained element-ops per second at the given bitwidth.
  virtual double ops_per_second(int bits) const = 0;

  /// Energy of a whole workload, joules.
  double energy_joules(const Workload& w) const;
  /// Runtime of a whole workload, seconds.
  double runtime_seconds(const Workload& w) const;
};

/// Desktop-class CPU (i9-12900-like: ~5.1 GHz peak, 256-bit SIMD).
class CpuModel final : public DeviceModel {
 public:
  /// Clock frequency, Hz.
  double frequency_hz = 5.1e9;
  /// SIMD datapath width, bits (AVX2).
  double simd_width_bits = 256.0;
  /// Effective fused ops per cycle per lane (2 FMA ports, imperfect
  /// utilization).
  double ops_per_cycle_per_lane = 1.6;
  /// Fraction of per-op energy that is width-independent overhead
  /// (front-end, caches, OoO bookkeeping).
  double overhead_fraction = 0.85;
  /// Energy per 32-bit element-op, picojoules (package-level, amortized).
  double base_op_energy_pj = 160.0;
  /// Sub-byte elements still occupy 8-bit lanes and pay pack/unpack, so the
  /// effective lane width saturates at this many bits.
  double min_lane_bits = 8.0;

  std::string name() const override { return "CPU(i9-12900-class)"; }
  double energy_per_op_pj(int bits) const override;
  double ops_per_second(int bits) const override;
};

/// Datacenter FPGA (Alveo U50-like: 20 W at 200 MHz, per the paper).
class FpgaModel final : public DeviceModel {
 public:
  /// Fabric clock, Hz.
  double frequency_hz = 200e6;
  /// Board power at that clock, watts (paper: "less than 20 W").
  double power_watts = 20.0;
  /// Parallel processing elements instantiable for an 8-bit MAC
  /// (U50-class fabric: ~870k LUTs at a few hundred LUT-equivalents per
  /// 8-bit MAC PE once routing closes at 200 MHz).
  double pe_at_8bit = 9800.0;
  /// Sub-8-bit area shrink exponent: PE area ~ bits^this below 8 bits.
  /// Close to zero because routing, control, and accumulator width
  /// dominate a narrow PE — halving operand width shaves only a few
  /// percent of area.
  double narrow_area_exponent = 0.15;
  /// Above-8-bit area growth exponent: PE area ~ (bits/8)^this
  /// (multiplier area grows super-linearly).
  double wide_area_exponent = 1.33;

  std::string name() const override { return "FPGA(Alveo-U50-class)"; }
  /// Parallel PEs that fit at a bitwidth (area model).
  double parallel_pes(int bits) const;
  double energy_per_op_pj(int bits) const override;
  double ops_per_second(int bits) const override;
};

/// Energy efficiency of (device, workload) normalized to a reference
/// (device, workload): reference_energy / energy. Matches Table I's
/// "normalized to the efficiency of 1-bit CPU" convention when the
/// reference is the CPU pricing the 1-bit workload.
double relative_efficiency(const DeviceModel& device, const Workload& w,
                           const DeviceModel& reference_device,
                           const Workload& reference_workload);

}  // namespace cyberhd::hw
