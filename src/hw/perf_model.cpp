#include "hw/perf_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cyberhd::hw {

double element_ops(const Workload& w) noexcept {
  return static_cast<double>(w.samples) * static_cast<double>(w.dims) *
         static_cast<double>(w.features + w.classes);
}

double DeviceModel::energy_joules(const Workload& w) const {
  return element_ops(w) * energy_per_op_pj(w.bits) * 1e-12;
}

double DeviceModel::runtime_seconds(const Workload& w) const {
  return element_ops(w) / ops_per_second(w.bits);
}

// ---- CpuModel ---------------------------------------------------------------

double CpuModel::energy_per_op_pj(int bits) const {
  // Width-independent overhead plus a datapath term proportional to the
  // lane width actually burned (sub-byte saturates at min_lane_bits).
  const double lane_bits = std::max(static_cast<double>(bits), min_lane_bits);
  const double datapath = (1.0 - overhead_fraction) * (lane_bits / 32.0);
  return base_op_energy_pj * (overhead_fraction + datapath);
}

double CpuModel::ops_per_second(int bits) const {
  const double lane_bits = std::max(static_cast<double>(bits), min_lane_bits);
  const double lanes = simd_width_bits / lane_bits;
  // Sub-byte data pays pack/unpack, modeled as losing the lane gain below
  // min_lane_bits entirely (they share the 8-bit lane count).
  return frequency_hz * lanes * ops_per_cycle_per_lane;
}

// ---- FpgaModel --------------------------------------------------------------

double FpgaModel::parallel_pes(int bits) const {
  assert(bits >= 1 && bits <= 32);
  const double b = static_cast<double>(bits);
  // PE area relative to the 8-bit PE.
  double relative_area;
  if (b <= 8.0) {
    relative_area = std::pow(b / 8.0, narrow_area_exponent);
  } else {
    relative_area = std::pow(b / 8.0, wide_area_exponent);
  }
  return pe_at_8bit / relative_area;
}

double FpgaModel::ops_per_second(int bits) const {
  return frequency_hz * parallel_pes(bits);
}

double FpgaModel::energy_per_op_pj(int bits) const {
  // Fixed power budget: energy per op = power / throughput.
  return power_watts / ops_per_second(bits) * 1e12;
}

// ---- normalization ----------------------------------------------------------

double relative_efficiency(const DeviceModel& device, const Workload& w,
                           const DeviceModel& reference_device,
                           const Workload& reference_workload) {
  const double e = device.energy_joules(w);
  const double e_ref = reference_device.energy_joules(reference_workload);
  assert(e > 0.0);
  return e_ref / e;
}

}  // namespace cyberhd::hw
