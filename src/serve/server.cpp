#include "serve/server.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <exception>

#include "core/env.hpp"
#include "serve/snapshot.hpp"

namespace cyberhd::serve {

std::uint64_t Server::linger_from_env() noexcept {
  // 1 s ceiling: beyond that is a typo, not a batching policy.
  return core::env::u64("CYBERHD_BATCH_LINGER_US", 200, 0, 1'000'000);
}

Server::Server(const core::Classifier& model, std::size_t input_dim,
               ServerConfig config)
    : model_(model),
      exec_(config.domain_affine ? &core::ExecutionContext::process()
                                 : &core::ExecutionContext::serial()),
      input_dim_(input_dim),
      num_classes_(model.num_classes()),
      max_batch_rows_(config.max_batch_rows),
      linger_us_(config.max_linger_us >= 0
                     ? static_cast<std::uint64_t>(config.max_linger_us)
                     : linger_from_env()),
      domain_affine_(config.domain_affine),
      queue_(config.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  assert(input_dim_ > 0);
  assert(num_classes_ > 0 && "serve a fitted model");
  if (max_batch_rows_ == 0) {
    // Consult the model's planner with an input-shaped probe. Planner-
    // aware models (CyberHD) derive the answer from topology alone —
    // quantized models plan from *packed* bytes per row, so their
    // batches come back 4-32x larger for the same L3 budget; the
    // base-class default answers probe.rows(), which the guard below
    // turns into a sane batch.
    core::Matrix probe(1, input_dim_);
    max_batch_rows_ = model_.preferred_batch_rows(probe);
    if (max_batch_rows_ <= 1) max_batch_rows_ = 256;
  }
  // One group-pinned sub-batch per flush per group, planner-sized: for
  // CyberHD max_batch = block_rows * domains, so dividing by the pool's
  // group count recovers the L3-resident block_rows.
  const core::ThreadPool* pool = exec_->pool();
  const std::size_t groups = pool != nullptr ? pool->num_groups() : 1;
  affine_block_rows_ =
      std::max<std::size_t>(1, max_batch_rows_ / std::max<std::size_t>(
                                                     1, groups));
  batch_x_.resize(max_batch_rows_, input_dim_);
  batch_scores_.resize(max_batch_rows_, num_classes_);
  pending_.reserve(max_batch_rows_);

  const FaultConfig faults =
      config.faults.has_value() ? *config.faults : FaultConfig::from_env();
  if (faults.enabled()) injector_ = std::make_unique<FaultInjector>(faults);
  audit_us_ = config.audit_interval_us >= 0
                  ? static_cast<std::uint64_t>(config.audit_interval_us)
                  : core::env::u64("CYBERHD_AUDIT_US", 50'000, 0,
                                   3'600'000'000ULL);
  watchdog_interval_us_ =
      config.watchdog_us >= 0
          ? static_cast<std::uint64_t>(config.watchdog_us)
          : core::env::u64("CYBERHD_WATCHDOG_US", 500'000, 0,
                           3'600'000'000ULL);

  batcher_ = std::thread([this] { batcher_loop(); });
  if (watchdog_interval_us_ > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Server::~Server() { shutdown(); }

std::uint64_t Server::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

bool Server::try_submit(std::span<const float> features, ResultSlot& slot,
                        std::uint64_t deadline_us) {
  assert(features.size() == input_dim_);
  // Pusher accounting closes the shutdown race: the batcher's final drain
  // waits until no try_submit is between the stopping check and its push,
  // so an accepted request can never slip in behind the last drain.
  // seq_cst on both the increment and the stopping load pairs with the
  // seq_cst store in shutdown(): a submitter that read stopping == false
  // ordered its increment before that read, so the quiescence wait sees
  // it until the push (and the decrement) completed.
  pushers_.fetch_add(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {
    pushers_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    // Rejections are terminal too: the slot carries REJECTED so a caller
    // watching only the slot sees the same outcome as the return value.
    slot.reset(num_classes_);
    slot.fail(RequestStatus::kRejected, now_us());
    return false;
  }
  slot.reset(num_classes_);
  const std::uint64_t now = now_us();
  slot.mark_submitted(now);
  const bool pushed = queue_.try_push(
      Request{features.data(), &slot, now,
              deadline_us != 0 ? now + deadline_us : 0});
  pushers_.fetch_sub(1, std::memory_order_release);
  if (!pushed) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    slot.fail(RequestStatus::kRejected, now_us());
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  // Wake a sleeping batcher. seq_cst on the sleep flag (both sides) makes
  // the common interleavings airtight: a batcher that published its sleep
  // intent before this load gets notified; a batcher that publishes after
  // re-checks the ring under wake_mutex_ and sees our push. The one
  // theoretically thin ordering (our ring publish racing its re-check) is
  // bounded by wait_for_work's finite sleep — a missed wakeup costs one
  // backstop period, never a hang (and the watchdog kicks it too).
  if (batcher_sleeping_.load(std::memory_order_seq_cst)) {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_one();
  }
  return true;
}

bool Server::submit(std::span<const float> features, ResultSlot& slot,
                    std::uint64_t deadline_us) {
  for (;;) {
    if (try_submit(features, slot, deadline_us)) return true;
    if (stopping_.load(std::memory_order_acquire)) return false;
    // Backpressure: the ring is full, so the batcher is busy scoring.
    // Yield rather than spin-burn the core it needs.
    std::this_thread::yield();
  }
}

bool Server::submit_with_retry(std::span<const float> features,
                               ResultSlot& slot, const RetryPolicy& policy,
                               std::uint64_t deadline_us) {
  core::Rng rng(policy.seed);
  std::uint64_t backoff = std::max<std::uint64_t>(1, policy.base_backoff_us);
  for (std::size_t attempt = 1;; ++attempt) {
    if (try_submit(features, slot, deadline_us)) return true;
    if (stopping_.load(std::memory_order_acquire)) return false;
    if (attempt >= policy.max_attempts) return false;
    retries_.fetch_add(1, std::memory_order_relaxed);
    // Multiplicative jitter in [0.5, 1.5): contending streams that were
    // rejected by the same full ring spread their retries instead of
    // re-colliding in lockstep.
    const double jitter = 0.5 + rng.next_double();
    const auto sleep_us = static_cast<std::uint64_t>(
        static_cast<double>(backoff) * jitter);
    std::this_thread::sleep_for(
        std::chrono::microseconds(std::max<std::uint64_t>(1, sleep_us)));
    backoff = std::min(policy.max_backoff_us, backoff * 2);
  }
}

void Server::wait_for_work(std::uint64_t max_wait_us) {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  batcher_sleeping_.store(true, std::memory_order_seq_cst);
  // Re-check after publishing sleep intent: a producer that pushed before
  // seeing the flag would otherwise strand its request until the backstop.
  if (!queue_.can_pop() && !stopping_.load(std::memory_order_relaxed)) {
    wake_cv_.wait_for(lock, std::chrono::microseconds(std::max<std::uint64_t>(
                                1, max_wait_us)));
  }
  batcher_sleeping_.store(false, std::memory_order_relaxed);
}

void Server::fail_pending(std::size_t n, RequestStatus status) {
  const std::uint64_t done = now_us();
  for (std::size_t i = 0; i < n; ++i) {
    pending_[i].slot->fail(status, done);
  }
  failed_.fetch_add(n, std::memory_order_relaxed);
  completed_.fetch_add(n, std::memory_order_relaxed);
}

void Server::maybe_audit(bool forced) {
  IntegrityAuditor* auditor = auditor_.load(std::memory_order_acquire);
  if (auditor == nullptr) return;
  if (!forced) {
    if (audit_us_ == 0) return;
    const std::uint64_t now = now_us();
    if (now < next_audit_us_) return;
    next_audit_us_ = now + audit_us_;
  }
  audits_.fetch_add(1, std::memory_order_relaxed);
  switch (auditor->audit_and_heal()) {
    case AuditOutcome::kClean:
      break;
    case AuditOutcome::kRecovered:
      corruptions_.fetch_add(1, std::memory_order_relaxed);
      recoveries_.fetch_add(1, std::memory_order_relaxed);
      // A successful heal lifts an earlier latch: the model is trusted
      // again.
      model_unavailable_.store(false, std::memory_order_relaxed);
      break;
    case AuditOutcome::kFailed:
      corruptions_.fetch_add(1, std::memory_order_relaxed);
      // No intact snapshot: serving scores from a known-corrupt model
      // is the one forbidden outcome, so fail requests explicitly until
      // an operator (or a later audit) restores integrity.
      model_unavailable_.store(true, std::memory_order_relaxed);
      break;
  }
}

void Server::flush(std::size_t n) {
  assert(n > 0 && n <= max_batch_rows_);
  // 1. Shed expired work before spending any scoring on it. Survivors
  // are compacted in place (write index w) so the scoring stage sees a
  // dense batch.
  const std::uint64_t shed_now = now_us();
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Request& r = pending_[i];
    if (r.deadline_us != 0 && shed_now > r.deadline_us) {
      r.slot->fail(RequestStatus::kDeadlineExceeded, shed_now);
      expired_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (w != i) {
      std::span<const float> src = batch_x_.row(i);
      std::copy(src.begin(), src.end(), batch_x_.row(w).begin());
      pending_[w] = r;
    }
    ++w;
  }
  if (w == 0) {
    pending_.clear();
    return;
  }

  // 2. Injected faults (null injector == disabled == zero cost).
  bool injected_encode_failure = false;
  bool audit_now = false;
  if (injector_ != nullptr) {
    if (const std::uint64_t delay = injector_->draw_delay_us(); delay > 0) {
      injected_delays_.fetch_add(1, std::memory_order_relaxed);
      // The stall the watchdog is for: the batcher goes dark with work
      // pending.
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
    const double rate = injector_->draw_bitflip_rate();
    if (rate > 0.0 && injector_->has_bitflip_hook() &&
        auditor_.load(std::memory_order_acquire) != nullptr) {
      // Corrupt only when an auditor can heal before scoring — flipping
      // model bits with nobody to catch it would make the server serve
      // silently wrong scores, the exact failure mode under test.
      injector_->inject_bitflips(rate);
      injected_bitflips_.fetch_add(1, std::memory_order_relaxed);
      audit_now = true;
    }
    injected_encode_failure = injector_->draw_encode_failure();
  }

  // 3. Integrity audit — forced right after injected corruption (so the
  // heal lands before scoring and OK results stay bit-identical to a
  // clean replay), periodic otherwise.
  maybe_audit(audit_now);

  // 4. Score the survivors, or fail them explicitly. Never both.
  if (model_unavailable_.load(std::memory_order_relaxed) ||
      injected_encode_failure) {
    if (injected_encode_failure) {
      injected_encode_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    fail_pending(w, RequestStatus::kModelUnavailable);
    pending_.clear();
    return;
  }
  try {
    // Score through the same virtual hook scores_batch drives — one
    // planner-sized sub-batch per task, each pinned to one worker group
    // so a sub-batch's encode and score stages stay on one shared-L3
    // domain. The serial fallback (no pool, one block, in-batcher
    // scoring) walks the same blocks inline; either way per-row results
    // are bit-identical to a serial scores_batch of the same rows.
    exec_->for_each_block(w, affine_block_rows_,
                          [this](std::size_t begin, std::size_t end) {
                            model_.scores_block(batch_x_, begin, end,
                                                batch_scores_);
                          });
  } catch (const std::exception&) {
    // A scoring failure (a genuine one, not injected) must not take the
    // batcher down or hang the batch's clients.
    fail_pending(w, RequestStatus::kModelUnavailable);
    pending_.clear();
    return;
  }
  const std::uint64_t done = now_us();
  for (std::size_t i = 0; i < w; ++i) {
    pending_[i].slot->deliver(batch_scores_.row(i).subspan(0, num_classes_),
                              done);
  }
  ok_.fetch_add(w, std::memory_order_relaxed);
  completed_.fetch_add(w, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_rows_.fetch_add(w, std::memory_order_relaxed);
  pending_.clear();
}

void Server::batcher_loop() {
  std::uint64_t deadline_us = 0;  // 0 = no pending batch
  for (;;) {
    // Liveness signal for the watchdog: every pass through the loop —
    // draining, flushing, or about to sleep — moves the heartbeat.
    heartbeat_.fetch_add(1, std::memory_order_relaxed);

    // Drain whatever the streams have queued, up to one batch.
    Request r;
    while (pending_.size() < max_batch_rows_ && queue_.try_pop(r)) {
      const float* src = r.features;
      float* dst = batch_x_.row(pending_.size()).data();
      std::copy(src, src + input_dim_, dst);
      pending_.push_back(r);
    }

    if (pending_.size() >= max_batch_rows_) {  // size trigger
      flush(pending_.size());
      deadline_us = 0;
      continue;
    }

    const bool stopping = stopping_.load(std::memory_order_seq_cst);
    if (!pending_.empty()) {
      const std::uint64_t now = now_us();
      if (deadline_us == 0) deadline_us = now + linger_us_;
      if (stopping || linger_us_ == 0 || now >= deadline_us) {  // deadline
        flush(pending_.size());
        deadline_us = 0;
        continue;
      }
      // Linger: sleep toward the deadline; a new arrival wakes us early
      // (it might complete the batch).
      wait_for_work(deadline_us - now);
      continue;
    }

    deadline_us = 0;
    if (stopping) {
      // Quiescence: wait out stragglers inside try_submit, then drain
      // whatever they published and complete it. After this no submit
      // can be accepted (they all observe stopping first).
      while (pushers_.load(std::memory_order_seq_cst) != 0) {
        std::this_thread::yield();
      }
      while (queue_.try_pop(r)) {
        const float* src = r.features;
        std::copy(src, src + input_dim_,
                  batch_x_.row(pending_.size()).data());
        pending_.push_back(r);
        if (pending_.size() >= max_batch_rows_) flush(pending_.size());
      }
      if (!pending_.empty()) flush(pending_.size());
      return;
    }

    // Idle housekeeping: corruption that lands while no traffic flows
    // should still be healed before the next request arrives.
    maybe_audit(false);

    // Idle: sleep until a producer pokes us (bounded as a belt-and-braces
    // backstop against any missed wakeup).
    wait_for_work(1000);
  }
}

void Server::watchdog_loop() {
  std::uint64_t last_beat = heartbeat_.load(std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!stopping_.load(std::memory_order_acquire)) {
    watchdog_cv_.wait_for(
        lock, std::chrono::microseconds(watchdog_interval_us_));
    if (stopping_.load(std::memory_order_acquire)) return;
    const std::uint64_t beat = heartbeat_.load(std::memory_order_relaxed);
    const std::uint64_t accepted =
        accepted_.load(std::memory_order_relaxed);
    const std::uint64_t completed =
        completed_.load(std::memory_order_relaxed);
    if (beat == last_beat && accepted > completed) {
      // A whole interval with work in flight and no batcher progress.
      // Observability first (the stat is the alarm), then the one safe
      // recovery action: kick the batcher's condition variable, which
      // cures the only benign cause (a missed wakeup). Anything the kick
      // does not cure — a wedged scoring call — keeps ticking the stat.
      watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> wake(wake_mutex_);
      wake_cv_.notify_all();
    }
    last_beat = beat;
  }
}

void Server::shutdown() {
  stopping_.store(true, std::memory_order_seq_cst);
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_all();
  }
  {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_cv_.notify_all();
  }
  if (batcher_.joinable()) batcher_.join();
  if (watchdog_.joinable()) watchdog_.join();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  const std::uint64_t rows = batched_rows_.load(std::memory_order_relaxed);
  s.mean_batch_rows =
      s.batches == 0 ? 0.0
                     : static_cast<double>(rows) /
                           static_cast<double>(s.batches);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.audits = audits_.load(std::memory_order_relaxed);
  s.corruptions = corruptions_.load(std::memory_order_relaxed);
  s.recoveries = recoveries_.load(std::memory_order_relaxed);
  s.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  s.injected_delays = injected_delays_.load(std::memory_order_relaxed);
  s.injected_encode_failures =
      injected_encode_failures_.load(std::memory_order_relaxed);
  s.injected_bitflips = injected_bitflips_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace cyberhd::serve
