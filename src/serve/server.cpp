#include "serve/server.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace cyberhd::serve {

std::uint64_t Server::linger_from_env() noexcept {
  constexpr std::uint64_t kDefault = 200;
  constexpr std::uint64_t kMax = 1'000'000;  // 1 s: beyond this is a typo
  const char* raw = std::getenv("CYBERHD_BATCH_LINGER_US");
  if (raw == nullptr || *raw == '\0') return kDefault;
  std::uint64_t v = 0;
  for (const char* p = raw; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9' || v > kMax) return kDefault;
    v = v * 10 + static_cast<std::uint64_t>(*p - '0');
  }
  return std::min(v, kMax);
}

Server::Server(const core::Classifier& model, std::size_t input_dim,
               ServerConfig config)
    : model_(model),
      exec_(config.domain_affine ? &core::ExecutionContext::process()
                                 : &core::ExecutionContext::serial()),
      input_dim_(input_dim),
      num_classes_(model.num_classes()),
      max_batch_rows_(config.max_batch_rows),
      linger_us_(config.max_linger_us >= 0
                     ? static_cast<std::uint64_t>(config.max_linger_us)
                     : linger_from_env()),
      domain_affine_(config.domain_affine),
      queue_(config.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  assert(input_dim_ > 0);
  assert(num_classes_ > 0 && "serve a fitted model");
  if (max_batch_rows_ == 0) {
    // Consult the model's planner with an input-shaped probe. Planner-
    // aware models (CyberHD) derive the answer from topology alone —
    // quantized models plan from *packed* bytes per row, so their
    // batches come back 4-32x larger for the same L3 budget; the
    // base-class default answers probe.rows(), which the guard below
    // turns into a sane batch.
    core::Matrix probe(1, input_dim_);
    max_batch_rows_ = model_.preferred_batch_rows(probe);
    if (max_batch_rows_ <= 1) max_batch_rows_ = 256;
  }
  // One group-pinned sub-batch per flush per group, planner-sized: for
  // CyberHD max_batch = block_rows * domains, so dividing by the pool's
  // group count recovers the L3-resident block_rows.
  const core::ThreadPool* pool = exec_->pool();
  const std::size_t groups = pool != nullptr ? pool->num_groups() : 1;
  affine_block_rows_ =
      std::max<std::size_t>(1, max_batch_rows_ / std::max<std::size_t>(
                                                     1, groups));
  batch_x_.resize(max_batch_rows_, input_dim_);
  batch_scores_.resize(max_batch_rows_, num_classes_);
  pending_.reserve(max_batch_rows_);
  batcher_ = std::thread([this] { batcher_loop(); });
}

Server::~Server() { shutdown(); }

std::uint64_t Server::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

bool Server::try_submit(std::span<const float> features, ResultSlot& slot) {
  assert(features.size() == input_dim_);
  // Pusher accounting closes the shutdown race: the batcher's final drain
  // waits until no try_submit is between the stopping check and its push,
  // so an accepted request can never slip in behind the last drain.
  // seq_cst on both the increment and the stopping load pairs with the
  // seq_cst store in shutdown(): a submitter that read stopping == false
  // ordered its increment before that read, so the quiescence wait sees
  // it until the push (and the decrement) completed.
  pushers_.fetch_add(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {
    pushers_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slot.reset(num_classes_);
  slot.mark_submitted(now_us());
  const bool pushed =
      queue_.try_push(Request{features.data(), &slot, slot.submitted_at_us()});
  pushers_.fetch_sub(1, std::memory_order_release);
  if (!pushed) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  // Wake a sleeping batcher. seq_cst on the sleep flag (both sides) makes
  // the common interleavings airtight: a batcher that published its sleep
  // intent before this load gets notified; a batcher that publishes after
  // re-checks the ring under wake_mutex_ and sees our push. The one
  // theoretically thin ordering (our ring publish racing its re-check) is
  // bounded by wait_for_work's finite sleep — a missed wakeup costs one
  // backstop period, never a hang.
  if (batcher_sleeping_.load(std::memory_order_seq_cst)) {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_one();
  }
  return true;
}

bool Server::submit(std::span<const float> features, ResultSlot& slot) {
  for (;;) {
    if (try_submit(features, slot)) return true;
    if (stopping_.load(std::memory_order_acquire)) return false;
    // Backpressure: the ring is full, so the batcher is busy scoring.
    // Yield rather than spin-burn the core it needs.
    std::this_thread::yield();
  }
}

void Server::wait_for_work(std::uint64_t max_wait_us) {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  batcher_sleeping_.store(true, std::memory_order_seq_cst);
  // Re-check after publishing sleep intent: a producer that pushed before
  // seeing the flag would otherwise strand its request until the backstop.
  if (!queue_.can_pop() && !stopping_.load(std::memory_order_relaxed)) {
    wake_cv_.wait_for(lock, std::chrono::microseconds(std::max<std::uint64_t>(
                                1, max_wait_us)));
  }
  batcher_sleeping_.store(false, std::memory_order_relaxed);
}

void Server::flush(std::size_t n) {
  assert(n > 0 && n <= max_batch_rows_);
  // Score through the same virtual hook scores_batch drives — one
  // planner-sized sub-batch per task, each pinned to one worker group so
  // a sub-batch's encode and score stages stay on one shared-L3 domain.
  // The serial fallback (no pool, one block, in-batcher scoring) walks
  // the same blocks inline; either way per-row results are bit-identical
  // to a serial scores_batch of the same rows.
  exec_->for_each_block(n, affine_block_rows_,
                        [this](std::size_t begin, std::size_t end) {
                          model_.scores_block(batch_x_, begin, end,
                                              batch_scores_);
                        });
  const std::uint64_t done = now_us();
  for (std::size_t i = 0; i < n; ++i) {
    pending_[i].slot->deliver(batch_scores_.row(i).subspan(0, num_classes_),
                              done);
  }
  completed_.fetch_add(n, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_rows_.fetch_add(n, std::memory_order_relaxed);
  pending_.clear();
}

void Server::batcher_loop() {
  std::uint64_t deadline_us = 0;  // 0 = no pending batch
  for (;;) {
    // Drain whatever the streams have queued, up to one batch.
    Request r;
    while (pending_.size() < max_batch_rows_ && queue_.try_pop(r)) {
      const float* src = r.features;
      float* dst = batch_x_.row(pending_.size()).data();
      std::copy(src, src + input_dim_, dst);
      pending_.push_back(r);
    }

    if (pending_.size() >= max_batch_rows_) {  // size trigger
      flush(pending_.size());
      deadline_us = 0;
      continue;
    }

    const bool stopping = stopping_.load(std::memory_order_seq_cst);
    if (!pending_.empty()) {
      const std::uint64_t now = now_us();
      if (deadline_us == 0) deadline_us = now + linger_us_;
      if (stopping || linger_us_ == 0 || now >= deadline_us) {  // deadline
        flush(pending_.size());
        deadline_us = 0;
        continue;
      }
      // Linger: sleep toward the deadline; a new arrival wakes us early
      // (it might complete the batch).
      wait_for_work(deadline_us - now);
      continue;
    }

    deadline_us = 0;
    if (stopping) {
      // Quiescence: wait out stragglers inside try_submit, then drain
      // whatever they published and complete it. After this no submit
      // can be accepted (they all observe stopping first).
      while (pushers_.load(std::memory_order_seq_cst) != 0) {
        std::this_thread::yield();
      }
      while (queue_.try_pop(r)) {
        const float* src = r.features;
        std::copy(src, src + input_dim_,
                  batch_x_.row(pending_.size()).data());
        pending_.push_back(r);
        if (pending_.size() >= max_batch_rows_) flush(pending_.size());
      }
      if (!pending_.empty()) flush(pending_.size());
      return;
    }

    // Idle: sleep until a producer pokes us (bounded as a belt-and-braces
    // backstop against any missed wakeup).
    wait_for_work(1000);
  }
}

void Server::shutdown() {
  stopping_.store(true, std::memory_order_seq_cst);
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_all();
  }
  if (batcher_.joinable()) batcher_.join();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  const std::uint64_t rows = batched_rows_.load(std::memory_order_relaxed);
  s.mean_batch_rows =
      s.batches == 0 ? 0.0
                     : static_cast<double>(rows) /
                           static_cast<double>(s.batches);
  return s;
}

}  // namespace cyberhd::serve
