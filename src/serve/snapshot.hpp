// Self-healing model integrity for the serving front-end.
//
// Two pieces:
//
//  * SnapshotManager — a last-N ring of serialized model snapshots (the
//    save() v2 byte stream, which is already CRC32C-checksummed per
//    section) with one extra whole-buffer CRC so a snapshot rotted in
//    RAM is detected before a parse is attempted. restore() walks
//    newest-to-oldest and returns the first snapshot that passes both
//    layers of checking — a corrupt newest snapshot falls back to an
//    older good one instead of failing the heal.
//
//  * ModelAuditor — the audit-and-heal step the server runs on its
//    batcher thread between flushes. It keeps a reference CRC32C of the
//    live model's deployed representation (float class weights, packed
//    sign words at 1 bit, or level codes at 2-8 bits), detects drift,
//    and heals by hot-swapping the last good snapshot back in: the float
//    classifier is move-assigned in place (the Server's reference stays
//    valid — same object, restored guts), and a quantized model is
//    re-quantized from the restored float weights — deterministic, so
//    healed scores are bit-identical to the pre-corruption ones.
//
// Threading: audits and heals run on the batcher thread while no flush
// is scoring, so the hot-swap needs no synchronization with scoring by
// construction. SnapshotManager itself is mutex-guarded (capture may be
// called from a training/control thread while the batcher restores).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "hdc/cyberhd.hpp"
#include "hdc/quantized.hpp"

namespace cyberhd::serve {

/// Last-N ring of CRC32C-checksummed save()-v2 model snapshots.
class SnapshotManager {
 public:
  /// Keep the newest `keep` snapshots; 0 reads CYBERHD_SNAPSHOT_KEEP
  /// (default 3, range 1-64).
  explicit SnapshotManager(std::size_t keep = 0);

  std::size_t keep() const noexcept { return keep_; }
  /// Snapshots currently held (<= keep()).
  std::size_t size() const;

  /// Serialize `model` and append it as the newest snapshot, evicting
  /// the oldest beyond keep().
  void capture(const hdc::CyberHdClassifier& model);

  /// Reconstruct a classifier from the newest intact snapshot — one
  /// whose whole-buffer CRC matches AND whose save()-v2 section CRCs
  /// parse clean. Corrupt snapshots are skipped, not fatal. nullopt when
  /// nothing intact remains (or nothing was ever captured).
  std::optional<hdc::CyberHdClassifier> restore() const;

  /// Test hook: mutable bytes of snapshot `i` (0 = newest). Corrupting
  /// them WITHOUT updating the stored CRC is exactly the rot the
  /// restore() walk must detect.
  std::vector<unsigned char>& buffer(std::size_t i);

 private:
  struct Snapshot {
    std::vector<unsigned char> bytes;
    std::uint32_t crc = 0;
  };

  std::size_t keep_;
  mutable std::mutex mutex_;
  std::deque<Snapshot> snaps_;  // front = newest
};

/// What one audit pass concluded.
enum class AuditOutcome : std::uint8_t {
  kClean = 0,  ///< live model matches its reference CRC
  kRecovered,  ///< corruption detected and healed from a snapshot
  kFailed,     ///< corruption detected, no intact snapshot to heal from
};

/// The audit step the server polls between flushes. Abstract so tests
/// can substitute counting/scripted auditors.
class IntegrityAuditor {
 public:
  virtual ~IntegrityAuditor() = default;
  /// Check the live model; heal it from a snapshot when corrupt.
  virtual AuditOutcome audit_and_heal() = 0;
};

/// CRC32C audit + snapshot heal over a served classifier (float or
/// quantized). Construct AFTER the model is fitted/quantized and at
/// least one snapshot is captured; the constructor baselines the
/// reference CRC from the live model.
class ModelAuditor final : public IntegrityAuditor {
 public:
  /// Audit a float classifier: CRC over the class-weight matrix; heal by
  /// move-assigning the restored snapshot into `model` (its address —
  /// what the Server references — is unchanged).
  ModelAuditor(hdc::CyberHdClassifier& model, SnapshotManager& snapshots);
  /// Audit a quantized classifier: CRC over the deployed representation
  /// (packed sign words at 1 bit, level codes at 2-8 bits); heal by
  /// re-quantizing the restored float snapshot at the same bitwidth
  /// (deterministic — bit-identical to the original quantization) and
  /// clearing the packed encode cache.
  ModelAuditor(hdc::QuantizedCyberHd& model, SnapshotManager& snapshots);

  AuditOutcome audit_and_heal() override;

  /// Re-baseline the reference CRC from the live model (after a
  /// legitimate model update, e.g. online retraining + capture()).
  void rebaseline();

 private:
  std::uint32_t live_crc() const;
  bool heal();

  hdc::CyberHdClassifier* float_model_ = nullptr;
  hdc::QuantizedCyberHd* quant_model_ = nullptr;
  SnapshotManager* snapshots_;
  std::uint32_t reference_crc_ = 0;
};

}  // namespace cyberhd::serve
