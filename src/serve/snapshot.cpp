#include "serve/snapshot.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/env.hpp"
#include "core/io.hpp"

namespace cyberhd::serve {

SnapshotManager::SnapshotManager(std::size_t keep)
    : keep_(keep != 0
                ? keep
                : static_cast<std::size_t>(
                      core::env::u64("CYBERHD_SNAPSHOT_KEEP", 3, 1, 64))) {}

std::size_t SnapshotManager::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return snaps_.size();
}

void SnapshotManager::capture(const hdc::CyberHdClassifier& model) {
  std::ostringstream out(std::ios::binary);
  model.save(out);
  const std::string s = out.str();
  Snapshot snap;
  snap.bytes.assign(s.begin(), s.end());
  snap.crc = core::io::crc32c(snap.bytes.data(), snap.bytes.size());
  const std::lock_guard<std::mutex> lock(mutex_);
  snaps_.push_front(std::move(snap));
  while (snaps_.size() > keep_) snaps_.pop_back();
}

std::optional<hdc::CyberHdClassifier> SnapshotManager::restore() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Snapshot& snap : snaps_) {
    if (core::io::crc32c(snap.bytes.data(), snap.bytes.size()) != snap.crc) {
      continue;  // rotted in RAM; the buffer CRC catches it pre-parse
    }
    std::istringstream in(
        std::string(snap.bytes.begin(), snap.bytes.end()), std::ios::binary);
    try {
      return hdc::CyberHdClassifier::load(in);
    } catch (const std::runtime_error&) {
      // Section-CRC or format failure: this snapshot is bad too — keep
      // walking toward older ones.
    }
  }
  return std::nullopt;
}

std::vector<unsigned char>& SnapshotManager::buffer(std::size_t i) {
  const std::lock_guard<std::mutex> lock(mutex_);
  assert(i < snaps_.size());
  return snaps_[i].bytes;
}

ModelAuditor::ModelAuditor(hdc::CyberHdClassifier& model,
                           SnapshotManager& snapshots)
    : float_model_(&model), snapshots_(&snapshots) {
  rebaseline();
}

ModelAuditor::ModelAuditor(hdc::QuantizedCyberHd& model,
                           SnapshotManager& snapshots)
    : quant_model_(&model), snapshots_(&snapshots) {
  rebaseline();
}

void ModelAuditor::rebaseline() { reference_crc_ = live_crc(); }

std::uint32_t ModelAuditor::live_crc() const {
  if (float_model_ != nullptr) {
    const core::Matrix& w = float_model_->model().weights();
    return core::io::crc32c(w.data(), w.rows() * w.cols() * sizeof(float));
  }
  // Quantized: checksum the representation that would actually sit in
  // deployed memory — the one fault::inject_hdc flips.
  const hdc::QuantizedHdcModel& m = quant_model_->model();
  std::uint32_t crc = 0;
  if (m.bits() == 1) {
    for (const core::PackedBits& cls : m.packed_classes()) {
      crc = core::io::crc32c(cls.words(),
                         cls.num_words() * sizeof(std::uint64_t), crc);
    }
  } else {
    for (const core::QuantizedVector& cls : m.level_classes()) {
      crc = core::io::crc32c(cls.levels.data(),
                         cls.levels.size() * sizeof(std::int32_t), crc);
    }
  }
  return crc;
}

bool ModelAuditor::heal() {
  std::optional<hdc::CyberHdClassifier> restored = snapshots_->restore();
  if (!restored.has_value()) return false;
  if (float_model_ != nullptr) {
    // Hot swap in place: move-assignment keeps the object address (and
    // every Server reference to it) stable while replacing the guts.
    *float_model_ = std::move(*restored);
    return true;
  }
  // Re-quantize the restored float weights at the live bitwidth.
  // Quantization is deterministic, so this reproduces the original
  // packed words / level codes bit for bit. The encoder clone inside the
  // quantized classifier was never part of the audited surface and stays
  // as-is; the packed encode cache is dropped conservatively — its
  // entries were derived pre-corruption and remain valid in principle,
  // but an invalidation on swap is cheap and removes the need to prove
  // that for every future model source.
  quant_model_->model() =
      hdc::QuantizedHdcModel(restored->model(), quant_model_->bits());
  if (hdc::EncodeCache* cache = quant_model_->encode_cache()) {
    cache->clear();
  }
  return true;
}

AuditOutcome ModelAuditor::audit_and_heal() {
  if (live_crc() == reference_crc_) return AuditOutcome::kClean;
  if (!heal()) return AuditOutcome::kFailed;
  // The heal rebuilt the exact pre-corruption representation; baseline
  // from it so the next audit compares against what is actually live.
  rebaseline();
  return AuditOutcome::kRecovered;
}

}  // namespace cyberhd::serve
