#include "serve/fault_injector.hpp"

#include <utility>

#include "core/env.hpp"

namespace cyberhd::serve {

FaultConfig FaultConfig::from_env() noexcept {
  FaultConfig c;
  c.seed = core::env::u64("CYBERHD_FAULT_SEED", c.seed, 0, UINT64_MAX);
  c.delay_p = core::env::probability("CYBERHD_FAULT_DELAY_P", 0.0);
  c.delay_us = core::env::u64("CYBERHD_FAULT_DELAY_US", 0, 0,
                              1'000'000);  // 1 s: beyond this is a typo
  c.encode_fail_p =
      core::env::probability("CYBERHD_FAULT_ENCODE_FAIL_P", 0.0);
  c.bitflip_p = core::env::probability("CYBERHD_FAULT_BITFLIP_P", 0.0);
  c.bitflip_rate =
      core::env::probability("CYBERHD_FAULT_BITFLIP_RATE", 0.0);
  return c;
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_(config.seed) {}

std::uint64_t FaultInjector::draw_delay_us() {
  if (config_.delay_p <= 0.0 || config_.delay_us == 0) return 0;
  return rng_.bernoulli(config_.delay_p) ? config_.delay_us : 0;
}

bool FaultInjector::draw_encode_failure() {
  return config_.encode_fail_p > 0.0 && rng_.bernoulli(config_.encode_fail_p);
}

double FaultInjector::draw_bitflip_rate() {
  if (config_.bitflip_p <= 0.0 || config_.bitflip_rate <= 0.0) return 0.0;
  return rng_.bernoulli(config_.bitflip_p) ? config_.bitflip_rate : 0.0;
}

void FaultInjector::set_bitflip_hook(
    std::function<void(double, core::Rng&)> hook) {
  const std::lock_guard<std::mutex> lock(hook_mutex_);
  hook_ = std::move(hook);
}

bool FaultInjector::has_bitflip_hook() const {
  const std::lock_guard<std::mutex> lock(hook_mutex_);
  return static_cast<bool>(hook_);
}

void FaultInjector::inject_bitflips(double rate) {
  const std::lock_guard<std::mutex> lock(hook_mutex_);
  if (!hook_) return;
  // Fork a corruption stream so the hook's draws do not perturb the
  // injector's own schedule (the same seed must fire the same flushes
  // whether or not a hook is installed).
  core::Rng corrupt = rng_.fork(0xb17f11b5);
  hook_(rate, corrupt);
}

}  // namespace cyberhd::serve
