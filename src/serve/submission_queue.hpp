// The serving front-end's ingest ring: a bounded lock-free MPSC queue.
//
// N client streams call try_push concurrently; the single batcher thread
// pops. The structure is the classic Vyukov bounded queue: a power-of-two
// ring of slots, each carrying a ticket ("sequence") that encodes whose
// turn the slot is. A producer claims a slot by CASing the shared enqueue
// cursor, writes its request, then publishes by bumping the slot ticket —
// so the consumer never observes a half-written request, and a full ring
// is detected without any lock (the slot's ticket still belongs to the
// previous lap). Rejection on full is the design, not a failure mode: the
// ring is the server's backpressure boundary, and callers decide whether
// to retry, shed, or block.
//
// Memory ordering: ticket loads are acquire, ticket stores are release —
// the request payload is ordered by the ticket alone. The cursors
// themselves only need relaxed/CAS ordering (they are claims, not
// publications). Producers are wait-free except for the claim CAS loop;
// the single consumer is wait-free.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace cyberhd::serve {

class ResultSlot;

/// One in-flight classification request: a borrowed view of the feature
/// row plus the completion slot the scores come back through. The caller
/// owns both and must keep them alive (and the features unchanged) until
/// the slot reports completion.
struct Request {
  const float* features = nullptr;  ///< input_dim floats, caller-owned
  ResultSlot* slot = nullptr;       ///< completion slot, caller-owned
  std::uint64_t submitted_at_us = 0;  ///< steady-clock stamp at accept
  /// Absolute steady-clock deadline (µs since the server's epoch); 0 means
  /// no deadline. The batcher sheds expired requests before scoring them.
  std::uint64_t deadline_us = 0;
};

/// Bounded lock-free multi-producer single-consumer ring of Requests.
class SubmissionQueue {
 public:
  /// A ring of at least `capacity` slots (rounded up to a power of two,
  /// minimum 2 — the ticket arithmetic needs the pow2 mask).
  explicit SubmissionQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].ticket.store(i, std::memory_order_relaxed);
    }
  }

  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  /// Enqueue from any thread. Returns false when the ring is full (the
  /// backpressure signal — nothing was enqueued).
  bool try_push(const Request& request) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t ticket = slot.ticket.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(ticket) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        // Our lap: claim the slot by advancing the cursor past it.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          slot.value = request;
          // Publish: ticket pos+1 means "filled, lap pos" to the consumer.
          slot.ticket.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry with the new claim point.
      } else if (diff < 0) {
        // Ticket is a full lap behind: the consumer has not freed this
        // slot yet — the ring is full.
        return false;
      } else {
        // Another producer claimed pos first; chase the cursor.
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeue. Single consumer only (the batcher thread); returns false
  /// when the ring is empty.
  bool try_pop(Request& out) {
    const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const std::size_t ticket = slot.ticket.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(ticket) -
                      static_cast<std::intptr_t>(pos + 1);
    if (diff != 0) return false;  // producer not done (or nothing) here yet
    out = slot.value;
    // Free the slot for the next lap: ticket pos+capacity means "empty,
    // lap pos+capacity" to producers.
    slot.ticket.store(pos + capacity_, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// True when a try_pop right now would return a request. Single
  /// consumer only; producers may of course push immediately after.
  bool can_pop() const noexcept {
    const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    const std::size_t ticket =
        slots_[pos & mask_].ticket.load(std::memory_order_acquire);
    return ticket == pos + 1;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> ticket{0};
    Request value;
  };

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  // Cursors on separate cache lines: producers hammer one, the consumer
  // the other.
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace cyberhd::serve
