// Deterministic fault injection for the serving front-end.
//
// The paper's robustness claim is about bit errors in deployed model
// memory; a serving stack additionally fails by stalling and by dropping
// work. This injector lets tests and benchmarks drive all three fault
// classes through the REAL production path — batcher delays, forced
// encode/scoring failures, and in-flight model bit flips (via the
// fault::bitflip machinery, wired in as a hook so this layer stays free
// of model-type knowledge) — deterministically in one seed.
//
// Gating: off by default. ServerConfig::faults == nullopt reads the
// CYBERHD_FAULT_* environment (still off unless one of the probabilities
// is set); an explicit FaultConfig pins it for tests. When disabled the
// server holds no injector at all, so the steady-state cost is one
// null-pointer check per flush.
//
// All draw_*/inject_* calls are made by the single batcher thread;
// set_bitflip_hook may be called from another thread before traffic
// starts (a mutex covers the handoff).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "core/rng.hpp"

namespace cyberhd::serve {

/// Per-fault-class probabilities and magnitudes. Default-constructed ==
/// everything off.
struct FaultConfig {
  /// Seed of the injector's RNG — one seed reproduces the whole fault
  /// schedule (which flushes stall, which fail, which corrupt).
  std::uint64_t seed = 42;
  /// P(the batcher stalls for delay_us before scoring a flush).
  double delay_p = 0.0;
  /// Injected stall length in microseconds.
  std::uint64_t delay_us = 0;
  /// P(a flush fails as if the encode/score stage threw — every request
  /// in it terminates MODEL_UNAVAILABLE).
  double encode_fail_p = 0.0;
  /// P(model bits are flipped in-flight before a flush). Takes effect
  /// only when a bitflip hook AND an integrity auditor are installed —
  /// corrupting the model with no auditor would silently serve wrong
  /// scores, the one failure mode the server must never exhibit.
  double bitflip_p = 0.0;
  /// Per-bit flip probability handed to the hook when a flip fires
  /// (fig-5 rates: 0.01 .. 0.15).
  double bitflip_rate = 0.0;

  /// True when any fault class can fire.
  bool enabled() const noexcept {
    return delay_p > 0.0 || encode_fail_p > 0.0 || bitflip_p > 0.0;
  }

  /// The CYBERHD_FAULT_{SEED, DELAY_P, DELAY_US, ENCODE_FAIL_P,
  /// BITFLIP_P, BITFLIP_RATE} knobs, parsed with the shared env contract
  /// (malformed values warn and fall back to off/defaults).
  static FaultConfig from_env() noexcept;
};

/// Seeded decision source for the batcher's fault points. Owned by the
/// Server when faults are enabled.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  const FaultConfig& config() const noexcept { return config_; }

  /// Batcher, before scoring a flush: stall length in µs, or 0 (the
  /// common case) for no injected delay this flush.
  std::uint64_t draw_delay_us();
  /// Batcher: true when this flush should fail as an encode failure.
  bool draw_encode_failure();
  /// Batcher: per-bit flip rate for this flush, or 0 for no corruption.
  double draw_bitflip_rate();

  /// Install the corruption hook: called as hook(rate, rng) under the
  /// injector's mutex, on the batcher thread, between flushes — tests
  /// wire it to fault::inject_hdc on the served model. Safe to call
  /// before traffic starts.
  void set_bitflip_hook(std::function<void(double, core::Rng&)> hook);
  bool has_bitflip_hook() const;
  /// Run the hook at `rate` with a forked corruption RNG.
  void inject_bitflips(double rate);

 private:
  FaultConfig config_;
  core::Rng rng_;  // batcher-thread only
  mutable std::mutex hook_mutex_;
  std::function<void(double, core::Rng&)> hook_;
};

}  // namespace cyberhd::serve
