// The concurrent serving front-end: many client streams, one coalescing
// batcher, the existing staged scoring pipeline underneath.
//
// Shape (one box per thread):
//
//   stream 0 ─┐ try_submit                     ┌─ deliver → ResultSlot 0
//   stream 1 ─┤   (lock-free ring,   batcher   ├─ deliver → ResultSlot 1
//      ...    ├──────────────────▶  coalesce ──┤      ...
//   stream N ─┘                     + score    └─ deliver → ResultSlot N
//
// The batcher drains the SubmissionQueue into a batch, flushing when the
// batch reaches the planner's preferred size (size trigger) or when the
// oldest pending request has lingered for CYBERHD_BATCH_LINGER_US
// microseconds (deadline trigger — bounds tail latency at low load).
// Each flush gathers the borrowed feature rows into one matrix, scores it
// through Classifier::scores_block — the same stage-split encode→score
// pipeline scores_batch drives, with each planner sub-batch dispatched as
// ONE task pinned to one worker group / shared-L3 domain
// (ExecutionContext::for_each_block) — and delivers each row's scores to
// its stream's ResultSlot.
//
// Correctness contract: the pipeline is row-wise deterministic for any
// block split, so every request's scores are bit-identical to a serial
// scores_batch replay of that stream's flows alone, no matter how the
// batcher interleaved and coalesced the streams. The concurrency stress
// suite (tests/test_serve.cpp) pins exactly that.
//
// Shutdown contract: every accepted request is completed. shutdown()
// waits for in-flight try_submit calls to quiesce (a seq_cst pusher
// counter closes the race with the stopping flag), drains the ring, and
// flushes the remainder before the batcher exits. Submissions arriving
// after shutdown began are rejected.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/classifier.hpp"
#include "core/exec/execution_context.hpp"
#include "core/matrix.hpp"
#include "serve/result_slot.hpp"
#include "serve/submission_queue.hpp"

namespace cyberhd::serve {

struct ServerConfig {
  /// Submission ring slots (rounded up to a power of two). A full ring
  /// rejects try_submit — the server's backpressure boundary.
  std::size_t queue_capacity = 4096;
  /// Max microseconds the oldest pending request waits for the batch to
  /// fill before a deadline flush. 0 flushes every drain immediately;
  /// negative reads CYBERHD_BATCH_LINGER_US (default 200).
  long max_linger_us = -1;
  /// Rows per coalesced batch. 0 asks the model's planner
  /// (preferred_batch_rows — for CyberHD the L3-derived serving batch).
  std::size_t max_batch_rows = 0;
  /// Dispatch each planner sub-batch to one worker group (shared-L3
  /// domain) via ExecutionContext::for_each_block. false scores batches
  /// inline on the batcher thread (still through the staged pipeline).
  bool domain_affine = true;
};

struct ServerStats {
  std::uint64_t accepted = 0;   ///< requests the ring took
  std::uint64_t rejected = 0;   ///< try_submit calls refused (full/stopping)
  std::uint64_t completed = 0;  ///< scores delivered
  std::uint64_t batches = 0;    ///< flushes executed
  /// Mean coalesced rows per flush (batching effectiveness).
  double mean_batch_rows = 0.0;
};

/// The serving front-end over one fitted classifier. The model must
/// outlive the server and must not be refitted while serving (scoring
/// calls run concurrently on pool workers).
class Server {
 public:
  /// Serve `model` (fitted; num_classes() > 0) over `input_dim`-wide
  /// feature rows. Starts the batcher thread immediately.
  Server(const core::Classifier& model, std::size_t input_dim,
         ServerConfig config = {});
  /// Implies shutdown().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit one flow. `features` (input_dim floats) and `slot` are
  /// borrowed until `slot` reports completion. Returns false — with no
  /// side effects beyond a rejected tick — when the ring is full or the
  /// server is shutting down. Thread-safe, lock-free.
  bool try_submit(std::span<const float> features, ResultSlot& slot);

  /// Blocking submit: retries through backpressure until accepted.
  /// Returns false only when the server is shutting down.
  bool submit(std::span<const float> features, ResultSlot& slot);

  /// Stop accepting, complete every accepted request, join the batcher.
  /// Idempotent; the destructor calls it.
  void shutdown();

  ServerStats stats() const;

  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t num_classes() const noexcept { return num_classes_; }
  /// Resolved rows per coalesced batch (after planner consultation).
  std::size_t max_batch_rows() const noexcept { return max_batch_rows_; }
  /// Resolved linger deadline in microseconds.
  std::uint64_t linger_us() const noexcept { return linger_us_; }

  /// The CYBERHD_BATCH_LINGER_US knob: microseconds (clamped to 1s);
  /// 200 when unset or malformed, 0 is a valid "never linger".
  static std::uint64_t linger_from_env() noexcept;

 private:
  void batcher_loop();
  /// Score the gathered batch and deliver per-row results.
  void flush(std::size_t n);
  /// Sleep until woken by a producer or `max_wait_us` elapses. Publishes
  /// sleep intent and re-checks the ring so a concurrent push is never
  /// missed (producers fence-then-check the intent flag).
  void wait_for_work(std::uint64_t max_wait_us);
  std::uint64_t now_us() const noexcept;

  const core::Classifier& model_;
  const core::ExecutionContext* exec_;
  std::size_t input_dim_;
  std::size_t num_classes_;
  std::size_t max_batch_rows_;
  std::size_t affine_block_rows_;  // rows per group-pinned sub-batch
  std::uint64_t linger_us_;
  bool domain_affine_;

  SubmissionQueue queue_;
  std::thread batcher_;

  // Batcher-owned scratch (sized once, reused every flush).
  core::Matrix batch_x_;
  core::Matrix batch_scores_;
  std::vector<Request> pending_;

  // Producer→batcher wakeup (Dekker-style sleep/notify handshake).
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> batcher_sleeping_{false};

  // Shutdown handshake.
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> pushers_{0};  // try_submit calls in flight

  // Stats (relaxed ticks; stats() assembles a consistent-enough view).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_rows_{0};

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace cyberhd::serve
