// The concurrent serving front-end: many client streams, one coalescing
// batcher, the existing staged scoring pipeline underneath.
//
// Shape (one box per thread):
//
//   stream 0 ─┐ try_submit                     ┌─ deliver → ResultSlot 0
//   stream 1 ─┤   (lock-free ring,   batcher   ├─ deliver → ResultSlot 1
//      ...    ├──────────────────▶  coalesce ──┤      ...
//   stream N ─┘                     + score    └─ deliver → ResultSlot N
//
// The batcher drains the SubmissionQueue into a batch, flushing when the
// batch reaches the planner's preferred size (size trigger) or when the
// oldest pending request has lingered for CYBERHD_BATCH_LINGER_US
// microseconds (deadline trigger — bounds tail latency at low load).
// Each flush gathers the borrowed feature rows into one matrix, scores it
// through Classifier::scores_block — the same stage-split encode→score
// pipeline scores_batch drives, with each planner sub-batch dispatched as
// ONE task pinned to one worker group / shared-L3 domain
// (ExecutionContext::for_each_block) — and delivers each row's scores to
// its stream's ResultSlot.
//
// Correctness contract: the pipeline is row-wise deterministic for any
// block split, so every request's scores are bit-identical to a serial
// scores_batch replay of that stream's flows alone, no matter how the
// batcher interleaved and coalesced the streams. The concurrency stress
// suite (tests/test_serve.cpp) pins exactly that.
//
// Shutdown contract: every accepted request reaches a terminal status.
// shutdown() waits for in-flight try_submit calls to quiesce (a seq_cst
// pusher counter closes the race with the stopping flag), drains the
// ring, and flushes the remainder before the batcher exits. Submissions
// arriving after shutdown began are rejected.
//
// Failure contract (PR 8): every submission ends in exactly one
// RequestStatus — scored (OK), refused at the ring (REJECTED), shed
// unscored past its deadline (DEADLINE_EXCEEDED), or failed by a model
// the server cannot trust (MODEL_UNAVAILABLE). The batcher sheds expired
// requests before spending scoring work on them; an installed
// IntegrityAuditor is polled between flushes (and forced after any
// injected corruption) so corruption is healed from snapshot BEFORE the
// next batch scores — an OK result is always bit-identical to a serial
// replay against the clean model. When healing fails, the server latches
// model-unavailable and fails requests explicitly instead of serving
// garbage. A watchdog thread observes the batcher's heartbeat and kicks
// its condition variable on a stall, self-healing a missed wakeup.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/classifier.hpp"
#include "core/exec/execution_context.hpp"
#include "core/matrix.hpp"
#include "serve/fault_injector.hpp"
#include "serve/result_slot.hpp"
#include "serve/submission_queue.hpp"

namespace cyberhd::serve {

class IntegrityAuditor;  // serve/snapshot.hpp

struct ServerConfig {
  /// Submission ring slots (rounded up to a power of two). A full ring
  /// rejects try_submit — the server's backpressure boundary.
  std::size_t queue_capacity = 4096;
  /// Max microseconds the oldest pending request waits for the batch to
  /// fill before a deadline flush. 0 flushes every drain immediately;
  /// negative reads CYBERHD_BATCH_LINGER_US (default 200).
  long max_linger_us = -1;
  /// Rows per coalesced batch. 0 asks the model's planner
  /// (preferred_batch_rows — for CyberHD the L3-derived serving batch).
  std::size_t max_batch_rows = 0;
  /// Dispatch each planner sub-batch to one worker group (shared-L3
  /// domain) via ExecutionContext::for_each_block. false scores batches
  /// inline on the batcher thread (still through the staged pipeline).
  bool domain_affine = true;
  /// Fault injection: nullopt reads the CYBERHD_FAULT_* environment
  /// (off unless one of the probabilities is set there); pass an
  /// explicit FaultConfig to pin it — FaultConfig{} forces off. When
  /// disabled the server constructs no injector at all.
  std::optional<FaultConfig> faults;
  /// Integrity-audit cadence in µs (polled on the batcher thread through
  /// the auditor installed with set_auditor). 0 disables periodic audits
  /// (forced post-corruption audits still run); negative reads
  /// CYBERHD_AUDIT_US (default 50000 = 50 ms).
  long audit_interval_us = -1;
  /// Watchdog poll interval in µs. 0 disables the watchdog thread;
  /// negative reads CYBERHD_WATCHDOG_US (default 500000 = 500 ms).
  long watchdog_us = -1;
};

struct ServerStats {
  std::uint64_t accepted = 0;   ///< requests the ring took
  std::uint64_t rejected = 0;   ///< try_submit calls refused (full/stopping)
  /// Requests that reached a terminal status — ok + expired + failed.
  /// Equals accepted after shutdown(): nothing is dropped silently.
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;         ///< scores delivered
  std::uint64_t expired = 0;    ///< shed past their deadline, unscored
  std::uint64_t failed = 0;     ///< terminated MODEL_UNAVAILABLE
  std::uint64_t batches = 0;    ///< flushes that scored
  /// Mean coalesced rows per scoring flush (batching effectiveness).
  double mean_batch_rows = 0.0;
  std::uint64_t retries = 0;    ///< backoff retries by submit_with_retry
  std::uint64_t audits = 0;     ///< integrity audits run
  std::uint64_t corruptions = 0;  ///< audits that found the model corrupt
  std::uint64_t recoveries = 0;   ///< corruptions healed from snapshot
  /// Watchdog intervals with in-flight work but no batcher heartbeat.
  /// Approximate by design (a long linger sleep can trip it); each tick
  /// also kicks the batcher awake, so a missed wakeup self-heals.
  std::uint64_t watchdog_stalls = 0;
  std::uint64_t injected_delays = 0;           ///< fault injector: stalls
  std::uint64_t injected_encode_failures = 0;  ///< fault injector: flushes
  std::uint64_t injected_bitflips = 0;         ///< fault injector: corruptions
};

/// Bounded retry schedule for submit_with_retry: exponential backoff
/// with multiplicative jitter (0.5x-1.5x, seeded — give each client
/// stream its own seed so contending streams decorrelate).
struct RetryPolicy {
  std::size_t max_attempts = 6;       ///< total tries, first included
  std::uint64_t base_backoff_us = 100;
  std::uint64_t max_backoff_us = 20'000;
  std::uint64_t seed = 1;
};

/// The serving front-end over one fitted classifier. The model must
/// outlive the server and must not be refitted while serving (scoring
/// calls run concurrently on pool workers).
class Server {
 public:
  /// Serve `model` (fitted; num_classes() > 0) over `input_dim`-wide
  /// feature rows. Starts the batcher thread immediately.
  Server(const core::Classifier& model, std::size_t input_dim,
         ServerConfig config = {});
  /// Implies shutdown().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit one flow. `features` (input_dim floats) and `slot` are
  /// borrowed until `slot` reports completion. `deadline_us` is a
  /// relative latency budget (0 = none): a request still unscored when
  /// it expires is shed with status DEADLINE_EXCEEDED instead of wasting
  /// scoring work. Returns false when the ring is full or the server is
  /// shutting down — the slot then carries status REJECTED, so every
  /// submission ends in exactly one terminal status either way.
  /// Thread-safe, lock-free.
  bool try_submit(std::span<const float> features, ResultSlot& slot,
                  std::uint64_t deadline_us = 0);

  /// Blocking submit: retries through backpressure until accepted.
  /// Returns false only when the server is shutting down.
  bool submit(std::span<const float> features, ResultSlot& slot,
              std::uint64_t deadline_us = 0);

  /// Client-side bounded retry for REJECTED submissions: up to
  /// policy.max_attempts tries with jittered exponential backoff between
  /// them. Returns false when the attempts are exhausted (slot status
  /// REJECTED) or the server is shutting down. Sleeping client-side is
  /// the point — backoff sheds load off the ring instead of spinning on
  /// it the way submit() does.
  bool submit_with_retry(std::span<const float> features, ResultSlot& slot,
                         const RetryPolicy& policy = {},
                         std::uint64_t deadline_us = 0);

  /// Install the integrity auditor the batcher polls between flushes
  /// (borrowed; must outlive serving or be cleared with nullptr first).
  /// Install it before traffic for full coverage — the pointer handoff
  /// itself is release/acquire, so a late install is safe, just blind to
  /// earlier flushes.
  void set_auditor(IntegrityAuditor* auditor) noexcept {
    auditor_.store(auditor, std::memory_order_release);
  }

  /// The fault injector, or nullptr when faults are disabled. Tests wire
  /// its bitflip hook to fault::inject_hdc on the served model.
  FaultInjector* fault_injector() noexcept { return injector_.get(); }

  /// Stop accepting, complete every accepted request, join the batcher.
  /// Idempotent; the destructor calls it.
  void shutdown();

  ServerStats stats() const;

  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t num_classes() const noexcept { return num_classes_; }
  /// Resolved rows per coalesced batch (after planner consultation).
  std::size_t max_batch_rows() const noexcept { return max_batch_rows_; }
  /// Resolved linger deadline in microseconds.
  std::uint64_t linger_us() const noexcept { return linger_us_; }

  /// The CYBERHD_BATCH_LINGER_US knob: microseconds, at most 1 s; 200
  /// when unset or (with a warning) malformed. 0 is a valid "never
  /// linger".
  static std::uint64_t linger_from_env() noexcept;

 private:
  void batcher_loop();
  void watchdog_loop();
  /// Shed expired work, run injected faults and due audits, then score
  /// the surviving rows and deliver per-row results — or fail them
  /// explicitly when the model cannot be trusted.
  void flush(std::size_t n);
  /// Fail rows [0, n) of the pending batch with `status`.
  void fail_pending(std::size_t n, RequestStatus status);
  /// Run the installed auditor when `forced` or the periodic interval
  /// elapsed; latch model_unavailable_ on an unhealable corruption.
  void maybe_audit(bool forced);
  /// Sleep until woken by a producer or `max_wait_us` elapses. Publishes
  /// sleep intent and re-checks the ring so a concurrent push is never
  /// missed (producers fence-then-check the intent flag).
  void wait_for_work(std::uint64_t max_wait_us);
  std::uint64_t now_us() const noexcept;

  const core::Classifier& model_;
  const core::ExecutionContext* exec_;
  std::size_t input_dim_;
  std::size_t num_classes_;
  std::size_t max_batch_rows_;
  std::size_t affine_block_rows_;  // rows per group-pinned sub-batch
  std::uint64_t linger_us_;
  bool domain_affine_;

  SubmissionQueue queue_;
  std::thread batcher_;

  // Batcher-owned scratch (sized once, reused every flush).
  core::Matrix batch_x_;
  core::Matrix batch_scores_;
  std::vector<Request> pending_;

  // Fault tolerance: the injector (null when disabled — one pointer
  // check per flush is the entire steady-state cost), the polled
  // auditor, and the model-unavailable latch the batcher sets when an
  // audit finds corruption it cannot heal.
  std::unique_ptr<FaultInjector> injector_;
  std::atomic<IntegrityAuditor*> auditor_{nullptr};
  std::uint64_t audit_us_ = 0;       // 0 = periodic audits off
  std::uint64_t next_audit_us_ = 0;  // batcher-thread only
  std::atomic<bool> model_unavailable_{false};

  // Watchdog: the batcher bumps the heartbeat each loop iteration; the
  // watchdog thread flags intervals where work was in flight but the
  // heartbeat never moved, and kicks wake_cv_ as the recovery action.
  std::uint64_t watchdog_interval_us_ = 0;  // 0 = no watchdog thread
  std::atomic<std::uint64_t> heartbeat_{0};
  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;

  // Producer→batcher wakeup (Dekker-style sleep/notify handshake).
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> batcher_sleeping_{false};

  // Shutdown handshake.
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> pushers_{0};  // try_submit calls in flight

  // Stats (relaxed ticks; stats() assembles a consistent-enough view).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_rows_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> audits_{0};
  std::atomic<std::uint64_t> corruptions_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> watchdog_stalls_{0};
  std::atomic<std::uint64_t> injected_delays_{0};
  std::atomic<std::uint64_t> injected_encode_failures_{0};
  std::atomic<std::uint64_t> injected_bitflips_{0};

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace cyberhd::serve
