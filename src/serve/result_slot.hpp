// The completion side of a serving request: a caller-owned slot the
// batcher delivers per-row scores into.
//
// Each stream keeps one ResultSlot per outstanding request (an open-loop
// client keeps a window of them). The slot is a single-producer
// single-consumer handoff — the batcher writes scores and timestamps,
// then flips one atomic with release ordering; the waiting client sees
// the flip with acquire ordering and may read everything the batcher
// wrote. No mutex, and waiting uses C++20 atomic wait (futex-backed on
// Linux) so an idle client burns no CPU.
//
// Reuse protocol: reset() re-arms the slot for the next request. A slot
// must not be reset or resubmitted while a submission that references it
// is still in flight — wait() first.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cyberhd::serve {

/// Per-request completion slot: scores plus submit/complete timestamps.
class ResultSlot {
 public:
  ResultSlot() = default;
  ResultSlot(const ResultSlot&) = delete;
  ResultSlot& operator=(const ResultSlot&) = delete;

  /// Re-arm for a new request delivering `num_classes` scores. Must not
  /// race a pending delivery (wait() for the previous request first).
  void reset(std::size_t num_classes) {
    scores_.resize(num_classes);
    submitted_at_us_ = 0;
    completed_at_us_ = 0;
    ready_.store(0, std::memory_order_relaxed);
  }

  /// True once the scores have been delivered.
  bool ready() const noexcept {
    return ready_.load(std::memory_order_acquire) != 0;
  }

  /// Block until the scores have been delivered (futex wait, no spin).
  void wait() const noexcept {
    while (ready_.load(std::memory_order_acquire) == 0) {
      ready_.wait(0, std::memory_order_acquire);
    }
  }

  /// The delivered per-class scores. Valid once ready().
  std::span<const float> scores() const noexcept {
    assert(ready());
    return scores_;
  }

  /// Steady-clock stamp (µs) the server accepted the request at.
  std::uint64_t submitted_at_us() const noexcept { return submitted_at_us_; }
  /// Steady-clock stamp (µs) the batch containing this request finished
  /// at. completed - submitted is the request's serving latency.
  std::uint64_t completed_at_us() const noexcept { return completed_at_us_; }

  /// Server side: record the accept time (called before the request is
  /// published to the ring).
  void mark_submitted(std::uint64_t now_us) noexcept {
    submitted_at_us_ = now_us;
  }

  /// Server side: deliver the scores and wake the waiter. `scores` must
  /// have the size reset() armed.
  void deliver(std::span<const float> scores, std::uint64_t now_us) {
    assert(scores.size() == scores_.size());
    std::copy(scores.begin(), scores.end(), scores_.begin());
    completed_at_us_ = now_us;
    ready_.store(1, std::memory_order_release);
    ready_.notify_all();
  }

 private:
  std::vector<float> scores_;
  std::uint64_t submitted_at_us_ = 0;
  std::uint64_t completed_at_us_ = 0;
  std::atomic<std::uint32_t> ready_{0};
};

}  // namespace cyberhd::serve
