// The completion side of a serving request: a caller-owned slot the
// batcher delivers per-row scores into.
//
// Each stream keeps one ResultSlot per outstanding request (an open-loop
// client keeps a window of them). The slot is a single-producer
// single-consumer handoff — the batcher writes scores and timestamps,
// then flips one atomic with release ordering; the waiting client sees
// the flip with acquire ordering and may read everything the batcher
// wrote. No mutex, and waiting uses C++20 atomic wait (futex-backed on
// Linux) so an idle client burns no CPU.
//
// Reuse protocol: reset() re-arms the slot for the next request. A slot
// must not be reset or resubmitted while a submission that references it
// is still in flight — wait() first.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cyberhd::serve {

/// How a submission ended. Every submission reaches exactly one terminal
/// status — there is no silent fourth outcome.
enum class RequestStatus : std::uint8_t {
  /// Scores delivered; the slot's scores() are valid.
  kOk = 0,
  /// The server refused the submission (ring full or shutting down).
  /// try_submit also returned false; retry, shed, or back off.
  kRejected,
  /// The request's deadline passed before scoring; the batcher shed it
  /// unscored (deliberately — stale scores would be wasted work).
  kDeadlineExceeded,
  /// The serving model is unavailable (integrity audit found corruption
  /// it could not heal, or scoring failed). No scores were produced.
  kModelUnavailable,
};

/// Per-request completion slot: terminal status, scores (when OK), and
/// submit/complete timestamps.
class ResultSlot {
 public:
  ResultSlot() = default;
  ResultSlot(const ResultSlot&) = delete;
  ResultSlot& operator=(const ResultSlot&) = delete;

  /// Re-arm for a new request delivering `num_classes` scores. Must not
  /// race a pending delivery (wait() for the previous request first).
  void reset(std::size_t num_classes) {
    scores_.resize(num_classes);
    submitted_at_us_ = 0;
    completed_at_us_ = 0;
    status_ = RequestStatus::kOk;
    ready_.store(0, std::memory_order_relaxed);
  }

  /// True once the request reached a terminal status (scores delivered
  /// or explicit failure).
  bool ready() const noexcept {
    return ready_.load(std::memory_order_acquire) != 0;
  }

  /// Block until the request reaches a terminal status (futex wait, no
  /// spin).
  void wait() const noexcept {
    while (ready_.load(std::memory_order_acquire) == 0) {
      ready_.wait(0, std::memory_order_acquire);
    }
  }

  /// The terminal status. Valid once ready() — ordered by the same
  /// release/acquire pair as the scores.
  RequestStatus status() const noexcept {
    assert(ready());
    return status_;
  }

  /// Shorthand: terminal and scored.
  bool ok() const noexcept { return status() == RequestStatus::kOk; }

  /// The delivered per-class scores. Valid once ready() with status OK.
  std::span<const float> scores() const noexcept {
    assert(ready() && status_ == RequestStatus::kOk);
    return scores_;
  }

  /// Steady-clock stamp (µs) the server accepted the request at.
  std::uint64_t submitted_at_us() const noexcept { return submitted_at_us_; }
  /// Steady-clock stamp (µs) the batch containing this request finished
  /// at. completed - submitted is the request's serving latency.
  std::uint64_t completed_at_us() const noexcept { return completed_at_us_; }

  /// Server side: record the accept time (called before the request is
  /// published to the ring).
  void mark_submitted(std::uint64_t now_us) noexcept {
    submitted_at_us_ = now_us;
  }

  /// Server side: deliver the scores and wake the waiter. `scores` must
  /// have the size reset() armed.
  void deliver(std::span<const float> scores, std::uint64_t now_us) {
    assert(scores.size() == scores_.size());
    std::copy(scores.begin(), scores.end(), scores_.begin());
    completed_at_us_ = now_us;
    status_ = RequestStatus::kOk;
    ready_.store(1, std::memory_order_release);
    ready_.notify_all();
  }

  /// Server side: terminate the request without scores — rejected, shed
  /// past its deadline, or failed by an unavailable model. Same
  /// release/notify protocol as deliver().
  void fail(RequestStatus status, std::uint64_t now_us) noexcept {
    assert(status != RequestStatus::kOk);
    completed_at_us_ = now_us;
    status_ = status;
    ready_.store(1, std::memory_order_release);
    ready_.notify_all();
  }

 private:
  std::vector<float> scores_;
  std::uint64_t submitted_at_us_ = 0;
  std::uint64_t completed_at_us_ = 0;
  RequestStatus status_ = RequestStatus::kOk;
  std::atomic<std::uint32_t> ready_{0};
};

}  // namespace cyberhd::serve
