#include "nids/preprocess.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace cyberhd::nids {

void MinMaxScaler::fit(const core::Matrix& x) {
  min_.assign(x.cols(), 0.0f);
  max_.assign(x.cols(), 0.0f);
  if (x.rows() == 0) return;
  for (std::size_t c = 0; c < x.cols(); ++c) {
    min_[c] = max_[c] = x(0, c);
  }
  for (std::size_t r = 1; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      min_[c] = std::min(min_[c], row[c]);
      max_[c] = std::max(max_[c], row[c]);
    }
  }
}

void MinMaxScaler::transform(core::Matrix& x) const {
  assert(fitted());
  assert(x.cols() == min_.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const float range = max_[c] - min_[c];
      if (range <= 0.0f) {
        row[c] = 0.0f;
      } else {
        row[c] = std::clamp((row[c] - min_[c]) / range, 0.0f, 1.0f);
      }
    }
  }
}

void expand_one(const DatasetSchema& schema, std::span<const float> raw,
                std::span<float> out) {
  assert(raw.size() == schema.num_features());
  assert(out.size() == schema.encoded_width());
  std::fill(out.begin(), out.end(), 0.0f);
  std::size_t o = 0;
  for (std::size_t f = 0; f < schema.num_features(); ++f) {
    const FeatureSpec& spec = schema.features[f];
    if (spec.type == FeatureType::kCategorical) {
      auto code = static_cast<std::size_t>(std::max(0.0f, raw[f]));
      code = std::min(code, spec.cardinality - 1);
      out[o + code] = 1.0f;
      o += spec.cardinality;
    } else {
      float v = raw[f];
      if (spec.heavy_tailed) {
        // log1p on magnitude, sign preserved: compresses the decades-wide
        // count/byte features the way standard NIDS pipelines do.
        v = std::copysign(std::log1p(std::abs(v)), v);
      }
      out[o++] = v;
    }
  }
  assert(o == schema.encoded_width());
}

core::Matrix expand_features(const Dataset& raw) {
  core::Matrix out(raw.size(), raw.schema.encoded_width());
  for (std::size_t r = 0; r < raw.size(); ++r) {
    expand_one(raw.schema, raw.x.row(r), out.row(r));
  }
  return out;
}

SplitIndices stratified_split(std::span<const int> y, double test_fraction,
                              core::Rng& rng) {
  assert(test_fraction > 0.0 && test_fraction < 1.0);
  int max_label = -1;
  for (int label : y) max_label = std::max(max_label, label);
  std::vector<std::vector<std::size_t>> per_class(
      static_cast<std::size_t>(max_label + 1));
  for (std::size_t i = 0; i < y.size(); ++i) {
    per_class[static_cast<std::size_t>(y[i])].push_back(i);
  }
  SplitIndices split;
  for (auto& members : per_class) {
    if (members.empty()) continue;
    rng.shuffle(members);
    std::size_t n_test = static_cast<std::size_t>(
        std::lround(test_fraction * static_cast<double>(members.size())));
    if (members.size() >= 2) n_test = std::max<std::size_t>(n_test, 1);
    n_test = std::min(n_test, members.size() - 1);
    for (std::size_t i = 0; i < members.size(); ++i) {
      (i < n_test ? split.test : split.train).push_back(members[i]);
    }
  }
  rng.shuffle(split.train);
  rng.shuffle(split.test);
  return split;
}

namespace {
ProcessedDataset gather(const core::Matrix& x, std::span<const int> y,
                        const DatasetSchema& schema,
                        std::span<const std::size_t> indices) {
  ProcessedDataset out;
  out.x.resize(indices.size(), x.cols());
  out.y.resize(indices.size());
  out.num_classes = schema.num_classes();
  out.class_names = schema.class_names;
  out.benign_class = schema.benign_class;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    std::copy_n(x.row(indices[i]).data(), x.cols(), out.x.row(i).data());
    out.y[i] = y[indices[i]];
  }
  return out;
}
}  // namespace

TrainTestSplit preprocess(const Dataset& raw, double test_fraction,
                          std::uint64_t seed) {
  const core::Matrix expanded = expand_features(raw);
  core::Rng rng(seed);
  const SplitIndices split = stratified_split(raw.y, test_fraction, rng);

  TrainTestSplit out;
  out.train = gather(expanded, raw.y, raw.schema, split.train);
  out.test = gather(expanded, raw.y, raw.schema, split.test);

  MinMaxScaler scaler;
  scaler.fit(out.train.x);
  scaler.transform(out.train.x);
  scaler.transform(out.test.x);
  return out;
}

std::vector<std::size_t> class_histogram(std::span<const int> y,
                                         std::size_t num_classes) {
  std::vector<std::size_t> hist(num_classes, 0);
  for (int label : y) {
    assert(label >= 0 && static_cast<std::size_t>(label) < num_classes);
    ++hist[static_cast<std::size_t>(label)];
  }
  return hist;
}

}  // namespace cyberhd::nids
