#include "nids/synth.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cyberhd::nids {

FlowSynthesizer::FlowSynthesizer(DatasetSchema schema, SynthConfig config)
    : schema_(std::move(schema)), config_(config) {
  const std::size_t k = schema_.num_classes();
  if (k == 0) throw std::invalid_argument("schema has no classes");
  if (config_.latent_dim == 0) {
    throw std::invalid_argument("latent_dim must be positive");
  }

  // Normalize the class prior.
  prior_ = config_.class_weights;
  prior_.resize(k, prior_.empty() ? 1.0 : 0.0);
  double total = std::accumulate(prior_.begin(), prior_.end(), 0.0);
  if (total <= 0.0) {
    prior_.assign(k, 1.0);
    total = static_cast<double>(k);
  }
  for (double& w : prior_) w /= total;

  for (std::size_t f = 0; f < schema_.num_features(); ++f) {
    (schema_.features[f].type == FeatureType::kCategorical
         ? categorical_features_
         : numeric_features_)
        .push_back(f);
  }

  // All structural randomness derives from the config seed so that a
  // synthesizer is a pure function of (schema, config).
  core::Rng root(config_.seed);
  core::Rng structure_rng = root.fork(101);

  // Shared nonlinear mixing from latent space to numeric features.
  const std::size_t fn = numeric_features_.size();
  const std::size_t latent = config_.latent_dim;
  mix_linear_.resize(fn, latent);
  mix_tanh_.resize(fn, latent);
  core::fill_gaussian(structure_rng, mix_linear_.data(), mix_linear_.size(),
                      0.0f, 1.0f);
  core::fill_gaussian(structure_rng, mix_tanh_.data(), mix_tanh_.size(),
                      0.0f, 1.0f);
  feature_scale_.resize(fn);
  for (std::size_t i = 0; i < fn; ++i) {
    // Feature magnitudes spread over ~1 decade, as flow statistics do.
    feature_scale_[i] =
        static_cast<float>(std::exp(structure_rng.uniform(-1.0, 1.0)));
  }

  // Per-class latent profiles.
  profiles_.resize(k);
  // Benign anchor: the first cluster center of the benign class, used as
  // the center of radial attack shells.
  std::vector<float> benign_anchor(latent, 0.0f);

  // Decide which attack classes are radial shells: the first
  // `radial_classes` attack classes after benign (deterministic choice).
  std::size_t radial_budget = config_.radial_classes;

  for (std::size_t c = 0; c < k; ++c) {
    core::Rng class_rng = root.fork(1000 + c);
    ClassProfile& p = profiles_[c];
    p.centers.resize(config_.clusters_per_class * latent);
    for (std::size_t m = 0; m < config_.clusters_per_class; ++m) {
      core::fill_gaussian(class_rng, p.centers.data() + m * latent, latent,
                          0.0f, static_cast<float>(config_.center_scale));
    }
    if (c == schema_.benign_class) {
      std::copy_n(p.centers.data(), latent, benign_anchor.data());
    }
    // Categorical symbol distributions: peaked on a class-preferred symbol
    // with the rest of the mass spread geometrically.
    p.categorical_probs.resize(categorical_features_.size());
    for (std::size_t ci = 0; ci < categorical_features_.size(); ++ci) {
      const std::size_t card =
          schema_.features[categorical_features_[ci]].cardinality;
      assert(card >= 2);
      std::vector<double> probs(card);
      const std::size_t preferred = class_rng.next_below(card);
      double mass = 0.0;
      for (std::size_t s = 0; s < card; ++s) {
        const double dist = s == preferred ? 0.0 : 1.0;
        probs[s] = std::exp(-2.2 * dist) *
                   (0.4 + class_rng.next_double());  // jittered, peaked
        mass += probs[s];
      }
      for (double& pr : probs) pr /= mass;
      p.categorical_probs[ci] = std::move(probs);
    }
  }

  // Convert the leading attack classes into radial shells around benign.
  for (std::size_t c = 0; c < k && radial_budget > 0; ++c) {
    if (c == schema_.benign_class) continue;
    core::Rng shell_rng = root.fork(5000 + c);
    ClassProfile& p = profiles_[c];
    p.radial = true;
    p.shell_radius = config_.center_scale *
                     (1.6 + 0.9 * static_cast<double>(
                                      config_.radial_classes - radial_budget));
    p.shell_width = config_.cluster_spread * 0.5;
    // Center the shell on benign.
    for (std::size_t m = 0; m < config_.clusters_per_class; ++m) {
      std::copy_n(benign_anchor.data(), config_.latent_dim,
                  p.centers.data() + m * config_.latent_dim);
    }
    (void)shell_rng;
    --radial_budget;
  }
}

bool FlowSynthesizer::is_radial_class(std::size_t cls) const {
  assert(cls < profiles_.size());
  return profiles_[cls].radial;
}

void FlowSynthesizer::sample_latent(std::size_t cls, std::span<float> z,
                                    core::Rng& rng) const {
  assert(cls < profiles_.size());
  assert(z.size() == config_.latent_dim);
  const ClassProfile& p = profiles_[cls];
  const std::size_t m = rng.next_below(config_.clusters_per_class);
  const float* center = p.centers.data() + m * config_.latent_dim;

  if (p.radial) {
    // Sample a direction uniformly on the sphere, then a radius around the
    // shell radius: same mean region as benign, different intensity.
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < z.size(); ++i) {
      z[i] = static_cast<float>(rng.gaussian());
      norm_sq += static_cast<double>(z[i]) * z[i];
    }
    const double norm = std::sqrt(std::max(norm_sq, 1e-12));
    const double radius =
        std::max(0.1, rng.gaussian(p.shell_radius, p.shell_width));
    for (std::size_t i = 0; i < z.size(); ++i) {
      z[i] = center[i] + static_cast<float>(radius / norm) * z[i];
    }
    return;
  }
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = center[i] + static_cast<float>(
                           rng.gaussian(0.0, config_.cluster_spread));
  }
}

void FlowSynthesizer::latent_to_features(std::span<const float> z,
                                         std::span<float> out,
                                         core::Rng& rng) const {
  for (std::size_t i = 0; i < numeric_features_.size(); ++i) {
    const float lin = core::dot(mix_linear_.row(i), z);
    const float nl = std::tanh(core::dot(mix_tanh_.row(i), z));
    float v = feature_scale_[i] *
              (lin + static_cast<float>(config_.nonlinearity) * nl);
    v += static_cast<float>(rng.gaussian(0.0, config_.feature_noise));
    const FeatureSpec& spec = schema_.features[numeric_features_[i]];
    if (spec.heavy_tailed) {
      // Log-normal-style tail: a monotone exponential warp, so counts and
      // sizes span decades while class structure stays recoverable by a
      // log1p at preprocessing.
      v = std::expm1(0.85f * v);
    }
    out[numeric_features_[i]] = v;
  }
}

void FlowSynthesizer::sample_flow(std::size_t cls, std::span<float> out,
                                  core::Rng& rng) const {
  assert(out.size() == schema_.num_features());
  std::vector<float> z(config_.latent_dim);
  sample_latent(cls, z, rng);
  latent_to_features(z, out, rng);
  const ClassProfile& p = profiles_[cls];
  for (std::size_t ci = 0; ci < categorical_features_.size(); ++ci) {
    out[categorical_features_[ci]] = static_cast<float>(
        rng.categorical(p.categorical_probs[ci]));
  }
}

Dataset FlowSynthesizer::generate(std::size_t n, std::uint64_t stream) const {
  const std::size_t k = schema_.num_classes();
  // Exact class counts: floor allocation by prior, remainder to the
  // largest fractional parts; every class gets at least one sample when
  // n >= k.
  std::vector<std::size_t> counts(k, 0);
  std::vector<std::pair<double, std::size_t>> fractional(k);
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double exact = prior_[c] * static_cast<double>(n);
    counts[c] = static_cast<std::size_t>(exact);
    fractional[c] = {exact - std::floor(exact), c};
    assigned += counts[c];
  }
  std::sort(fractional.begin(), fractional.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < n; ++i) {
    ++counts[fractional[i % k].second];
    ++assigned;
  }
  if (n >= k) {
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Steal one from the largest class.
        const std::size_t donor = static_cast<std::size_t>(std::distance(
            counts.begin(), std::max_element(counts.begin(), counts.end())));
        --counts[donor];
        ++counts[c];
      }
    }
  }

  core::Rng root(config_.seed);
  core::Rng rng = root.fork(0xda7a0000ULL + stream);

  Dataset ds;
  ds.schema = schema_;
  ds.x.resize(n, schema_.num_features());
  ds.y.resize(n);
  std::size_t row = 0;
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < counts[c]; ++i, ++row) {
      sample_flow(c, ds.x.row(row), rng);
      ds.y[row] = static_cast<int>(c);
    }
  }
  assert(row == n);

  // Label noise: a small fraction of flows carry the wrong label, like
  // real mislabeled corpora; this caps attainable accuracy below 100%.
  if (config_.label_noise > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(config_.label_noise)) {
        ds.y[i] = static_cast<int>(rng.next_below(k));
      }
    }
  }

  // Shuffle rows (with labels) so class blocks do not survive.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  core::Matrix shuffled(n, schema_.num_features());
  std::vector<int> shuffled_y(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy_n(ds.x.row(order[i]).data(), schema_.num_features(),
                shuffled.row(i).data());
    shuffled_y[i] = ds.y[order[i]];
  }
  ds.x = std::move(shuffled);
  ds.y = std::move(shuffled_y);
  return ds;
}

}  // namespace cyberhd::nids
