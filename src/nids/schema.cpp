#include "nids/schema.hpp"

#include <algorithm>
#include <cctype>

namespace cyberhd::nids {

namespace {
std::string to_lower(const std::string& s) {
  std::string out(s.size(), '\0');
  std::transform(s.begin(), s.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}
}  // namespace

std::size_t DatasetSchema::num_numeric() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(features.begin(), features.end(), [](const auto& f) {
        return f.type == FeatureType::kNumeric;
      }));
}

std::size_t DatasetSchema::num_categorical() const noexcept {
  return features.size() - num_numeric();
}

std::size_t DatasetSchema::encoded_width() const noexcept {
  std::size_t width = 0;
  for (const auto& f : features) {
    width += f.type == FeatureType::kNumeric ? 1 : f.cardinality;
  }
  return width;
}

std::size_t DatasetSchema::resolve_label(const std::string& raw) const {
  const std::string key = to_lower(raw);
  if (auto it = label_aliases.find(key); it != label_aliases.end()) {
    return it->second;
  }
  for (std::size_t c = 0; c < class_names.size(); ++c) {
    if (to_lower(class_names[c]) == key) return c;
  }
  return class_names.size();
}

}  // namespace cyberhd::nids
