// Preprocessing pipeline: raw schema-typed flows -> dense [0,1] features.
//
// The pipeline mirrors the standard treatment of these corpora:
//   1. one-hot expansion of categorical columns,
//   2. log1p compression of heavy-tailed numeric columns,
//   3. per-column min-max scaling to [0, 1], with the scaler **fit on the
//      training split only** and applied to both splits (no test leakage).
// The [0,1] range is what both the RBF encoder (bounded inputs keep the
// kernel lengthscale meaningful) and the ID-level encoder (explicit [0,1]
// contract) expect.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "nids/schema.hpp"

namespace cyberhd::nids {

/// A model-ready dataset: dense features, integer labels, class metadata.
struct ProcessedDataset {
  core::Matrix x;
  std::vector<int> y;
  std::size_t num_classes = 0;
  std::vector<std::string> class_names;
  std::size_t benign_class = 0;

  std::size_t size() const noexcept { return x.rows(); }
  std::size_t num_features() const noexcept { return x.cols(); }
};

/// Train/test pair after preprocessing.
struct TrainTestSplit {
  ProcessedDataset train;
  ProcessedDataset test;
};

/// Per-column affine scaler fit on training data.
class MinMaxScaler {
 public:
  /// Learn per-column min/max from `x`.
  void fit(const core::Matrix& x);
  /// Scale rows of `x` in place to [0, 1]; constant columns map to 0.
  /// Values outside the fitted range are clamped.
  void transform(core::Matrix& x) const;
  bool fitted() const noexcept { return !min_.empty(); }
  std::span<const float> column_min() const noexcept { return min_; }
  std::span<const float> column_max() const noexcept { return max_; }

 private:
  std::vector<float> min_;
  std::vector<float> max_;
};

/// One-hot-expand categorical columns and log1p-compress heavy-tailed
/// numeric columns of a raw dataset. Output width = schema.encoded_width().
core::Matrix expand_features(const Dataset& raw);

/// Stratified split indices: within every class, `test_fraction` of the
/// samples (at least 1 when the class has >= 2) go to test. Order within
/// splits is shuffled.
struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};
SplitIndices stratified_split(std::span<const int> y, double test_fraction,
                              core::Rng& rng);

/// Full pipeline: expand, split stratified, fit scaler on train, scale both.
TrainTestSplit preprocess(const Dataset& raw, double test_fraction,
                          std::uint64_t seed);

/// Expand + scale a single raw flow with an already-fitted scaler: the
/// online path a deployed NIDS uses per packet/flow. `out` must have
/// schema.encoded_width() entries.
void expand_one(const DatasetSchema& schema, std::span<const float> raw,
                std::span<float> out);

/// Per-class sample counts of a label vector (size = num_classes).
std::vector<std::size_t> class_histogram(std::span<const int> y,
                                         std::size_t num_classes);

}  // namespace cyberhd::nids
