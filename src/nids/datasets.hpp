// The four NIDS benchmarks of the paper: NSL-KDD, UNSW-NB15, CIC-IDS-2017,
// and CIC-IDS-2018.
//
// Each factory returns (a) the dataset's faithful schema — real feature
// names, types, categorical cardinalities, class taxonomy, class
// imbalance — and (b) a FlowSynthesizer tuned so the *relative* difficulty
// of the four corpora matches what the paper's Fig. 3 reports. When the
// real CSV files are available, `load_csv` ingests them through the same
// schema into the identical downstream pipeline.
#pragma once

#include <cstdint>
#include <string>

#include "nids/schema.hpp"
#include "nids/synth.hpp"

namespace cyberhd::nids {

/// Identifiers of the paper's four evaluation datasets.
enum class DatasetId { kNslKdd, kUnswNb15, kCicIds2017, kCicIds2018 };

/// All four, in the order the paper's figures list them.
inline constexpr DatasetId kAllDatasets[] = {
    DatasetId::kNslKdd, DatasetId::kUnswNb15, DatasetId::kCicIds2017,
    DatasetId::kCicIds2018};

/// Printable name ("NSL-KDD", ...).
const char* to_string(DatasetId id) noexcept;

/// Faithful schema of one dataset (features, classes, imbalance aliases).
DatasetSchema make_schema(DatasetId id);

/// Synthesizer with the dataset's schema and difficulty profile.
/// `seed` perturbs only the sampling, not the schema.
FlowSynthesizer make_synthesizer(DatasetId id, std::uint64_t seed = 7);

/// Load a real dataset CSV through `schema`. Expects one sample per row
/// with schema.num_features() feature columns followed by the label column
/// (extra trailing columns such as NSL-KDD's difficulty score are ignored).
/// Categorical features may be symbolic; a per-column vocabulary is built
/// in first-seen order. Rows whose label cannot be resolved are skipped.
/// `header` skips the first row. Throws std::runtime_error when the file
/// cannot be opened.
Dataset load_csv(const DatasetSchema& schema, const std::string& path,
                 bool header);

}  // namespace cyberhd::nids
