// Typed feature schemas for the four NIDS datasets the paper evaluates on.
//
// A schema records, for each raw column, its name and whether it is numeric
// or categorical (with cardinality), plus the class taxonomy. Schemas drive
// both the synthetic generator (so generated data has exactly the real
// datasets' shape) and the CSV loader (so the real files can be dropped in).
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/matrix.hpp"

namespace cyberhd::nids {

/// Kind of one raw dataset column.
enum class FeatureType {
  kNumeric,      ///< real-valued (counts, durations, rates, sizes)
  kCategorical,  ///< small-cardinality symbol (protocol, service, flag)
};

/// One raw column of a dataset.
struct FeatureSpec {
  std::string name;
  FeatureType type = FeatureType::kNumeric;
  /// Number of distinct symbols; meaningful only for categorical features.
  std::size_t cardinality = 0;
  /// Heavy-tailed numeric feature (byte/packet counts): the synthesizer
  /// applies a log-normal-style tail and the recommended normalization is
  /// log1p before scaling.
  bool heavy_tailed = false;
};

/// Complete description of one dataset's raw format and label taxonomy.
struct DatasetSchema {
  std::string name;
  std::vector<FeatureSpec> features;
  std::vector<std::string> class_names;
  /// Index of the benign/normal class within class_names.
  std::size_t benign_class = 0;
  /// Map from raw label strings (e.g. NSL-KDD's "neptune") to class index;
  /// used by the CSV loader. Synthetic data uses class indices directly.
  std::unordered_map<std::string, std::size_t> label_aliases;

  std::size_t num_features() const noexcept { return features.size(); }
  std::size_t num_classes() const noexcept { return class_names.size(); }
  /// Count of numeric columns.
  std::size_t num_numeric() const noexcept;
  /// Count of categorical columns.
  std::size_t num_categorical() const noexcept;
  /// Width after one-hot expansion of categorical columns.
  std::size_t encoded_width() const noexcept;
  /// Resolve a raw label string to a class index; returns num_classes()
  /// when unknown. Matching is case-insensitive on the alias table first,
  /// then on class names.
  std::size_t resolve_label(const std::string& raw) const;
};

/// A raw dataset: row-major feature matrix (categorical columns hold the
/// symbol index as a float) plus integer labels, tied to its schema.
struct Dataset {
  DatasetSchema schema;
  /// n x schema.num_features(); categorical cells store the symbol code.
  core::Matrix x;
  std::vector<int> y;

  std::size_t size() const noexcept { return x.rows(); }
};

}  // namespace cyberhd::nids
