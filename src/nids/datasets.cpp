#include "nids/datasets.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "core/csv.hpp"

namespace cyberhd::nids {

namespace {

FeatureSpec num(std::string name, bool heavy = false) {
  return FeatureSpec{std::move(name), FeatureType::kNumeric, 0, heavy};
}

FeatureSpec cat(std::string name, std::size_t cardinality) {
  return FeatureSpec{std::move(name), FeatureType::kCategorical, cardinality,
                     false};
}

// ---- NSL-KDD ---------------------------------------------------------------
// 41 features (3 categorical), 5 classes with the training split's heavy
// imbalance; attack-name -> category aliases follow Tavallaee et al.
DatasetSchema nsl_kdd_schema() {
  DatasetSchema s;
  s.name = "NSL-KDD";
  s.features = {
      num("duration", true),
      cat("protocol_type", 3),
      cat("service", 66),
      cat("flag", 11),
      num("src_bytes", true),
      num("dst_bytes", true),
      num("land"),
      num("wrong_fragment"),
      num("urgent"),
      num("hot"),
      num("num_failed_logins"),
      num("logged_in"),
      num("num_compromised"),
      num("root_shell"),
      num("su_attempted"),
      num("num_root"),
      num("num_file_creations"),
      num("num_shells"),
      num("num_access_files"),
      num("num_outbound_cmds"),
      num("is_host_login"),
      num("is_guest_login"),
      num("count", true),
      num("srv_count", true),
      num("serror_rate"),
      num("srv_serror_rate"),
      num("rerror_rate"),
      num("srv_rerror_rate"),
      num("same_srv_rate"),
      num("diff_srv_rate"),
      num("srv_diff_host_rate"),
      num("dst_host_count", true),
      num("dst_host_srv_count", true),
      num("dst_host_same_srv_rate"),
      num("dst_host_diff_srv_rate"),
      num("dst_host_same_src_port_rate"),
      num("dst_host_srv_diff_host_rate"),
      num("dst_host_serror_rate"),
      num("dst_host_srv_serror_rate"),
      num("dst_host_rerror_rate"),
      num("dst_host_srv_rerror_rate"),
  };
  s.class_names = {"normal", "dos", "probe", "r2l", "u2r"};
  s.benign_class = 0;
  const char* dos[] = {"back",    "land",        "neptune", "pod",
                       "smurf",   "teardrop",    "apache2", "udpstorm",
                       "processtable", "mailbomb", "worm"};
  const char* probe[] = {"satan", "ipsweep", "nmap", "portsweep", "mscan",
                         "saint"};
  const char* r2l[] = {"guess_passwd", "ftp_write",     "imap",
                       "phf",          "multihop",      "warezmaster",
                       "warezclient",  "spy",           "xlock",
                       "xsnoop",       "snmpguess",     "snmpgetattack",
                       "httptunnel",   "sendmail",      "named"};
  const char* u2r[] = {"buffer_overflow", "loadmodule", "rootkit", "perl",
                       "sqlattack",       "xterm",      "ps"};
  for (const char* a : dos) s.label_aliases[a] = 1;
  for (const char* a : probe) s.label_aliases[a] = 2;
  for (const char* a : r2l) s.label_aliases[a] = 3;
  for (const char* a : u2r) s.label_aliases[a] = 4;
  return s;
}

// ---- UNSW-NB15 --------------------------------------------------------------
// 42 features (3 categorical), 10 classes. Cardinalities follow the
// published CSV release (proto reduced to the major protocols).
DatasetSchema unsw_nb15_schema() {
  DatasetSchema s;
  s.name = "UNSW-NB15";
  s.features = {
      num("dur", true),
      cat("proto", 10),
      cat("service", 13),
      cat("state", 7),
      num("spkts", true),
      num("dpkts", true),
      num("sbytes", true),
      num("dbytes", true),
      num("rate", true),
      num("sttl"),
      num("dttl"),
      num("sload", true),
      num("dload", true),
      num("sloss", true),
      num("dloss", true),
      num("sinpkt"),
      num("dinpkt"),
      num("sjit"),
      num("djit"),
      num("swin"),
      num("stcpb", true),
      num("dtcpb", true),
      num("dwin"),
      num("tcprtt"),
      num("synack"),
      num("ackdat"),
      num("smean"),
      num("dmean"),
      num("trans_depth"),
      num("response_body_len", true),
      num("ct_srv_src"),
      num("ct_state_ttl"),
      num("ct_dst_ltm"),
      num("ct_src_dport_ltm"),
      num("ct_dst_sport_ltm"),
      num("ct_dst_src_ltm"),
      num("is_ftp_login"),
      num("ct_ftp_cmd"),
      num("ct_flw_http_mthd"),
      num("ct_src_ltm"),
      num("ct_srv_dst"),
      num("is_sm_ips_ports"),
  };
  s.class_names = {"normal",   "generic",  "exploits", "fuzzers",
                   "dos",      "reconnaissance", "analysis", "backdoor",
                   "shellcode", "worms"};
  s.benign_class = 0;
  s.label_aliases["backdoors"] = 7;  // spelling drift across releases
  return s;
}

// ---- CIC-IDS-2017 ------------------------------------------------------------
// 78 numeric flow features (CICFlowMeter), 8 majority classes.
DatasetSchema cic_ids_2017_schema() {
  DatasetSchema s;
  s.name = "CIC-IDS-2017";
  const char* names[] = {
      "destination_port", "flow_duration", "total_fwd_packets",
      "total_backward_packets", "total_length_of_fwd_packets",
      "total_length_of_bwd_packets", "fwd_packet_length_max",
      "fwd_packet_length_min", "fwd_packet_length_mean",
      "fwd_packet_length_std", "bwd_packet_length_max",
      "bwd_packet_length_min", "bwd_packet_length_mean",
      "bwd_packet_length_std", "flow_bytes_per_s", "flow_packets_per_s",
      "flow_iat_mean", "flow_iat_std", "flow_iat_max", "flow_iat_min",
      "fwd_iat_total", "fwd_iat_mean", "fwd_iat_std", "fwd_iat_max",
      "fwd_iat_min", "bwd_iat_total", "bwd_iat_mean", "bwd_iat_std",
      "bwd_iat_max", "bwd_iat_min", "fwd_psh_flags", "bwd_psh_flags",
      "fwd_urg_flags", "bwd_urg_flags", "fwd_header_length",
      "bwd_header_length", "fwd_packets_per_s", "bwd_packets_per_s",
      "min_packet_length", "max_packet_length", "packet_length_mean",
      "packet_length_std", "packet_length_variance", "fin_flag_count",
      "syn_flag_count", "rst_flag_count", "psh_flag_count",
      "ack_flag_count", "urg_flag_count", "cwe_flag_count",
      "ece_flag_count", "down_up_ratio", "average_packet_size",
      "avg_fwd_segment_size", "avg_bwd_segment_size",
      "fwd_header_length_1", "fwd_avg_bytes_bulk", "fwd_avg_packets_bulk",
      "fwd_avg_bulk_rate", "bwd_avg_bytes_bulk", "bwd_avg_packets_bulk",
      "bwd_avg_bulk_rate", "subflow_fwd_packets", "subflow_fwd_bytes",
      "subflow_bwd_packets", "subflow_bwd_bytes", "init_win_bytes_forward",
      "init_win_bytes_backward", "act_data_pkt_fwd", "min_seg_size_forward",
      "active_mean", "active_std", "active_max", "active_min", "idle_mean",
      "idle_std", "idle_max", "idle_min"};
  for (const char* n : names) {
    const std::string name(n);
    const bool heavy = name.find("bytes") != std::string::npos ||
                       name.find("packets") != std::string::npos ||
                       name.find("duration") != std::string::npos ||
                       name.find("iat") != std::string::npos;
    s.features.push_back(num(name, heavy));
  }
  s.class_names = {"benign",        "dos_hulk",     "portscan",
                   "ddos",          "dos_goldeneye", "ftp_patator",
                   "ssh_patator",   "dos_slowloris"};
  s.benign_class = 0;
  s.label_aliases["dos hulk"] = 1;
  s.label_aliases["dos goldeneye"] = 4;
  s.label_aliases["ftp-patator"] = 5;
  s.label_aliases["ssh-patator"] = 6;
  s.label_aliases["dos slowloris"] = 7;
  return s;
}

// ---- CIC-IDS-2018 ------------------------------------------------------------
// 79 numeric flow features (adds protocol to the 2017 set), 7 classes.
DatasetSchema cic_ids_2018_schema() {
  DatasetSchema s = cic_ids_2017_schema();
  s.name = "CIC-IDS-2018";
  s.features.insert(s.features.begin(), num("protocol"));
  s.class_names = {"benign",          "ddos_hoic", "dos_hulk",
                   "bot",             "infiltration", "ssh_bruteforce",
                   "ddos_loic_http"};
  s.benign_class = 0;
  s.label_aliases.clear();
  s.label_aliases["ddos attack-hoic"] = 1;
  s.label_aliases["dos attacks-hulk"] = 2;
  s.label_aliases["ssh-bruteforce"] = 5;
  s.label_aliases["ddos attacks-loic-http"] = 6;
  return s;
}

}  // namespace

const char* to_string(DatasetId id) noexcept {
  switch (id) {
    case DatasetId::kNslKdd:
      return "NSL-KDD";
    case DatasetId::kUnswNb15:
      return "UNSW-NB15";
    case DatasetId::kCicIds2017:
      return "CIC-IDS-2017";
    case DatasetId::kCicIds2018:
      return "CIC-IDS-2018";
  }
  return "unknown";
}

DatasetSchema make_schema(DatasetId id) {
  switch (id) {
    case DatasetId::kNslKdd:
      return nsl_kdd_schema();
    case DatasetId::kUnswNb15:
      return unsw_nb15_schema();
    case DatasetId::kCicIds2017:
      return cic_ids_2017_schema();
    case DatasetId::kCicIds2018:
      return cic_ids_2018_schema();
  }
  throw std::invalid_argument("unknown dataset id");
}

FlowSynthesizer make_synthesizer(DatasetId id, std::uint64_t seed) {
  SynthConfig cfg;
  cfg.seed = seed;
  switch (id) {
    case DatasetId::kNslKdd:
      // The easiest of the four: well-separated attack families, tiny
      // label-noise floor. Real-world accuracies sit near 99%.
      cfg.latent_dim = 14;
      cfg.center_scale = 2.2;
      cfg.cluster_spread = 0.32;
      cfg.feature_noise = 0.05;
      cfg.label_noise = 0.002;
      cfg.clusters_per_class = 8;
      cfg.radial_classes = 1;
      cfg.class_weights = {0.53, 0.37, 0.09, 0.008, 0.002};
      break;
    case DatasetId::kUnswNb15:
      // The hardest: ten overlapping classes with many behavioural modes
      // (fuzzers/exploits/dos blur together in the real corpus too).
      cfg.latent_dim = 16;
      cfg.center_scale = 1.45;
      cfg.cluster_spread = 0.40;
      cfg.feature_noise = 0.06;
      cfg.label_noise = 0.008;
      cfg.clusters_per_class = 10;
      cfg.radial_classes = 2;
      cfg.class_weights = {0.45,  0.215, 0.135, 0.074, 0.05,
                           0.042, 0.011, 0.009, 0.006, 0.002};
      break;
    case DatasetId::kCicIds2017:
      cfg.latent_dim = 15;
      cfg.center_scale = 1.5;
      cfg.cluster_spread = 0.20;
      cfg.feature_noise = 0.05;
      cfg.label_noise = 0.003;
      cfg.clusters_per_class = 24;
      cfg.radial_classes = 1;
      cfg.class_weights = {0.70, 0.10, 0.08, 0.06, 0.03, 0.015, 0.01, 0.005};
      break;
    case DatasetId::kCicIds2018:
      cfg.latent_dim = 15;
      cfg.center_scale = 1.4;
      cfg.cluster_spread = 0.24;
      cfg.feature_noise = 0.05;
      cfg.label_noise = 0.005;
      cfg.clusters_per_class = 18;
      cfg.radial_classes = 2;
      cfg.class_weights = {0.72, 0.12, 0.06, 0.05, 0.02, 0.02, 0.01};
      break;
  }
  return FlowSynthesizer(make_schema(id), cfg);
}

Dataset load_csv(const DatasetSchema& schema, const std::string& path,
                 bool header) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open dataset file: " + path);
  core::CsvReader reader(file);
  if (header) (void)reader.next();

  // First-seen-order vocabularies for symbolic categorical columns.
  std::vector<std::unordered_map<std::string, std::size_t>> vocab(
      schema.num_features());

  std::vector<float> row_values;
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  while (auto record = reader.next()) {
    if (record->size() < schema.num_features() + 1) continue;
    const std::size_t label_cls =
        schema.resolve_label((*record)[schema.num_features()]);
    if (label_cls >= schema.num_classes()) continue;  // unknown label
    row_values.assign(schema.num_features(), 0.0f);
    bool ok = true;
    for (std::size_t f = 0; f < schema.num_features(); ++f) {
      const std::string& cell = (*record)[f];
      if (schema.features[f].type == FeatureType::kCategorical) {
        auto [it, inserted] = vocab[f].try_emplace(cell, vocab[f].size());
        const std::size_t code =
            std::min(it->second, schema.features[f].cardinality - 1);
        row_values[f] = static_cast<float>(code);
      } else {
        float v = 0.0f;
        const auto* begin = cell.data();
        const auto* end = begin + cell.size();
        const auto result = std::from_chars(begin, end, v);
        if (result.ec != std::errc{} ||
            !std::isfinite(static_cast<double>(v))) {
          // Real CIC files contain "Infinity"/"NaN" cells; zero them like
          // the standard preprocessing scripts do.
          v = 0.0f;
        }
        row_values[f] = v;
      }
    }
    if (!ok) continue;
    rows.push_back(row_values);
    labels.push_back(static_cast<int>(label_cls));
  }

  Dataset ds;
  ds.schema = schema;
  ds.x.resize(rows.size(), schema.num_features());
  ds.y = std::move(labels);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::copy(rows[i].begin(), rows[i].end(), ds.x.row(i).data());
  }
  return ds;
}

}  // namespace cyberhd::nids
