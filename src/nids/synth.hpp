// Synthetic NIDS flow generation.
//
// The real NSL-KDD / UNSW-NB15 / CIC-IDS corpora cannot be redistributed
// with this repository, so experiments run on a class-conditional generative
// model that reproduces the statistical properties the classifiers under
// test are sensitive to:
//
//  * each class is a mixture of clusters in a low-dimensional latent space
//    (traffic of one attack family is a handful of behavioural modes);
//  * observed numeric features are a shared *nonlinear* mixing of the
//    latent vector (linear + tanh components), so the feature manifold is
//    curved — linear models lose accuracy, kernel/NN/HDC methods do not;
//  * selected attack classes are *radial shells* around the benign center
//    (same mean, different radius — e.g. flood traffic that differs from
//    benign only in intensity), which is non-linearly separable by
//    construction;
//  * byte/packet-count features get log-normal heavy tails;
//  * categorical features (protocol/service/flag) follow peaked per-class
//    distributions;
//  * a small label-noise floor caps attainable accuracy below 100%, like
//    real label errors do.
//
// Everything is deterministic in the (schema, config, seed) triple.
#pragma once

#include <cstdint>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "nids/schema.hpp"

namespace cyberhd::nids {

/// Difficulty and shape knobs of the generator.
struct SynthConfig {
  /// Latent behavioural dimensionality.
  std::size_t latent_dim = 12;
  /// Within-cluster standard deviation in latent space.
  double cluster_spread = 0.55;
  /// Standard deviation of cluster centers (class separation).
  double center_scale = 1.6;
  /// Additive observation noise on numeric features.
  double feature_noise = 0.12;
  /// Weight of the tanh component in the latent-to-feature mixing
  /// (0 = purely linear manifold).
  double nonlinearity = 0.9;
  /// Fraction of samples whose label is replaced uniformly at random.
  double label_noise = 0.004;
  /// Behavioural modes per class.
  std::size_t clusters_per_class = 3;
  /// Number of attack classes realized as radial shells around the benign
  /// center (capped at the number of attack classes).
  std::size_t radial_classes = 1;
  /// Class prior; resized/normalized to the schema's class count
  /// (uniform when empty).
  std::vector<double> class_weights;
  /// Generator seed.
  std::uint64_t seed = 7;
};

/// Class-conditional flow generator for one dataset schema.
class FlowSynthesizer {
 public:
  FlowSynthesizer(DatasetSchema schema, SynthConfig config);

  const DatasetSchema& schema() const noexcept { return schema_; }
  const SynthConfig& config() const noexcept { return config_; }

  /// Generate `n` flows with class counts proportional to the prior
  /// (every class gets at least one sample), shuffled. Deterministic for a
  /// fixed (schema, config) and `stream`; different `stream` values give
  /// independent draws (use 0 for train, 1 for test, etc.).
  Dataset generate(std::size_t n, std::uint64_t stream = 0) const;

  /// Generate one flow of a given class into `out` (size num_features()).
  /// Exposed for the streaming-detection example.
  void sample_flow(std::size_t cls, std::span<float> out,
                   core::Rng& rng) const;

  /// True when `cls` was realized as a radial shell around benign.
  bool is_radial_class(std::size_t cls) const;

  /// The normalized class prior actually in use.
  const std::vector<double>& class_prior() const noexcept { return prior_; }

 private:
  struct ClassProfile {
    /// clusters_per_class centers, each latent_dim long (row-major).
    std::vector<float> centers;
    /// Radial-shell parameters; used when `radial` is true.
    bool radial = false;
    double shell_radius = 0.0;
    double shell_width = 0.0;
    /// Per categorical feature: probability over its symbols
    /// (index aligned with categorical_features_).
    std::vector<std::vector<double>> categorical_probs;
  };

  void sample_latent(std::size_t cls, std::span<float> z,
                     core::Rng& rng) const;
  void latent_to_features(std::span<const float> z, std::span<float> out,
                          core::Rng& rng) const;

  DatasetSchema schema_;
  SynthConfig config_;
  std::vector<double> prior_;
  std::vector<ClassProfile> profiles_;
  /// Indices of categorical columns within the schema.
  std::vector<std::size_t> categorical_features_;
  /// Indices of numeric columns within the schema.
  std::vector<std::size_t> numeric_features_;
  /// Shared latent-to-feature mixing (rows = numeric features).
  core::Matrix mix_linear_;  // F_num x L
  core::Matrix mix_tanh_;    // F_num x L
  /// Per-numeric-feature output scale.
  std::vector<float> feature_scale_;
};

}  // namespace cyberhd::nids
