// ScoringWorkspace — the reusable per-thread scratch that makes a
// steady-state serving flush allocation-free, and BorrowGuard — the RAII
// pin set that makes cache hits zero-copy.
//
// Before this layer, every flush through the serving pipeline allocated:
// the cache's routing scratch (hashes, per-shard row lists), the scorers'
// accumulator tiles (hamming counts, int8 dots), the model's class-norm
// vector, and the miss gather buffers were all per-call std::vectors. None
// of them depends on anything but batch size and model shape, so after a
// warmup pass they can all live in one workspace whose vectors only ever
// grow. The workspace is accessed through a thread_local (tl()), because
// scores_block is const and called concurrently: each server worker gets
// its own scratch with zero synchronization, and the monotonic-growth
// policy means the steady state touches no allocator at all (a test pins
// this with a counting operator new).
//
// BorrowGuard is the other half of zero-copy hits: instead of memcpying a
// hit entry out of the cache ring, the borrow-mode drivers PIN the slot
// (a per-slot pin count, mutated only under the shard mutex) and record a
// stable pointer into the ring storage. Ring eviction skips pinned slots,
// and ring storage never reallocates after its lazy ensure_storage, so the
// pointer stays valid until the guard releases — which the drivers do
// right after stage 2 consumes the scores. The guard is deliberately
// non-copyable and tied to one cache at a time; release() is idempotent
// and batches unpins per shard so a flush's worth of pins costs one lock
// round per shard, not per row.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/matrix.hpp"

namespace cyberhd::hdc {

class EncodeCache;

/// RAII set of pinned cache slots. Filled by the borrow-mode cache
/// drivers; released (unpinning every slot) explicitly after scoring, or
/// at destruction as a backstop. Never holds pins across flushes.
class BorrowGuard {
 public:
  BorrowGuard() = default;
  BorrowGuard(const BorrowGuard&) = delete;
  BorrowGuard& operator=(const BorrowGuard&) = delete;
  ~BorrowGuard() { release(); }

  /// Unpin every recorded slot (batched per shard) and forget the cache.
  /// Idempotent; keeps the pin vector's capacity for the next flush.
  void release();

  bool empty() const noexcept { return pins_.empty(); }
  std::size_t size() const noexcept { return pins_.size(); }

 private:
  friend class EncodeCache;
  struct Pin {
    std::uint32_t shard;
    std::uint32_t slot;
  };
  EncodeCache* cache_ = nullptr;
  std::vector<Pin> pins_;  // shard-grouped (probe walks shard by shard)
};

/// Per-thread scratch for the serving hot path. Every member grows
/// monotonically and is reused across flushes; none carries state between
/// calls (each driver overwrites what it reads). Distinct pipeline stages
/// use distinct members, so one flush may touch all of them without
/// aliasing.
struct ScoringWorkspace {
  // --- cache routing (EncodeCache::encode_entries) -----------------------
  std::vector<std::uint64_t> hashes;        // per batch row
  std::vector<std::uint32_t> shard_of_row;  // per batch row
  // Counting-sort bucketing of batch rows by shard (replaces the old
  // vector-of-vectors): counts/offsets per shard, then rows_by_shard holds
  // each shard's rows contiguously IN BATCH ORDER — the stability the
  // in-batch dedup relies on (the dup source must be the earlier
  // occurrence).
  std::vector<std::uint32_t> shard_counts;
  std::vector<std::uint32_t> shard_offsets;
  std::vector<std::uint32_t> rows_by_shard;
  // Miss list (std::size_t so the encode_misses callback keeps its
  // span<const size_t> shape). Misses are appended walking shards in
  // order, so shard s's misses are the contiguous range
  // [miss_shard_end[s-1], miss_shard_end[s]).
  std::vector<std::size_t> misses;
  std::vector<std::uint32_t> miss_shard_end;

  /// In-batch duplicate: `row` replays the fresh encode of `src`.
  struct BatchDup {
    std::size_t row;
    std::size_t src;
  };
  std::vector<BatchDup> dups;

  /// Open-addressed hash -> first-occurrence map, replacing the per-call
  /// unordered_map. Generation-stamped so reset() is O(1) after the first
  /// sizing: a slot is live only when its stamp equals the current
  /// generation.
  struct DedupTable {
    std::vector<std::uint64_t> keys;
    std::vector<std::uint32_t> vals;
    std::vector<std::uint32_t> stamps;
    std::uint32_t gen = 0;
    std::size_t mask = 0;

    /// Make the table empty with capacity for `n` distinct keys at a load
    /// factor <= 0.5.
    void reset(std::size_t n) {
      std::size_t need = 16;
      while (need < 2 * n) need *= 2;
      if (keys.size() < need) {
        keys.resize(need);
        vals.resize(need);
        stamps.assign(need, 0);
        mask = need - 1;
        gen = 1;
        return;
      }
      if (++gen == 0) {  // generation wrap: hard-reset the stamps once
        std::fill(stamps.begin(), stamps.end(), 0);
        gen = 1;
      }
    }

    /// The value previously recorded for `key`, or `val` after recording
    /// it — the open-addressed analogue of try_emplace(key, val).second.
    std::uint32_t find_or_insert(std::uint64_t key, std::uint32_t val) {
      // splitmix64-style finalizer: FNV's low bits cluster for similar
      // rows, and linear probing needs the spread.
      std::uint64_t z = key;
      z ^= z >> 30;
      z *= 0xbf58476d1ce4e5b9ULL;
      z ^= z >> 27;
      z *= 0x94d049bb133111ebULL;
      z ^= z >> 31;
      std::size_t idx = static_cast<std::size_t>(z) & mask;
      while (stamps[idx] == gen) {
        if (keys[idx] == key) return vals[idx];
        idx = (idx + 1) & mask;
      }
      stamps[idx] = gen;
      keys[idx] = key;
      vals[idx] = val;
      return val;
    }
  };
  DedupTable batch_first;

  // --- zero-copy row tables ---------------------------------------------
  // Per batch row: where its encoded entry lives (borrowed ring slot or
  // staging row). entry_ptrs is what the borrow-mode cache driver fills;
  // the typed tables are what the gather kernels consume.
  std::vector<const unsigned char*> entry_ptrs;
  std::vector<const float*> f32_rows;
  std::vector<const std::int8_t*> i8_rows;
  std::vector<const std::uint64_t*> word_rows;
  /// The pins backing any borrowed entries above, released after stage 2.
  BorrowGuard borrow;

  // --- scoring scratch ---------------------------------------------------
  /// Per-class norms (float path) or reused norm scratch; recomputed every
  /// call, allocation reused.
  std::vector<float> class_norms;
  /// Integer accumulator tiles for the quantized scorers (tile_rows x
  /// classes): XOR-popcount hamming counts at 1 bit, int64 dots at 2-8
  /// bits. Each pool worker scores through its own workspace, so these
  /// replace the per-call vectors the scoring lambdas used to allocate.
  std::vector<std::uint32_t> ham_tile;
  std::vector<std::int64_t> dot_tile;

  // --- miss gather scratch (packed pipeline) ----------------------------
  core::Matrix miss_raw;  // gathered raw miss rows
  core::Matrix miss_enc;  // their float encodings before quantization
  std::vector<unsigned char, core::AlignedAllocator<unsigned char>>
      miss_packed;  // their packed entries

  /// This thread's workspace. Server workers each score on their own
  /// thread, so per-thread scratch needs no locking; a thread's workspace
  /// reaches steady-state capacity after one warm flush.
  static ScoringWorkspace& tl() {
    thread_local ScoringWorkspace ws;
    return ws;
  }
};

}  // namespace cyberhd::hdc
