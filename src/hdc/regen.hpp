// The dimension-regeneration controller — CyberHD's core contribution.
//
// After a retraining burst, the controller (steps (D)-(H) of the workflow):
//   1. computes per-dimension variance across the L2-normalized class
//      hypervectors,
//   2. selects the R% of dimensions with the lowest variance (they encode
//      class-common information and contribute least to separating
//      attack patterns),
//   3. zeroes those dimensions in the model,
//   4. resamples the encoder state behind them from its prior, and
//   5. books the count into the effective-dimensionality ledger
//      D* = D + total regenerated, the quantity Table I calls "Effective D".
#pragma once

#include <cstddef>
#include <vector>

#include "core/rng.hpp"
#include "hdc/encoder.hpp"
#include "hdc/model.hpp"

namespace cyberhd::hdc {

/// One regeneration step's bookkeeping.
struct RegenStep {
  /// Dimensions that were dropped and resampled.
  std::vector<std::size_t> dims;
  /// Effective dimensionality after this step.
  std::size_t effective_dims = 0;
};

/// Variance-ranked drop-and-regenerate controller with an effective-D ledger.
class RegenController {
 public:
  /// `rate` is the fraction of dimensions regenerated per step, in [0, 1).
  /// When `anneal_steps > 0`, the per-step rate decays linearly from `rate`
  /// to 0 across that many steps: early steps search feature space hard,
  /// late steps stop disturbing the refined model (NeuralHD-style
  /// regeneration annealing).
  RegenController(std::size_t physical_dims, double rate,
                  std::size_t anneal_steps = 0);

  /// The configured base drop rate R: the fraction of the D physical
  /// dimensions dropped and resampled per step (before annealing). Each
  /// step drops floor(rate_now * D) dimensions, so a rate small enough
  /// that floor(...) == 0 makes step() a no-op.
  double rate() const noexcept { return rate_; }
  /// Physical dimensionality D (fixed; regeneration reuses slots, it never
  /// grows storage — only the effective-D ledger grows).
  std::size_t physical_dims() const noexcept { return physical_dims_; }
  /// Dimensions the *next* step will regenerate: floor(rate_now * D),
  /// where rate_now is the (possibly annealed) current rate.
  std::size_t dims_per_step() const noexcept;
  /// The annealed rate the next step will use.
  double current_rate() const noexcept;
  /// Total dimensions regenerated so far.
  std::size_t total_regenerated() const noexcept { return total_regenerated_; }
  /// The paper's D* = physical D + total regenerated.
  std::size_t effective_dims() const noexcept {
    return physical_dims_ + total_regenerated_;
  }
  /// Number of regeneration steps performed.
  std::size_t steps() const noexcept { return steps_; }

  /// Restore ledger state from a persisted classifier (deserialization
  /// support); clears any grace-period protection.
  void restore(std::size_t total_regenerated, std::size_t steps) noexcept {
    total_regenerated_ = total_regenerated;
    steps_ = steps;
    protected_dims_.clear();
  }

  /// Perform one regeneration step on (model, encoder). Returns the
  /// affected dimensions. A rate of 0 returns an empty step.
  ///
  /// Dimensions regenerated in the previous step are protected from
  /// dropping in this one: a fresh dimension starts with near-zero
  /// cross-class variance (it has not been trained yet), so without a
  /// grace period the variance ranking would evict exactly the dimensions
  /// just resampled and regeneration would churn the same slots forever.
  RegenStep step(HdcModel& model, Encoder& encoder, core::Rng& rng);

 private:
  std::size_t physical_dims_;
  double rate_;
  std::size_t anneal_steps_;
  std::size_t total_regenerated_ = 0;
  std::size_t steps_ = 0;
  std::vector<std::size_t> protected_dims_;  // last step's regenerated dims
};

}  // namespace cyberhd::hdc
