#include "hdc/model.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/kernels/kernels.hpp"
#include "core/stats.hpp"
#include "hdc/scoring_workspace.hpp"

namespace cyberhd::hdc {

HdcModel::HdcModel(std::size_t num_classes, std::size_t dims)
    : classes_(num_classes, dims) {
  assert(num_classes > 0 && dims > 0);
}

void HdcModel::bundle(std::size_t cls, std::span<const float> h,
                      float weight) noexcept {
  assert(cls < num_classes());
  core::axpy(weight, h, classes_.row(cls));
}

void HdcModel::similarities(std::span<const float> h,
                            std::span<float> scores) const noexcept {
  assert(h.size() == dims());
  assert(scores.size() == num_classes());
  const float hn = core::norm2(h);
  for (std::size_t c = 0; c < num_classes(); ++c) {
    const auto row = classes_.row(c);
    scores[c] = cosine_from_dot(core::dot(row, h), hn, core::norm2(row));
  }
}

void HdcModel::similarities_batch(const core::Matrix& h,
                                  core::Matrix& scores,
                                  const core::ExecutionContext& exec) const {
  similarities_batch(EncodedBatch::of(h), scores, exec);
}

void HdcModel::similarities_batch(const EncodedBatch& h,
                                  core::Matrix& scores,
                                  const core::ExecutionContext& exec) const {
  scores.resize(h.rows(), num_classes());
  if (h.rows() == 0) return;
  similarities_into(h, scores.data(), exec);
}

void HdcModel::similarities_into(const EncodedBatch& h, float* out,
                                 const core::ExecutionContext& exec) const {
  assert(h.dims() == dims());
  if (h.rows() == 0) return;
  const std::size_t C = num_classes();
  const std::size_t D = dims();
  // Class norms live in the thread-local workspace: recomputed every call
  // (they are cheap and the model may have changed), but the vector's
  // allocation is reused — the steady-state serving flush touches no
  // allocator here.
  std::vector<float>& class_norms = ScoringWorkspace::tl().class_norms;
  class_norms.resize(C);
  for (std::size_t c = 0; c < C; ++c) {
    class_norms[c] = core::norm2(classes_.row(c));
  }
  // Tile-internal blocking: each worker streams its row range through the
  // register-blocked tile kernel in chunks small enough that the chunk's
  // rows stay L2-resident for the norm pass right after the kernel pass
  // (and the class-vector block stays cache-resident throughout); the
  // chunk size is derived from the machine's cache model, not hand-tuned.
  // The kernel's per-dot accumulation equals dot_f32's, so cosine_from_dot
  // on the raw dots reproduces similarities() bit-for-bit.
  const std::size_t tile_rows = exec.score_block_rows(D);
  const core::Kernels& k = exec.kernels();
  const auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; t += tile_rows) {
      const std::size_t rows = std::min(tile_rows, end - t);
      float* block = out + t * C;
      k.similarities_tile_f32(h.row(t).data(), rows, classes_.data(), C, D,
                              block);
      for (std::size_t r = 0; r < rows; ++r) {
        const float hn = core::norm2(h.row(t + r));
        for (std::size_t c = 0; c < C; ++c) {
          float& s = block[r * C + c];
          s = cosine_from_dot(s, hn, class_norms[c]);
        }
      }
    }
  };
  exec.parallel_for(h.rows(), body, /*grain=*/32);
}

void HdcModel::similarities_into(const EncodedRows& h, float* out,
                                 const core::ExecutionContext& exec) const {
  assert(h.dims() == dims());
  if (h.rows() == 0) return;
  const std::size_t C = num_classes();
  const std::size_t D = dims();
  std::vector<float>& class_norms = ScoringWorkspace::tl().class_norms;
  class_norms.resize(C);
  for (std::size_t c = 0; c < C; ++c) {
    class_norms[c] = core::norm2(classes_.row(c));
  }
  // Mirror of the contiguous overload with the gather tile kernel reading
  // rows through the pointer table; per-row norms read through the same
  // table, so every output entry is bit-identical to the contiguous path
  // over the same row bytes.
  const std::size_t tile_rows = exec.score_block_rows(D);
  const core::Kernels& k = exec.kernels();
  const float* const* rows_tbl = h.row_ptrs();
  const auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; t += tile_rows) {
      const std::size_t rows = std::min(tile_rows, end - t);
      float* block = out + t * C;
      k.similarities_tile_f32_gather(rows_tbl + t, rows, classes_.data(), C,
                                     D, block);
      for (std::size_t r = 0; r < rows; ++r) {
        const float hn = core::norm2(h.row(t + r));
        for (std::size_t c = 0; c < C; ++c) {
          float& s = block[r * C + c];
          s = cosine_from_dot(s, hn, class_norms[c]);
        }
      }
    }
  };
  exec.parallel_for(h.rows(), body, /*grain=*/32);
}

std::size_t HdcModel::predict_encoded(
    std::span<const float> h) const noexcept {
  std::vector<float> scores(num_classes());
  similarities(h, scores);
  return core::argmax(scores);
}

void HdcModel::normalize_rows() noexcept {
  for (std::size_t c = 0; c < num_classes(); ++c) {
    core::normalize_l2(classes_.row(c));
  }
}

void HdcModel::dimension_variances(std::span<float> out) const {
  assert(out.size() == dims());
  // Work on a normalized copy so magnitude differences between classes
  // (driven by class frequency) do not masquerade as discriminative
  // variance — this is exactly the paper's normalize-then-variance order.
  core::Matrix normalized = classes_;
  for (std::size_t c = 0; c < normalized.rows(); ++c) {
    core::normalize_l2(normalized.row(c));
  }
  core::column_variances(normalized.data(), normalized.rows(),
                         normalized.cols(), out);
}

void HdcModel::zero_dimensions(std::span<const std::size_t> dims_list) noexcept {
  for (std::size_t c = 0; c < num_classes(); ++c) {
    auto row = classes_.row(c);
    for (std::size_t d : dims_list) {
      assert(d < dims());
      row[d] = 0.0f;
    }
  }
}

std::vector<std::size_t> HdcModel::lowest_k(std::span<const float> values,
                                            std::size_t count) {
  count = std::min(count, values.size());
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + count, idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (values[a] != values[b]) {
                        return values[a] < values[b];
                      }
                      return a < b;
                    });
  idx.resize(count);
  return idx;
}

}  // namespace cyberhd::hdc
