#include "hdc/model.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/stats.hpp"

namespace cyberhd::hdc {

HdcModel::HdcModel(std::size_t num_classes, std::size_t dims)
    : classes_(num_classes, dims) {
  assert(num_classes > 0 && dims > 0);
}

void HdcModel::bundle(std::size_t cls, std::span<const float> h,
                      float weight) noexcept {
  assert(cls < num_classes());
  core::axpy(weight, h, classes_.row(cls));
}

namespace {

/// The one cosine-scoring expression shared by the per-sample and batch
/// paths — sharing it is what makes their bit-identical contract hold.
inline float cosine_score(std::span<const float> cls,
                          std::span<const float> h, float hn,
                          float cn) noexcept {
  return (hn == 0.0f || cn == 0.0f) ? 0.0f : core::dot(cls, h) / (hn * cn);
}

}  // namespace

void HdcModel::similarities(std::span<const float> h,
                            std::span<float> scores) const noexcept {
  assert(h.size() == dims());
  assert(scores.size() == num_classes());
  const float hn = core::norm2(h);
  for (std::size_t c = 0; c < num_classes(); ++c) {
    const auto row = classes_.row(c);
    scores[c] = cosine_score(row, h, hn, core::norm2(row));
  }
}

void HdcModel::similarities_batch(const core::Matrix& h,
                                  core::Matrix& scores,
                                  core::ThreadPool* pool) const {
  assert(h.cols() == dims());
  scores.resize(h.rows(), num_classes());
  std::vector<float> class_norms(num_classes());
  for (std::size_t c = 0; c < num_classes(); ++c) {
    class_norms[c] = core::norm2(classes_.row(c));
  }
  const auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto hi = h.row(i);
      const float hn = core::norm2(hi);
      auto out = scores.row(i);
      for (std::size_t c = 0; c < num_classes(); ++c) {
        out[c] = cosine_score(classes_.row(c), hi, hn, class_norms[c]);
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(h.rows(), body, /*grain=*/32);
  } else {
    body(0, h.rows());
  }
}

std::size_t HdcModel::predict_encoded(
    std::span<const float> h) const noexcept {
  std::vector<float> scores(num_classes());
  similarities(h, scores);
  return core::argmax(scores);
}

void HdcModel::normalize_rows() noexcept {
  for (std::size_t c = 0; c < num_classes(); ++c) {
    core::normalize_l2(classes_.row(c));
  }
}

void HdcModel::dimension_variances(std::span<float> out) const {
  assert(out.size() == dims());
  // Work on a normalized copy so magnitude differences between classes
  // (driven by class frequency) do not masquerade as discriminative
  // variance — this is exactly the paper's normalize-then-variance order.
  core::Matrix normalized = classes_;
  for (std::size_t c = 0; c < normalized.rows(); ++c) {
    core::normalize_l2(normalized.row(c));
  }
  core::column_variances(normalized.data(), normalized.rows(),
                         normalized.cols(), out);
}

void HdcModel::zero_dimensions(std::span<const std::size_t> dims_list) noexcept {
  for (std::size_t c = 0; c < num_classes(); ++c) {
    auto row = classes_.row(c);
    for (std::size_t d : dims_list) {
      assert(d < dims());
      row[d] = 0.0f;
    }
  }
}

std::vector<std::size_t> HdcModel::lowest_k(std::span<const float> values,
                                            std::size_t count) {
  count = std::min(count, values.size());
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + count, idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (values[a] != values[b]) {
                        return values[a] < values[b];
                      }
                      return a < b;
                    });
  idx.resize(count);
  return idx;
}

}  // namespace cyberhd::hdc
