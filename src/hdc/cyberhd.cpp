#include "hdc/cyberhd.hpp"

#include <cassert>
#include <fstream>
#include <stdexcept>

#include "core/io.hpp"

namespace cyberhd::hdc {

namespace {

/// Centered re-bundle of freshly regenerated dimensions: double-precision
/// class sums minus each class's share of the grand mean, written straight
/// into the touched model columns. A raw bundle would hand the fresh
/// dimensions mostly class-common mass — exactly what the variance
/// criterion exists to remove. Shared by the in-memory and streamed regen
/// paths so the arithmetic lives exactly once, which is what keeps their
/// bit-identity contract honest.
class RegenRebundle {
 public:
  RegenRebundle(std::size_t num_classes, std::span<const std::size_t> dims)
      : dims_(dims),
        class_sum_(num_classes * dims.size(), 0.0),
        total_sum_(dims.size(), 0.0) {}

  /// Accumulate one encoded row (only the regenerated entries are read).
  void add_row(std::span<const float> h, std::size_t cls) {
    const std::size_t nd = dims_.size();
    for (std::size_t j = 0; j < nd; ++j) {
      const double v = h[dims_[j]];
      class_sum_[cls * nd + j] += v;
      total_sum_[j] += v;
    }
  }

  /// Write the centered values into the model's touched columns.
  void apply(HdcModel& model, std::span<const int> labels) const {
    const std::size_t nd = dims_.size();
    std::vector<double> counts(model.num_classes(), 0.0);
    for (const int y : labels) counts[static_cast<std::size_t>(y)] += 1.0;
    const double inv_n = 1.0 / static_cast<double>(labels.size());
    for (std::size_t c = 0; c < model.num_classes(); ++c) {
      auto cv = model.class_vector(c);
      for (std::size_t j = 0; j < nd; ++j) {
        cv[dims_[j]] = static_cast<float>(
            class_sum_[c * nd + j] - counts[c] * total_sum_[j] * inv_n);
      }
    }
  }

 private:
  std::span<const std::size_t> dims_;
  std::vector<double> class_sum_;
  std::vector<double> total_sum_;
};

}  // namespace

CyberHdClassifier::CyberHdClassifier(CyberHdConfig config)
    : config_(config) {
  if (config_.dims == 0) {
    throw std::invalid_argument("CyberHdConfig.dims must be positive");
  }
  if (config_.regen_rate < 0.0 || config_.regen_rate >= 1.0) {
    throw std::invalid_argument(
        "CyberHdConfig.regen_rate must be in [0, 1)");
  }
}

void CyberHdClassifier::fit(const core::Matrix& x, std::span<const int> y,
                            std::size_t num_classes) {
  assert(x.rows() == y.size());
  if (x.rows() == 0) {
    throw std::invalid_argument("fit() requires at least one sample");
  }
  num_classes_ = num_classes;
  report_ = {};

  core::Rng rng(config_.seed);
  core::Rng encoder_rng = rng.fork(1);
  core::Rng train_rng = rng.fork(2);
  core::Rng regen_rng = rng.fork(3);

  float lengthscale = config_.lengthscale;
  if (config_.encoder == EncoderKind::kRbf && lengthscale <= 0.0f) {
    core::Rng median_rng = rng.fork(4);
    lengthscale = config_.lengthscale_factor *
                  median_heuristic_lengthscale(x, median_rng);
  }
  encoder_ = make_encoder(config_.encoder, x.cols(), config_.dims,
                          encoder_rng, lengthscale);
  model_ = HdcModel(num_classes, config_.dims);
  regen_.emplace(config_.dims, config_.regen_rate,
                 config_.regen_anneal ? config_.regen_steps : 0);

  core::ThreadPool* pool =
      config_.parallel ? &core::ThreadPool::global() : nullptr;

  Trainer trainer(TrainerConfig{
      .learning_rate = config_.learning_rate,
      .similarity_weighted = config_.similarity_weighted_update,
      .batch_size = config_.batch_size});

  // Streamed fit: encode→train in O(tile x D) chunks instead of holding
  // the n x D encoded training set. Engages only when the tile is actually
  // smaller than the set — otherwise the in-memory path is strictly better
  // (it encodes each sample once per fit, not once per epoch).
  if (config_.train_tile_rows > 0 && config_.train_tile_rows < x.rows()) {
    fit_streamed(x, y, num_classes, trainer, pool, train_rng, regen_rng);
    return;
  }

  // Step (A)/(B): encode the whole training set once, then bundle.
  core::Matrix encoded;
  encoder_->encode_batch(x, encoded, pool);
  report_.peak_encode_rows = encoded.rows();

  trainer.initialize(model_, encoded, y, pool);

  const auto run_epochs = [&](std::size_t count) {
    for (std::size_t e = 0; e < count; ++e) {
      const EpochStats stats = trainer.train_epoch(model_, encoded, y,
                                                   train_rng, pool);
      report_.epoch_accuracy.push_back(stats.accuracy());
      ++report_.epochs;
    }
  };

  // Regeneration cycles: retrain, then drop-and-regenerate (steps D..H),
  // then refresh only the touched columns of the encoded matrix.
  const bool regenerating =
      config_.regen_rate > 0.0 && config_.regen_steps > 0;
  if (regenerating) {
    for (std::size_t s = 0; s < config_.regen_steps; ++s) {
      run_epochs(config_.epochs_per_step);
      const RegenStep step = regen_->step(model_, *encoder_, regen_rng);
      report_.regenerated_per_step.push_back(step.dims.size());
      if (!step.dims.empty()) {
        encoder_->encode_batch_dims(x, step.dims, encoded, pool);
        if (config_.rebundle_after_regen) {
          RegenRebundle rebundle(num_classes, step.dims);
          for (std::size_t i = 0; i < encoded.rows(); ++i) {
            rebundle.add_row(encoded.row(i), static_cast<std::size_t>(y[i]));
          }
          rebundle.apply(model_, y);
        }
      }
    }
  }
  run_epochs(config_.final_epochs);
  report_.effective_dims = regen_->effective_dims();
}

void CyberHdClassifier::fit_streamed(const core::Matrix& x,
                                     std::span<const int> y,
                                     std::size_t num_classes,
                                     const Trainer& trainer,
                                     core::ThreadPool* pool,
                                     core::Rng& train_rng,
                                     core::Rng& regen_rng) {
  const std::size_t n = x.rows();
  const std::size_t tile = config_.train_tile_rows;
  report_.peak_encode_rows = tile;

  // The one resident encode buffer — every phase refills it in place.
  core::Matrix enc_tile(tile, config_.dims);
  std::vector<int> tile_labels(tile);

  // Run `op(i)` for i in [0, m), split across the pool. Per-row encodes
  // are independent, so results never depend on the thread count.
  const auto for_rows = [&](std::size_t m, auto&& op) {
    const auto body = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) op(i);
    };
    if (pool != nullptr) {
      pool->parallel_for(m, body, /*grain=*/16);
    } else {
      body(0, m);
    }
  };
  // Encode `m` samples picked by `pick` into the first m rows of enc_tile.
  const auto encode_tile = [&](std::size_t m, auto&& pick) {
    for_rows(m, [&](std::size_t i) {
      encoder_->encode(x.row(pick(i)), enc_tile.row(i));
    });
  };

  // One-shot bundling, tile by tile. The InitAccumulator routes rows into
  // stripes by global index, so this produces the exact model the
  // in-memory initialize() builds.
  {
    InitAccumulator acc(num_classes, config_.dims, n);
    for (std::size_t t = 0; t < n; t += tile) {
      const std::size_t m = std::min(tile, n - t);
      encode_tile(m, [&](std::size_t i) { return t + i; });
      acc.accumulate(enc_tile, y.subspan(t, m), 0, m, /*row_offset=*/t);
    }
    acc.finish(model_, trainer.config());
  }

  // One adaptive epoch: draw the same visit order train_epoch would, then
  // gather-encode and train tile by tile. With batch_size == 1 this is
  // bit-identical to the in-memory epoch (same order, same encodes, same
  // update sequence); larger batches split at tile boundaries.
  const auto run_streamed_epoch = [&]() {
    const std::vector<std::size_t> order =
        Trainer::epoch_order(n, train_rng, trainer.config().shuffle);
    EpochStats stats;
    stats.samples = n;
    for (std::size_t t = 0; t < n; t += tile) {
      const std::size_t m = std::min(tile, n - t);
      encode_tile(m, [&](std::size_t i) { return order[t + i]; });
      for (std::size_t i = 0; i < m; ++i) {
        tile_labels[i] = y[order[t + i]];
      }
      trainer.train_tile(model_, enc_tile, {tile_labels.data(), m}, stats,
                         pool);
    }
    report_.epoch_accuracy.push_back(stats.accuracy());
    ++report_.epochs;
  };
  const auto run_epochs = [&](std::size_t count) {
    for (std::size_t e = 0; e < count; ++e) run_streamed_epoch();
  };

  const bool regenerating =
      config_.regen_rate > 0.0 && config_.regen_steps > 0;
  if (regenerating) {
    for (std::size_t s = 0; s < config_.regen_steps; ++s) {
      run_epochs(config_.epochs_per_step);
      const RegenStep step = regen_->step(model_, *encoder_, regen_rng);
      report_.regenerated_per_step.push_back(step.dims.size());
      if (!step.dims.empty() && config_.rebundle_after_regen) {
        // Streamed centered re-bundle: recompute only the touched columns
        // tile by tile (the next epochs would see them anyway — there is
        // no cached encoded matrix to refresh) and feed the shared
        // RegenRebundle in the same row order as the in-memory path.
        RegenRebundle rebundle(num_classes, step.dims);
        for (std::size_t t = 0; t < n; t += tile) {
          const std::size_t m = std::min(tile, n - t);
          for_rows(m, [&](std::size_t i) {
            encoder_->encode_dims(x.row(t + i), step.dims, enc_tile.row(i));
          });
          for (std::size_t i = 0; i < m; ++i) {
            rebundle.add_row(enc_tile.row(i),
                             static_cast<std::size_t>(y[t + i]));
          }
        }
        rebundle.apply(model_, y);
      }
    }
  }
  run_epochs(config_.final_epochs);
  report_.effective_dims = regen_->effective_dims();
}

int CyberHdClassifier::predict(std::span<const float> x) const {
  assert(encoder_ != nullptr && "predict() before fit()");
  std::vector<float> encoded(config_.dims);
  encoder_->encode(x, encoded);
  return static_cast<int>(model_.predict_encoded(encoded));
}

void CyberHdClassifier::scores(std::span<const float> x,
                               std::span<float> out) const {
  assert(encoder_ != nullptr && "scores() before fit()");
  assert(out.size() == num_classes_);
  std::vector<float> encoded(config_.dims);
  encoder_->encode(x, encoded);
  model_.similarities(encoded, out);
}

void CyberHdClassifier::scores_batch(const core::Matrix& x,
                                     core::Matrix& out) const {
  assert(encoder_ != nullptr && "scores_batch() before fit()");
  core::ThreadPool* pool =
      config_.parallel ? &core::ThreadPool::global() : nullptr;
  core::Matrix encoded;
  encoder_->encode_batch(x, encoded, pool);
  model_.similarities_batch(encoded, out, pool);
}

std::string CyberHdClassifier::name() const {
  const bool regenerating =
      config_.regen_rate > 0.0 && config_.regen_steps > 0;
  std::string base = regenerating ? "CyberHD" : "BaselineHD";
  return base + "(D=" + std::to_string(config_.dims) + ")";
}

std::size_t CyberHdClassifier::effective_dims() const noexcept {
  return regen_.has_value() ? regen_->effective_dims() : config_.dims;
}

const Encoder& CyberHdClassifier::encoder() const {
  assert(encoder_ != nullptr && "encoder() before fit()");
  return *encoder_;
}

void CyberHdClassifier::encode(std::span<const float> x,
                               std::span<float> h) const {
  assert(encoder_ != nullptr && "encode() before fit()");
  encoder_->encode(x, h);
}

CyberHdConfig baseline_hd_config(std::size_t dims, std::uint64_t seed) {
  CyberHdConfig cfg;
  cfg.dims = dims;
  cfg.regen_rate = 0.0;
  cfg.regen_steps = 0;
  // Comparable total epoch budget to CyberHD's default schedule (57 + 10)
  // so accuracy comparisons isolate the effect of regeneration; the
  // adaptive trainer plateaus well before this point.
  cfg.epochs_per_step = 0;
  cfg.final_epochs = 50;
  cfg.seed = seed;
  return cfg;
}

// ---- persistence -------------------------------------------------------------

namespace {
constexpr std::uint64_t kFormatVersion = 1;
}

void CyberHdClassifier::save(std::ostream& out) const {
  assert(encoder_ != nullptr && "save() before fit()");
  core::io::write_tag(out, "CYHD");
  core::io::write_u64(out, kFormatVersion);
  // Config (inference-relevant and refit-relevant fields).
  core::io::write_u64(out, config_.dims);
  core::io::write_u64(out, static_cast<std::uint64_t>(config_.encoder));
  core::io::write_f32(out, static_cast<float>(config_.regen_rate));
  core::io::write_u64(out, config_.regen_steps);
  core::io::write_u64(out, config_.regen_anneal ? 1 : 0);
  core::io::write_u64(out, config_.epochs_per_step);
  core::io::write_u64(out, config_.final_epochs);
  core::io::write_f32(out, config_.learning_rate);
  core::io::write_u64(out, config_.seed);
  // Trained state.
  core::io::write_u64(out, num_classes_);
  core::io::write_u64(out, regen_ ? regen_->total_regenerated() : 0);
  core::io::write_u64(out, regen_ ? regen_->steps() : 0);
  encoder_->serialize(out);
  core::io::write_u64(out, model_.num_classes());
  core::io::write_u64(out, model_.dims());
  core::io::write_f32_array(
      out, {model_.weights().data(), model_.weights().size()});
}

void CyberHdClassifier::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save(out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

CyberHdClassifier CyberHdClassifier::load(std::istream& in) {
  core::io::expect_tag(in, "CYHD");
  const std::uint64_t version = core::io::read_u64(in);
  if (version != kFormatVersion) {
    throw std::runtime_error("unsupported CyberHD format version " +
                             std::to_string(version));
  }
  CyberHdConfig cfg;
  cfg.dims = core::io::read_u64(in);
  const std::uint64_t encoder_kind = core::io::read_u64(in);
  if (encoder_kind > static_cast<std::uint64_t>(EncoderKind::kIdLevel)) {
    throw std::runtime_error("unknown encoder kind id " +
                             std::to_string(encoder_kind));
  }
  cfg.encoder = static_cast<EncoderKind>(encoder_kind);
  cfg.regen_rate = core::io::read_f32(in);
  cfg.regen_steps = core::io::read_u64(in);
  cfg.regen_anneal = core::io::read_u64(in) != 0;
  cfg.epochs_per_step = core::io::read_u64(in);
  cfg.final_epochs = core::io::read_u64(in);
  cfg.learning_rate = core::io::read_f32(in);
  cfg.seed = core::io::read_u64(in);

  CyberHdClassifier model(cfg);
  model.num_classes_ = core::io::read_u64(in);
  const std::uint64_t total_regenerated = core::io::read_u64(in);
  const std::uint64_t regen_steps_done = core::io::read_u64(in);
  model.encoder_ = deserialize_encoder(in);
  if (model.encoder_->kind() != cfg.encoder) {
    throw std::runtime_error(
        "encoder kind mismatch: config says " +
        std::string(to_string(cfg.encoder)) + ", payload holds " +
        std::string(to_string(model.encoder_->kind())));
  }
  const std::uint64_t k = core::io::read_u64(in);
  const std::uint64_t dims = core::io::read_u64(in);
  const std::vector<float> weights = core::io::read_f32_array(in);
  if (dims != cfg.dims || weights.size() != k * dims ||
      model.encoder_->output_dim() != dims) {
    throw std::runtime_error("inconsistent CyberHD payload");
  }
  model.model_ = HdcModel(k, dims);
  std::copy(weights.begin(), weights.end(), model.model_.weights().data());
  model.regen_.emplace(cfg.dims, cfg.regen_rate,
                       cfg.regen_anneal ? cfg.regen_steps : 0);
  model.regen_->restore(total_regenerated, regen_steps_done);
  return model;
}

CyberHdClassifier CyberHdClassifier::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return load(in);
}

}  // namespace cyberhd::hdc
