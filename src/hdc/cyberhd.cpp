#include "hdc/cyberhd.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/io.hpp"

namespace cyberhd::hdc {

CyberHdClassifier::CyberHdClassifier(CyberHdConfig config)
    : config_(config) {
  if (config_.dims == 0) {
    throw std::invalid_argument("CyberHdConfig.dims must be positive");
  }
  if (config_.regen_rate < 0.0 || config_.regen_rate >= 1.0) {
    throw std::invalid_argument(
        "CyberHdConfig.regen_rate must be in [0, 1)");
  }
}

void CyberHdClassifier::fit(const core::Matrix& x, std::span<const int> y,
                            std::size_t num_classes) {
  assert(x.rows() == y.size());
  if (x.rows() == 0) {
    throw std::invalid_argument("fit() requires at least one sample");
  }
  num_classes_ = num_classes;
  report_ = {};

  core::Rng rng(config_.seed);
  core::Rng encoder_rng = rng.fork(1);
  core::Rng train_rng = rng.fork(2);
  core::Rng regen_rng = rng.fork(3);

  float lengthscale = config_.lengthscale;
  if (config_.encoder == EncoderKind::kRbf && lengthscale <= 0.0f) {
    core::Rng median_rng = rng.fork(4);
    lengthscale = config_.lengthscale_factor *
                  median_heuristic_lengthscale(x, median_rng);
  }
  encoder_ = make_encoder(config_.encoder, x.cols(), config_.dims,
                          encoder_rng, lengthscale);
  model_ = HdcModel(num_classes, config_.dims);
  regen_.emplace(config_.dims, config_.regen_rate,
                 config_.regen_anneal ? config_.regen_steps : 0);

  Trainer trainer(TrainerConfig{
                      .learning_rate = config_.learning_rate,
                      .similarity_weighted = config_.similarity_weighted_update,
                      .batch_size = config_.batch_size},
                  exec());

  // The schedule control flow lives exactly once, in the driver; the two
  // fit paths below differ only in the phase callbacks they plug in.
  const ScheduleDriver driver(
      ScheduleConfig{.regen_rate = config_.regen_rate,
                     .regen_steps = config_.regen_steps,
                     .epochs_per_step = config_.epochs_per_step,
                     .final_epochs = config_.final_epochs},
      *regen_, model_, *encoder_, regen_rng);

  // Streamed fit: encode→train in O(tile x D) chunks instead of holding
  // the n x D encoded training set. Engages only when the tile is actually
  // smaller than the set — otherwise the in-memory path is strictly better
  // (it encodes each sample once per fit, not once per epoch).
  if (config_.train_tile_rows > 0 && config_.train_tile_rows < x.rows()) {
    fit_streamed(x, y, num_classes, trainer, driver, train_rng);
  } else {
    fit_in_memory(x, y, num_classes, trainer, driver, train_rng);
  }

  // (Re)fitting replaces the encoder, so every cached encoding is stale;
  // re-arm the serving cache at the env-configured capacity.
  set_encode_cache(EncodeCache::capacity_from_env());
}

void CyberHdClassifier::fit_in_memory(const core::Matrix& x,
                                      std::span<const int> y,
                                      std::size_t num_classes,
                                      const Trainer& trainer,
                                      const ScheduleDriver& driver,
                                      core::Rng& train_rng) {
  const core::ExecutionContext& exec_ctx = exec();
  // Encode the whole training set once; every phase reads from it.
  core::Matrix encoded;
  encoder_->encode_batch(x, encoded, exec_ctx);
  report_.peak_encode_rows = encoded.rows();

  SchedulePhases phases;
  phases.bundle = [&] { trainer.initialize(model_, encoded, y); };
  phases.run_epoch = [&] {
    return trainer.train_epoch(model_, encoded, y, train_rng);
  };
  phases.refresh_dims = [&](std::span<const std::size_t> dims) {
    // Refresh only the touched columns of the cached encoded matrix, then
    // (when configured) re-bundle them into the model.
    encoder_->encode_batch_dims(x, dims, encoded, exec_ctx);
    if (config_.rebundle_after_regen) {
      RegenRebundle rebundle(num_classes, dims);
      for (std::size_t i = 0; i < encoded.rows(); ++i) {
        rebundle.add_row(encoded.row(i), static_cast<std::size_t>(y[i]));
      }
      rebundle.apply(model_, y);
    }
  };
  driver.run(report_, phases);
}

void CyberHdClassifier::fit_streamed(const core::Matrix& x,
                                     std::span<const int> y,
                                     std::size_t num_classes,
                                     const Trainer& trainer,
                                     const ScheduleDriver& driver,
                                     core::Rng& train_rng) {
  const core::ExecutionContext& exec_ctx = exec();
  const std::size_t n = x.rows();
  const std::size_t tile = config_.train_tile_rows;
  report_.peak_encode_rows = tile;

  // The one resident encode buffer — every phase refills it in place.
  core::Matrix enc_tile(tile, config_.dims);
  std::vector<int> tile_labels(tile);

  // Run `op(i)` for i in [0, m), split across the context's pool. Per-row
  // encodes are independent, so results never depend on the thread count.
  const auto for_rows = [&, this](std::size_t m, auto&& op) {
    exec_ctx.parallel_for(
        m,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) op(i);
        },
        /*grain=*/16);
  };
  // Both encode phases ride the GEMM-shaped tile path (bit-identical to
  // per-row encodes): the bundle phase tiles contiguous ranges of x
  // directly; the shuffled epoch phase gathers its picks' raw F-float
  // rows into one contiguous block first — the gather is tiny next to
  // the D x F encode it batches.
  core::Matrix raw_tile(tile, x.cols());
  const auto encode_range = [&](std::size_t t, std::size_t m) {
    encoder_->encode_tile(x, t, t + m, enc_tile.data(), config_.dims,
                          exec_ctx);
  };
  const auto encode_gathered = [&](std::size_t m, auto&& pick) {
    for (std::size_t i = 0; i < m; ++i) {
      const auto src = x.row(pick(i));
      std::copy(src.begin(), src.end(), raw_tile.row(i).begin());
    }
    encoder_->encode_tile(raw_tile, 0, m, enc_tile.data(), config_.dims,
                          exec_ctx);
  };

  SchedulePhases phases;
  // One-shot bundling, tile by tile. The InitAccumulator routes rows into
  // stripes by global index, so this produces the exact model the
  // in-memory initialize() builds.
  phases.bundle = [&] {
    InitAccumulator acc(num_classes, config_.dims, n);
    for (std::size_t t = 0; t < n; t += tile) {
      const std::size_t m = std::min(tile, n - t);
      encode_range(t, m);
      acc.accumulate(enc_tile, y.subspan(t, m), 0, m, /*row_offset=*/t);
    }
    acc.finish(model_, trainer.config());
  };
  // One adaptive epoch: draw the same visit order train_epoch would, then
  // gather-encode and train tile by tile. With batch_size == 1 this is
  // bit-identical to the in-memory epoch (same order, same encodes, same
  // update sequence); larger batches split at tile boundaries.
  phases.run_epoch = [&] {
    const std::vector<std::size_t> order =
        Trainer::epoch_order(n, train_rng, trainer.config().shuffle);
    EpochStats stats;
    stats.samples = n;
    for (std::size_t t = 0; t < n; t += tile) {
      const std::size_t m = std::min(tile, n - t);
      encode_gathered(m, [&](std::size_t i) { return order[t + i]; });
      for (std::size_t i = 0; i < m; ++i) {
        tile_labels[i] = y[order[t + i]];
      }
      trainer.train_tile(model_, enc_tile, {tile_labels.data(), m}, stats);
    }
    return stats;
  };
  phases.refresh_dims = [&](std::span<const std::size_t> dims) {
    // Streamed centered re-bundle: recompute only the touched columns
    // tile by tile (the next epochs would see them anyway — there is no
    // cached encoded matrix to refresh) and feed the shared RegenRebundle
    // in the same row order as the in-memory path.
    if (!config_.rebundle_after_regen) return;
    RegenRebundle rebundle(num_classes, dims);
    for (std::size_t t = 0; t < n; t += tile) {
      const std::size_t m = std::min(tile, n - t);
      for_rows(m, [&](std::size_t i) {
        encoder_->encode_dims(x.row(t + i), dims, enc_tile.row(i));
      });
      for (std::size_t i = 0; i < m; ++i) {
        rebundle.add_row(enc_tile.row(i),
                         static_cast<std::size_t>(y[t + i]));
      }
    }
    rebundle.apply(model_, y);
  };
  driver.run(report_, phases);
}

int CyberHdClassifier::predict(std::span<const float> x) const {
  assert(encoder_ != nullptr && "predict() before fit()");
  std::vector<float> encoded(config_.dims);
  encoder_->encode(x, encoded);
  return static_cast<int>(model_.predict_encoded(encoded));
}

void CyberHdClassifier::scores(std::span<const float> x,
                               std::span<float> out) const {
  assert(encoder_ != nullptr && "scores() before fit()");
  assert(out.size() == num_classes_);
  std::vector<float> encoded(config_.dims);
  encoder_->encode(x, encoded);
  model_.similarities(encoded, out);
}

std::size_t CyberHdClassifier::preferred_batch_rows(
    const core::Matrix&) const {
  return exec().plan_serving(config_.dims).batch_rows;
}

EncodedBatch CyberHdClassifier::encode_block(const core::Matrix& x,
                                             std::size_t begin,
                                             std::size_t end,
                                             core::Matrix& storage) const {
  assert(encoder_ != nullptr && "encode_block() before fit()");
  return encode_block_cached(*encoder_, encode_cache_.get(), x, begin, end,
                             storage, exec());
}

void CyberHdClassifier::scores_encoded(const EncodedBatch& h,
                                       core::Matrix& out) const {
  model_.similarities_batch(h, out, exec());
}

void CyberHdClassifier::scores_block(const core::Matrix& x,
                                     std::size_t begin, std::size_t end,
                                     core::Matrix& out) const {
  assert(encoder_ != nullptr && "scores_batch() before fit()");
  const std::size_t m = end - begin;
  if (m == 0) return;
  // The staging buffer is thread_local so the driver's block loop reuses
  // one allocation per calling thread without breaking const-concurrency.
  thread_local core::Matrix staging;
  if (encode_cache_ != nullptr) {
    // Zero-copy serving: stage 1 PINS cache hits in the ring instead of
    // memcpying them out and encodes only the misses into staging; stage 2
    // streams the resulting row-pointer view through the gather tile
    // kernel — bit-identical to the contiguous path over the same rows.
    ScoringWorkspace& ws = ScoringWorkspace::tl();
    encode_cache_->encode_rows_borrowed(*encoder_, x, begin, end, staging,
                                        ws, exec());
    const EncodedRows rows(ws.f32_rows.data(), m, encoder_->output_dim());
    model_.similarities_into(rows, out.row(begin).data(), exec());
    ws.borrow.release();
    return;
  }
  const EncodedBatch encoded = encode_block(x, begin, end, staging);
  model_.similarities_into(encoded, out.row(begin).data(), exec());
}

void CyberHdClassifier::set_encode_cache(std::size_t capacity_rows,
                                         std::size_t shards) {
  if (capacity_rows == 0 || encoder_ == nullptr) {
    encode_cache_.reset();
    return;
  }
  encode_cache_ = std::make_unique<EncodeCache>(
      encoder_->input_dim(), encoder_->output_dim(), capacity_rows, shards);
}

std::string CyberHdClassifier::name() const {
  const bool regenerating =
      config_.regen_rate > 0.0 && config_.regen_steps > 0;
  std::string base = regenerating ? "CyberHD" : "BaselineHD";
  return base + "(D=" + std::to_string(config_.dims) + ")";
}

std::size_t CyberHdClassifier::effective_dims() const noexcept {
  return regen_.has_value() ? regen_->effective_dims() : config_.dims;
}

const Encoder& CyberHdClassifier::encoder() const {
  assert(encoder_ != nullptr && "encoder() before fit()");
  return *encoder_;
}

void CyberHdClassifier::encode(std::span<const float> x,
                               std::span<float> h) const {
  assert(encoder_ != nullptr && "encode() before fit()");
  encoder_->encode(x, h);
}

CyberHdConfig baseline_hd_config(std::size_t dims, std::uint64_t seed) {
  CyberHdConfig cfg;
  cfg.dims = dims;
  cfg.regen_rate = 0.0;
  cfg.regen_steps = 0;
  // Comparable total epoch budget to CyberHD's default schedule (57 + 10)
  // so accuracy comparisons isolate the effect of regeneration; the
  // adaptive trainer plateaus well before this point.
  cfg.epochs_per_step = 0;
  cfg.final_epochs = 50;
  cfg.seed = seed;
  return cfg;
}

// ---- persistence -------------------------------------------------------------

namespace {

// Version 2 (current): "CYHD" + version word, then CRC32C-checksummed
// sections — CFG0 (config + trained-state scalars), ENC0 (the encoder
// payload), and the class-hypervector matrix as either MDL0 (one
// buffered section) or MDLC (the same logical bytes streamed through
// fixed-size checksummed chunks; chosen when the payload outgrows the
// chunk size, so writer memory stays bounded). Version 1 is the same
// field sequence without section framing or checksums; load() still
// accepts everything.
constexpr std::uint64_t kFormatVersion = 2;

/// The scalar header fields, shared between the v1 inline layout and the
/// v2 CFG0 section (identical field order — v2 only adds framing).
struct SavedHeader {
  CyberHdConfig cfg;
  std::uint64_t num_classes = 0;
  std::uint64_t total_regenerated = 0;
  std::uint64_t regen_steps_done = 0;
};

void write_header_fields(std::ostream& out, const SavedHeader& h) {
  core::io::write_u64(out, h.cfg.dims);
  core::io::write_u64(out, static_cast<std::uint64_t>(h.cfg.encoder));
  core::io::write_f32(out, static_cast<float>(h.cfg.regen_rate));
  core::io::write_u64(out, h.cfg.regen_steps);
  core::io::write_u64(out, h.cfg.regen_anneal ? 1 : 0);
  core::io::write_u64(out, h.cfg.epochs_per_step);
  core::io::write_u64(out, h.cfg.final_epochs);
  core::io::write_f32(out, h.cfg.learning_rate);
  core::io::write_u64(out, h.cfg.seed);
  core::io::write_u64(out, h.num_classes);
  core::io::write_u64(out, h.total_regenerated);
  core::io::write_u64(out, h.regen_steps_done);
}

SavedHeader read_header_fields(std::istream& in) {
  SavedHeader h;
  h.cfg.dims = core::io::read_u64(in);
  const std::uint64_t encoder_kind = core::io::read_u64(in);
  if (encoder_kind > static_cast<std::uint64_t>(EncoderKind::kIdLevel)) {
    throw std::runtime_error("unknown encoder kind id " +
                             std::to_string(encoder_kind));
  }
  h.cfg.encoder = static_cast<EncoderKind>(encoder_kind);
  h.cfg.regen_rate = core::io::read_f32(in);
  h.cfg.regen_steps = core::io::read_u64(in);
  h.cfg.regen_anneal = core::io::read_u64(in) != 0;
  h.cfg.epochs_per_step = core::io::read_u64(in);
  h.cfg.final_epochs = core::io::read_u64(in);
  h.cfg.learning_rate = core::io::read_f32(in);
  h.cfg.seed = core::io::read_u64(in);
  h.num_classes = core::io::read_u64(in);
  h.total_regenerated = core::io::read_u64(in);
  h.regen_steps_done = core::io::read_u64(in);
  return h;
}

}  // namespace

void CyberHdClassifier::save(std::ostream& out,
                             std::size_t model_chunk_bytes) const {
  assert(encoder_ != nullptr && "save() before fit()");
  if (model_chunk_bytes == 0 ||
      model_chunk_bytes > core::io::kMaxSectionChunkBytes) {
    throw std::invalid_argument("save(): model_chunk_bytes out of range");
  }
  core::io::write_tag(out, "CYHD");
  core::io::write_u64(out, kFormatVersion);
  {
    std::ostringstream cfg;
    write_header_fields(
        cfg, SavedHeader{.cfg = config_,
                         .num_classes = num_classes_,
                         .total_regenerated =
                             regen_ ? regen_->total_regenerated() : 0,
                         .regen_steps_done = regen_ ? regen_->steps() : 0});
    core::io::write_section(out, "CFG0", cfg.str());
  }
  {
    std::ostringstream enc;
    encoder_->serialize(enc);
    core::io::write_section(out, "ENC0", enc.str());
  }
  // Model payload (identical logical bytes in both layouts):
  //   u64 num_classes | u64 dims | u64 count | count f32 weights.
  const std::size_t payload_bytes =
      3 * sizeof(std::uint64_t) + model_.weights().size() * sizeof(float);
  if (payload_bytes <= model_chunk_bytes) {
    std::ostringstream mdl;
    core::io::write_u64(mdl, model_.num_classes());
    core::io::write_u64(mdl, model_.dims());
    core::io::write_f32_array(
        mdl, {model_.weights().data(), model_.weights().size()});
    core::io::write_section(out, "MDL0", mdl.str());
    return;
  }
  // Chunked layout: the weights stream straight out of the model through
  // one chunk-sized buffer — nothing proportional to D x classes is ever
  // materialized on the way to disk.
  core::io::write_tag(out, "MDLC");
  core::io::write_u64(out, model_chunk_bytes);
  core::io::ChunkedSectionWriter writer(out, model_chunk_bytes);
  std::ostream chunked(&writer);
  core::io::write_u64(chunked, model_.num_classes());
  core::io::write_u64(chunked, model_.dims());
  core::io::write_u64(chunked, model_.weights().size());
  chunked.write(
      reinterpret_cast<const char*>(model_.weights().data()),
      static_cast<std::streamsize>(model_.weights().size() * sizeof(float)));
  writer.finish();
}

void CyberHdClassifier::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save(out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

CyberHdClassifier CyberHdClassifier::load(std::istream& in) {
  core::io::expect_tag(in, "CYHD");
  const std::uint64_t version = core::io::read_u64(in);
  if (version != 1 && version != 2) {
    throw std::runtime_error("unsupported CyberHD format version " +
                             std::to_string(version));
  }

  // Shared assembly from parsed header + encoder + a stream positioned at
  // the model payload; field semantics are identical across versions.
  const auto assemble = [](SavedHeader h, std::unique_ptr<Encoder> enc,
                           std::istream& mdl_in) -> CyberHdClassifier {
    CyberHdClassifier model(h.cfg);
    model.num_classes_ = h.num_classes;
    if (enc->kind() != h.cfg.encoder) {
      throw std::runtime_error(
          "encoder kind mismatch: config says " +
          std::string(to_string(h.cfg.encoder)) + ", payload holds " +
          std::string(to_string(enc->kind())));
    }
    model.encoder_ = std::move(enc);
    const std::uint64_t k = core::io::read_u64(mdl_in);
    const std::uint64_t dims = core::io::read_u64(mdl_in);
    const std::uint64_t count = core::io::read_u64(mdl_in);
    if (count > (1ULL << 32)) {
      throw std::runtime_error("implausible array size");
    }
    // k must also match the header's class count: the staged scores_batch
    // driver sizes outputs from the header while stage 2 writes one score
    // per *model* class, so a mismatch would become an out-of-bounds
    // write at serving time, not a scoring quirk.
    if (k == 0 || k != h.num_classes || dims != h.cfg.dims ||
        count != k * dims || model.encoder_->output_dim() != dims) {
      throw std::runtime_error("inconsistent CyberHD payload");
    }
    // Read straight into the model's storage: no transient full-size
    // weight vector, so peak load memory is the model itself plus (for
    // the chunked layout) one chunk buffer.
    model.model_ = HdcModel(k, dims);
    mdl_in.read(
        reinterpret_cast<char*>(model.model_.weights().data()),
        static_cast<std::streamsize>(count * sizeof(float)));
    if (!mdl_in) {
      throw std::runtime_error("truncated stream (model weights)");
    }
    model.regen_.emplace(h.cfg.dims, h.cfg.regen_rate,
                         h.cfg.regen_anneal ? h.cfg.regen_steps : 0);
    model.regen_->restore(h.total_regenerated, h.regen_steps_done);
    // A restored model serves immediately: arm the encode cache exactly
    // as a fresh fit() would.
    model.set_encode_cache(EncodeCache::capacity_from_env());
    return model;
  };

  if (version == 2) {
    // Checksummed sections: each payload is CRC-verified before any field
    // of it is parsed, so a flipped byte fails with a section-naming
    // checksum error instead of deserializing garbage.
    std::istringstream cfg_in(core::io::read_section(in, "CFG0"));
    SavedHeader header = read_header_fields(cfg_in);
    std::istringstream enc_in(core::io::read_section(in, "ENC0"));
    std::unique_ptr<Encoder> enc = deserialize_encoder(enc_in);
    // The model section carries either layout: MDL0 (one buffered,
    // checksummed section) or MDLC (the same bytes streamed through
    // fixed-size checksummed chunks, verified chunk by chunk as the
    // weights flow directly into the model). The tag is consumed once and
    // branched on, so non-seekable streams load fine.
    const std::string mdl_tag = core::io::read_tag(in);
    if (mdl_tag == "MDLC") {
      const std::uint64_t chunk_bytes = core::io::read_u64(in);
      core::io::ChunkedSectionReader reader(in, "MDLC", chunk_bytes);
      std::istream chunked(&reader);
      // Rethrow the reader's section-naming errors instead of letting
      // istream swallow them into badbit.
      chunked.exceptions(std::ios::badbit);
      CyberHdClassifier model =
          assemble(std::move(header), std::move(enc), chunked);
      // The chunk stream must end exactly at its terminator — trailing
      // bytes or a missing terminator mean the payload and its header
      // disagree.
      if (chunked.peek() != std::istream::traits_type::eof() ||
          !reader.finished()) {
        throw std::runtime_error("inconsistent CyberHD payload (MDLC)");
      }
      return model;
    }
    if (mdl_tag != "MDL0") {
      throw std::runtime_error("bad model section tag, expected MDL0 or "
                               "MDLC");
    }
    std::istringstream mdl_in(core::io::read_section_body(in, "MDL0"));
    return assemble(std::move(header), std::move(enc), mdl_in);
  }
  // Version 1: the same fields inline, no checksums.
  SavedHeader header = read_header_fields(in);
  std::unique_ptr<Encoder> enc = deserialize_encoder(in);
  return assemble(std::move(header), std::move(enc), in);
}

CyberHdClassifier CyberHdClassifier::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return load(in);
}

}  // namespace cyberhd::hdc
