// Quantized HDC inference — the deployment path of Table I and Fig. 5.
//
// After training in float32, the class hypervectors are post-training
// quantized to b bits (b in {32, 16, 8, 4, 2, 1}); queries are quantized on
// the fly at the same width. The 1-bit path packs bipolar vectors into
// 64-bit words and scores with XOR/popcount — the representation whose
// holographic redundancy gives the paper's 12.9x robustness advantage and
// the FPGA its efficiency at low bitwidths. Bitwidths 2..8 score through
// the runtime-dispatched int8 dot kernel (core/kernels/) against cached
// int8 mirrors of the class levels.
//
// The raw quantized storage is exposed so fault/bitflip.cpp can flip bits
// *in the representation that would actually sit in deployed memory*.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/bitpack.hpp"
#include "core/classifier.hpp"
#include "core/exec/execution_context.hpp"
#include "core/quantize.hpp"
#include "hdc/cyberhd.hpp"
#include "hdc/encode_cache.hpp"
#include "hdc/encoded_batch.hpp"
#include "hdc/model.hpp"

namespace cyberhd::hdc {

/// A trained associative memory quantized to a fixed bitwidth.
class QuantizedHdcModel {
 public:
  /// Quantize `model`'s class hypervectors to `bits` bits.
  /// Contract: `bits` must be one of {1, 2, 4, 8, 16, 32}; anything else
  /// throws std::invalid_argument. bits == 1 stores sign-packed bipolar
  /// vectors (PackedBits); bits > 1 stores level-coded QuantizedVectors.
  QuantizedHdcModel(const HdcModel& model, int bits);

  /// The bitwidth this model was quantized to (one of {1,2,4,8,16,32}).
  int bits() const noexcept { return bits_; }
  /// Hypervector dimensionality D (unchanged by quantization).
  std::size_t dims() const noexcept { return dims_; }
  std::size_t num_classes() const noexcept;

  /// Cosine similarities of a float-encoded query against every class,
  /// computed entirely in the quantized domain (the query is quantized at
  /// this model's bitwidth first). Thread-safe for concurrent const calls.
  /// Preconditions: h.size() == dims(), scores.size() == num_classes().
  void similarities(std::span<const float> h,
                    std::span<float> scores) const;

  /// argmax-of-similarity prediction for a float-encoded query.
  std::size_t predict_encoded(std::span<const float> h) const;

  /// Memory footprint of the class hypervectors in bits (dims * classes *
  /// bitwidth) — what the hardware model prices.
  std::size_t storage_bits() const noexcept;

  /// Rebuild the scoring caches (int8 level mirrors + class norms) from the
  /// raw class storage. Call after mutating level_classes() in place — the
  /// fault injector does; in-place edits of packed_classes() need no resync
  /// (the 1-bit path scores straight off the packed words).
  void resync();

  // -- raw storage for fault injection --------------------------------------
  // Exactly one of the two stores is populated, selected by bits():
  // packed_classes() when bits() == 1, level_classes() when bits() > 1.
  // The other is empty — callers must branch on bits() before touching them.
  // Writers of level_classes() must call resync() afterwards.
  /// Packed bipolar class vectors; only valid when bits() == 1.
  std::vector<core::PackedBits>& packed_classes() { return packed_; }
  const std::vector<core::PackedBits>& packed_classes() const {
    return packed_;
  }
  /// Level-coded class vectors; only valid when bits() > 1.
  std::vector<core::QuantizedVector>& level_classes() { return levels_; }
  const std::vector<core::QuantizedVector>& level_classes() const {
    return levels_;
  }

 private:
  int bits_;
  std::size_t dims_;
  std::vector<core::PackedBits> packed_;        // bits == 1
  std::vector<core::QuantizedVector> levels_;   // bits > 1
  // Scoring caches for bits in {2, 4, 8}: class levels mirrored as int8 for
  // the SIMD dot, plus each class's sum of squared levels (exact integers
  // held in double, matching cosine_quantized()'s accumulator).
  std::vector<std::vector<std::int8_t>> levels_i8_;
  std::vector<double> level_sumsq_;
};

/// End-to-end quantized classifier: a trained CyberHD's encoder plus its
/// quantized associative memory. This is the artifact one would flash onto
/// an edge device.
class QuantizedCyberHd final : public core::Classifier {
 public:
  /// Snapshot a trained classifier at the given bitwidth. The encoder is
  /// cloned, so the source may be discarded or retrained afterwards.
  /// Batch calls inherit the source's execution context (the process
  /// context when config().parallel, the serial one otherwise).
  QuantizedCyberHd(const CyberHdClassifier& trained, int bits);

  /// fit() is not supported: quantization is post-training by design.
  void fit(const core::Matrix& x, std::span<const int> y,
           std::size_t num_classes) override;
  std::size_t num_classes() const noexcept override {
    return model_.num_classes();
  }
  int predict(std::span<const float> x) const override;
  /// Quantized-domain cosine similarities of one raw sample.
  void scores(std::span<const float> x, std::span<float> out) const override;

  // -- stage-split serving pipeline (mirrors CyberHdClassifier) --------------

  /// Sub-batch size of the staged scores_batch driver: the execution
  /// context's L3-aware serving plan over the encoded width D.
  std::size_t preferred_batch_rows(const core::Matrix& x) const override;
  /// One planned block: cached encode of rows [begin, end), then
  /// quantized scoring of the EncodedBatch view into the block's rows of
  /// `out`, split across the execution context's pool. predict_batch
  /// (from core::Classifier) rides the same driver.
  void scores_block(const core::Matrix& x, std::size_t begin,
                    std::size_t end, core::Matrix& out) const override;
  /// Stage 2 alone: quantized-domain scores of an already-encoded view;
  /// `out` is resized to h.rows() x num_classes().
  void scores_encoded(const EncodedBatch& h, core::Matrix& out) const;

  /// Resize the serving encode cache (0 disables; `shards` = 0 picks the
  /// CYBERHD_CACHE_SHARDS / topology default). The constructor installs
  /// the CYBERHD_ENCODE_CACHE env default; the quantized snapshot owns
  /// its own cache — its cloned encoder's outputs are what it replays.
  /// Resets hit/miss statistics.
  void set_encode_cache(std::size_t capacity_rows, std::size_t shards = 0);
  /// The serving encode cache, or nullptr when disabled.
  EncodeCache* encode_cache() const noexcept { return encode_cache_.get(); }

  std::string name() const override;

  int bits() const noexcept { return model_.bits(); }
  QuantizedHdcModel& model() noexcept { return model_; }
  const QuantizedHdcModel& model() const noexcept { return model_; }

 private:
  std::unique_ptr<Encoder> encoder_;
  QuantizedHdcModel model_;
  core::ExecutionContext exec_;
  std::unique_ptr<EncodeCache> encode_cache_;
};

}  // namespace cyberhd::hdc
