// Quantized HDC inference — the deployment path of Table I and Fig. 5.
//
// After training in float32, the class hypervectors are post-training
// quantized to b bits (b in {32, 16, 8, 4, 2, 1}); queries are quantized on
// the fly at the same width. The 1-bit path packs bipolar vectors into
// 64-bit words and scores with XOR/popcount — the representation whose
// holographic redundancy gives the paper's 12.9x robustness advantage and
// the FPGA its efficiency at low bitwidths. Bitwidths 2..8 score through
// the runtime-dispatched int8 dot kernel (core/kernels/) against cached
// int8 mirrors of the class levels.
//
// The raw quantized storage is exposed so fault/bitflip.cpp can flip bits
// *in the representation that would actually sit in deployed memory*.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/bitpack.hpp"
#include "core/classifier.hpp"
#include "core/exec/execution_context.hpp"
#include "core/quantize.hpp"
#include "hdc/cyberhd.hpp"
#include "hdc/encode_cache.hpp"
#include "hdc/encoded_batch.hpp"
#include "hdc/model.hpp"

namespace cyberhd::hdc {

/// A trained associative memory quantized to a fixed bitwidth.
class QuantizedHdcModel {
 public:
  /// Quantize `model`'s class hypervectors to `bits` bits.
  /// Contract: `bits` must be one of {1, 2, 4, 8, 16, 32}; anything else
  /// throws std::invalid_argument. bits == 1 stores sign-packed bipolar
  /// vectors (PackedBits); bits > 1 stores level-coded QuantizedVectors.
  QuantizedHdcModel(const HdcModel& model, int bits);

  /// The bitwidth this model was quantized to (one of {1,2,4,8,16,32}).
  int bits() const noexcept { return bits_; }
  /// Hypervector dimensionality D (unchanged by quantization).
  std::size_t dims() const noexcept { return dims_; }
  std::size_t num_classes() const noexcept;

  /// Cosine similarities of a float-encoded query against every class,
  /// computed entirely in the quantized domain (the query is quantized at
  /// this model's bitwidth first). Thread-safe for concurrent const calls.
  /// Preconditions: h.size() == dims(), scores.size() == num_classes().
  void similarities(std::span<const float> h,
                    std::span<float> scores) const;

  // -- packed-domain batch scoring (bits <= 8) -------------------------------
  // The serving pipeline quantizes each row ONCE at encode time (pack_row)
  // and scores whole packed tiles against the class block through the
  // integer tile kernels — no float detour, 1-8 bits moved per dimension.
  // Row for row bit-identical to quantize-then-similarities(): the tile
  // dots are exact integers on every backend and the final cosine
  // expression is the same.

  /// Bytes one packed query row occupies (PackedBatch::row_bytes at this
  /// model's width). Only meaningful when bits() <= 8.
  std::size_t packed_row_bytes() const noexcept {
    return PackedBatch::row_bytes(dims_, bits_);
  }
  /// Quantize a float-encoded query into its packed form: dims() int8
  /// levels (bits 2..8) or ceil(dims/64) packed sign words (bits == 1),
  /// written to `dst` (packed_row_bytes() bytes). Thread-safe.
  /// Precondition: bits() <= 8.
  void pack_row(std::span<const float> h, unsigned char* dst) const;
  /// Quantized-domain cosine scores of a packed tile: writes
  /// h.rows() x num_classes() floats to `out` (row-major, stride
  /// num_classes()), split across `exec`'s pool. Thread-safe.
  /// Preconditions: bits() <= 8, h.bits() == bits(), h.dims() == dims().
  void similarities_packed(const PackedBatch& h, float* out,
                           const core::ExecutionContext& exec) const;
  /// Zero-copy sibling: the same scoring over an INDIRECT packed row view
  /// (rows borrowed from the encode cache ring, staging rows, any mix),
  /// streamed through the gather tile kernels. Bit-identical to the
  /// contiguous overload over the same row bytes — the gather kernels
  /// share the contiguous kernels' register-blocked inner body.
  void similarities_packed(const PackedRows& h, float* out,
                           const core::ExecutionContext& exec) const;

  /// argmax-of-similarity prediction for a float-encoded query.
  std::size_t predict_encoded(std::span<const float> h) const;

  /// Memory footprint of the class hypervectors in bits (dims * classes *
  /// bitwidth) — what the hardware model prices.
  std::size_t storage_bits() const noexcept;

  /// Rebuild the scoring caches from the raw class storage: the int8 level
  /// mirrors + class norms at bits 2..8, the contiguous class-word block
  /// the hamming tile streams at bits == 1. Call after mutating
  /// level_classes() OR packed_classes() in place — the fault injector
  /// does both. (Scoring used to re-gather the packed words on every call
  /// so packed edits needed no resync; hoisting that gather here is what
  /// made the per-call path allocation-free, at the cost of this contract.)
  void resync();

  // -- raw storage for fault injection --------------------------------------
  // Exactly one of the two stores is populated, selected by bits():
  // packed_classes() when bits() == 1, level_classes() when bits() > 1.
  // The other is empty — callers must branch on bits() before touching them.
  // Writers of either store must call resync() afterwards.
  /// Packed bipolar class vectors; only valid when bits() == 1.
  std::vector<core::PackedBits>& packed_classes() { return packed_; }
  const std::vector<core::PackedBits>& packed_classes() const {
    return packed_;
  }
  /// Level-coded class vectors; only valid when bits() > 1.
  std::vector<core::QuantizedVector>& level_classes() { return levels_; }
  const std::vector<core::QuantizedVector>& level_classes() const {
    return levels_;
  }

 private:
  int bits_;
  std::size_t dims_;
  std::vector<core::PackedBits> packed_;        // bits == 1
  std::vector<core::QuantizedVector> levels_;   // bits > 1
  // Scoring caches for bits in {2, 4, 8}: class levels mirrored as ONE
  // contiguous num_classes x dims int8 block (the layout the
  // similarities_tile_i8 kernel streams), plus each class's sum of squared
  // levels (exact integers held in double, matching cosine_quantized()'s
  // accumulator).
  std::vector<std::int8_t, core::AlignedAllocator<std::int8_t>> classes_i8_;
  std::vector<double> level_sumsq_;
  // Scoring cache for bits == 1: the packed class words gathered into ONE
  // contiguous num_classes x words block (the layout hamming_tile_1b
  // streams), rebuilt by resync().
  std::vector<std::uint64_t, core::AlignedAllocator<std::uint64_t>>
      classes_1b_;
};

/// End-to-end quantized classifier: a trained CyberHD's encoder plus its
/// quantized associative memory. This is the artifact one would flash onto
/// an edge device.
class QuantizedCyberHd final : public core::Classifier {
 public:
  /// Snapshot a trained classifier at the given bitwidth. The encoder is
  /// cloned, so the source may be discarded or retrained afterwards.
  /// Batch calls inherit the source's execution context (the process
  /// context when config().parallel, the serial one otherwise).
  QuantizedCyberHd(const CyberHdClassifier& trained, int bits);

  /// fit() is not supported: quantization is post-training by design.
  void fit(const core::Matrix& x, std::span<const int> y,
           std::size_t num_classes) override;
  std::size_t num_classes() const noexcept override {
    return model_.num_classes();
  }
  int predict(std::span<const float> x) const override;
  /// Quantized-domain cosine similarities of one raw sample.
  void scores(std::span<const float> x, std::span<float> out) const override;

  // -- stage-split serving pipeline (mirrors CyberHdClassifier) --------------
  // For bits <= 8 the pipeline is QUANTIZED END TO END: stage 1 encodes a
  // row once and immediately packs it (int8 levels, or sign words at
  // bits == 1), the encode cache stores the packed entry, and stage 2
  // scores packed tiles through the integer tile kernels — floats never
  // round-trip between the stages. bits 16/32 keep the float pipeline.

  /// Sub-batch size of the staged scores_batch driver: the execution
  /// context's L3-aware serving plan over the PACKED row size when
  /// bits() <= 8 (a packed sub-batch fits 4-32x more rows in the same L3
  /// budget), over the float row size otherwise.
  std::size_t preferred_batch_rows(const core::Matrix& x) const override;
  /// One planned block: cached encode of rows [begin, end), then
  /// quantized scoring of the packed (bits <= 8) or float view into the
  /// block's rows of `out`, split across the execution context's pool.
  /// predict_batch (from core::Classifier) rides the same driver.
  void scores_block(const core::Matrix& x, std::size_t begin,
                    std::size_t end, core::Matrix& out) const override;
  /// Stage 1 alone (bits <= 8): encode rows [begin, end) of `x` straight
  /// into packed form — through the packed encode cache when armed —
  /// staged in `staging`. The returned view borrows `staging`'s bytes.
  PackedBatch encode_block_packed(const core::Matrix& x, std::size_t begin,
                                  std::size_t end,
                                  PackedStaging& staging) const;
  /// Zero-copy stage 1 (bits <= 8): like encode_block_packed, but cache
  /// hits are BORROWED (pinned in the ring, no memcpy out) and only misses
  /// land in `staging`. The returned indirect view routes each row to its
  /// ring slot or staging offset through `ws`'s pointer tables; the caller
  /// must release ws.borrow after stage 2 consumes the rows. With the
  /// cache disabled every row encodes into `staging` and no pins are
  /// taken — the view is still valid and ws.borrow is empty.
  PackedRows encode_block_packed_borrowed(const core::Matrix& x,
                                          std::size_t begin, std::size_t end,
                                          PackedStaging& staging,
                                          ScoringWorkspace& ws) const;
  /// Fused tile-encode-and-quantize (bits <= 8), bypassing the cache:
  /// rows [begin, end) of `x` run through the encoder's GEMM-shaped tile
  /// in flow blocks, and each finished float row is quantized straight
  /// out of the block's L2-resident scratch into packed entry i at
  /// dst + i * dst_stride (packed_row_bytes() bytes each) — no
  /// batch-sized float staging matrix ever exists. Same quantize
  /// expression as pack_row, so the packed bytes are bit-identical to
  /// encode-then-pack. Both encode_block_packed paths (cache miss batch,
  /// cache off) ride this.
  void encode_tile_packed(const core::Matrix& x, std::size_t begin,
                          std::size_t end, unsigned char* dst,
                          std::size_t dst_stride) const;
  /// Stage 2 alone: quantized-domain scores of an already-encoded float
  /// view (the query rows are re-quantized per row); `out` is resized to
  /// h.rows() x num_classes().
  void scores_encoded(const EncodedBatch& h, core::Matrix& out) const;
  /// Stage 2 alone, packed domain (bits <= 8): scores of an
  /// encode_block_packed view, no float detour; `out` is resized to
  /// h.rows() x num_classes(). Bit-identical to the float overload over
  /// the same rows.
  void scores_encoded(const PackedBatch& h, core::Matrix& out) const;

  /// Resize the serving encode cache (0 disables; `shards` = 0 picks the
  /// CYBERHD_CACHE_SHARDS / topology default). The constructor installs
  /// the CYBERHD_ENCODE_CACHE env default; the quantized snapshot owns
  /// its own cache — its cloned encoder's outputs are what it replays.
  /// For bits <= 8 the cache is armed with the packed entry size, so the
  /// same row capacity costs 4-32x fewer bytes than a float cache.
  /// Resets hit/miss statistics.
  void set_encode_cache(std::size_t capacity_rows, std::size_t shards = 0);
  /// The serving encode cache, or nullptr when disabled.
  EncodeCache* encode_cache() const noexcept { return encode_cache_.get(); }

  std::string name() const override;

  int bits() const noexcept { return model_.bits(); }
  QuantizedHdcModel& model() noexcept { return model_; }
  const QuantizedHdcModel& model() const noexcept { return model_; }

 private:
  /// Shared miss half of both encode_block_packed drivers: gather the
  /// cache lookup's miss rows into the workspace's raw block, run them
  /// through the fused tile-encode-and-pack, scatter the packed rows to
  /// their batch offsets in `o`.
  void encode_packed_misses(const core::Matrix& x, std::size_t begin,
                            std::span<const std::size_t> rows,
                            unsigned char* o, std::size_t o_stride,
                            ScoringWorkspace& ws) const;

  std::unique_ptr<Encoder> encoder_;
  QuantizedHdcModel model_;
  core::ExecutionContext exec_;
  std::unique_ptr<EncodeCache> encode_cache_;
};

}  // namespace cyberhd::hdc
