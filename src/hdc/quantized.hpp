// Quantized HDC inference — the deployment path of Table I and Fig. 5.
//
// After training in float32, the class hypervectors are post-training
// quantized to b bits (b in {32, 16, 8, 4, 2, 1}); queries are quantized on
// the fly at the same width. The 1-bit path packs bipolar vectors into
// 64-bit words and scores with XOR/popcount — the representation whose
// holographic redundancy gives the paper's 12.9x robustness advantage and
// the FPGA its efficiency at low bitwidths.
//
// The raw quantized storage is exposed so fault/bitflip.cpp can flip bits
// *in the representation that would actually sit in deployed memory*.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/bitpack.hpp"
#include "core/classifier.hpp"
#include "core/quantize.hpp"
#include "hdc/cyberhd.hpp"
#include "hdc/model.hpp"

namespace cyberhd::hdc {

/// A trained associative memory quantized to a fixed bitwidth.
class QuantizedHdcModel {
 public:
  /// Quantize `model`'s class hypervectors to `bits` bits.
  /// Contract: `bits` must be one of {1, 2, 4, 8, 16, 32}; anything else
  /// throws std::invalid_argument. bits == 1 stores sign-packed bipolar
  /// vectors (PackedBits); bits > 1 stores level-coded QuantizedVectors.
  QuantizedHdcModel(const HdcModel& model, int bits);

  /// The bitwidth this model was quantized to (one of {1,2,4,8,16,32}).
  int bits() const noexcept { return bits_; }
  /// Hypervector dimensionality D (unchanged by quantization).
  std::size_t dims() const noexcept { return dims_; }
  std::size_t num_classes() const noexcept;

  /// Cosine similarities of a float-encoded query against every class,
  /// computed entirely in the quantized domain (the query is quantized at
  /// this model's bitwidth first).
  /// Preconditions: h.size() == dims(), scores.size() == num_classes().
  void similarities(std::span<const float> h,
                    std::span<float> scores) const;

  /// argmax-of-similarity prediction for a float-encoded query.
  std::size_t predict_encoded(std::span<const float> h) const;

  /// Memory footprint of the class hypervectors in bits (dims * classes *
  /// bitwidth) — what the hardware model prices.
  std::size_t storage_bits() const noexcept;

  // -- raw storage for fault injection --------------------------------------
  // Exactly one of the two stores is populated, selected by bits():
  // packed_classes() when bits() == 1, level_classes() when bits() > 1.
  // The other is empty — callers must branch on bits() before touching them.
  /// Packed bipolar class vectors; only valid when bits() == 1.
  std::vector<core::PackedBits>& packed_classes() { return packed_; }
  const std::vector<core::PackedBits>& packed_classes() const {
    return packed_;
  }
  /// Level-coded class vectors; only valid when bits() > 1.
  std::vector<core::QuantizedVector>& level_classes() { return levels_; }
  const std::vector<core::QuantizedVector>& level_classes() const {
    return levels_;
  }

 private:
  int bits_;
  std::size_t dims_;
  std::vector<core::PackedBits> packed_;        // bits == 1
  std::vector<core::QuantizedVector> levels_;   // bits > 1
};

/// End-to-end quantized classifier: a trained CyberHD's encoder plus its
/// quantized associative memory. This is the artifact one would flash onto
/// an edge device.
class QuantizedCyberHd final : public core::Classifier {
 public:
  /// Snapshot a trained classifier at the given bitwidth. The encoder is
  /// cloned, so the source may be discarded or retrained afterwards.
  QuantizedCyberHd(const CyberHdClassifier& trained, int bits);

  /// fit() is not supported: quantization is post-training by design.
  void fit(const core::Matrix& x, std::span<const int> y,
           std::size_t num_classes) override;
  int predict(std::span<const float> x) const override;
  std::string name() const override;

  int bits() const noexcept { return model_.bits(); }
  QuantizedHdcModel& model() noexcept { return model_; }
  const QuantizedHdcModel& model() const noexcept { return model_; }

 private:
  std::unique_ptr<Encoder> encoder_;
  QuantizedHdcModel model_;
  mutable std::vector<float> scratch_;
};

}  // namespace cyberhd::hdc
