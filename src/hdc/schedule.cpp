#include "hdc/schedule.hpp"

#include <cassert>

namespace cyberhd::hdc {

RegenRebundle::RegenRebundle(std::size_t num_classes,
                             std::span<const std::size_t> dims)
    : dims_(dims),
      class_sum_(num_classes * dims.size(), 0.0),
      total_sum_(dims.size(), 0.0) {}

void RegenRebundle::add_row(std::span<const float> h, std::size_t cls) {
  const std::size_t nd = dims_.size();
  for (std::size_t j = 0; j < nd; ++j) {
    const double v = h[dims_[j]];
    class_sum_[cls * nd + j] += v;
    total_sum_[j] += v;
  }
}

void RegenRebundle::apply(HdcModel& model,
                          std::span<const int> labels) const {
  const std::size_t nd = dims_.size();
  std::vector<double> counts(model.num_classes(), 0.0);
  for (const int y : labels) counts[static_cast<std::size_t>(y)] += 1.0;
  const double inv_n = 1.0 / static_cast<double>(labels.size());
  for (std::size_t c = 0; c < model.num_classes(); ++c) {
    auto cv = model.class_vector(c);
    for (std::size_t j = 0; j < nd; ++j) {
      cv[dims_[j]] = static_cast<float>(
          class_sum_[c * nd + j] - counts[c] * total_sum_[j] * inv_n);
    }
  }
}

void ScheduleDriver::run(FitReport& report,
                         const SchedulePhases& phases) const {
  assert(phases.bundle && phases.run_epoch && phases.refresh_dims);
  phases.bundle();

  const auto run_epochs = [&](std::size_t count) {
    for (std::size_t e = 0; e < count; ++e) {
      const EpochStats stats = phases.run_epoch();
      report.epoch_accuracy.push_back(stats.accuracy());
      ++report.epochs;
    }
  };

  // Regeneration cycles: retrain, then drop-and-regenerate (steps D..H of
  // the workflow), then let the fit path refresh the touched columns.
  if (config_.regenerating()) {
    for (std::size_t s = 0; s < config_.regen_steps; ++s) {
      run_epochs(config_.epochs_per_step);
      const RegenStep step = regen_.step(model_, encoder_, regen_rng_);
      report.regenerated_per_step.push_back(step.dims.size());
      if (!step.dims.empty()) {
        phases.refresh_dims(step.dims);
      }
    }
  }
  run_epochs(config_.final_epochs);
  report.effective_dims = regen_.effective_dims();
}

}  // namespace cyberhd::hdc
