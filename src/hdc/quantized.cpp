#include "hdc/quantized.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/exec/execution_context.hpp"
#include "core/kernels/kernels.hpp"
#include "hdc/scoring_workspace.hpp"

namespace cyberhd::hdc {

QuantizedHdcModel::QuantizedHdcModel(const HdcModel& model, int bits)
    : bits_(bits), dims_(model.dims()) {
  if (!core::is_supported_bitwidth(bits)) {
    throw std::invalid_argument("unsupported bitwidth");
  }
  if (bits_ == 1) {
    packed_.reserve(model.num_classes());
    for (std::size_t c = 0; c < model.num_classes(); ++c) {
      packed_.push_back(core::pack_signs(model.class_vector(c)));
    }
  } else {
    levels_.reserve(model.num_classes());
    for (std::size_t c = 0; c < model.num_classes(); ++c) {
      levels_.push_back(core::quantize(model.class_vector(c), bits_));
    }
  }
  resync();
}

void QuantizedHdcModel::resync() {
  classes_i8_.clear();
  level_sumsq_.clear();
  classes_1b_.clear();
  if (bits_ == 1) {
    // Gather the packed class words into one contiguous classes x words
    // block — the layout the hamming tile kernel streams. Rebuilt here
    // rather than on every scoring call, which is why in-place
    // packed_classes() editors must resync() (see the header contract).
    const std::size_t words = packed_.empty() ? 0 : packed_[0].num_words();
    classes_1b_.resize(packed_.size() * words);
    for (std::size_t c = 0; c < packed_.size(); ++c) {
      std::memcpy(classes_1b_.data() + c * words, packed_[c].words(),
                  words * sizeof(std::uint64_t));
    }
    return;
  }
  if (bits_ > 8) return;
  classes_i8_.resize(levels_.size() * dims_);
  level_sumsq_.reserve(levels_.size());
  for (std::size_t c = 0; c < levels_.size(); ++c) {
    const core::QuantizedVector& qv = levels_[c];
    std::int8_t* mirror = classes_i8_.data() + c * dims_;
    double sumsq = 0.0;
    for (std::size_t i = 0; i < qv.levels.size(); ++i) {
      // Levels at <= 8 bits live in [-127, 127]; the cast is lossless.
      mirror[i] = static_cast<std::int8_t>(qv.levels[i]);
      const double v = qv.levels[i];
      sumsq += v * v;
    }
    level_sumsq_.push_back(sumsq);
  }
}

std::size_t QuantizedHdcModel::num_classes() const noexcept {
  return bits_ == 1 ? packed_.size() : levels_.size();
}

void QuantizedHdcModel::similarities(std::span<const float> h,
                                     std::span<float> scores) const {
  assert(h.size() == dims_);
  assert(scores.size() == num_classes());
  if (bits_ == 1) {
    const core::PackedBits q = core::pack_signs(h);
    for (std::size_t c = 0; c < packed_.size(); ++c) {
      scores[c] = core::cosine_bipolar(q, packed_[c]);
    }
    return;
  }
  const core::QuantizedVector q = core::quantize(h, bits_);
  if (bits_ <= 8) {
    // int8 fast path: SIMD integer dot against the cached class mirrors.
    // Matches cosine_quantized() bit-for-bit — all intermediate sums are
    // exact integers well inside double's mantissa, and the final
    // dot / (sqrt(na) * sqrt(nb)) expression is identical.
    const core::Kernels& kernels = core::active_kernels();
    std::vector<std::int8_t> q8(q.levels.size());
    double qn = 0.0;
    for (std::size_t i = 0; i < q.levels.size(); ++i) {
      q8[i] = static_cast<std::int8_t>(q.levels[i]);
      const double v = q.levels[i];
      qn += v * v;
    }
    for (std::size_t c = 0; c < level_sumsq_.size(); ++c) {
      if (qn == 0.0 || level_sumsq_[c] == 0.0) {
        scores[c] = 0.0f;
        continue;
      }
      const double dot = static_cast<double>(kernels.quantized_dot_i8(
          q8.data(), classes_i8_.data() + c * dims_, q8.size()));
      scores[c] = static_cast<float>(
          dot / (std::sqrt(qn) * std::sqrt(level_sumsq_[c])));
    }
    return;
  }
  for (std::size_t c = 0; c < levels_.size(); ++c) {
    scores[c] = core::cosine_quantized(q, levels_[c]);
  }
}

void QuantizedHdcModel::pack_row(std::span<const float> h,
                                 unsigned char* dst) const {
  assert(bits_ <= 8);
  assert(h.size() == dims_);
  if (bits_ == 1) {
    const core::PackedBits q = core::pack_signs(h);
    std::memcpy(dst, q.words(), q.num_words() * sizeof(std::uint64_t));
    return;
  }
  const core::QuantizedVector q = core::quantize(h, bits_);
  auto* levels = reinterpret_cast<std::int8_t*>(dst);
  for (std::size_t i = 0; i < dims_; ++i) {
    // Levels at <= 8 bits live in [-127, 127]; the cast is lossless.
    levels[i] = static_cast<std::int8_t>(q.levels[i]);
  }
}

void QuantizedHdcModel::similarities_packed(
    const PackedBatch& h, float* out,
    const core::ExecutionContext& exec) const {
  assert(bits_ <= 8);
  assert(h.bits() == bits_);
  assert(h.dims() == dims_);
  const std::size_t classes = num_classes();
  if (h.rows() == 0 || classes == 0) return;
  const core::Kernels& k = exec.kernels();
  const std::size_t tile_rows = exec.score_block_rows(dims_);
  if (bits_ == 1) {
    // The class words stream from the contiguous classes_1b_ block that
    // resync() maintains — no per-call gather (in-place packed_classes()
    // editors must resync(), like level_classes() editors always had to).
    const std::size_t words = h.words();
    assert(classes_1b_.size() == classes * words);
    exec.parallel_for(
        h.rows(),
        [&](std::size_t begin, std::size_t end) {
          // Accumulator tile from the worker's own workspace: grown once,
          // reused across flushes.
          std::vector<std::uint32_t>& ham = ScoringWorkspace::tl().ham_tile;
          if (ham.size() < tile_rows * classes) {
            ham.resize(tile_rows * classes);
          }
          for (std::size_t t = begin; t < end; t += tile_rows) {
            const std::size_t rows = std::min(tile_rows, end - t);
            k.hamming_tile_1b(h.word_row(t), rows, classes_1b_.data(),
                              classes, words, ham.data());
            for (std::size_t r = 0; r < rows; ++r) {
              float* dst = out + (t + r) * classes;
              for (std::size_t c = 0; c < classes; ++c) {
                // Exactly cosine_bipolar(): dot = D - 2 * hamming, exact
                // in int64, divided by D in float.
                const std::int64_t dot =
                    static_cast<std::int64_t>(dims_) -
                    2 * static_cast<std::int64_t>(ham[r * classes + c]);
                dst[c] =
                    static_cast<float>(dot) / static_cast<float>(dims_);
              }
            }
          }
        },
        /*grain=*/32);
    return;
  }
  exec.parallel_for(
      h.rows(),
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::int64_t>& dots = ScoringWorkspace::tl().dot_tile;
        if (dots.size() < tile_rows * classes) {
          dots.resize(tile_rows * classes);
        }
        for (std::size_t t = begin; t < end; t += tile_rows) {
          const std::size_t rows = std::min(tile_rows, end - t);
          k.similarities_tile_i8(h.i8_row(t), rows, classes_i8_.data(),
                                 classes, dims_, dots.data());
          for (std::size_t r = 0; r < rows; ++r) {
            // The query's sum of squared levels is an exact integer
            // (<= D * 127^2, far inside double's mantissa), recomputed
            // from the packed row itself — the same value similarities()
            // accumulates on the float detour, in any summation order.
            const double qn = static_cast<double>(k.quantized_dot_i8(
                h.i8_row(t + r), h.i8_row(t + r), dims_));
            float* dst = out + (t + r) * classes;
            for (std::size_t c = 0; c < classes; ++c) {
              if (qn == 0.0 || level_sumsq_[c] == 0.0) {
                dst[c] = 0.0f;
                continue;
              }
              const double dot =
                  static_cast<double>(dots[r * classes + c]);
              dst[c] = static_cast<float>(
                  dot / (std::sqrt(qn) * std::sqrt(level_sumsq_[c])));
            }
          }
        }
      },
      /*grain=*/32);
}

void QuantizedHdcModel::similarities_packed(
    const PackedRows& h, float* out,
    const core::ExecutionContext& exec) const {
  assert(bits_ <= 8);
  assert(h.bits() == bits_);
  assert(h.dims() == dims_);
  const std::size_t classes = num_classes();
  if (h.rows() == 0 || classes == 0) return;
  const core::Kernels& k = exec.kernels();
  const std::size_t tile_rows = exec.score_block_rows(dims_);
  // Mirror of the contiguous overload with the gather tile kernels reading
  // rows through the pointer table; the query-norm dots read through the
  // same table, so every score is bit-identical to the contiguous path
  // over the same row bytes.
  if (bits_ == 1) {
    const std::size_t words = h.words();
    assert(classes_1b_.size() == classes * words);
    const std::uint64_t* const* rows_tbl = h.word_row_ptrs();
    exec.parallel_for(
        h.rows(),
        [&](std::size_t begin, std::size_t end) {
          std::vector<std::uint32_t>& ham = ScoringWorkspace::tl().ham_tile;
          if (ham.size() < tile_rows * classes) {
            ham.resize(tile_rows * classes);
          }
          for (std::size_t t = begin; t < end; t += tile_rows) {
            const std::size_t rows = std::min(tile_rows, end - t);
            k.hamming_tile_1b_gather(rows_tbl + t, rows, classes_1b_.data(),
                                     classes, words, ham.data());
            for (std::size_t r = 0; r < rows; ++r) {
              float* dst = out + (t + r) * classes;
              for (std::size_t c = 0; c < classes; ++c) {
                const std::int64_t dot =
                    static_cast<std::int64_t>(dims_) -
                    2 * static_cast<std::int64_t>(ham[r * classes + c]);
                dst[c] =
                    static_cast<float>(dot) / static_cast<float>(dims_);
              }
            }
          }
        },
        /*grain=*/32);
    return;
  }
  const std::int8_t* const* rows_tbl = h.i8_row_ptrs();
  exec.parallel_for(
      h.rows(),
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::int64_t>& dots = ScoringWorkspace::tl().dot_tile;
        if (dots.size() < tile_rows * classes) {
          dots.resize(tile_rows * classes);
        }
        for (std::size_t t = begin; t < end; t += tile_rows) {
          const std::size_t rows = std::min(tile_rows, end - t);
          k.similarities_tile_i8_gather(rows_tbl + t, rows,
                                        classes_i8_.data(), classes, dims_,
                                        dots.data());
          for (std::size_t r = 0; r < rows; ++r) {
            const double qn = static_cast<double>(k.quantized_dot_i8(
                rows_tbl[t + r], rows_tbl[t + r], dims_));
            float* dst = out + (t + r) * classes;
            for (std::size_t c = 0; c < classes; ++c) {
              if (qn == 0.0 || level_sumsq_[c] == 0.0) {
                dst[c] = 0.0f;
                continue;
              }
              const double dot =
                  static_cast<double>(dots[r * classes + c]);
              dst[c] = static_cast<float>(
                  dot / (std::sqrt(qn) * std::sqrt(level_sumsq_[c])));
            }
          }
        }
      },
      /*grain=*/32);
}

std::size_t QuantizedHdcModel::predict_encoded(
    std::span<const float> h) const {
  std::vector<float> scores(num_classes());
  similarities(h, scores);
  return core::argmax(scores);
}

std::size_t QuantizedHdcModel::storage_bits() const noexcept {
  return dims_ * num_classes() * static_cast<std::size_t>(bits_);
}

QuantizedCyberHd::QuantizedCyberHd(const CyberHdClassifier& trained,
                                   int bits)
    : encoder_(trained.encoder().clone()),
      model_(trained.model(), bits),
      exec_(trained.config().parallel ? core::ExecutionContext::process()
                                      : core::ExecutionContext::serial()) {
  set_encode_cache(EncodeCache::capacity_from_env());
}

void QuantizedCyberHd::fit(const core::Matrix&, std::span<const int>,
                           std::size_t) {
  throw std::logic_error(
      "QuantizedCyberHd is a post-training snapshot; train a "
      "CyberHdClassifier and re-quantize instead");
}

int QuantizedCyberHd::predict(std::span<const float> x) const {
  std::vector<float> encoded(encoder_->output_dim());
  encoder_->encode(x, encoded);
  return static_cast<int>(model_.predict_encoded(encoded));
}

void QuantizedCyberHd::scores(std::span<const float> x,
                              std::span<float> out) const {
  assert(out.size() == model_.num_classes());
  std::vector<float> encoded(encoder_->output_dim());
  encoder_->encode(x, encoded);
  model_.similarities(encoded, out);
}

std::size_t QuantizedCyberHd::preferred_batch_rows(
    const core::Matrix&) const {
  if (model_.bits() <= 8) {
    // Plan from the PACKED bytes per row: the same third-of-L3 budget
    // holds 4x (int8) to 32x (1-bit) more rows than a float sub-batch,
    // so serving batches grow accordingly.
    return exec_
        .plan_serving_bytes(model_.packed_row_bytes(),
                            exec_.score_block_rows(model_.dims()))
        .batch_rows;
  }
  return exec_.plan_serving(model_.dims()).batch_rows;
}

void QuantizedCyberHd::scores_encoded(const EncodedBatch& h,
                                      core::Matrix& out) const {
  assert(h.dims() == model_.dims());
  out.resize(h.rows(), model_.num_classes());
  exec_.parallel_for(
      h.rows(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          model_.similarities(h.row(i), out.row(i));
        }
      },
      /*grain=*/32);
}

void QuantizedCyberHd::encode_tile_packed(const core::Matrix& x,
                                          std::size_t begin, std::size_t end,
                                          unsigned char* dst,
                                          std::size_t dst_stride) const {
  assert(model_.bits() <= 8);
  assert(dst_stride >= model_.packed_row_bytes());
  const std::size_t m = end - begin;
  if (m == 0) return;
  const std::size_t dims = model_.dims();
  const core::EncodeTilePlan plan =
      exec_.plan_encode_tile(dims, encoder_->input_dim());
  // Quantize in the tile epilogue: each flow block tile-encodes into a
  // per-worker flow_rows x D float scratch (L2-resident, reused across
  // blocks), and every finished row quantizes straight into its packed
  // slot. The quantize scale is a full-row statistic, so the row-sized
  // float scratch is the minimum staging possible — no batch-sized float
  // matrix. pack_row is the one quantize expression, so the packed bytes
  // match encode-then-pack bit for bit.
  exec_.parallel_for(
      m,
      [&](std::size_t lo, std::size_t hi) {
        thread_local core::Matrix scratch;
        for (std::size_t t = lo; t < hi; t += plan.flow_rows) {
          const std::size_t e = std::min(hi, t + plan.flow_rows);
          const std::size_t rows = e - t;
          if (scratch.rows() < rows || scratch.cols() != dims) {
            scratch.resize(plan.flow_rows, dims);
          }
          encoder_->encode_tile_block(x, begin + t, begin + e,
                                      scratch.data(), dims, exec_);
          for (std::size_t i = 0; i < rows; ++i) {
            model_.pack_row(scratch.row(i), dst + (t + i) * dst_stride);
          }
        }
      },
      /*grain=*/plan.flow_rows);
}

void QuantizedCyberHd::encode_packed_misses(const core::Matrix& x,
                                            std::size_t begin,
                                            std::span<const std::size_t> rows,
                                            unsigned char* o,
                                            std::size_t o_stride,
                                            ScoringWorkspace& ws) const {
  // Batched miss path: gather the lookup's misses into one contiguous
  // block, run them through the fused tile-encode-and-pack, scatter the
  // packed rows (a packed_row_bytes memcpy each) to their slots. The
  // gather block and the packed block live in the workspace — grown once,
  // reused every flush.
  const std::size_t k = rows.size();
  const std::size_t row_bytes = model_.packed_row_bytes();
  ws.miss_raw.resize(k, x.cols());
  for (std::size_t j = 0; j < k; ++j) {
    const auto src = x.row(begin + rows[j]);
    std::copy(src.begin(), src.end(), ws.miss_raw.row(j).begin());
  }
  if (ws.miss_packed.size() < k * row_bytes) {
    ws.miss_packed.resize(k * row_bytes);
  }
  encode_tile_packed(ws.miss_raw, 0, k, ws.miss_packed.data(), row_bytes);
  for (std::size_t j = 0; j < k; ++j) {
    std::memcpy(o + rows[j] * o_stride, ws.miss_packed.data() + j * row_bytes,
                row_bytes);
  }
}

PackedBatch QuantizedCyberHd::encode_block_packed(
    const core::Matrix& x, std::size_t begin, std::size_t end,
    PackedStaging& staging) const {
  assert(model_.bits() <= 8);
  const std::size_t m = end - begin;
  const std::size_t dims = model_.dims();
  const int bits = model_.bits();
  unsigned char* out = staging.prepare(m, dims, bits);
  const std::size_t row_bytes = model_.packed_row_bytes();
  if (encode_cache_ != nullptr) {
    ScoringWorkspace& ws = ScoringWorkspace::tl();
    encode_cache_->encode_entries(
        x, begin, end, out, row_bytes,
        [&](std::span<const std::size_t> rows, unsigned char* o,
            std::size_t o_stride) {
          encode_packed_misses(x, begin, rows, o, o_stride, ws);
        },
        exec_);
  } else {
    encode_tile_packed(x, begin, end, out, row_bytes);
  }
  return staging.view(m, dims, bits);
}

PackedRows QuantizedCyberHd::encode_block_packed_borrowed(
    const core::Matrix& x, std::size_t begin, std::size_t end,
    PackedStaging& staging, ScoringWorkspace& ws) const {
  assert(model_.bits() <= 8);
  const std::size_t m = end - begin;
  const std::size_t dims = model_.dims();
  const int bits = model_.bits();
  unsigned char* out = staging.prepare(m, dims, bits);
  const std::size_t row_bytes = model_.packed_row_bytes();
  if (encode_cache_ != nullptr) {
    encode_cache_->encode_entries_borrowed(
        x, begin, end, out, row_bytes,
        [&](std::span<const std::size_t> rows, unsigned char* o,
            std::size_t o_stride) {
          encode_packed_misses(x, begin, rows, o, o_stride, ws);
        },
        ws, exec_);
  } else {
    encode_tile_packed(x, begin, end, out, row_bytes);
    ws.entry_ptrs.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      ws.entry_ptrs[i] = out + i * row_bytes;
    }
  }
  // Retype the entry pointers into the table the gather kernels consume.
  // Ring entries are 64-byte aligned and staging rows a multiple of 8
  // bytes apart in a 64-aligned buffer, so the word casts are safe.
  if (bits == 1) {
    ws.word_rows.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      ws.word_rows[i] =
          reinterpret_cast<const std::uint64_t*>(ws.entry_ptrs[i]);
    }
    return PackedRows(ws.word_rows.data(), m, dims);
  }
  ws.i8_rows.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    ws.i8_rows[i] = reinterpret_cast<const std::int8_t*>(ws.entry_ptrs[i]);
  }
  return PackedRows(ws.i8_rows.data(), m, dims, bits);
}

void QuantizedCyberHd::scores_encoded(const PackedBatch& h,
                                      core::Matrix& out) const {
  assert(h.dims() == model_.dims());
  assert(h.bits() == model_.bits());
  out.resize(h.rows(), model_.num_classes());
  if (h.rows() == 0) return;
  model_.similarities_packed(h, out.row(0).data(), exec_);
}

void QuantizedCyberHd::scores_block(const core::Matrix& x,
                                    std::size_t begin, std::size_t end,
                                    core::Matrix& out) const {
  const std::size_t m = end - begin;
  if (m == 0) return;
  if (model_.bits() <= 8) {
    // Quantized end to end, zero-copy: stage 1 packs each row at encode
    // time, PINS cache hits in the ring instead of memcpying them out,
    // and encodes only the misses into the thread-local staging; stage 2
    // streams the resulting row-pointer view through the gather tile
    // kernels. No float row crosses the stage boundary, no hit byte is
    // copied, and every score is bit-identical to the re-quantize path
    // below.
    thread_local PackedStaging staging;
    ScoringWorkspace& ws = ScoringWorkspace::tl();
    const PackedRows packed =
        encode_block_packed_borrowed(x, begin, end, staging, ws);
    model_.similarities_packed(packed, out.row(begin).data(), exec_);
    ws.borrow.release();
    return;
  }
  // bits 16/32 keep the float pipeline: cached float encode, then per-row
  // quantize-and-score. Staging is thread_local so the block loop reuses
  // one allocation per calling thread.
  thread_local core::Matrix staging;
  const EncodedBatch encoded =
      encode_block_cached(*encoder_, encode_cache_.get(), x, begin, end,
                          staging, exec_);
  // Stage 2: quantized scoring of the view into the block's output rows.
  exec_.parallel_for(
      m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          model_.similarities(encoded.row(i), out.row(begin + i));
        }
      },
      /*grain=*/32);
}

void QuantizedCyberHd::set_encode_cache(std::size_t capacity_rows,
                                        std::size_t shards) {
  if (capacity_rows == 0) {
    encode_cache_.reset();
    return;
  }
  // bits <= 8: arm the ring with the packed entry size — the same row
  // capacity costs 1/4 (int8) to 1/32 (1-bit) of the float bytes, or put
  // the other way, the default 4096 rows of budget hold 4-32x more flows.
  const std::size_t entry_bytes =
      model_.bits() <= 8 ? model_.packed_row_bytes() : 0;
  encode_cache_ = std::make_unique<EncodeCache>(
      encoder_->input_dim(), encoder_->output_dim(), capacity_rows, shards,
      entry_bytes);
}

std::string QuantizedCyberHd::name() const {
  return "CyberHD-q" + std::to_string(model_.bits()) +
         "(D=" + std::to_string(model_.dims()) + ")";
}

}  // namespace cyberhd::hdc
