#include "hdc/quantized.hpp"

#include <cassert>
#include <stdexcept>

namespace cyberhd::hdc {

QuantizedHdcModel::QuantizedHdcModel(const HdcModel& model, int bits)
    : bits_(bits), dims_(model.dims()) {
  if (!core::is_supported_bitwidth(bits)) {
    throw std::invalid_argument("unsupported bitwidth");
  }
  if (bits_ == 1) {
    packed_.reserve(model.num_classes());
    for (std::size_t c = 0; c < model.num_classes(); ++c) {
      packed_.push_back(core::pack_signs(model.class_vector(c)));
    }
  } else {
    levels_.reserve(model.num_classes());
    for (std::size_t c = 0; c < model.num_classes(); ++c) {
      levels_.push_back(core::quantize(model.class_vector(c), bits_));
    }
  }
}

std::size_t QuantizedHdcModel::num_classes() const noexcept {
  return bits_ == 1 ? packed_.size() : levels_.size();
}

void QuantizedHdcModel::similarities(std::span<const float> h,
                                     std::span<float> scores) const {
  assert(h.size() == dims_);
  assert(scores.size() == num_classes());
  if (bits_ == 1) {
    const core::PackedBits q = core::pack_signs(h);
    for (std::size_t c = 0; c < packed_.size(); ++c) {
      scores[c] = core::cosine_bipolar(q, packed_[c]);
    }
  } else {
    const core::QuantizedVector q = core::quantize(h, bits_);
    for (std::size_t c = 0; c < levels_.size(); ++c) {
      scores[c] = core::cosine_quantized(q, levels_[c]);
    }
  }
}

std::size_t QuantizedHdcModel::predict_encoded(
    std::span<const float> h) const {
  std::vector<float> scores(num_classes());
  similarities(h, scores);
  return core::argmax(scores);
}

std::size_t QuantizedHdcModel::storage_bits() const noexcept {
  return dims_ * num_classes() * static_cast<std::size_t>(bits_);
}

QuantizedCyberHd::QuantizedCyberHd(const CyberHdClassifier& trained,
                                   int bits)
    : encoder_(trained.encoder().clone()),
      model_(trained.model(), bits),
      scratch_(trained.physical_dims(), 0.0f) {}

void QuantizedCyberHd::fit(const core::Matrix&, std::span<const int>,
                           std::size_t) {
  throw std::logic_error(
      "QuantizedCyberHd is a post-training snapshot; train a "
      "CyberHdClassifier and re-quantize instead");
}

int QuantizedCyberHd::predict(std::span<const float> x) const {
  encoder_->encode(x, scratch_);
  return static_cast<int>(model_.predict_encoded(scratch_));
}

std::string QuantizedCyberHd::name() const {
  return "CyberHD-q" + std::to_string(model_.bits()) +
         "(D=" + std::to_string(model_.dims()) + ")";
}

}  // namespace cyberhd::hdc
