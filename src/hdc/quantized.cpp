#include "hdc/quantized.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/exec/execution_context.hpp"
#include "core/kernels/kernels.hpp"

namespace cyberhd::hdc {

QuantizedHdcModel::QuantizedHdcModel(const HdcModel& model, int bits)
    : bits_(bits), dims_(model.dims()) {
  if (!core::is_supported_bitwidth(bits)) {
    throw std::invalid_argument("unsupported bitwidth");
  }
  if (bits_ == 1) {
    packed_.reserve(model.num_classes());
    for (std::size_t c = 0; c < model.num_classes(); ++c) {
      packed_.push_back(core::pack_signs(model.class_vector(c)));
    }
  } else {
    levels_.reserve(model.num_classes());
    for (std::size_t c = 0; c < model.num_classes(); ++c) {
      levels_.push_back(core::quantize(model.class_vector(c), bits_));
    }
  }
  resync();
}

void QuantizedHdcModel::resync() {
  levels_i8_.clear();
  level_sumsq_.clear();
  if (bits_ <= 1 || bits_ > 8) return;
  levels_i8_.reserve(levels_.size());
  level_sumsq_.reserve(levels_.size());
  for (const core::QuantizedVector& qv : levels_) {
    std::vector<std::int8_t> mirror(qv.levels.size());
    double sumsq = 0.0;
    for (std::size_t i = 0; i < qv.levels.size(); ++i) {
      // Levels at <= 8 bits live in [-127, 127]; the cast is lossless.
      mirror[i] = static_cast<std::int8_t>(qv.levels[i]);
      const double v = qv.levels[i];
      sumsq += v * v;
    }
    levels_i8_.push_back(std::move(mirror));
    level_sumsq_.push_back(sumsq);
  }
}

std::size_t QuantizedHdcModel::num_classes() const noexcept {
  return bits_ == 1 ? packed_.size() : levels_.size();
}

void QuantizedHdcModel::similarities(std::span<const float> h,
                                     std::span<float> scores) const {
  assert(h.size() == dims_);
  assert(scores.size() == num_classes());
  if (bits_ == 1) {
    const core::PackedBits q = core::pack_signs(h);
    for (std::size_t c = 0; c < packed_.size(); ++c) {
      scores[c] = core::cosine_bipolar(q, packed_[c]);
    }
    return;
  }
  const core::QuantizedVector q = core::quantize(h, bits_);
  if (bits_ <= 8) {
    // int8 fast path: SIMD integer dot against the cached class mirrors.
    // Matches cosine_quantized() bit-for-bit — all intermediate sums are
    // exact integers well inside double's mantissa, and the final
    // dot / (sqrt(na) * sqrt(nb)) expression is identical.
    const core::Kernels& kernels = core::active_kernels();
    std::vector<std::int8_t> q8(q.levels.size());
    double qn = 0.0;
    for (std::size_t i = 0; i < q.levels.size(); ++i) {
      q8[i] = static_cast<std::int8_t>(q.levels[i]);
      const double v = q.levels[i];
      qn += v * v;
    }
    for (std::size_t c = 0; c < levels_i8_.size(); ++c) {
      if (qn == 0.0 || level_sumsq_[c] == 0.0) {
        scores[c] = 0.0f;
        continue;
      }
      const double dot = static_cast<double>(kernels.quantized_dot_i8(
          q8.data(), levels_i8_[c].data(), q8.size()));
      scores[c] = static_cast<float>(
          dot / (std::sqrt(qn) * std::sqrt(level_sumsq_[c])));
    }
    return;
  }
  for (std::size_t c = 0; c < levels_.size(); ++c) {
    scores[c] = core::cosine_quantized(q, levels_[c]);
  }
}

std::size_t QuantizedHdcModel::predict_encoded(
    std::span<const float> h) const {
  std::vector<float> scores(num_classes());
  similarities(h, scores);
  return core::argmax(scores);
}

std::size_t QuantizedHdcModel::storage_bits() const noexcept {
  return dims_ * num_classes() * static_cast<std::size_t>(bits_);
}

QuantizedCyberHd::QuantizedCyberHd(const CyberHdClassifier& trained,
                                   int bits)
    : encoder_(trained.encoder().clone()),
      model_(trained.model(), bits),
      exec_(trained.config().parallel ? core::ExecutionContext::process()
                                      : core::ExecutionContext::serial()) {
  set_encode_cache(EncodeCache::capacity_from_env());
}

void QuantizedCyberHd::fit(const core::Matrix&, std::span<const int>,
                           std::size_t) {
  throw std::logic_error(
      "QuantizedCyberHd is a post-training snapshot; train a "
      "CyberHdClassifier and re-quantize instead");
}

int QuantizedCyberHd::predict(std::span<const float> x) const {
  std::vector<float> encoded(encoder_->output_dim());
  encoder_->encode(x, encoded);
  return static_cast<int>(model_.predict_encoded(encoded));
}

void QuantizedCyberHd::scores(std::span<const float> x,
                              std::span<float> out) const {
  assert(out.size() == model_.num_classes());
  std::vector<float> encoded(encoder_->output_dim());
  encoder_->encode(x, encoded);
  model_.similarities(encoded, out);
}

std::size_t QuantizedCyberHd::preferred_batch_rows(
    const core::Matrix&) const {
  return exec_.plan_serving(model_.dims()).batch_rows;
}

void QuantizedCyberHd::scores_encoded(const EncodedBatch& h,
                                      core::Matrix& out) const {
  assert(h.dims() == model_.dims());
  out.resize(h.rows(), model_.num_classes());
  exec_.parallel_for(
      h.rows(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          model_.similarities(h.row(i), out.row(i));
        }
      },
      /*grain=*/32);
}

void QuantizedCyberHd::scores_block(const core::Matrix& x,
                                    std::size_t begin, std::size_t end,
                                    core::Matrix& out) const {
  const std::size_t m = end - begin;
  if (m == 0) return;
  // Stage 1: the shared cached-encode driver (hits replayed from the
  // ring, misses encoded across the pool); staging is thread_local so the
  // block loop reuses one allocation per calling thread.
  thread_local core::Matrix staging;
  const EncodedBatch encoded =
      encode_block_cached(*encoder_, encode_cache_.get(), x, begin, end,
                          staging, exec_);
  // Stage 2: quantized scoring of the view into the block's output rows.
  exec_.parallel_for(
      m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          model_.similarities(encoded.row(i), out.row(begin + i));
        }
      },
      /*grain=*/32);
}

void QuantizedCyberHd::set_encode_cache(std::size_t capacity_rows,
                                        std::size_t shards) {
  if (capacity_rows == 0) {
    encode_cache_.reset();
    return;
  }
  encode_cache_ = std::make_unique<EncodeCache>(
      encoder_->input_dim(), encoder_->output_dim(), capacity_rows, shards);
}

std::string QuantizedCyberHd::name() const {
  return "CyberHD-q" + std::to_string(model_.bits()) +
         "(D=" + std::to_string(model_.dims()) + ")";
}

}  // namespace cyberhd::hdc
