// Hyperdimensional encoders.
//
// An encoder maps an F-dimensional feature vector into D-dimensional
// hyperspace. CyberHD's key requirement on the encoder is *per-dimension
// regenerability*: every output dimension depends on its own private slice
// of encoder state (one base vector + bias), so a dimension judged
// insignificant can be resampled without touching any other dimension.
//
// Three families are provided:
//  * RbfEncoder        — random Fourier features, cos(b_d . x + c_d). The
//                        encoder the paper uses for cybersecurity data
//                        ("an encoder inspired by the Radial Basis
//                        Function"). Approximates a Gaussian kernel.
//  * SignProjectionEncoder — sign(b_d . x): the classic bipolar random
//                        projection of early HDC classifiers [Rahimi 2016].
//  * IdLevelEncoder    — record-based ID/level binding over quantized
//                        features, the other classic HDC encoding; included
//                        because the paper's step (A) selects an encoding
//                        "depending on the data type".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "core/exec/execution_context.hpp"
#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/encoded_batch.hpp"

namespace cyberhd::hdc {

/// Encoder families selectable through CyberHdConfig.
enum class EncoderKind { kRbf, kSignProjection, kIdLevel };

/// Abstract encoder from feature space (F dims) to hyperspace (D dims).
class Encoder {
 public:
  virtual ~Encoder() = default;

  /// Which family this encoder belongs to (used by persistence checks).
  virtual EncoderKind kind() const noexcept = 0;

  /// Feature-space dimensionality F.
  virtual std::size_t input_dim() const noexcept = 0;
  /// Hyperspace (physical) dimensionality D.
  virtual std::size_t output_dim() const noexcept = 0;

  /// Encode one sample: h must have size output_dim().
  virtual void encode(std::span<const float> x,
                      std::span<float> h) const = 0;

  /// Recompute only the listed hyperspace dimensions of one sample.
  /// Used after regeneration so re-encoding a dataset costs
  /// O(n * |dims| * F) instead of O(n * D * F).
  virtual void encode_dims(std::span<const float> x,
                           std::span<const std::size_t> dims,
                           std::span<float> h) const = 0;

  /// Resample the encoder state behind the listed dimensions from the
  /// encoder's prior. This is step (H) of the CyberHD workflow.
  virtual void regenerate(std::span<const std::size_t> dims,
                          core::Rng& rng) = 0;

  /// Deep copy (encoders are cheap relative to datasets).
  virtual std::unique_ptr<Encoder> clone() const = 0;

  /// Write this encoder (including a kind tag) to a binary stream.
  virtual void serialize(std::ostream& out) const = 0;

  /// Encode every row of X into the matching row of H (resized to
  /// X.rows() x output_dim()). The sample range splits across the
  /// context's pool when it has one. Returns the stage-1 handoff view over
  /// H that the scoring stage (HdcModel::similarities_batch, the quantized
  /// scorer) consumes. Rides encode_tile().
  EncodedBatch encode_batch(const core::Matrix& x, core::Matrix& h,
                            const core::ExecutionContext& exec =
                                core::ExecutionContext::serial()) const;

  /// Batched encode of rows [begin, end) of X, row i landing at
  /// out + (i - begin) * out_stride (out_stride >= output_dim() floats).
  /// The range is split into plan_encode_tile flow blocks across the
  /// context's pool; each block runs through encode_tile_block. Every
  /// batch-encode consumer — encode_batch, the encode-cache miss driver,
  /// the streamed trainer, the quantized packer — funnels through here.
  void encode_tile(const core::Matrix& x, std::size_t begin, std::size_t end,
                   float* out, std::size_t out_stride,
                   const core::ExecutionContext& exec) const;

  /// Serial building block of encode_tile: encode rows [begin, end) of X
  /// on the calling thread. The default walks the rows one encode() at a
  /// time; families whose per-dimension state is one contiguous block (the
  /// RBF and sign-projection encoders) override it with a register-blocked
  /// tile over the flow block — every value bit-identical to the per-row
  /// walk on the same backend.
  virtual void encode_tile_block(const core::Matrix& x, std::size_t begin,
                                 std::size_t end, float* out,
                                 std::size_t out_stride,
                                 const core::ExecutionContext& exec) const;

  /// Recompute columns `dims` of H for every row of X (after regeneration).
  /// The default loops encode_dims() row by row; families whose
  /// per-dimension state can be gathered into one contiguous block (the
  /// RBF encoder) override it to run each sample through a single fused
  /// kernel call — per-value results are bit-identical either way.
  virtual void encode_batch_dims(const core::Matrix& x,
                                 std::span<const std::size_t> dims,
                                 core::Matrix& h,
                                 const core::ExecutionContext& exec =
                                     core::ExecutionContext::serial()) const;
};

/// Random-Fourier-feature encoder: h_d = cos(b_d . x + c_d) with
/// b_d ~ N(0, (1/lengthscale^2) I) and c_d ~ U[0, 2pi). Encodes the RBF
/// kernel: E[h(x) . h(y)] ~ exp(-|x-y|^2 / (2 lengthscale^2)) * D / 2.
class RbfEncoder final : public Encoder {
 public:
  friend std::unique_ptr<Encoder> deserialize_encoder(std::istream&);

  /// Create with D output dims over F input features. `lengthscale` is the
  /// Gaussian kernel lengthscale (base vectors are sampled with stddev
  /// 1/lengthscale).
  RbfEncoder(std::size_t input_dim, std::size_t output_dim, core::Rng& rng,
             float lengthscale = 1.0f);

  EncoderKind kind() const noexcept override { return EncoderKind::kRbf; }
  std::size_t input_dim() const noexcept override { return bases_.cols(); }
  std::size_t output_dim() const noexcept override { return bases_.rows(); }
  void encode(std::span<const float> x, std::span<float> h) const override;
  void encode_dims(std::span<const float> x,
                   std::span<const std::size_t> dims,
                   std::span<float> h) const override;
  /// GEMM-shaped batched encode: streams the base matrix in L2-sized
  /// panels through cos_rbf_tile_f32, register-blocking over the block's
  /// flows so each base row is fetched once per block instead of once per
  /// flow. Bit-identical per backend to per-row encode() (the tile
  /// kernel's contract).
  void encode_tile_block(const core::Matrix& x, std::size_t begin,
                         std::size_t end, float* out,
                         std::size_t out_stride,
                         const core::ExecutionContext& exec) const override;
  /// Regeneration-refresh fast path: gathers the listed dimensions' bases
  /// and biases into one contiguous block once, then fuses each sample's
  /// refresh into a single cos_rbf_rows call (the default would issue
  /// |dims| single-row kernel calls per sample).
  void encode_batch_dims(const core::Matrix& x,
                         std::span<const std::size_t> dims, core::Matrix& h,
                         const core::ExecutionContext& exec =
                             core::ExecutionContext::serial()) const override;
  void regenerate(std::span<const std::size_t> dims,
                  core::Rng& rng) override;
  std::unique_ptr<Encoder> clone() const override;

  void serialize(std::ostream& out) const override;

  /// Base-vector matrix (D x F); row d is dimension d's private state.
  const core::Matrix& bases() const noexcept { return bases_; }
  /// Per-dimension phase shifts (size D).
  std::span<const float> biases() const noexcept { return biases_; }
  float lengthscale() const noexcept { return lengthscale_; }

 private:
  RbfEncoder() = default;
  void sample_row(std::size_t d, core::Rng& rng);

  core::Matrix bases_;         // D x F
  std::vector<float> biases_;  // D
  float lengthscale_ = 1.0f;
};

/// Bipolar random projection: h_d = sign(b_d . x), b_d ~ N(0, I).
/// The static encoder of first-generation HDC classifiers.
class SignProjectionEncoder final : public Encoder {
 public:
  SignProjectionEncoder(std::size_t input_dim, std::size_t output_dim,
                        core::Rng& rng);

  EncoderKind kind() const noexcept override {
    return EncoderKind::kSignProjection;
  }
  std::size_t input_dim() const noexcept override { return bases_.cols(); }
  std::size_t output_dim() const noexcept override { return bases_.rows(); }
  void encode(std::span<const float> x, std::span<float> h) const override;
  void encode_dims(std::span<const float> x,
                   std::span<const std::size_t> dims,
                   std::span<float> h) const override;
  /// Batched encode through the existing similarities_tile_f32 kernel
  /// (flows in the role of query rows, base panels in the role of class
  /// blocks) with a trivial sign epilogue — the tile's per-pair dots are
  /// bit-identical to encode()'s dot_f32 calls on the same backend.
  void encode_tile_block(const core::Matrix& x, std::size_t begin,
                         std::size_t end, float* out,
                         std::size_t out_stride,
                         const core::ExecutionContext& exec) const override;
  void regenerate(std::span<const std::size_t> dims,
                  core::Rng& rng) override;
  std::unique_ptr<Encoder> clone() const override;
  void serialize(std::ostream& out) const override;

 private:
  friend std::unique_ptr<Encoder> deserialize_encoder(std::istream&);
  SignProjectionEncoder() = default;
  core::Matrix bases_;  // D x F
};

/// Record-based ID/level encoder: each feature f owns a random bipolar ID
/// hypervector; each of Q quantization levels owns a level hypervector built
/// by progressive flipping (so nearby levels stay similar); a sample encodes
/// as sum_f ID_f * L_{level(x_f)} (elementwise bind, then bundle).
/// Inputs are expected in [0, 1] (values are clamped).
///
/// Deliberately NOT routed through the encode-tile kernel: each output
/// value gathers from per-feature level rows selected by the sample's
/// quantized feature values, so there is no shared contiguous base panel
/// two flows could stream together — the batched form would be a
/// different (gather-heavy) kernel, not a reuse win. It keeps the
/// base-class per-row encode_tile_block.
class IdLevelEncoder final : public Encoder {
 public:
  IdLevelEncoder(std::size_t input_dim, std::size_t output_dim,
                 core::Rng& rng, std::size_t num_levels = 32);

  EncoderKind kind() const noexcept override { return EncoderKind::kIdLevel; }
  std::size_t input_dim() const noexcept override { return num_features_; }
  std::size_t output_dim() const noexcept override { return dims_; }
  void encode(std::span<const float> x, std::span<float> h) const override;
  void encode_dims(std::span<const float> x,
                   std::span<const std::size_t> dims,
                   std::span<float> h) const override;
  void regenerate(std::span<const std::size_t> dims,
                  core::Rng& rng) override;
  std::unique_ptr<Encoder> clone() const override;
  void serialize(std::ostream& out) const override;

  std::size_t num_levels() const noexcept { return num_levels_; }

 private:
  friend std::unique_ptr<Encoder> deserialize_encoder(std::istream&);
  IdLevelEncoder() = default;
  std::size_t level_of(float v) const noexcept;

  std::size_t num_features_ = 0;
  std::size_t dims_ = 0;
  std::size_t num_levels_ = 0;
  // id_[f * dims_ + d] and level_[q * dims_ + d], values in {-1, +1}.
  std::vector<float> id_;
  std::vector<float> level_;
};

/// Printable name of an encoder kind.
const char* to_string(EncoderKind kind) noexcept;

/// Factory for the families above. `rbf_lengthscale` is used only by the
/// RBF family (pass a median-heuristic estimate for data-adaptive scaling).
std::unique_ptr<Encoder> make_encoder(EncoderKind kind, std::size_t input_dim,
                                      std::size_t output_dim, core::Rng& rng,
                                      float rbf_lengthscale = 1.0f);

/// Reconstruct any encoder previously written by Encoder::serialize().
/// Throws std::runtime_error on malformed input.
std::unique_ptr<Encoder> deserialize_encoder(std::istream& in);

/// The median heuristic for kernel lengthscales: the square root of the
/// median squared Euclidean distance over random sample pairs. Returns 1
/// for degenerate inputs (fewer than 2 rows or all-identical data).
float median_heuristic_lengthscale(const core::Matrix& x, core::Rng& rng,
                                   std::size_t max_pairs = 2048);

}  // namespace cyberhd::hdc
