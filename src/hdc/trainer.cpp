#include "hdc/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/kernels/kernels.hpp"

namespace cyberhd::hdc {

namespace {

// Stripe sizing of the one-shot bundle: inputs under 2 * 512 rows stay
// single-stripe (bit-identical to the historical sequential bundle into a
// zero model); larger ones split into up to 16 fixed stripes so
// initialize() parallelizes without the result depending on thread count.
constexpr std::size_t kInitStripeMinRows = 512;
constexpr std::size_t kInitMaxStripes = 16;

// Column striping of the update replay: boundaries are multiples of 16
// floats (one full zmm vector, a whole number of ymm vectors and cache
// lines), so every backend's axpy runs identical full-vector arithmetic
// inside a stripe — the bit-identity precondition. Stripes below 512
// columns aren't worth the dispatch.
constexpr std::size_t kUpdateStripeAlign = 16;
constexpr std::size_t kUpdateMinStripeCols = 512;

}  // namespace

// ---- InitAccumulator --------------------------------------------------------

InitAccumulator::InitAccumulator(std::size_t num_classes, std::size_t dims,
                                 std::size_t total_rows)
    : total_rows_(total_rows) {
  const std::size_t stripes = std::clamp<std::size_t>(
      total_rows / kInitStripeMinRows, 1, kInitMaxStripes);
  stripe_rows_ = std::max<std::size_t>(1, (total_rows + stripes - 1) / stripes);
  stripe_sums_.assign(stripes, core::Matrix(num_classes, dims));
  stripe_means_.assign(stripes, std::vector<double>(dims, 0.0));
  stripe_counts_.assign(stripes, std::vector<std::size_t>(num_classes, 0));
}

std::size_t InitAccumulator::stripe_of(std::size_t global_row) const noexcept {
  return std::min(global_row / stripe_rows_, num_stripes() - 1);
}

std::pair<std::size_t, std::size_t> InitAccumulator::stripe_range(
    std::size_t s) const noexcept {
  const std::size_t begin = s * stripe_rows_;
  return {std::min(begin, total_rows_),
          std::min(begin + stripe_rows_, total_rows_)};
}

void InitAccumulator::accumulate(const core::Matrix& encoded,
                                 std::span<const int> labels,
                                 std::size_t begin, std::size_t end,
                                 std::size_t row_offset) {
  assert(end <= encoded.rows() && end <= labels.size());
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t s = stripe_of(row_offset + i);
    const int y = labels[i];
    assert(y >= 0 &&
           static_cast<std::size_t>(y) < stripe_counts_[s].size());
    const auto h = encoded.row(i);
    core::axpy(1.0f, h, stripe_sums_[s].row(static_cast<std::size_t>(y)));
    auto& mean = stripe_means_[s];
    for (std::size_t d = 0; d < h.size(); ++d) mean[d] += h[d];
    ++stripe_counts_[s][static_cast<std::size_t>(y)];
  }
}

void InitAccumulator::finish(HdcModel& model, const TrainerConfig& config) {
  const std::size_t num_classes = model.num_classes();
  const std::size_t dims = model.dims();
  for (std::size_t s = 0; s < num_stripes(); ++s) {
    assert(stripe_sums_[s].rows() == num_classes &&
           stripe_sums_[s].cols() == dims);
    for (std::size_t c = 0; c < num_classes; ++c) {
      core::axpy(1.0f, stripe_sums_[s].row(c), model.class_vector(c));
    }
  }
  if (config.center_initialization && total_rows_ > 0) {
    // Grand-mean encoding, then subtract each class's share of it so class
    // hypervectors start with purely discriminative content. Stripes merge
    // in index order, keeping the sums independent of how rows were fed in.
    std::vector<double> mean(dims, 0.0);
    std::vector<std::size_t> counts(num_classes, 0);
    for (std::size_t s = 0; s < num_stripes(); ++s) {
      for (std::size_t d = 0; d < dims; ++d) mean[d] += stripe_means_[s][d];
      for (std::size_t c = 0; c < num_classes; ++c) {
        counts[c] += stripe_counts_[s][c];
      }
    }
    const double inv_n = 1.0 / static_cast<double>(total_rows_);
    for (std::size_t c = 0; c < num_classes; ++c) {
      auto cv = model.class_vector(c);
      const double share = static_cast<double>(counts[c]) * inv_n;
      for (std::size_t d = 0; d < cv.size(); ++d) {
        cv[d] -= static_cast<float>(share * mean[d]);
      }
    }
  }
}

// ---- UpdateAccumulator ------------------------------------------------------

void UpdateAccumulator::collect(const float* tile, std::size_t rows,
                                const int* labels,
                                std::span<const float> scores,
                                std::size_t num_classes, std::size_t dims,
                                EpochStats& stats) {
  assert(scores.size() >= rows * num_classes);
  tile_ = tile;
  dims_ = dims;
  updates_.clear();
  const auto step_weight = [&](float score) {
    return config_.similarity_weighted
               ? config_.learning_rate * (1.0f - score)
               : config_.learning_rate;
  };
  for (std::size_t r = 0; r < rows; ++r) {
    const auto truth = static_cast<std::size_t>(labels[r]);
    const std::span<const float> row_scores{scores.data() + r * num_classes,
                                            num_classes};
    const std::size_t pred = core::argmax(row_scores);
    if (pred != truth) {
      ++stats.mispredicted;
      // Truth before pred, matching the serial rule's axpy order (only the
      // per-class subsequence order matters — the axpys touch different
      // model rows — but keeping it identical costs nothing).
      updates_.push_back({static_cast<std::uint32_t>(r),
                          static_cast<std::uint32_t>(truth),
                          step_weight(row_scores[truth])});
      updates_.push_back({static_cast<std::uint32_t>(r),
                          static_cast<std::uint32_t>(pred),
                          -step_weight(row_scores[pred])});
    } else if (config_.reinforce_correct) {
      updates_.push_back({static_cast<std::uint32_t>(r),
                          static_cast<std::uint32_t>(truth),
                          step_weight(row_scores[truth])});
    }
  }
}

void UpdateAccumulator::apply(HdcModel& model,
                              const core::ExecutionContext& exec,
                              bool parallel) const {
  if (updates_.empty()) return;
  assert(model.dims() == dims_);
  const std::size_t dims = dims_;
  const core::Kernels& k = exec.kernels();
  // Replay the whole update list restricted to columns [d0, d1): every
  // class's updates land in visit order, and the 16-float boundary keeps
  // each element's axpy arithmetic identical to a full-row call.
  const auto replay = [&](std::size_t d0, std::size_t d1) {
    for (const Update& u : updates_) {
      k.axpy_f32(u.weight, tile_ + u.row * dims + d0,
                 model.class_vector(u.cls).data() + d0, d1 - d0);
    }
  };
  const std::size_t stripes =
      std::min(exec.workers(),
               std::max<std::size_t>(1, dims / kUpdateMinStripeCols));
  if (!parallel || exec.pool() == nullptr || stripes <= 1) {
    replay(0, dims);
    return;
  }
  const std::size_t stripe_cols =
      ((dims + stripes - 1) / stripes + kUpdateStripeAlign - 1) /
      kUpdateStripeAlign * kUpdateStripeAlign;
  exec.parallel_for(
      stripes,
      [&](std::size_t s_begin, std::size_t s_end) {
        for (std::size_t s = s_begin; s < s_end; ++s) {
          const std::size_t d0 = s * stripe_cols;
          if (d0 >= dims) continue;
          replay(d0, std::min(dims, d0 + stripe_cols));
        }
      },
      /*grain=*/1);
}

// ---- Trainer ----------------------------------------------------------------

void Trainer::initialize(HdcModel& model, const core::Matrix& encoded,
                         std::span<const int> labels) const {
  assert(encoded.rows() == labels.size());
  assert(encoded.cols() == model.dims());
  InitAccumulator acc(model.num_classes(), model.dims(), encoded.rows());
  // One task per stripe: the partition is fixed by the row count, so the
  // merged result is the same whichever worker handles which stripe.
  exec_.parallel_for(
      acc.num_stripes(),
      [&](std::size_t s_begin, std::size_t s_end) {
        for (std::size_t s = s_begin; s < s_end; ++s) {
          const auto [begin, end] = acc.stripe_range(s);
          acc.accumulate(encoded, labels, begin, end, /*row_offset=*/0);
        }
      },
      /*grain=*/1);
  acc.finish(model, config_);
}

std::vector<std::size_t> Trainer::epoch_order(std::size_t n, core::Rng& rng,
                                              bool shuffle) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (shuffle) rng.shuffle(order);
  return order;
}

void Trainer::update_tile(HdcModel& model, const float* tile,
                          std::size_t rows, const int* labels,
                          EpochStats& stats, std::span<float> scores,
                          std::span<float> class_norms,
                          UpdateAccumulator& acc, bool parallel) const {
  const std::size_t num_classes = model.num_classes();
  const std::size_t dims = model.dims();
  assert(scores.size() >= rows * num_classes);
  assert(class_norms.size() == num_classes);
  const core::Kernels& k = exec_.kernels();
  // Class norms once per tile — exactly the per-sample cadence when
  // batch_size == 1, where this runs once per sample as similarities() did.
  for (std::size_t c = 0; c < num_classes; ++c) {
    class_norms[c] = core::norm2(model.class_vector(c));
  }
  const float* classes = model.weights().data();
  // Frozen-model scoring: every row's cosines depend only on the tile and
  // the pre-update model, so the row range splits freely across workers;
  // the per-dot kernel contract keeps results identical for any split.
  // Sub-blocking keeps the block's rows L2-resident across the kernel pass
  // and the immediately following norm pass (one cold read per row, not
  // two); the block size is cache-derived, not hand-tuned.
  const std::size_t score_block = exec_.score_block_rows(dims);
  const auto score_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t b = begin; b < end; b += score_block) {
      const std::size_t block = std::min(score_block, end - b);
      k.similarities_tile_f32(tile + b * dims, block, classes, num_classes,
                              dims, scores.data() + b * num_classes);
      for (std::size_t r = b; r < b + block; ++r) {
        const float hn = core::norm2({tile + r * dims, dims});
        float* row_scores = scores.data() + r * num_classes;
        for (std::size_t c = 0; c < num_classes; ++c) {
          row_scores[c] =
              HdcModel::cosine_from_dot(row_scores[c], hn, class_norms[c]);
        }
      }
    }
  };
  if (parallel && rows > 1) {
    exec_.parallel_for(rows, score_rows, /*grain=*/8);
  } else {
    score_rows(0, rows);
  }
  // Update pass: serial decision sweep over the frozen scores, then the
  // striped replay — thread-parallel, deterministic for every worker count.
  acc.collect(tile, rows, labels, scores, num_classes, dims, stats);
  acc.apply(model, exec_, parallel);
}

EpochStats Trainer::train_epoch(HdcModel& model, const core::Matrix& encoded,
                                std::span<const int> labels,
                                core::Rng& rng) const {
  assert(encoded.rows() == labels.size());
  assert(encoded.cols() == model.dims());
  const std::size_t n = encoded.rows();
  const std::size_t num_classes = model.num_classes();
  const std::size_t dims = encoded.cols();
  const std::vector<std::size_t> order =
      epoch_order(n, rng, config_.shuffle);

  EpochStats stats;
  stats.samples = n;
  if (n == 0) return stats;
  // Clamp the tile to the data so scratch stays O(min(batch, n) x D).
  const std::size_t batch = std::min(resolved_batch_size(dims), n);
  std::vector<float> class_norms(num_classes);
  std::vector<float> scores(batch * num_classes);
  UpdateAccumulator acc(config_);
  core::Matrix gathered;
  std::vector<int> gathered_labels;
  if (batch > 1) {
    gathered.resize(batch, dims);
    gathered_labels.resize(batch);
  }
  for (std::size_t t = 0; t < n; t += batch) {
    const std::size_t m = std::min(batch, n - t);
    if (batch == 1) {
      // No gather: score the encoded row in place. One row through the
      // tile kernel is the classic sequential rule, bit-exactly.
      const std::size_t idx = order[t];
      update_tile(model, encoded.row(idx).data(), 1, &labels[idx], stats,
                  scores, class_norms, acc, /*parallel=*/false);
    } else {
      // Shuffled rows are scattered; gather the tile so the kernel streams
      // one contiguous block (and the update pass reuses the hot copy).
      for (std::size_t j = 0; j < m; ++j) {
        const std::size_t idx = order[t + j];
        std::copy_n(encoded.row(idx).data(), dims, gathered.row(j).data());
        gathered_labels[j] = labels[idx];
      }
      update_tile(model, gathered.data(), m, gathered_labels.data(), stats,
                  scores, class_norms, acc, /*parallel=*/true);
    }
  }
  return stats;
}

void Trainer::train_tile(HdcModel& model, const core::Matrix& tile,
                         std::span<const int> labels,
                         EpochStats& stats) const {
  const std::size_t n = labels.size();
  assert(tile.rows() >= n);
  assert(tile.cols() == model.dims());
  if (n == 0) return;
  const std::size_t num_classes = model.num_classes();
  const std::size_t batch = std::min(resolved_batch_size(tile.cols()), n);
  std::vector<float> class_norms(num_classes);
  std::vector<float> scores(batch * num_classes);
  UpdateAccumulator acc(config_);
  for (std::size_t t = 0; t < n; t += batch) {
    const std::size_t m = std::min(batch, n - t);
    update_tile(model, tile.row(t).data(), m, labels.data() + t, stats,
                scores, class_norms, acc, /*parallel=*/m > 1);
  }
}

EpochStats Trainer::train(HdcModel& model, const core::Matrix& encoded,
                          std::span<const int> labels, std::size_t epochs,
                          core::Rng& rng) const {
  EpochStats last;
  for (std::size_t e = 0; e < epochs; ++e) {
    last = train_epoch(model, encoded, labels, rng);
  }
  return last;
}

double Trainer::evaluate(const HdcModel& model, const core::Matrix& encoded,
                         std::span<const int> labels,
                         const core::ExecutionContext& exec) {
  assert(encoded.rows() == labels.size());
  if (encoded.rows() == 0) return 0.0;
  core::Matrix scores;
  model.similarities_batch(encoded, scores, exec);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < encoded.rows(); ++i) {
    if (core::argmax(scores.row(i)) == static_cast<std::size_t>(labels[i])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(encoded.rows());
}

}  // namespace cyberhd::hdc
