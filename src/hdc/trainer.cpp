#include "hdc/trainer.hpp"

#include <cassert>
#include <numeric>

namespace cyberhd::hdc {

void Trainer::initialize(HdcModel& model, const core::Matrix& encoded,
                         std::span<const int> labels) const {
  assert(encoded.rows() == labels.size());
  assert(encoded.cols() == model.dims());
  std::vector<std::size_t> counts(model.num_classes(), 0);
  for (std::size_t i = 0; i < encoded.rows(); ++i) {
    const int y = labels[i];
    assert(y >= 0 && static_cast<std::size_t>(y) < model.num_classes());
    model.bundle(static_cast<std::size_t>(y), encoded.row(i));
    ++counts[static_cast<std::size_t>(y)];
  }
  if (config_.center_initialization && encoded.rows() > 0) {
    // Grand-mean encoding, then subtract each class's share of it so class
    // hypervectors start with purely discriminative content.
    std::vector<double> mean(model.dims(), 0.0);
    for (std::size_t i = 0; i < encoded.rows(); ++i) {
      const auto h = encoded.row(i);
      for (std::size_t d = 0; d < h.size(); ++d) mean[d] += h[d];
    }
    const double inv_n = 1.0 / static_cast<double>(encoded.rows());
    for (std::size_t c = 0; c < model.num_classes(); ++c) {
      auto cv = model.class_vector(c);
      const double share = static_cast<double>(counts[c]) * inv_n;
      for (std::size_t d = 0; d < cv.size(); ++d) {
        cv[d] -= static_cast<float>(share * mean[d]);
      }
    }
  }
}

EpochStats Trainer::train_epoch(HdcModel& model, const core::Matrix& encoded,
                                std::span<const int> labels,
                                core::Rng& rng) const {
  assert(encoded.rows() == labels.size());
  assert(encoded.cols() == model.dims());
  const std::size_t n = encoded.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (config_.shuffle) rng.shuffle(order);

  EpochStats stats;
  stats.samples = n;
  std::vector<float> scores(model.num_classes());
  for (std::size_t idx : order) {
    const auto h = encoded.row(idx);
    const auto truth = static_cast<std::size_t>(labels[idx]);
    model.similarities(h, scores);
    const std::size_t pred = core::argmax(scores);
    const auto step_weight = [&](float score) {
      return config_.similarity_weighted
                 ? config_.learning_rate * (1.0f - score)
                 : config_.learning_rate;
    };
    if (pred != truth) {
      ++stats.mispredicted;
      core::axpy(step_weight(scores[truth]), h, model.class_vector(truth));
      core::axpy(-step_weight(scores[pred]), h, model.class_vector(pred));
    } else if (config_.reinforce_correct) {
      core::axpy(step_weight(scores[truth]), h, model.class_vector(truth));
    }
  }
  return stats;
}

EpochStats Trainer::train(HdcModel& model, const core::Matrix& encoded,
                          std::span<const int> labels, std::size_t epochs,
                          core::Rng& rng) const {
  EpochStats last;
  for (std::size_t e = 0; e < epochs; ++e) {
    last = train_epoch(model, encoded, labels, rng);
  }
  return last;
}

double Trainer::evaluate(const HdcModel& model, const core::Matrix& encoded,
                         std::span<const int> labels) {
  assert(encoded.rows() == labels.size());
  if (encoded.rows() == 0) return 0.0;
  std::size_t correct = 0;
  std::vector<float> scores(model.num_classes());
  for (std::size_t i = 0; i < encoded.rows(); ++i) {
    model.similarities(encoded.row(i), scores);
    if (core::argmax(scores) == static_cast<std::size_t>(labels[i])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(encoded.rows());
}

}  // namespace cyberhd::hdc
