#include "hdc/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/kernels/kernels.hpp"

namespace cyberhd::hdc {

namespace {

// Stripe sizing of the one-shot bundle: inputs under 2 * 512 rows stay
// single-stripe (bit-identical to the historical sequential bundle into a
// zero model); larger ones split into up to 16 fixed stripes so
// initialize() parallelizes without the result depending on thread count.
constexpr std::size_t kInitStripeMinRows = 512;
constexpr std::size_t kInitMaxStripes = 16;

}  // namespace

// ---- InitAccumulator --------------------------------------------------------

InitAccumulator::InitAccumulator(std::size_t num_classes, std::size_t dims,
                                 std::size_t total_rows)
    : total_rows_(total_rows) {
  const std::size_t stripes = std::clamp<std::size_t>(
      total_rows / kInitStripeMinRows, 1, kInitMaxStripes);
  stripe_rows_ = std::max<std::size_t>(1, (total_rows + stripes - 1) / stripes);
  stripe_sums_.assign(stripes, core::Matrix(num_classes, dims));
  stripe_means_.assign(stripes, std::vector<double>(dims, 0.0));
  stripe_counts_.assign(stripes, std::vector<std::size_t>(num_classes, 0));
}

std::size_t InitAccumulator::stripe_of(std::size_t global_row) const noexcept {
  return std::min(global_row / stripe_rows_, num_stripes() - 1);
}

std::pair<std::size_t, std::size_t> InitAccumulator::stripe_range(
    std::size_t s) const noexcept {
  const std::size_t begin = s * stripe_rows_;
  return {std::min(begin, total_rows_),
          std::min(begin + stripe_rows_, total_rows_)};
}

void InitAccumulator::accumulate(const core::Matrix& encoded,
                                 std::span<const int> labels,
                                 std::size_t begin, std::size_t end,
                                 std::size_t row_offset) {
  assert(end <= encoded.rows() && end <= labels.size());
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t s = stripe_of(row_offset + i);
    const int y = labels[i];
    assert(y >= 0 &&
           static_cast<std::size_t>(y) < stripe_counts_[s].size());
    const auto h = encoded.row(i);
    core::axpy(1.0f, h, stripe_sums_[s].row(static_cast<std::size_t>(y)));
    auto& mean = stripe_means_[s];
    for (std::size_t d = 0; d < h.size(); ++d) mean[d] += h[d];
    ++stripe_counts_[s][static_cast<std::size_t>(y)];
  }
}

void InitAccumulator::finish(HdcModel& model, const TrainerConfig& config) {
  const std::size_t num_classes = model.num_classes();
  const std::size_t dims = model.dims();
  for (std::size_t s = 0; s < num_stripes(); ++s) {
    assert(stripe_sums_[s].rows() == num_classes &&
           stripe_sums_[s].cols() == dims);
    for (std::size_t c = 0; c < num_classes; ++c) {
      core::axpy(1.0f, stripe_sums_[s].row(c), model.class_vector(c));
    }
  }
  if (config.center_initialization && total_rows_ > 0) {
    // Grand-mean encoding, then subtract each class's share of it so class
    // hypervectors start with purely discriminative content. Stripes merge
    // in index order, keeping the sums independent of how rows were fed in.
    std::vector<double> mean(dims, 0.0);
    std::vector<std::size_t> counts(num_classes, 0);
    for (std::size_t s = 0; s < num_stripes(); ++s) {
      for (std::size_t d = 0; d < dims; ++d) mean[d] += stripe_means_[s][d];
      for (std::size_t c = 0; c < num_classes; ++c) {
        counts[c] += stripe_counts_[s][c];
      }
    }
    const double inv_n = 1.0 / static_cast<double>(total_rows_);
    for (std::size_t c = 0; c < num_classes; ++c) {
      auto cv = model.class_vector(c);
      const double share = static_cast<double>(counts[c]) * inv_n;
      for (std::size_t d = 0; d < cv.size(); ++d) {
        cv[d] -= static_cast<float>(share * mean[d]);
      }
    }
  }
}

// ---- Trainer ----------------------------------------------------------------

void Trainer::initialize(HdcModel& model, const core::Matrix& encoded,
                         std::span<const int> labels,
                         core::ThreadPool* pool) const {
  assert(encoded.rows() == labels.size());
  assert(encoded.cols() == model.dims());
  InitAccumulator acc(model.num_classes(), model.dims(), encoded.rows());
  // One task per stripe: the partition is fixed by the row count, so the
  // merged result is the same whichever worker handles which stripe.
  const auto stripe_body = [&](std::size_t s_begin, std::size_t s_end) {
    for (std::size_t s = s_begin; s < s_end; ++s) {
      const auto [begin, end] = acc.stripe_range(s);
      acc.accumulate(encoded, labels, begin, end, /*row_offset=*/0);
    }
  };
  if (pool != nullptr && acc.num_stripes() > 1) {
    pool->parallel_for(acc.num_stripes(), stripe_body, /*grain=*/1);
  } else {
    stripe_body(0, acc.num_stripes());
  }
  acc.finish(model, config_);
}

std::vector<std::size_t> Trainer::epoch_order(std::size_t n, core::Rng& rng,
                                              bool shuffle) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (shuffle) rng.shuffle(order);
  return order;
}

void Trainer::update_tile(HdcModel& model, const float* tile,
                          std::size_t rows, const int* labels,
                          EpochStats& stats, std::span<float> scores,
                          std::span<float> class_norms,
                          core::ThreadPool* pool) const {
  const std::size_t num_classes = model.num_classes();
  const std::size_t dims = model.dims();
  assert(scores.size() >= rows * num_classes);
  assert(class_norms.size() == num_classes);
  const core::Kernels& k = core::active_kernels();
  // Class norms once per tile — exactly the per-sample cadence when
  // batch_size == 1, where this runs once per sample as similarities() did.
  for (std::size_t c = 0; c < num_classes; ++c) {
    class_norms[c] = core::norm2(model.class_vector(c));
  }
  const float* classes = model.weights().data();
  // Frozen-model scoring: every row's cosines depend only on the tile and
  // the pre-update model, so the row range splits freely across workers;
  // the per-dot kernel contract keeps results identical for any split.
  // Sub-blocking keeps the block's rows L2-resident across the kernel pass
  // and the immediately following norm pass (one cold read per row, not
  // two) — at D = 10k a 16-row block is ~640 KB.
  constexpr std::size_t kScoreBlock = 16;
  const auto score_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t b = begin; b < end; b += kScoreBlock) {
      const std::size_t block = std::min(kScoreBlock, end - b);
      k.similarities_tile_f32(tile + b * dims, block, classes, num_classes,
                              dims, scores.data() + b * num_classes);
      for (std::size_t r = b; r < b + block; ++r) {
        const float hn = core::norm2({tile + r * dims, dims});
        float* row_scores = scores.data() + r * num_classes;
        for (std::size_t c = 0; c < num_classes; ++c) {
          row_scores[c] =
              HdcModel::cosine_from_dot(row_scores[c], hn, class_norms[c]);
        }
      }
    }
  };
  if (pool != nullptr && rows > 1) {
    pool->parallel_for(rows, score_rows, /*grain=*/8);
  } else {
    score_rows(0, rows);
  }
  // Serial update pass in visit order — the adaptive rule itself stays
  // sequential, so training is deterministic for every thread count.
  const auto step_weight = [&](float score) {
    return config_.similarity_weighted
               ? config_.learning_rate * (1.0f - score)
               : config_.learning_rate;
  };
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const float> h{tile + r * dims, dims};
    const auto truth = static_cast<std::size_t>(labels[r]);
    const std::span<const float> row_scores{scores.data() + r * num_classes,
                                            num_classes};
    const std::size_t pred = core::argmax(row_scores);
    if (pred != truth) {
      ++stats.mispredicted;
      core::axpy(step_weight(row_scores[truth]), h,
                 model.class_vector(truth));
      core::axpy(-step_weight(row_scores[pred]), h, model.class_vector(pred));
    } else if (config_.reinforce_correct) {
      core::axpy(step_weight(row_scores[truth]), h,
                 model.class_vector(truth));
    }
  }
}

EpochStats Trainer::train_epoch(HdcModel& model, const core::Matrix& encoded,
                                std::span<const int> labels, core::Rng& rng,
                                core::ThreadPool* pool) const {
  assert(encoded.rows() == labels.size());
  assert(encoded.cols() == model.dims());
  const std::size_t n = encoded.rows();
  const std::size_t num_classes = model.num_classes();
  const std::size_t dims = encoded.cols();
  const std::vector<std::size_t> order =
      epoch_order(n, rng, config_.shuffle);

  EpochStats stats;
  stats.samples = n;
  if (n == 0) return stats;
  // Clamp the tile to the data so scratch stays O(min(batch, n) x D).
  const std::size_t batch =
      std::min(std::max<std::size_t>(1, config_.batch_size), n);
  std::vector<float> class_norms(num_classes);
  std::vector<float> scores(batch * num_classes);
  core::Matrix gathered;
  std::vector<int> gathered_labels;
  if (batch > 1) {
    gathered.resize(batch, dims);
    gathered_labels.resize(batch);
  }
  for (std::size_t t = 0; t < n; t += batch) {
    const std::size_t m = std::min(batch, n - t);
    if (batch == 1) {
      // No gather: score the encoded row in place. One row through the
      // tile kernel is the classic sequential rule, bit-exactly.
      const std::size_t idx = order[t];
      update_tile(model, encoded.row(idx).data(), 1, &labels[idx], stats,
                  scores, class_norms, nullptr);
    } else {
      // Shuffled rows are scattered; gather the tile so the kernel streams
      // one contiguous block (and the update pass reuses the hot copy).
      for (std::size_t j = 0; j < m; ++j) {
        const std::size_t idx = order[t + j];
        std::copy_n(encoded.row(idx).data(), dims, gathered.row(j).data());
        gathered_labels[j] = labels[idx];
      }
      update_tile(model, gathered.data(), m, gathered_labels.data(), stats,
                  scores, class_norms, pool);
    }
  }
  return stats;
}

void Trainer::train_tile(HdcModel& model, const core::Matrix& tile,
                         std::span<const int> labels, EpochStats& stats,
                         core::ThreadPool* pool) const {
  const std::size_t n = labels.size();
  assert(tile.rows() >= n);
  assert(tile.cols() == model.dims());
  if (n == 0) return;
  const std::size_t num_classes = model.num_classes();
  const std::size_t batch =
      std::min(std::max<std::size_t>(1, config_.batch_size), n);
  std::vector<float> class_norms(num_classes);
  std::vector<float> scores(batch * num_classes);
  for (std::size_t t = 0; t < n; t += batch) {
    const std::size_t m = std::min(batch, n - t);
    update_tile(model, tile.row(t).data(), m, labels.data() + t, stats,
                scores, class_norms, m > 1 ? pool : nullptr);
  }
}

EpochStats Trainer::train(HdcModel& model, const core::Matrix& encoded,
                          std::span<const int> labels, std::size_t epochs,
                          core::Rng& rng, core::ThreadPool* pool) const {
  EpochStats last;
  for (std::size_t e = 0; e < epochs; ++e) {
    last = train_epoch(model, encoded, labels, rng, pool);
  }
  return last;
}

double Trainer::evaluate(const HdcModel& model, const core::Matrix& encoded,
                         std::span<const int> labels,
                         core::ThreadPool* pool) {
  assert(encoded.rows() == labels.size());
  if (encoded.rows() == 0) return 0.0;
  core::Matrix scores;
  model.similarities_batch(encoded, scores, pool);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < encoded.rows(); ++i) {
    if (core::argmax(scores.row(i)) == static_cast<std::size_t>(labels[i])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(encoded.rows());
}

}  // namespace cyberhd::hdc
