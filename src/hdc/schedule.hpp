// The shared training-schedule driver behind CyberHdClassifier::fit().
//
// The CyberHD fit loop of Fig. 2 — one-shot bundle, then N cycles of
// [adaptive epochs -> drop-and-regenerate -> refresh touched dims], then
// final epochs — used to exist twice: once over an in-memory encoded
// matrix and once in the streamed tile-at-a-time variant, differing only
// in how rows are produced and how regenerated columns are refreshed.
// ScheduleDriver owns that control flow exactly once; the two fit paths
// supply their row production and refresh strategies as SchedulePhases
// callbacks. Because the driver performs the same sequence of trainer,
// regeneration, and RNG operations the duplicated loops performed, the
// streamed == in-memory bit-identity contract is preserved by
// construction (and still pinned by tests).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "hdc/encoder.hpp"
#include "hdc/model.hpp"
#include "hdc/regen.hpp"
#include "hdc/trainer.hpp"

namespace cyberhd::hdc {

/// Per-fit diagnostics: accuracy trajectory and the regeneration ledger.
struct FitReport {
  /// Training accuracy after each adaptive epoch, in order.
  std::vector<double> epoch_accuracy;
  /// Dimensions regenerated at each step.
  std::vector<std::size_t> regenerated_per_step;
  /// Final effective dimensionality D*.
  std::size_t effective_dims = 0;
  /// Total adaptive epochs run.
  std::size_t epochs = 0;
  /// Rows of the largest encoded buffer fit() held resident: the full
  /// training-set row count on the in-memory path, the tile row count when
  /// streaming — the observable for memory-bound deployments (and tests).
  std::size_t peak_encode_rows = 0;
};

/// The schedule knobs the driver consumes (a projection of CyberHdConfig).
struct ScheduleConfig {
  double regen_rate = 0.0;
  std::size_t regen_steps = 0;
  std::size_t epochs_per_step = 0;
  std::size_t final_epochs = 0;

  bool regenerating() const noexcept {
    return regen_rate > 0.0 && regen_steps > 0;
  }
};

/// The strategy callbacks a fit path plugs into the driver. All three are
/// required; each runs over whatever row storage the path owns.
struct SchedulePhases {
  /// One-shot initialization: bundle every training sample into the model.
  std::function<void()> bundle;
  /// One adaptive epoch over the whole training set, returning its stats.
  /// The callback draws its visit order from the training RNG, so calls
  /// must happen exactly in driver order — which they do, since only the
  /// driver calls it.
  std::function<EpochStats()> run_epoch;
  /// A regeneration step just resampled `dims`: refresh whatever encoded
  /// state the path caches and (when configured) re-bundle the touched
  /// model columns.
  std::function<void(std::span<const std::size_t> dims)> refresh_dims;
};

/// Centered re-bundle of freshly regenerated dimensions: double-precision
/// class sums minus each class's share of the grand mean, written straight
/// into the touched model columns. A raw bundle would hand the fresh
/// dimensions mostly class-common mass — exactly what the variance
/// criterion exists to remove. Shared by the in-memory and streamed regen
/// phases (and the golden-fit regression tests) so the arithmetic compiles
/// exactly once, which is what keeps their bit-identity contracts honest.
class RegenRebundle {
 public:
  RegenRebundle(std::size_t num_classes, std::span<const std::size_t> dims);

  /// Accumulate one encoded row (only the regenerated entries are read).
  void add_row(std::span<const float> h, std::size_t cls);

  /// Write the centered values into the model's touched columns.
  void apply(HdcModel& model, std::span<const int> labels) const;

 private:
  std::span<const std::size_t> dims_;
  std::vector<double> class_sum_;
  std::vector<double> total_sum_;
};

/// Runs the bundle -> [epochs -> regenerate -> refresh] x N -> final-epochs
/// schedule, recording the epoch-accuracy trajectory and the regeneration
/// ledger into a FitReport.
class ScheduleDriver {
 public:
  ScheduleDriver(ScheduleConfig config, RegenController& regen,
                 HdcModel& model, Encoder& encoder, core::Rng& regen_rng)
      : config_(config),
        regen_(regen),
        model_(model),
        encoder_(encoder),
        regen_rng_(regen_rng) {}

  void run(FitReport& report, const SchedulePhases& phases) const;

 private:
  ScheduleConfig config_;
  RegenController& regen_;
  HdcModel& model_;
  Encoder& encoder_;
  core::Rng& regen_rng_;
};

}  // namespace cyberhd::hdc
