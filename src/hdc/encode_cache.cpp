#include "hdc/encode_cache.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "core/env.hpp"
#include "hdc/encoder.hpp"

namespace cyberhd::hdc {

std::size_t EncodeCache::capacity_from_env() noexcept {
  // "0" is an explicit disable; the ceiling keeps a typo from demanding
  // terabytes of ring storage (rejected with a warning, not clamped —
  // the shared env contract).
  return static_cast<std::size_t>(core::env::u64(
      "CYBERHD_ENCODE_CACHE", kDefaultCapacityRows, 0, 1ULL << 24));
}

std::size_t EncodeCache::shards_from_env() noexcept {
  // Auto default: at least one shard per shared-L3 domain (the worker
  // groups that probe concurrently), with a floor that keeps contention
  // low even on single-domain hosts serving many client streams.
  const std::size_t auto_shards = std::max<std::size_t>(
      kDefaultShards, core::CacheTopology::detected().l3_domains);
  return static_cast<std::size_t>(
      core::env::u64("CYBERHD_CACHE_SHARDS", auto_shards, 1, 256));
}

EncodeCache::EncodeCache(std::size_t input_dim, std::size_t encoded_dim,
                         std::size_t capacity_rows, std::size_t shards,
                         std::size_t entry_bytes)
    : input_dim_(input_dim),
      encoded_dim_(encoded_dim),
      capacity_(capacity_rows),
      entry_bytes_(entry_bytes != 0 ? entry_bytes
                                    : encoded_dim * sizeof(float)),
      // Cache-line stride: float entries stay 4-aligned and packed-word
      // entries 8-aligned whatever the entry size, and neighbouring slots
      // never share a line.
      entry_stride_((entry_bytes_ + 63) & ~std::size_t{63}) {
  assert(input_dim > 0 && encoded_dim > 0 && capacity_rows > 0);
  if (shards == 0) shards = shards_from_env();
  // Every shard must own at least one ring slot, so tiny caches collapse
  // to fewer shards (capacity 1 = the single-slot aliasing ring the tests
  // exercise, now per shard).
  num_shards_ = std::clamp<std::size_t>(shards, 1, capacity_rows);
  shards_ = std::make_unique<Shard[]>(num_shards_);
  const std::size_t base = capacity_ / num_shards_;
  const std::size_t rem = capacity_ % num_shards_;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    shards_[s].capacity = base + (s < rem ? 1 : 0);
  }
}

std::size_t EncodeCache::shard_of(std::uint64_t hash) const noexcept {
  // FNV's low bits correlate with the last bytes hashed; run the whole
  // word through a splitmix64-style finalizer before the modulus so shard
  // load stays balanced for structured feature rows.
  std::uint64_t z = hash;
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % num_shards_);
}

void EncodeCache::ensure_storage(Shard& shard) {
  if (shard.raw.rows() == shard.capacity) return;
  shard.raw.resize(shard.capacity, input_dim_);
  shard.entries.assign(shard.capacity * entry_stride_, 0);
  shard.slot_hash.assign(shard.capacity, 0);
  shard.occupied.assign(shard.capacity, false);
  shard.resident = 0;
  shard.index.reserve(shard.capacity);
}

std::size_t EncodeCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total += shards_[s].index.size();
  }
  return total;
}

void EncodeCache::clear() {
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.index.clear();
    std::fill(shard.occupied.begin(), shard.occupied.end(), false);
    shard.resident = 0;
    shard.next_slot = 0;
    shard.stats = {};
  }
}

EncodeCacheStats EncodeCache::stats() const {
  EncodeCacheStats total;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total.hits += shards_[s].stats.hits;
    total.misses += shards_[s].stats.misses;
    total.evictions += shards_[s].stats.evictions;
    total.bytes_resident +=
        static_cast<std::uint64_t>(shards_[s].resident) * entry_bytes_;
    total.bytes_capacity +=
        static_cast<std::uint64_t>(shards_[s].capacity) * entry_bytes_;
  }
  return total;
}

EncodeCacheStats EncodeCache::shard_stats(std::size_t shard) const {
  assert(shard < num_shards_);
  const std::lock_guard<std::mutex> lock(shards_[shard].mutex);
  EncodeCacheStats s = shards_[shard].stats;
  s.bytes_resident =
      static_cast<std::uint64_t>(shards_[shard].resident) * entry_bytes_;
  s.bytes_capacity =
      static_cast<std::uint64_t>(shards_[shard].capacity) * entry_bytes_;
  return s;
}

std::uint64_t EncodeCache::hash_row(std::span<const float> x) noexcept {
  // FNV-1a 64 over the raw bytes: cheap relative to even one hypervector
  // dimension's encode, and collisions are harmless (find_slot verifies
  // content before serving a hit).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(x.data());
  const std::size_t n = x.size_bytes();
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::size_t EncodeCache::find_slot(const Shard& shard, std::uint64_t hash,
                                   std::span<const float> x) const {
  // Before the shard's first insert its index is empty, so the
  // unallocated ring is never dereferenced.
  const auto it = shard.index.find(hash);
  if (it == shard.index.end()) return shard.capacity;
  const std::size_t slot = it->second;
  if (!shard.occupied[slot] || shard.slot_hash[slot] != hash) {
    return shard.capacity;
  }
  // Content verification: a colliding row must re-encode, never replay
  // another flow's hypervector.
  if (std::memcmp(shard.raw.row(slot).data(), x.data(), x.size_bytes()) !=
      0) {
    return shard.capacity;
  }
  return slot;
}

void EncodeCache::insert(Shard& shard, std::uint64_t hash,
                         std::span<const float> x,
                         const unsigned char* entry) {
  const std::size_t slot = shard.next_slot;
  shard.next_slot = (shard.next_slot + 1) % shard.capacity;
  if (shard.occupied[slot]) {
    // Ring eviction: drop the index entry that still points at this slot
    // (a later insert of the same hash may have redirected it already).
    const auto it = shard.index.find(shard.slot_hash[slot]);
    if (it != shard.index.end() && it->second == slot) {
      shard.index.erase(it);
    }
    ++shard.stats.evictions;
  } else {
    ++shard.resident;
  }
  std::copy(x.begin(), x.end(), shard.raw.row(slot).begin());
  std::memcpy(slot_entry(shard, slot), entry, entry_bytes_);
  shard.slot_hash[slot] = hash;
  shard.occupied[slot] = true;
  shard.index[hash] = static_cast<std::uint32_t>(slot);
}

std::size_t EncodeCache::encode_rows(const Encoder& encoder,
                                     const core::Matrix& x,
                                     std::size_t begin, std::size_t end,
                                     core::Matrix& h,
                                     const core::ExecutionContext& exec) {
  assert(x.cols() == input_dim_);
  assert(h.cols() == encoded_dim_ && h.rows() >= end - begin);
  assert(entry_bytes_ == encoded_dim_ * sizeof(float) &&
         "float driver on a float-armed cache only");
  auto* out = reinterpret_cast<unsigned char*>(h.data());
  const std::size_t stride = h.cols() * sizeof(float);
  return encode_entries(
      x, begin, end, out, stride,
      [&](std::span<const std::size_t> rows, unsigned char* o,
          std::size_t o_stride) {
        // Batched miss encode: gather the miss rows into one contiguous
        // block, run the whole list through the encoder's tile path, then
        // scatter to the miss slots (a D-float memcpy per row — cheap
        // next to the encode it rides on).
        const std::size_t k = rows.size();
        core::Matrix raw(k, input_dim_);
        for (std::size_t j = 0; j < k; ++j) {
          const auto src = x.row(begin + rows[j]);
          std::copy(src.begin(), src.end(), raw.row(j).begin());
        }
        core::Matrix enc(k, encoded_dim_);
        encoder.encode_tile(raw, 0, k, enc.data(), encoded_dim_, exec);
        for (std::size_t j = 0; j < k; ++j) {
          std::memcpy(o + rows[j] * o_stride, enc.row(j).data(),
                      entry_bytes_);
        }
      },
      exec);
}

std::size_t EncodeCache::encode_entries(
    const core::Matrix& x, std::size_t begin, std::size_t end,
    unsigned char* out, std::size_t out_stride,
    const std::function<void(std::span<const std::size_t>, unsigned char*,
                             std::size_t)>& encode_misses,
    const core::ExecutionContext& /*exec*/) {
  assert(end >= begin && end <= x.rows());
  assert(x.cols() == input_dim_);
  assert(out_stride >= entry_bytes_);
  const std::size_t m = end - begin;
  if (m == 0) return 0;

  // Hashing and shard routing are pure functions of the rows — done
  // before any lock, so concurrent scorers only serialize on their own
  // shards' index lookups and hit copies, never on the full-batch sweep.
  std::vector<std::uint64_t> hashes(m);
  std::vector<std::uint32_t> shard_of_row(m);
  std::vector<std::vector<std::size_t>> rows_of_shard(num_shards_);
  for (std::size_t i = 0; i < m; ++i) {
    hashes[i] = hash_row(x.row(begin + i));
    const std::size_t s = shard_of(hashes[i]);
    shard_of_row[i] = static_cast<std::uint32_t>(s);
    rows_of_shard[s].push_back(i);
  }

  // Probe pass (per shard, under that shard's lock only): copy hits
  // straight into the output rows, collect miss indices. The copies are
  // memcpy-cheap next to the encodes they replace. A row repeated
  // *within* this batch — common when a large coalesced drain covers many
  // arrivals of the same flow — encodes once: later occurrences are
  // deduplicated against the first one and copied after the encode pass.
  // Identical rows share a hash and therefore a shard, and a shard's rows
  // are walked in batch order, so the dedup source is always the earlier
  // occurrence. Locks are taken one shard at a time (never nested).
  std::vector<std::size_t> misses;
  std::vector<std::vector<std::size_t>> misses_of_shard(num_shards_);
  struct BatchDup {
    std::size_t row;  // this occurrence
    std::size_t src;  // the batch row whose fresh encode it copies
  };
  std::vector<BatchDup> dups;
  std::unordered_map<std::uint64_t, std::size_t> batch_first;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (rows_of_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const std::size_t i : rows_of_shard[s]) {
      const auto row = x.row(begin + i);
      const std::size_t slot = find_slot(shard, hashes[i], row);
      if (slot < shard.capacity) {
        std::memcpy(out + i * out_stride, slot_entry(shard, slot),
                    entry_bytes_);
        ++shard.stats.hits;
        continue;
      }
      const auto [first, is_new] = batch_first.try_emplace(hashes[i], i);
      if (!is_new &&
          std::memcmp(x.row(begin + first->second).data(), row.data(),
                      row.size_bytes()) == 0) {
        dups.push_back({i, first->second});
        ++shard.stats.hits;
      } else {
        misses.push_back(i);
        misses_of_shard[s].push_back(i);
        ++shard.stats.misses;
      }
    }
  }

  // Encode pass (lock-free): the whole miss list in one batched callback.
  // The callback owns gather, tiling, and pool-parallelism — the tile
  // encoders turn the list into GEMM-shaped kernel calls, so every base
  // row fetched from cache is reused across the batch's misses instead of
  // re-streamed per row. Per-row results are independent of the batching,
  // so output never depends on the miss mix.
  if (!misses.empty()) {
    encode_misses(misses, out, out_stride);
  }

  // In-batch duplicates replay the fresh encode of their first occurrence
  // (bit-identical by encoder determinism, like any cache hit).
  for (const BatchDup& d : dups) {
    std::memcpy(out + d.row * out_stride, out + d.src * out_stride,
                entry_bytes_);
  }

  // Insert pass (per shard, under that shard's lock only): fresh encodes
  // enter their shard's ring in batch order. In-batch duplicates never
  // reach the misses list (the probe pass routed them into `dups`), so
  // each distinct row inserts at most once; the re-probe guards against a
  // concurrent caller having inserted the same row between our probe and
  // now.
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (misses_of_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    ensure_storage(shard);
    for (const std::size_t i : misses_of_shard[s]) {
      if (find_slot(shard, hashes[i], x.row(begin + i)) < shard.capacity) {
        continue;
      }
      insert(shard, hashes[i], x.row(begin + i), out + i * out_stride);
    }
  }
  return m - misses.size();
}

EncodedBatch encode_block_cached(const Encoder& encoder, EncodeCache* cache,
                                 const core::Matrix& x, std::size_t begin,
                                 std::size_t end, core::Matrix& storage,
                                 const core::ExecutionContext& exec) {
  assert(end >= begin && end <= x.rows());
  const std::size_t m = end - begin;
  const std::size_t dims = encoder.output_dim();
  if (storage.rows() < m || storage.cols() != dims) {
    storage.resize(m, dims);
  }
  if (cache != nullptr) {
    cache->encode_rows(encoder, x, begin, end, storage, exec);
  } else {
    // Cache-off path: the block is one contiguous tile call — the
    // dominant shape under cold (non-replay) traffic.
    encoder.encode_tile(x, begin, end, storage.data(), storage.cols(),
                        exec);
  }
  return EncodedBatch::front_of(storage, m);
}

}  // namespace cyberhd::hdc
