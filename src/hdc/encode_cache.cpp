#include "hdc/encode_cache.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "core/env.hpp"
#include "hdc/encoder.hpp"

namespace cyberhd::hdc {

std::size_t EncodeCache::capacity_from_env() noexcept {
  // "0" is an explicit disable; the ceiling keeps a typo from demanding
  // terabytes of ring storage (rejected with a warning, not clamped —
  // the shared env contract).
  return static_cast<std::size_t>(core::env::u64(
      "CYBERHD_ENCODE_CACHE", kDefaultCapacityRows, 0, 1ULL << 24));
}

std::size_t EncodeCache::shards_from_env() noexcept {
  // Auto default: at least one shard per shared-L3 domain (the worker
  // groups that probe concurrently), with a floor that keeps contention
  // low even on single-domain hosts serving many client streams.
  const std::size_t auto_shards = std::max<std::size_t>(
      kDefaultShards, core::CacheTopology::detected().l3_domains);
  return static_cast<std::size_t>(
      core::env::u64("CYBERHD_CACHE_SHARDS", auto_shards, 1, 256));
}

EncodeCache::EncodeCache(std::size_t input_dim, std::size_t encoded_dim,
                         std::size_t capacity_rows, std::size_t shards,
                         std::size_t entry_bytes)
    : input_dim_(input_dim),
      encoded_dim_(encoded_dim),
      capacity_(capacity_rows),
      entry_bytes_(entry_bytes != 0 ? entry_bytes
                                    : encoded_dim * sizeof(float)),
      // Cache-line stride: float entries stay 4-aligned and packed-word
      // entries 8-aligned whatever the entry size, and neighbouring slots
      // never share a line.
      entry_stride_((entry_bytes_ + 63) & ~std::size_t{63}) {
  assert(input_dim > 0 && encoded_dim > 0 && capacity_rows > 0);
  if (shards == 0) shards = shards_from_env();
  // Every shard must own at least one ring slot, so tiny caches collapse
  // to fewer shards (capacity 1 = the single-slot aliasing ring the tests
  // exercise, now per shard).
  num_shards_ = std::clamp<std::size_t>(shards, 1, capacity_rows);
  shards_ = std::make_unique<Shard[]>(num_shards_);
  const std::size_t base = capacity_ / num_shards_;
  const std::size_t rem = capacity_ % num_shards_;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    shards_[s].capacity = base + (s < rem ? 1 : 0);
  }
}

std::size_t EncodeCache::shard_of(std::uint64_t hash) const noexcept {
  // FNV's low bits correlate with the last bytes hashed; run the whole
  // word through a splitmix64-style finalizer before the modulus so shard
  // load stays balanced for structured feature rows.
  std::uint64_t z = hash;
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % num_shards_);
}

void EncodeCache::ensure_storage(Shard& shard) {
  if (shard.raw.rows() == shard.capacity) return;
  shard.raw.resize(shard.capacity, input_dim_);
  shard.entries.assign(shard.capacity * entry_stride_, 0);
  shard.slot_hash.assign(shard.capacity, 0);
  shard.occupied.assign(shard.capacity, false);
  shard.pins.assign(shard.capacity, 0);
  shard.resident = 0;
  shard.index.reserve(shard.capacity);
}

void BorrowGuard::release() {
  if (cache_ != nullptr) {
    // Unpin in shard-grouped runs: the probe pass records pins walking one
    // shard at a time, so one lock acquisition covers each run.
    std::size_t i = 0;
    while (i < pins_.size()) {
      const std::uint32_t s = pins_[i].shard;
      EncodeCache::Shard& shard = cache_->shards_[s];
      const std::lock_guard<std::mutex> lock(shard.mutex);
      for (; i < pins_.size() && pins_[i].shard == s; ++i) {
        --shard.pins[pins_[i].slot];
      }
    }
  }
  pins_.clear();
  cache_ = nullptr;
}

std::size_t EncodeCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total += shards_[s].index.size();
  }
  return total;
}

void EncodeCache::clear() {
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.index.clear();
    std::fill(shard.occupied.begin(), shard.occupied.end(), false);
    shard.resident = 0;
    shard.next_slot = 0;
    shard.stats = {};
  }
}

EncodeCacheStats EncodeCache::stats() const {
  EncodeCacheStats total;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total.hits += shards_[s].stats.hits;
    total.misses += shards_[s].stats.misses;
    total.evictions += shards_[s].stats.evictions;
    total.borrowed_rows += shards_[s].stats.borrowed_rows;
    total.copied_bytes += shards_[s].stats.copied_bytes;
    total.bytes_resident +=
        static_cast<std::uint64_t>(shards_[s].resident) * entry_bytes_;
    total.bytes_capacity +=
        static_cast<std::uint64_t>(shards_[s].capacity) * entry_bytes_;
  }
  return total;
}

EncodeCacheStats EncodeCache::shard_stats(std::size_t shard) const {
  assert(shard < num_shards_);
  const std::lock_guard<std::mutex> lock(shards_[shard].mutex);
  EncodeCacheStats s = shards_[shard].stats;
  s.bytes_resident =
      static_cast<std::uint64_t>(shards_[shard].resident) * entry_bytes_;
  s.bytes_capacity =
      static_cast<std::uint64_t>(shards_[shard].capacity) * entry_bytes_;
  return s;
}

std::uint64_t EncodeCache::hash_row(std::span<const float> x) noexcept {
  // FNV-1a 64 over the raw bytes: cheap relative to even one hypervector
  // dimension's encode, and collisions are harmless (find_slot verifies
  // content before serving a hit).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(x.data());
  const std::size_t n = x.size_bytes();
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::size_t EncodeCache::find_slot(const Shard& shard, std::uint64_t hash,
                                   std::span<const float> x) const {
  // Before the shard's first insert its index is empty, so the
  // unallocated ring is never dereferenced.
  const auto it = shard.index.find(hash);
  if (it == shard.index.end()) return shard.capacity;
  const std::size_t slot = it->second;
  if (!shard.occupied[slot] || shard.slot_hash[slot] != hash) {
    return shard.capacity;
  }
  // Content verification: a colliding row must re-encode, never replay
  // another flow's hypervector.
  if (std::memcmp(shard.raw.row(slot).data(), x.data(), x.size_bytes()) !=
      0) {
    return shard.capacity;
  }
  return slot;
}

void EncodeCache::insert(Shard& shard, std::uint64_t hash,
                         std::span<const float> x,
                         const unsigned char* entry) {
  // Borrowed slots are immutable until their guards release: the ring
  // cursor skips pinned slots (bounded scan), and when a flush has pinned
  // the entire shard the insert is simply dropped — the row stays a miss
  // next time, which only costs a re-encode, never a dangling pointer.
  std::size_t slot = shard.next_slot;
  std::size_t tries = 0;
  while (tries < shard.capacity && shard.pins[slot] != 0) {
    slot = (slot + 1) % shard.capacity;
    ++tries;
  }
  if (tries == shard.capacity) return;
  shard.next_slot = (slot + 1) % shard.capacity;
  if (shard.occupied[slot]) {
    // Ring eviction: drop the index entry that still points at this slot
    // (a later insert of the same hash may have redirected it already).
    const auto it = shard.index.find(shard.slot_hash[slot]);
    if (it != shard.index.end() && it->second == slot) {
      shard.index.erase(it);
    }
    ++shard.stats.evictions;
  } else {
    ++shard.resident;
  }
  std::copy(x.begin(), x.end(), shard.raw.row(slot).begin());
  std::memcpy(slot_entry(shard, slot), entry, entry_bytes_);
  shard.slot_hash[slot] = hash;
  shard.occupied[slot] = true;
  shard.index[hash] = static_cast<std::uint32_t>(slot);
}

namespace {

/// The float pipelines' batched miss encode: gather the miss rows into
/// one contiguous block (ws scratch, reused across flushes), run the
/// whole list through the encoder's tile path, then scatter to the miss
/// slots (a D-float memcpy per row — cheap next to the encode it rides
/// on).
void encode_float_misses(const Encoder& encoder, const core::Matrix& x,
                         std::size_t begin, std::size_t input_dim,
                         std::size_t encoded_dim, ScoringWorkspace& ws,
                         const core::ExecutionContext& exec,
                         std::span<const std::size_t> rows,
                         unsigned char* out, std::size_t out_stride) {
  const std::size_t k = rows.size();
  ws.miss_raw.resize(k, input_dim);
  for (std::size_t j = 0; j < k; ++j) {
    const auto src = x.row(begin + rows[j]);
    std::copy(src.begin(), src.end(), ws.miss_raw.row(j).begin());
  }
  ws.miss_enc.resize(k, encoded_dim);
  encoder.encode_tile(ws.miss_raw, 0, k, ws.miss_enc.data(), encoded_dim,
                      exec);
  for (std::size_t j = 0; j < k; ++j) {
    std::memcpy(out + rows[j] * out_stride, ws.miss_enc.row(j).data(),
                encoded_dim * sizeof(float));
  }
}

}  // namespace

std::size_t EncodeCache::encode_rows(const Encoder& encoder,
                                     const core::Matrix& x,
                                     std::size_t begin, std::size_t end,
                                     core::Matrix& h,
                                     const core::ExecutionContext& exec) {
  assert(x.cols() == input_dim_);
  assert(h.cols() == encoded_dim_ && h.rows() >= end - begin);
  assert(entry_bytes_ == encoded_dim_ * sizeof(float) &&
         "float driver on a float-armed cache only");
  auto* out = reinterpret_cast<unsigned char*>(h.data());
  const std::size_t stride = h.cols() * sizeof(float);
  ScoringWorkspace& ws = ScoringWorkspace::tl();
  return encode_entries_impl(
      x, begin, end, out, stride,
      [&](std::span<const std::size_t> rows, unsigned char* o,
          std::size_t o_stride) {
        encode_float_misses(encoder, x, begin, input_dim_, encoded_dim_, ws,
                            exec, rows, o, o_stride);
      },
      nullptr, nullptr, ws);
}

std::size_t EncodeCache::encode_rows_borrowed(
    const Encoder& encoder, const core::Matrix& x, std::size_t begin,
    std::size_t end, core::Matrix& staging, ScoringWorkspace& ws,
    const core::ExecutionContext& exec) {
  assert(x.cols() == input_dim_);
  assert(entry_bytes_ == encoded_dim_ * sizeof(float) &&
         "float driver on a float-armed cache only");
  const std::size_t m = end - begin;
  if (staging.rows() < m || staging.cols() != encoded_dim_) {
    staging.resize(m, encoded_dim_);
  }
  auto* out = reinterpret_cast<unsigned char*>(staging.data());
  const std::size_t stride = staging.cols() * sizeof(float);
  const std::size_t hits = encode_entries_borrowed(
      x, begin, end, out, stride,
      [&](std::span<const std::size_t> rows, unsigned char* o,
          std::size_t o_stride) {
        encode_float_misses(encoder, x, begin, input_dim_, encoded_dim_, ws,
                            exec, rows, o, o_stride);
      },
      ws, exec);
  ws.f32_rows.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    // Ring entries are 64-aligned and staging rows float-aligned, so the
    // typed reinterpret matches PackedBatch's row accessors in spirit.
    ws.f32_rows[i] = reinterpret_cast<const float*>(ws.entry_ptrs[i]);
  }
  return hits;
}

std::size_t EncodeCache::encode_entries(const core::Matrix& x,
                                        std::size_t begin, std::size_t end,
                                        unsigned char* out,
                                        std::size_t out_stride,
                                        EncodeMissesFn encode_misses,
                                        const core::ExecutionContext&) {
  return encode_entries_impl(x, begin, end, out, out_stride, encode_misses,
                             nullptr, nullptr, ScoringWorkspace::tl());
}

std::size_t EncodeCache::encode_entries_borrowed(
    const core::Matrix& x, std::size_t begin, std::size_t end,
    unsigned char* staging, std::size_t out_stride,
    EncodeMissesFn encode_misses, ScoringWorkspace& ws,
    const core::ExecutionContext&) {
  assert(ws.borrow.empty() &&
         "previous flush's borrows must be released before the next");
  ws.entry_ptrs.resize(end - begin);
  return encode_entries_impl(x, begin, end, staging, out_stride,
                             encode_misses, ws.entry_ptrs.data(), &ws.borrow,
                             ws);
}

std::size_t EncodeCache::encode_entries_impl(
    const core::Matrix& x, std::size_t begin, std::size_t end,
    unsigned char* out, std::size_t out_stride, EncodeMissesFn encode_misses,
    const unsigned char** entry_ptrs, BorrowGuard* guard,
    ScoringWorkspace& ws) {
  assert(end >= begin && end <= x.rows());
  assert(x.cols() == input_dim_);
  assert(out_stride >= entry_bytes_);
  assert((entry_ptrs == nullptr) == (guard == nullptr));
  const std::size_t m = end - begin;
  if (m == 0) return 0;
  if (guard != nullptr) guard->cache_ = this;

  // Hashing and shard routing are pure functions of the rows — done
  // before any lock, so concurrent scorers only serialize on their own
  // shards' index lookups, never on the full-batch sweep. Rows are
  // bucketed by shard with a counting sort over flat workspace arrays
  // (no per-call allocation, no vector-of-vectors): the placement walks i
  // ascending, so each shard's bucket keeps BATCH ORDER — the stability
  // the in-batch dedup below relies on.
  ws.hashes.resize(m);
  ws.shard_of_row.resize(m);
  ws.shard_counts.assign(num_shards_, 0);
  for (std::size_t i = 0; i < m; ++i) {
    ws.hashes[i] = hash_row(x.row(begin + i));
    const std::size_t s = shard_of(ws.hashes[i]);
    ws.shard_of_row[i] = static_cast<std::uint32_t>(s);
    ++ws.shard_counts[s];
  }
  ws.shard_offsets.resize(num_shards_);
  std::uint32_t run = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    ws.shard_offsets[s] = run;
    run += ws.shard_counts[s];
  }
  ws.rows_by_shard.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    ws.rows_by_shard[ws.shard_offsets[ws.shard_of_row[i]]++] =
        static_cast<std::uint32_t>(i);
  }
  // shard_offsets[s] now marks the END of shard s's bucket.

  // Probe pass (per shard, under that shard's lock only): serve hits —
  // copied into the output rows (copy mode) or pinned in place (borrow
  // mode) — and collect miss indices. A row repeated *within* this batch
  // — common when a large coalesced drain covers many arrivals of the
  // same flow — encodes once: later occurrences are deduplicated against
  // the first one and replayed after the encode pass. Identical rows
  // share a hash and therefore a shard, and a shard's bucket is walked in
  // batch order, so the dedup source is always the earlier occurrence.
  // Locks are taken one shard at a time (never nested).
  ws.misses.clear();
  ws.miss_shard_end.resize(num_shards_);
  ws.dups.clear();
  ws.batch_first.reset(m);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const std::uint32_t bucket_end = ws.shard_offsets[s];
    const std::uint32_t bucket_begin = bucket_end - ws.shard_counts[s];
    if (bucket_begin == bucket_end) {
      ws.miss_shard_end[s] = static_cast<std::uint32_t>(ws.misses.size());
      continue;
    }
    Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::uint32_t b = bucket_begin; b < bucket_end; ++b) {
      const std::size_t i = ws.rows_by_shard[b];
      const auto row = x.row(begin + i);
      const std::size_t slot = find_slot(shard, ws.hashes[i], row);
      if (slot < shard.capacity) {
        if (entry_ptrs != nullptr) {
          ++shard.pins[slot];
          guard->pins_.push_back({static_cast<std::uint32_t>(s),
                                  static_cast<std::uint32_t>(slot)});
          entry_ptrs[i] = slot_entry(shard, slot);
          ++shard.stats.borrowed_rows;
        } else {
          std::memcpy(out + i * out_stride, slot_entry(shard, slot),
                      entry_bytes_);
          shard.stats.copied_bytes += entry_bytes_;
        }
        ++shard.stats.hits;
        continue;
      }
      const std::uint32_t first = ws.batch_first.find_or_insert(
          ws.hashes[i], static_cast<std::uint32_t>(i));
      if (first != i &&
          std::memcmp(x.row(begin + first).data(), row.data(),
                      row.size_bytes()) == 0) {
        ws.dups.push_back({i, first});
        if (entry_ptrs == nullptr) shard.stats.copied_bytes += entry_bytes_;
        ++shard.stats.hits;
      } else {
        ws.misses.push_back(i);
        ++shard.stats.misses;
      }
    }
    ws.miss_shard_end[s] = static_cast<std::uint32_t>(ws.misses.size());
  }

  // Encode pass (lock-free): the whole miss list in one batched callback.
  // The callback owns gather, tiling, and pool-parallelism — the tile
  // encoders turn the list into GEMM-shaped kernel calls, so every base
  // row fetched from cache is reused across the batch's misses instead of
  // re-streamed per row. Per-row results are independent of the batching,
  // so output never depends on the miss mix.
  if (!ws.misses.empty()) {
    encode_misses(std::span<const std::size_t>(ws.misses), out, out_stride);
  }
  if (entry_ptrs != nullptr) {
    for (const std::size_t i : ws.misses) {
      entry_ptrs[i] = out + i * out_stride;
    }
  }

  // In-batch duplicates replay the fresh encode of their first occurrence
  // (bit-identical by encoder determinism, like any cache hit). In borrow
  // mode the replay is a pointer alias — the dup source is always a miss
  // row of this same batch, so its staging address is already recorded.
  for (const ScoringWorkspace::BatchDup& d : ws.dups) {
    if (entry_ptrs != nullptr) {
      entry_ptrs[d.row] = entry_ptrs[d.src];
    } else {
      std::memcpy(out + d.row * out_stride, out + d.src * out_stride,
                  entry_bytes_);
    }
  }

  // Insert pass (per shard, under that shard's lock only): fresh encodes
  // enter their shard's ring in batch order — shard s's misses are the
  // contiguous range [miss_shard_end[s-1], miss_shard_end[s]) of the miss
  // list. In-batch duplicates never reach the misses list (the probe pass
  // routed them into dups), so each distinct row inserts at most once;
  // the re-probe guards against a concurrent caller having inserted the
  // same row between our probe and now.
  std::uint32_t miss_begin = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const std::uint32_t miss_end = ws.miss_shard_end[s];
    if (miss_begin == miss_end) continue;
    Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    ensure_storage(shard);
    for (std::uint32_t j = miss_begin; j < miss_end; ++j) {
      const std::size_t i = ws.misses[j];
      if (find_slot(shard, ws.hashes[i], x.row(begin + i)) <
          shard.capacity) {
        continue;
      }
      insert(shard, ws.hashes[i], x.row(begin + i), out + i * out_stride);
    }
    miss_begin = miss_end;
  }
  return m - ws.misses.size();
}

EncodedBatch encode_block_cached(const Encoder& encoder, EncodeCache* cache,
                                 const core::Matrix& x, std::size_t begin,
                                 std::size_t end, core::Matrix& storage,
                                 const core::ExecutionContext& exec) {
  assert(end >= begin && end <= x.rows());
  const std::size_t m = end - begin;
  const std::size_t dims = encoder.output_dim();
  if (storage.rows() < m || storage.cols() != dims) {
    storage.resize(m, dims);
  }
  if (cache != nullptr) {
    cache->encode_rows(encoder, x, begin, end, storage, exec);
  } else {
    // Cache-off path: the block is one contiguous tile call — the
    // dominant shape under cold (non-replay) traffic.
    encoder.encode_tile(x, begin, end, storage.data(), storage.cols(),
                        exec);
  }
  return EncodedBatch::front_of(storage, m);
}

}  // namespace cyberhd::hdc
