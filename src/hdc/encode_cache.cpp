#include "hdc/encode_cache.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "hdc/encoder.hpp"

namespace cyberhd::hdc {

std::size_t EncodeCache::capacity_from_env() noexcept {
  const char* raw = std::getenv("CYBERHD_ENCODE_CACHE");
  if (raw == nullptr || *raw == '\0') return kDefaultCapacityRows;
  if (*raw < '0' || *raw > '9') return kDefaultCapacityRows;  // malformed
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || (end != nullptr && *end != '\0')) {
    return kDefaultCapacityRows;
  }
  // "0" is an explicit disable; bound the rest so a typo cannot demand
  // terabytes of ring storage.
  constexpr unsigned long long kMaxRows = 1ULL << 24;  // 16M rows
  return static_cast<std::size_t>(std::min(value, kMaxRows));
}

EncodeCache::EncodeCache(std::size_t input_dim, std::size_t encoded_dim,
                         std::size_t capacity_rows)
    : input_dim_(input_dim),
      encoded_dim_(encoded_dim),
      capacity_(capacity_rows) {
  assert(input_dim > 0 && encoded_dim > 0 && capacity_rows > 0);
}

void EncodeCache::ensure_storage() {
  if (raw_.rows() == capacity_) return;
  raw_.resize(capacity_, input_dim_);
  encoded_.resize(capacity_, encoded_dim_);
  slot_hash_.assign(capacity_, 0);
  occupied_.assign(capacity_, false);
  index_.reserve(capacity_);
}

std::size_t EncodeCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

void EncodeCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  index_.clear();
  std::fill(occupied_.begin(), occupied_.end(), false);
  next_slot_ = 0;
  stats_ = {};
}

EncodeCacheStats EncodeCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t EncodeCache::hash_row(std::span<const float> x) noexcept {
  // FNV-1a 64 over the raw bytes: cheap relative to even one hypervector
  // dimension's encode, and collisions are harmless (find_slot verifies
  // content before serving a hit).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(x.data());
  const std::size_t n = x.size_bytes();
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::size_t EncodeCache::find_slot(std::uint64_t hash,
                                   std::span<const float> x) const {
  // Before the first insert the index is empty, so the unallocated ring
  // is never dereferenced.
  const auto it = index_.find(hash);
  if (it == index_.end()) return capacity_;
  const std::size_t slot = it->second;
  if (!occupied_[slot] || slot_hash_[slot] != hash) return capacity_;
  // Content verification: a colliding row must re-encode, never replay
  // another flow's hypervector.
  if (std::memcmp(raw_.row(slot).data(), x.data(), x.size_bytes()) != 0) {
    return capacity_;
  }
  return slot;
}

void EncodeCache::insert(std::uint64_t hash, std::span<const float> x,
                         std::span<const float> h) {
  const std::size_t slot = next_slot_;
  next_slot_ = (next_slot_ + 1) % capacity_;
  if (occupied_[slot]) {
    // Ring eviction: drop the index entry that still points at this slot
    // (a later insert of the same hash may have redirected it already).
    const auto it = index_.find(slot_hash_[slot]);
    if (it != index_.end() && it->second == slot) index_.erase(it);
    ++stats_.evictions;
  }
  std::copy(x.begin(), x.end(), raw_.row(slot).begin());
  std::copy(h.begin(), h.end(), encoded_.row(slot).begin());
  slot_hash_[slot] = hash;
  occupied_[slot] = true;
  index_[hash] = static_cast<std::uint32_t>(slot);
}

std::size_t EncodeCache::encode_rows(const Encoder& encoder,
                                     const core::Matrix& x,
                                     std::size_t begin, std::size_t end,
                                     core::Matrix& h,
                                     const core::ExecutionContext& exec) {
  assert(end >= begin && end <= x.rows());
  assert(x.cols() == input_dim_);
  assert(h.cols() == encoded_dim_ && h.rows() >= end - begin);
  const std::size_t m = end - begin;
  if (m == 0) return 0;

  // Probe pass (serial, under the lock): copy hits straight into the
  // output rows, collect miss indices. The copies are memcpy-cheap next to
  // the encodes they replace. A row repeated *within* this batch — common
  // when a large planner drain covers many arrivals of the same flow —
  // encodes once: later occurrences are deduplicated against the first
  // one and copied after the encode pass.
  // Hashing is a pure function of the rows — do it before taking the
  // lock, so concurrent scorers only serialize on the index lookups and
  // hit copies, not on the full-batch hash sweep.
  std::vector<std::uint64_t> hashes(m);
  for (std::size_t i = 0; i < m; ++i) {
    hashes[i] = hash_row(x.row(begin + i));
  }
  std::vector<std::size_t> misses;
  struct BatchDup {
    std::size_t row;  // this occurrence
    std::size_t src;  // the batch row whose fresh encode it copies
  };
  std::vector<BatchDup> dups;
  std::unordered_map<std::uint64_t, std::size_t> batch_first;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < m; ++i) {
      const auto row = x.row(begin + i);
      const std::size_t slot = find_slot(hashes[i], row);
      if (slot < capacity_) {
        const auto cached = encoded_.row(slot);
        std::copy(cached.begin(), cached.end(), h.row(i).begin());
        ++stats_.hits;
        continue;
      }
      const auto [first, is_new] = batch_first.try_emplace(hashes[i], i);
      if (!is_new &&
          std::memcmp(x.row(begin + first->second).data(), row.data(),
                      row.size_bytes()) == 0) {
        dups.push_back({i, first->second});
        ++stats_.hits;
      } else {
        misses.push_back(i);
        ++stats_.misses;
      }
    }
  }

  // Encode pass (parallel, lock-free): every miss encodes into its own
  // output row; per-row encodes are independent, so results never depend
  // on the split.
  exec.parallel_for(
      misses.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          const std::size_t i = misses[j];
          encoder.encode(x.row(begin + i), h.row(i));
        }
      },
      /*grain=*/16);

  // In-batch duplicates replay the fresh encode of their first occurrence
  // (bit-identical by encoder determinism, like any cache hit).
  for (const BatchDup& d : dups) {
    const auto src = h.row(d.src);
    std::copy(src.begin(), src.end(), h.row(d.row).begin());
  }

  // Insert pass (serial, under the lock): fresh encodes enter the ring in
  // row order. In-batch duplicates never reach the misses list (the probe
  // pass routed them into `dups`), so each distinct row inserts at most
  // once; the re-probe guards against a concurrent caller having inserted
  // the same row between our probe and now.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!misses.empty()) ensure_storage();
    for (const std::size_t i : misses) {
      if (find_slot(hashes[i], x.row(begin + i)) < capacity_) continue;
      insert(hashes[i], x.row(begin + i), h.row(i));
    }
  }
  return m - misses.size();
}

EncodedBatch encode_block_cached(const Encoder& encoder, EncodeCache* cache,
                                 const core::Matrix& x, std::size_t begin,
                                 std::size_t end, core::Matrix& storage,
                                 const core::ExecutionContext& exec) {
  assert(end >= begin && end <= x.rows());
  const std::size_t m = end - begin;
  const std::size_t dims = encoder.output_dim();
  if (storage.rows() < m || storage.cols() != dims) {
    storage.resize(m, dims);
  }
  if (cache != nullptr) {
    cache->encode_rows(encoder, x, begin, end, storage, exec);
  } else {
    exec.parallel_for(
        m,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            encoder.encode(x.row(begin + i), storage.row(i));
          }
        },
        /*grain=*/16);
  }
  return EncodedBatch::front_of(storage, m);
}

}  // namespace cyberhd::hdc
