#include "hdc/regen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cyberhd::hdc {

RegenController::RegenController(std::size_t physical_dims, double rate,
                                 std::size_t anneal_steps)
    : physical_dims_(physical_dims), rate_(rate),
      anneal_steps_(anneal_steps) {
  assert(physical_dims > 0);
  assert(rate >= 0.0 && rate < 1.0);
}

double RegenController::current_rate() const noexcept {
  if (anneal_steps_ == 0) return rate_;
  if (steps_ >= anneal_steps_) return 0.0;
  return rate_ * (1.0 - static_cast<double>(steps_) /
                            static_cast<double>(anneal_steps_));
}

std::size_t RegenController::dims_per_step() const noexcept {
  return static_cast<std::size_t>(
      std::floor(current_rate() * static_cast<double>(physical_dims_)));
}

RegenStep RegenController::step(HdcModel& model, Encoder& encoder,
                                core::Rng& rng) {
  assert(model.dims() == physical_dims_);
  assert(encoder.output_dim() == physical_dims_);
  RegenStep result;
  const std::size_t count = dims_per_step();
  if (count == 0) {
    result.effective_dims = effective_dims();
    return result;
  }
  std::vector<float> variances(model.dims());
  model.dimension_variances(variances);
  // Grace period: make the previous step's dims un-droppable this round.
  float max_var = 0.0f;
  for (float v : variances) max_var = std::max(max_var, v);
  for (std::size_t d : protected_dims_) {
    variances[d] = max_var + 1.0f;
  }
  result.dims = HdcModel::lowest_k(variances, count);
  protected_dims_ = result.dims;
  model.zero_dimensions(result.dims);
  encoder.regenerate(result.dims, rng);
  total_regenerated_ += result.dims.size();
  ++steps_;
  result.effective_dims = effective_dims();
  return result;
}

}  // namespace cyberhd::hdc
