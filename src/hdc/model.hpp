// The HDC associative memory: one class hypervector per class.
//
// Training bundles encoded samples into class hypervectors; inference
// assigns a query to the class with the highest cosine similarity (steps
// (C), (I), (J) of the CyberHD workflow). The model also exposes the two
// statistics regeneration needs: a row-normalized copy (step (D)/(E)) and
// the per-dimension variance across classes (step (F)).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/exec/execution_context.hpp"
#include "core/matrix.hpp"
#include "hdc/encoded_batch.hpp"

namespace cyberhd::hdc {

/// Class-hypervector matrix (num_classes x dims) with cosine scoring.
class HdcModel {
 public:
  /// The one cosine-normalization expression every scoring path shares —
  /// per-sample similarities(), the batched tile path, and the trainer's
  /// minibatch scoring. Sharing it is what keeps their bit-identical
  /// contract (and the zero-norm convention) in exactly one place.
  static float cosine_from_dot(float dot, float query_norm,
                               float class_norm) noexcept {
    return (query_norm == 0.0f || class_norm == 0.0f)
               ? 0.0f
               : dot / (query_norm * class_norm);
  }

  HdcModel() = default;
  /// Zero-initialized model for `num_classes` classes in `dims` dimensions.
  HdcModel(std::size_t num_classes, std::size_t dims);

  std::size_t num_classes() const noexcept { return classes_.rows(); }
  std::size_t dims() const noexcept { return classes_.cols(); }

  /// Mutable class hypervector.
  std::span<float> class_vector(std::size_t cls) noexcept {
    return classes_.row(cls);
  }
  /// Read-only class hypervector.
  std::span<const float> class_vector(std::size_t cls) const noexcept {
    return classes_.row(cls);
  }
  const core::Matrix& weights() const noexcept { return classes_; }
  core::Matrix& weights() noexcept { return classes_; }

  /// Add an encoded sample into a class (one-shot bundling). `weight`
  /// scales the contribution.
  void bundle(std::size_t cls, std::span<const float> h,
              float weight = 1.0f) noexcept;

  /// Cosine similarity of `h` to every class; `scores` has num_classes()
  /// entries. Zero-norm classes score 0.
  void similarities(std::span<const float> h,
                    std::span<float> scores) const noexcept;

  /// Row-wise similarities of a whole encoded batch: `scores` is resized to
  /// h.rows() x num_classes(). Class norms are computed once, rows stream
  /// through the register-blocked similarities_tile_f32 kernel in
  /// cache-derived chunks (ExecutionContext::score_block_rows; class
  /// vectors stay resident), and the sample range splits across the
  /// context's pool. Each output row is bit-identical to a similarities()
  /// call on that row, for any tile split or thread count.
  void similarities_batch(const core::Matrix& h, core::Matrix& scores,
                          const core::ExecutionContext& exec =
                              core::ExecutionContext::serial()) const;

  /// Stage-2 entry of the serving pipeline: the same scoring over an
  /// EncodedBatch view (however its rows were produced — fresh encode,
  /// cache replay, or a planner sub-slice).
  void similarities_batch(const EncodedBatch& h, core::Matrix& scores,
                          const core::ExecutionContext& exec =
                              core::ExecutionContext::serial()) const;

  /// Scoring into caller-owned storage: writes h.rows() x num_classes()
  /// floats row-major at `out`. This is what lets the staged scores_batch
  /// drivers score one sub-batch directly into its row range of the full
  /// output matrix, with no per-sub-batch resize or copy.
  void similarities_into(const EncodedBatch& h, float* out,
                         const core::ExecutionContext& exec =
                             core::ExecutionContext::serial()) const;

  /// Zero-copy stage-2 entry: the same scoring over an INDIRECT row view
  /// (rows borrowed from the encode cache ring, staging rows, any mix),
  /// streamed through the gather tile kernel. Bit-identical to the
  /// contiguous overload over the same row bytes — the gather kernels
  /// share the contiguous kernels' register-blocked inner body per
  /// backend.
  void similarities_into(const EncodedRows& h, float* out,
                         const core::ExecutionContext& exec =
                             core::ExecutionContext::serial()) const;

  /// argmax-of-cosine classification of an encoded query.
  std::size_t predict_encoded(std::span<const float> h) const noexcept;

  /// L2-normalize every class hypervector in place (step (D)).
  void normalize_rows() noexcept;

  /// Per-dimension variance across L2-normalized class hypervectors
  /// (step (E)+(F)); `out` has dims() entries. The model itself is not
  /// modified. Dimensions whose variance is low carry class-common
  /// information and are candidates for regeneration.
  void dimension_variances(std::span<float> out) const;

  /// Zero the given dimensions in every class hypervector (step (G):
  /// dropping dimensions from the model before the encoder resamples them).
  void zero_dimensions(std::span<const std::size_t> dims) noexcept;

  /// Indices of the `count` lowest-variance dimensions (ties broken by
  /// index). Helper shared by the regeneration controller and tests.
  static std::vector<std::size_t> lowest_k(std::span<const float> values,
                                           std::size_t count);

 private:
  core::Matrix classes_;  // num_classes x dims
};

}  // namespace cyberhd::hdc
