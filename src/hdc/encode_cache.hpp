// Content-addressed encode cache — the stage between encoding and scoring
// that lets repeated flows skip the encode entirely.
//
// NIDS serving traffic is dominated by recurring flows: the same feature
// vector arrives again and again (heartbeats, retries, scans, the benign
// background). Encoding is the expensive stage (D x F multiply-adds plus a
// cosine per hypervector dimension, ~10x the scoring cost at NIDS shapes),
// yet its output is a pure function of the raw row once the encoder is
// trained. The cache exploits exactly that: rows are keyed by a 64-bit
// content hash of their raw feature bytes, hits are verified by comparing
// the stored raw row byte-for-byte (a hash collision can therefore never
// serve a wrong vector — the bit-identical-scores contract survives
// adversarial inputs), and storage is a fixed-capacity ring so the working
// set of a stream ages out FIFO with zero per-hit bookkeeping.
//
// Concurrency: the cache is hash-partitioned into independent SHARDS, each
// with its own mutex, ring, index, and counters. Rows map to shards by
// content hash, so N serving streams probing concurrently contend only
// when their rows land in the same shard — the single global mutex the
// first version serialized every stream on is gone. The shard count is a
// construction knob (CYBERHD_CACHE_SHARDS; auto = enough shards to cover
// the shared-L3 domains and typical worker counts), and every contract
// below holds per shard: content-verified hits, FIFO ring eviction,
// deterministic replay.
//
// Determinism contract: a hit replays the float vector a previous encode
// produced for the *identical* raw row; encoders are deterministic, so
// scores computed through the cache are bit-identical to cache-off scoring
// for any capacity, shard count, eviction pattern, thread count, or kernel
// backend.
//
// The capacity knob is CYBERHD_ENCODE_CACHE (rows; 0 disables) — see
// capacity_from_env().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/exec/execution_context.hpp"
#include "core/function_ref.hpp"
#include "core/matrix.hpp"
#include "hdc/encoded_batch.hpp"
#include "hdc/scoring_workspace.hpp"

namespace cyberhd::hdc {

class Encoder;

/// Hit/miss counters of one cache (cumulative since the last clear()),
/// plus the byte-residency snapshot (entries currently held x entry size —
/// how full the ring actually is, and what it could hold; packed entries
/// multiply rows-per-byte 4-32x over float entries at the same capacity).
struct EncodeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Bytes of encoded entries resident right now (occupied slots x entry
  /// bytes, summed per shard).
  std::uint64_t bytes_resident = 0;
  /// Bytes the ring can hold (capacity x entry bytes).
  std::uint64_t bytes_capacity = 0;
  /// Rows served zero-copy: hits handed out as borrowed (pinned) pointers
  /// into the ring instead of being memcpy'd into the staging batch.
  std::uint64_t borrowed_rows = 0;
  /// Bytes memcpy'd to serve hits and in-batch replays through the
  /// copy-mode drivers — the traffic the borrow mode eliminates.
  std::uint64_t copied_bytes = 0;
  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// Fixed-capacity, ring-evicting, content-addressed cache of encoded rows,
/// hash-partitioned into independently locked shards. Thread-safe: probe
/// and insert phases serialize per shard; the miss encodes themselves run
/// outside any lock, split across the execution context's pool.
class EncodeCache {
 public:
  /// Default capacity when CYBERHD_ENCODE_CACHE is unset: 4096 rows (at
  /// D = 512 about 8 MiB of encoded vectors — one L3's worth).
  static constexpr std::size_t kDefaultCapacityRows = 4096;
  /// Auto shard count floor: covers the worker counts a single socket
  /// typically throws at the serving path; more L3 domains raise it.
  static constexpr std::size_t kDefaultShards = 8;

  /// The CYBERHD_ENCODE_CACHE knob: a row count ("8192"), 0 to disable,
  /// kDefaultCapacityRows when unset or malformed.
  static std::size_t capacity_from_env() noexcept;

  /// The CYBERHD_CACHE_SHARDS knob: an explicit shard count (clamped to
  /// [1, 256]); 0, unset, or malformed selects auto (max of kDefaultShards
  /// and the detected shared-L3 domain count). The construction-time
  /// clamp to the row capacity still applies either way.
  static std::size_t shards_from_env() noexcept;

  /// A cache for rows of `input_dim` raw features encoding to
  /// `encoded_dim`-dimensional hypervectors, holding up to `capacity_rows`
  /// entries split across `shards` shards (0 = shards_from_env(); always
  /// clamped to at most capacity_rows so every shard owns at least one
  /// slot). Each shard's ring storage is allocated lazily on its first
  /// insert, so models that never take the batch serving path pay nothing
  /// for the default-armed cache.
  ///
  /// `entry_bytes` is the fixed size of one cached encoded entry, set at
  /// arm time: 0 (the default) stores float rows (encoded_dim * 4 bytes);
  /// the quantized pipeline arms its cache with the packed row size
  /// (PackedBatch::row_bytes), so the same ring holds int8 or packed-bit
  /// entries — same content hash, same byte-verified hits, same in-batch
  /// dedup, 4-32x the flows per byte.
  EncodeCache(std::size_t input_dim, std::size_t encoded_dim,
              std::size_t capacity_rows, std::size_t shards = 0,
              std::size_t entry_bytes = 0);

  /// Total row capacity across all shards.
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t encoded_dim() const noexcept { return encoded_dim_; }
  /// Bytes per cached encoded entry (what one slot stores).
  std::size_t entry_bytes() const noexcept { return entry_bytes_; }
  std::size_t shard_count() const noexcept { return num_shards_; }
  /// Rows currently resident (summed across shards).
  std::size_t size() const;

  /// Drop every resident row in every shard and reset all stats.
  void clear();

  /// Aggregate hit/miss/eviction counters, summed across shards.
  EncodeCacheStats stats() const;
  /// One shard's counters (tests pin the per-shard accounting with this).
  EncodeCacheStats shard_stats(std::size_t shard) const;

  /// FNV-1a 64-bit content hash of a raw row's bytes.
  static std::uint64_t hash_row(std::span<const float> x) noexcept;

  /// The shard a hash routes to (exposed so tests can steer rows).
  std::size_t shard_of(std::uint64_t hash) const noexcept;

  /// The float stage-1 driver: fill rows [0, end - begin) of `h` with the
  /// encodings of rows [begin, end) of `x` — hits copied out of their
  /// shard's ring, misses gathered into one contiguous block and batched
  /// through `encoder.encode_tile` (split across the context's pool),
  /// then inserted. `h` must already be sized to at least
  /// (end - begin) x encoded_dim. Returns the number of hits (including
  /// in-batch replays). Safe to call concurrently from any number of
  /// threads. Only valid for float-armed caches (entry_bytes ==
  /// encoded_dim * 4); a thin wrapper over encode_entries.
  std::size_t encode_rows(const Encoder& encoder, const core::Matrix& x,
                          std::size_t begin, std::size_t end,
                          core::Matrix& h,
                          const core::ExecutionContext& exec);

  /// The batched miss-encode callback of the entry drivers. A non-owning
  /// FunctionRef (not std::function): the drivers invoke it before
  /// returning, and erasing by reference keeps the call allocation-free —
  /// a capturing lambda passed as a temporary never hits the heap.
  using EncodeMissesFn = core::FunctionRef<void(
      std::span<const std::size_t>, unsigned char*, std::size_t)>;

  /// The generic stage-1 driver the float and packed pipelines share:
  /// fill entries [0, end - begin) of `out` (entry i at
  /// out + i * out_stride, entry_bytes() bytes each; out_stride >=
  /// entry_bytes()) with the cached encodings of rows [begin, end) of `x`.
  /// Hits are byte-copied out of their shard's ring; misses are handed to
  /// `encode_misses` in ONE batched call — `encode_misses(rows, out,
  /// out_stride)` must write, for every batch-row index i in `rows`,
  /// exactly entry_bytes() bytes of the encoding of batch row i
  /// (x.row(begin + i)) to out + i * out_stride, deterministically. The
  /// callback owns its own gather/tile/parallelism (the tile encoders
  /// batch the whole miss list into GEMM-shaped kernel calls instead of
  /// per-row encodes); it runs outside every shard lock. Fresh entries
  /// are then inserted, and in-batch duplicates replay the first
  /// occurrence's fresh entry. Returns the number of hits (including
  /// in-batch replays). Safe to call concurrently from any number of
  /// threads.
  std::size_t encode_entries(const core::Matrix& x, std::size_t begin,
                             std::size_t end, unsigned char* out,
                             std::size_t out_stride,
                             EncodeMissesFn encode_misses,
                             const core::ExecutionContext& exec);

  /// Zero-copy sibling of encode_entries: instead of memcpying hit entries
  /// into `staging`, each hit's ring slot is PINNED (eviction skips it)
  /// and ws.entry_ptrs[i] is set to the entry's stable address inside the
  /// ring; miss rows are encoded into `staging` exactly as in copy mode
  /// and their staging address recorded, and in-batch duplicates alias
  /// their first occurrence's pointer. The pins land in ws.borrow, which
  /// the caller MUST release (or let unwind) after stage 2 has consumed
  /// the rows — until then the pinned slots cannot be evicted, so the
  /// pointers stay valid across concurrent inserts. `staging` must still
  /// cover all m rows (misses land at their batch offset). Returns the
  /// number of hits. Safe to call concurrently; ws is the caller's
  /// (typically thread-local) scratch.
  std::size_t encode_entries_borrowed(const core::Matrix& x,
                                      std::size_t begin, std::size_t end,
                                      unsigned char* staging,
                                      std::size_t out_stride,
                                      EncodeMissesFn encode_misses,
                                      ScoringWorkspace& ws,
                                      const core::ExecutionContext& exec);

  /// Borrow-mode float driver: encode_entries_borrowed plus the float
  /// miss-encode callback, leaving ws.f32_rows[i] pointing at row i's
  /// encoding (ring or staging) for the gather scoring kernels. Only valid
  /// for float-armed caches. Returns the number of hits.
  std::size_t encode_rows_borrowed(const Encoder& encoder,
                                   const core::Matrix& x, std::size_t begin,
                                   std::size_t end, core::Matrix& staging,
                                   ScoringWorkspace& ws,
                                   const core::ExecutionContext& exec);

 private:
  friend class BorrowGuard;
  /// One independently locked partition of the cache.
  struct Shard {
    mutable std::mutex mutex;
    std::size_t capacity = 0;  // slots this shard owns
    // Ring storage, empty until the first insert (see ensure_storage):
    core::Matrix raw;  // capacity x input_dim: the verification copies
    // capacity x entry_stride bytes: the cached encoded entries (float
    // rows, int8 rows, or packed words — the cache is agnostic).
    std::vector<unsigned char, core::AlignedAllocator<unsigned char>>
        entries;
    std::vector<std::uint64_t> slot_hash;  // per slot; valid when occupied
    std::vector<bool> occupied;
    // Per-slot borrow pin counts, mutated only under this shard's mutex.
    // insert() skips pinned slots, so a borrowed entry's bytes are
    // immutable (and data-race-free to read without the lock) until every
    // BorrowGuard holding it releases. Survives clear(): a cleared cache
    // drops its index, not the storage outstanding borrows still read.
    std::vector<std::uint32_t> pins;
    std::size_t resident = 0;  // occupied slot count (bytes accounting)
    std::unordered_map<std::uint64_t, std::uint32_t> index;  // hash -> slot
    std::size_t next_slot = 0;  // ring cursor
    EncodeCacheStats stats;
  };

  /// The shared body of the copy- and borrow-mode entry drivers:
  /// entry_ptrs == nullptr selects copy mode (hits memcpy'd to out);
  /// otherwise hits are pinned into `guard` and entry_ptrs[i] records
  /// where row i's entry lives. All per-call scratch lives in `ws`.
  std::size_t encode_entries_impl(const core::Matrix& x, std::size_t begin,
                                  std::size_t end, unsigned char* out,
                                  std::size_t out_stride,
                                  EncodeMissesFn encode_misses,
                                  const unsigned char** entry_ptrs,
                                  BorrowGuard* guard, ScoringWorkspace& ws);

  /// Slot index of the verified-resident row, or shard.capacity when
  /// absent. Caller holds shard.mutex.
  std::size_t find_slot(const Shard& shard, std::uint64_t hash,
                        std::span<const float> x) const;
  /// Insert (or refresh) a row into the shard's ring. Caller holds
  /// shard.mutex.
  void insert(Shard& shard, std::uint64_t hash, std::span<const float> x,
              const unsigned char* entry);
  /// Allocate the shard's ring storage on first use. Caller holds
  /// shard.mutex.
  void ensure_storage(Shard& shard);
  /// Byte pointer of a shard's slot entry.
  unsigned char* slot_entry(Shard& shard, std::size_t slot) const {
    return shard.entries.data() + slot * entry_stride_;
  }
  const unsigned char* slot_entry(const Shard& shard,
                                  std::size_t slot) const {
    return shard.entries.data() + slot * entry_stride_;
  }

  std::size_t input_dim_;
  std::size_t encoded_dim_;
  std::size_t capacity_;
  std::size_t entry_bytes_;
  std::size_t entry_stride_;  // entry_bytes_ rounded up to a cache line
  std::size_t num_shards_;
  // unique_ptr<[]> rather than vector: a Shard owns a mutex and is
  // therefore immovable.
  std::unique_ptr<Shard[]> shards_;
};

/// The stage-1 driver shared by the float and quantized serving
/// pipelines: fill rows [0, end - begin) of `storage` (resized when too
/// small) with the encodings of rows [begin, end) of `x` — through
/// `cache` when one is supplied, with a plain pool-parallel encode
/// otherwise. Returns the EncodedBatch handoff view over the filled rows.
EncodedBatch encode_block_cached(const Encoder& encoder, EncodeCache* cache,
                                 const core::Matrix& x, std::size_t begin,
                                 std::size_t end, core::Matrix& storage,
                                 const core::ExecutionContext& exec);

}  // namespace cyberhd::hdc
