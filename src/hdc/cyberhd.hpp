// CyberHdClassifier — the public facade of the paper's system.
//
// Wires together the encoder, the adaptive trainer, and the regeneration
// controller into the training loop of Fig. 2:
//
//   encode -> one-shot bundle -> [ adaptive epochs -> normalize ->
//   variance -> drop R% -> regenerate bases -> re-encode touched dims ] x N
//   -> final adaptive epochs
//
// The schedule control flow lives once, in hdc::ScheduleDriver; fit()
// plugs in either the in-memory phases (encode everything up front) or the
// streamed phases (tile-at-a-time encode→train, O(tile x D) peak memory).
// All parallelism and tiling policy flows through one
// core::ExecutionContext selected by config().parallel.
//
// With `regen_rate == 0` (or `regen_steps == 0`) this degrades exactly to
// the static-encoder baseline HDC the paper compares against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/exec/execution_context.hpp"
#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/encode_cache.hpp"
#include "hdc/encoded_batch.hpp"
#include "hdc/encoder.hpp"
#include "hdc/model.hpp"
#include "hdc/regen.hpp"
#include "hdc/schedule.hpp"
#include "hdc/trainer.hpp"

namespace cyberhd::hdc {

/// Configuration of a CyberHD classifier.
struct CyberHdConfig {
  /// Physical hypervector dimensionality D.
  std::size_t dims = 512;
  /// Encoder family (RBF for cybersecurity data, per the paper).
  EncoderKind encoder = EncoderKind::kRbf;
  /// RBF kernel lengthscale; <= 0 selects the median heuristic (estimate
  /// the median pairwise training distance and match the kernel to it),
  /// the standard way to scale random Fourier features to a dataset.
  float lengthscale = 0.0f;
  /// Multiplier applied to the median-heuristic lengthscale when
  /// `lengthscale <= 0`. Intrusion corpora need a kernel sharper than the
  /// median pair distance — minority attack families live at small scales —
  /// so the domain default is below 1.
  float lengthscale_factor = 0.40f;
  /// Fraction of dimensions regenerated per step (the paper's R). 0 gives
  /// the static baseline HDC.
  double regen_rate = 0.25;
  /// Number of regeneration steps over the whole fit. With annealing the
  /// default schedule regenerates ~ 0.25 * 57 / 2 * D ~ 7.2x D dims,
  /// landing the effective dimensionality near the paper's D* = 8x D.
  std::size_t regen_steps = 57;
  /// Linearly anneal the regeneration rate from `regen_rate` to 0 across
  /// the steps (heavy feature search early, gentle late so the refined
  /// model is not disturbed). Total regenerated ~ rate * steps * D / 2.
  bool regen_anneal = true;
  /// Adaptive epochs between consecutive regeneration steps.
  std::size_t epochs_per_step = 1;
  /// Adaptive epochs after the final regeneration.
  std::size_t final_epochs = 10;
  /// Learning rate of the adaptive update. Class hypervectors start at
  /// bundled-sum scale, so sub-1 rates keep refinement from oscillating.
  float learning_rate = 0.3f;
  /// Use the paper's similarity-weighted (1 - delta) update; false gives a
  /// plain perceptron step (ablation).
  bool similarity_weighted_update = true;
  /// Re-bundle regenerated dimensions from the full training set right
  /// after resampling them (cheap one-shot relearn of the fresh dims);
  /// the adaptive epochs then refine. Disable to rely on adaptive updates
  /// alone, as an ablation.
  bool rebundle_after_regen = true;
  /// Minibatch tile size of the adaptive trainer: score this many shuffled
  /// samples against the frozen model in one blocked tile-kernel pass,
  /// then replay their (1 - delta)-weighted updates through the
  /// deterministic UpdateAccumulator — scoring and updates both split
  /// across the thread pool, bit-identical for every worker count. 1 (the
  /// default) reproduces the classic sample-at-a-time rule bit-exactly;
  /// larger tiles are the OnlineHD-style minibatch approximation that
  /// trades a bounded score lag for cache-tiled training throughput.
  /// 0 = auto: the execution context derives the L2-resident sweet spot
  /// from the machine's cache topology (pin it with CYBERHD_L2_BYTES for
  /// cross-host comparable runs).
  std::size_t batch_size = 1;
  /// Rows per encode→train chunk of fit(). 0 (the default) encodes the
  /// whole training set up front — peak encode memory O(n x D). When > 0,
  /// fit() streams: each phase (one-shot bundling, adaptive epochs, the
  /// regeneration re-bundles) encodes `train_tile_rows` rows at a time
  /// into one reused buffer, keeping peak encode memory at O(tile x D) at
  /// the price of re-encoding every epoch. With batch_size == 1 the
  /// streamed fit is bit-identical to the in-memory fit.
  std::size_t train_tile_rows = 0;
  /// Seed for encoder sampling, shuffling, and regeneration.
  std::uint64_t seed = 0xc1beau;
  /// Run encode, scoring, and update passes on the process execution
  /// context's thread pool; false pins everything to one thread.
  bool parallel = true;
};

/// The paper's classifier. Also usable as a plain core::Classifier.
class CyberHdClassifier final : public core::Classifier {
 public:
  explicit CyberHdClassifier(CyberHdConfig config = {});

  const CyberHdConfig& config() const noexcept { return config_; }

  /// The execution context this classifier's batch and training paths run
  /// on: the process context (global pool) when config().parallel, the
  /// serial context otherwise.
  const core::ExecutionContext& exec() const noexcept {
    return config_.parallel ? core::ExecutionContext::process()
                            : core::ExecutionContext::serial();
  }

  // core::Classifier ---------------------------------------------------------
  void fit(const core::Matrix& x, std::span<const int> y,
           std::size_t num_classes) override;
  std::size_t num_classes() const noexcept override { return num_classes_; }
  int predict(std::span<const float> x) const override;
  std::string name() const override;

  /// Class-membership scores (cosine similarities) of one raw sample;
  /// `scores` has num_classes entries. Useful for alert thresholds.
  void scores(std::span<const float> x,
              std::span<float> scores) const override;

  // -- the stage-split serving pipeline --------------------------------------
  // scores_batch (the core::Classifier driver) walks `x` in sub-batches
  // the L3-aware planner sizes (preferred_batch_rows) and runs each
  // through scores_block: stage 1 encodes the block — serving repeated
  // rows from the content-addressed encode cache — and stage 2 streams
  // the EncodedBatch view through the tile scorer while it is still
  // L3-resident. Per-row results are bit-identical to predict()/scores()
  // on that row, cache on or off; predict_batch rides the same driver.

  /// Sub-batch size of the staged driver: the execution context's serving
  /// plan (per-L3-domain blocks of serving_block_rows).
  std::size_t preferred_batch_rows(const core::Matrix& x) const override;

  /// Stage 1 + stage 2 over one planned block (see class comment).
  void scores_block(const core::Matrix& x, std::size_t begin,
                    std::size_t end, core::Matrix& out) const override;

  /// Stage 1 alone: encode rows [begin, end) of `x` into the front of
  /// `storage` (grown to (end - begin) x D when too small, otherwise
  /// reused as-is), serving repeats from the encode cache when one is
  /// enabled. Returns the handoff view over the filled rows. Valid after
  /// fit().
  EncodedBatch encode_block(const core::Matrix& x, std::size_t begin,
                            std::size_t end, core::Matrix& storage) const;

  /// Stage 2 alone: cosine scores of an already-encoded view; `out` is
  /// resized to h.rows() x num_classes().
  void scores_encoded(const EncodedBatch& h, core::Matrix& out) const;

  /// Resize the serving encode cache: `capacity_rows` rows of raw +
  /// encoded storage split into `shards` independently locked partitions
  /// (0 = the CYBERHD_CACHE_SHARDS / topology default); capacity 0
  /// disables caching entirely. fit() and load() install the
  /// CYBERHD_ENCODE_CACHE env default automatically; call this to re-pin
  /// it (tests pin tiny evicting caches, servers size it to their flow
  /// working set). Resets hit/miss statistics.
  void set_encode_cache(std::size_t capacity_rows, std::size_t shards = 0);

  /// The serving encode cache, or nullptr when disabled. Exposes stats()
  /// and clear(); safe to use concurrently with scoring calls.
  EncodeCache* encode_cache() const noexcept { return encode_cache_.get(); }

  /// Diagnostics of the last fit() call.
  const FitReport& last_fit_report() const noexcept { return report_; }

  /// Effective dimensionality D* = D + total regenerated (paper Table I).
  std::size_t effective_dims() const noexcept;
  /// Physical dimensionality D.
  std::size_t physical_dims() const noexcept { return config_.dims; }

  /// The trained associative memory (valid after fit()).
  const HdcModel& model() const noexcept { return model_; }
  /// Mutable access for the fault subsystem: bit-flip injection and the
  /// serving integrity audit corrupt/heal the deployed weights in place
  /// (mirrors QuantizedCyberHd::model()). Not for concurrent use with
  /// scoring.
  HdcModel& model() noexcept { return model_; }
  /// The (possibly regenerated) encoder (valid after fit()).
  const Encoder& encoder() const;

  /// Encode a raw sample with the trained encoder (valid after fit()).
  void encode(std::span<const float> x, std::span<float> h) const;

  /// Default chunk size of the streamed class-matrix section: models whose
  /// weight payload exceeds this stream through fixed-size
  /// CRC32C-checksummed chunks (tag MDLC) with writer memory bounded by
  /// one chunk; smaller models keep the single-section MDL0 layout.
  static constexpr std::size_t kDefaultModelChunkBytes = 1 << 20;

  /// Persist the trained classifier (config, encoder, class hypervectors,
  /// and the effective-D ledger) to a binary stream. Format version 2:
  /// CRC32C-checksummed sections (config, encoder, model); the model
  /// section switches to the chunked MDLC layout when its payload exceeds
  /// `model_chunk_bytes`, so a D x classes matrix beyond RAM never has to
  /// be buffered whole. Tests pass a tiny chunk size to force the chunked
  /// layout on small models.
  void save(std::ostream& out,
            std::size_t model_chunk_bytes = kDefaultModelChunkBytes) const;
  /// Convenience: save to a file. Throws std::runtime_error on I/O error.
  void save_file(const std::string& path) const;
  /// Reconstruct a trained classifier from a stream written by save().
  /// Accepts the checksummed version-2 format (with either model-section
  /// layout, single MDL0 or chunked MDLC) and the pre-checksum version-1
  /// layout. Throws std::runtime_error on malformed or corrupt input
  /// (checksum failures name the offending section).
  static CyberHdClassifier load(std::istream& in);
  /// Convenience: load from a file.
  static CyberHdClassifier load_file(const std::string& path);

 private:
  /// Build the in-memory fit phases (whole training set encoded up front)
  /// and run them through the ScheduleDriver.
  void fit_in_memory(const core::Matrix& x, std::span<const int> y,
                     std::size_t num_classes, const Trainer& trainer,
                     const ScheduleDriver& driver, core::Rng& train_rng);
  /// Build the streamed fit phases (tile-at-a-time encode→train in one
  /// reused O(tile x D) buffer) and run them through the same driver.
  void fit_streamed(const core::Matrix& x, std::span<const int> y,
                    std::size_t num_classes, const Trainer& trainer,
                    const ScheduleDriver& driver, core::Rng& train_rng);

  CyberHdConfig config_;
  std::unique_ptr<Encoder> encoder_;
  HdcModel model_;
  std::optional<RegenController> regen_;
  FitReport report_;
  std::size_t num_classes_ = 0;
  // Serving-side encode cache (stage 1 of the pipeline); nullptr when
  // disabled. The EncodeCache is internally synchronized, so const
  // scoring calls from many threads stay safe.
  std::unique_ptr<EncodeCache> encode_cache_;
  // Note: no shared encode scratch — predict()/scores() allocate per call so
  // concurrent const calls from many threads are safe (the encode itself
  // dominates the cost of a D-float allocation by orders of magnitude).
};

/// Convenience: a static-encoder baseline HDC (regeneration disabled) at
/// the given dimensionality — the paper's "BaselineHD (D = ...)".
CyberHdConfig baseline_hd_config(std::size_t dims, std::uint64_t seed = 1);

}  // namespace cyberhd::hdc
