// CyberHdClassifier — the public facade of the paper's system.
//
// Wires together the encoder, the adaptive trainer, and the regeneration
// controller into the training loop of Fig. 2:
//
//   encode -> one-shot bundle -> [ adaptive epochs -> normalize ->
//   variance -> drop R% -> regenerate bases -> re-encode touched dims ] x N
//   -> final adaptive epochs
//
// The schedule control flow lives once, in hdc::ScheduleDriver; fit()
// plugs in either the in-memory phases (encode everything up front) or the
// streamed phases (tile-at-a-time encode→train, O(tile x D) peak memory).
// All parallelism and tiling policy flows through one
// core::ExecutionContext selected by config().parallel.
//
// With `regen_rate == 0` (or `regen_steps == 0`) this degrades exactly to
// the static-encoder baseline HDC the paper compares against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/exec/execution_context.hpp"
#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/encoder.hpp"
#include "hdc/model.hpp"
#include "hdc/regen.hpp"
#include "hdc/schedule.hpp"
#include "hdc/trainer.hpp"

namespace cyberhd::hdc {

/// Configuration of a CyberHD classifier.
struct CyberHdConfig {
  /// Physical hypervector dimensionality D.
  std::size_t dims = 512;
  /// Encoder family (RBF for cybersecurity data, per the paper).
  EncoderKind encoder = EncoderKind::kRbf;
  /// RBF kernel lengthscale; <= 0 selects the median heuristic (estimate
  /// the median pairwise training distance and match the kernel to it),
  /// the standard way to scale random Fourier features to a dataset.
  float lengthscale = 0.0f;
  /// Multiplier applied to the median-heuristic lengthscale when
  /// `lengthscale <= 0`. Intrusion corpora need a kernel sharper than the
  /// median pair distance — minority attack families live at small scales —
  /// so the domain default is below 1.
  float lengthscale_factor = 0.40f;
  /// Fraction of dimensions regenerated per step (the paper's R). 0 gives
  /// the static baseline HDC.
  double regen_rate = 0.25;
  /// Number of regeneration steps over the whole fit. With annealing the
  /// default schedule regenerates ~ 0.25 * 57 / 2 * D ~ 7.2x D dims,
  /// landing the effective dimensionality near the paper's D* = 8x D.
  std::size_t regen_steps = 57;
  /// Linearly anneal the regeneration rate from `regen_rate` to 0 across
  /// the steps (heavy feature search early, gentle late so the refined
  /// model is not disturbed). Total regenerated ~ rate * steps * D / 2.
  bool regen_anneal = true;
  /// Adaptive epochs between consecutive regeneration steps.
  std::size_t epochs_per_step = 1;
  /// Adaptive epochs after the final regeneration.
  std::size_t final_epochs = 10;
  /// Learning rate of the adaptive update. Class hypervectors start at
  /// bundled-sum scale, so sub-1 rates keep refinement from oscillating.
  float learning_rate = 0.3f;
  /// Use the paper's similarity-weighted (1 - delta) update; false gives a
  /// plain perceptron step (ablation).
  bool similarity_weighted_update = true;
  /// Re-bundle regenerated dimensions from the full training set right
  /// after resampling them (cheap one-shot relearn of the fresh dims);
  /// the adaptive epochs then refine. Disable to rely on adaptive updates
  /// alone, as an ablation.
  bool rebundle_after_regen = true;
  /// Minibatch tile size of the adaptive trainer: score this many shuffled
  /// samples against the frozen model in one blocked tile-kernel pass,
  /// then replay their (1 - delta)-weighted updates through the
  /// deterministic UpdateAccumulator — scoring and updates both split
  /// across the thread pool, bit-identical for every worker count. 1 (the
  /// default) reproduces the classic sample-at-a-time rule bit-exactly;
  /// larger tiles are the OnlineHD-style minibatch approximation that
  /// trades a bounded score lag for cache-tiled training throughput.
  /// 0 = auto: the execution context derives the L2-resident sweet spot
  /// from the machine's cache topology (pin it with CYBERHD_L2_BYTES for
  /// cross-host comparable runs).
  std::size_t batch_size = 1;
  /// Rows per encode→train chunk of fit(). 0 (the default) encodes the
  /// whole training set up front — peak encode memory O(n x D). When > 0,
  /// fit() streams: each phase (one-shot bundling, adaptive epochs, the
  /// regeneration re-bundles) encodes `train_tile_rows` rows at a time
  /// into one reused buffer, keeping peak encode memory at O(tile x D) at
  /// the price of re-encoding every epoch. With batch_size == 1 the
  /// streamed fit is bit-identical to the in-memory fit.
  std::size_t train_tile_rows = 0;
  /// Seed for encoder sampling, shuffling, and regeneration.
  std::uint64_t seed = 0xc1beau;
  /// Run encode, scoring, and update passes on the process execution
  /// context's thread pool; false pins everything to one thread.
  bool parallel = true;
};

/// The paper's classifier. Also usable as a plain core::Classifier.
class CyberHdClassifier final : public core::Classifier {
 public:
  explicit CyberHdClassifier(CyberHdConfig config = {});

  const CyberHdConfig& config() const noexcept { return config_; }

  /// The execution context this classifier's batch and training paths run
  /// on: the process context (global pool) when config().parallel, the
  /// serial context otherwise.
  const core::ExecutionContext& exec() const noexcept {
    return config_.parallel ? core::ExecutionContext::process()
                            : core::ExecutionContext::serial();
  }

  // core::Classifier ---------------------------------------------------------
  void fit(const core::Matrix& x, std::span<const int> y,
           std::size_t num_classes) override;
  std::size_t num_classes() const noexcept override { return num_classes_; }
  int predict(std::span<const float> x) const override;
  std::string name() const override;

  /// Class-membership scores (cosine similarities) of one raw sample;
  /// `scores` has num_classes entries. Useful for alert thresholds.
  void scores(std::span<const float> x,
              std::span<float> scores) const override;

  /// Batch inference: encode every row of `x` in one encode_batch pass
  /// (split across the execution context's pool) and score the whole tile
  /// against the class hypervectors. Per-row results are bit-identical to
  /// predict()/scores() on that row; predict_batch (from core::Classifier)
  /// rides this override.
  void scores_batch(const core::Matrix& x,
                    core::Matrix& out) const override;

  /// Diagnostics of the last fit() call.
  const FitReport& last_fit_report() const noexcept { return report_; }

  /// Effective dimensionality D* = D + total regenerated (paper Table I).
  std::size_t effective_dims() const noexcept;
  /// Physical dimensionality D.
  std::size_t physical_dims() const noexcept { return config_.dims; }

  /// The trained associative memory (valid after fit()).
  const HdcModel& model() const noexcept { return model_; }
  /// The (possibly regenerated) encoder (valid after fit()).
  const Encoder& encoder() const;

  /// Encode a raw sample with the trained encoder (valid after fit()).
  void encode(std::span<const float> x, std::span<float> h) const;

  /// Persist the trained classifier (config, encoder, class hypervectors,
  /// and the effective-D ledger) to a binary stream. Format version 2:
  /// three CRC32C-checksummed sections (config, encoder, model), so
  /// payload corruption is detected at load time.
  void save(std::ostream& out) const;
  /// Convenience: save to a file. Throws std::runtime_error on I/O error.
  void save_file(const std::string& path) const;
  /// Reconstruct a trained classifier from a stream written by save().
  /// Accepts both the checksummed version-2 format and the pre-checksum
  /// version-1 layout. Throws std::runtime_error on malformed or corrupt
  /// input (checksum failures name the offending section).
  static CyberHdClassifier load(std::istream& in);
  /// Convenience: load from a file.
  static CyberHdClassifier load_file(const std::string& path);

 private:
  /// Build the in-memory fit phases (whole training set encoded up front)
  /// and run them through the ScheduleDriver.
  void fit_in_memory(const core::Matrix& x, std::span<const int> y,
                     std::size_t num_classes, const Trainer& trainer,
                     const ScheduleDriver& driver, core::Rng& train_rng);
  /// Build the streamed fit phases (tile-at-a-time encode→train in one
  /// reused O(tile x D) buffer) and run them through the same driver.
  void fit_streamed(const core::Matrix& x, std::span<const int> y,
                    std::size_t num_classes, const Trainer& trainer,
                    const ScheduleDriver& driver, core::Rng& train_rng);

  CyberHdConfig config_;
  std::unique_ptr<Encoder> encoder_;
  HdcModel model_;
  std::optional<RegenController> regen_;
  FitReport report_;
  std::size_t num_classes_ = 0;
  // Note: no shared encode scratch — predict()/scores() allocate per call so
  // concurrent const calls from many threads are safe (the encode itself
  // dominates the cost of a D-float allocation by orders of magnitude).
};

/// Convenience: a static-encoder baseline HDC (regeneration disabled) at
/// the given dimensionality — the paper's "BaselineHD (D = ...)".
CyberHdConfig baseline_hd_config(std::size_t dims, std::uint64_t seed = 1);

}  // namespace cyberhd::hdc
