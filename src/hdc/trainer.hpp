// HDC training: one-shot bundling plus adaptive iterative refinement.
//
// The adaptive rule is the paper's section III "HDC Learning": for an
// encoded sample H with true label l, compute cosine similarities delta to
// every class hypervector; if the argmax l' differs from l, update
//   C_l  <- C_l  + eta * (1 - delta_l ) * H
//   C_l' <- C_l' - eta * (1 - delta_l') * H
// so that common patterns (delta ~ 1) barely perturb the model while novel
// patterns (delta ~ 0) move it strongly — the saturation-avoidance weighting
// that lets HDC converge in few epochs.
//
// The engine is cache-tiled and thread-parallel, with every policy knob
// (kernel backend, worker pool, tile sizes) supplied by one
// core::ExecutionContext instead of scattered pool pointers and hand-tuned
// constants:
//  * Adaptive epochs run in minibatch tiles (TrainerConfig::batch_size;
//    0 = auto, derived from the machine's L2 by the context): one
//    register-blocked similarities_tile_f32 call scores a whole tile of
//    shuffled samples against the frozen model — split across the context's
//    pool — then the (1 - delta)-weighted updates replay through the
//    UpdateAccumulator, also thread-parallel yet bit-identical for every
//    worker count. batch_size = 1 reproduces the classic sample-at-a-time
//    rule bit-exactly; larger tiles are the OnlineHD-style minibatch
//    approximation (scores lag the updates by at most one tile).
//  * One-shot initialize() bundles through fixed row stripes (a function of
//    the row count only), each accumulated independently and merged in
//    stripe order — so any thread count, and the streamed fit() path
//    feeding tiles through InitAccumulator, produce bit-identical models.
//  * evaluate() rides HdcModel::similarities_batch (the same tile kernel).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/exec/execution_context.hpp"
#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/model.hpp"

namespace cyberhd::hdc {

/// Hyper-parameters of the adaptive trainer.
struct TrainerConfig {
  /// Learning rate eta of the adaptive update.
  float learning_rate = 1.0f;
  /// When true (the paper's rule), updates are scaled by (1 - delta): the
  /// less familiar the sample, the stronger the update. When false, a
  /// plain perceptron-style constant-step update — the ablation baseline.
  bool similarity_weighted = true;
  /// When true, epochs visit samples in a freshly shuffled order.
  bool shuffle = true;
  /// When true, even correctly-classified samples reinforce their class by
  /// eta * (1 - delta) * H (pure NeuralHD uses mispredict-only updates;
  /// reinforcement slightly smooths small-class hypervectors).
  bool reinforce_correct = false;
  /// Remove the across-class common mode from the one-shot bundle: after
  /// bundling, subtract each class's share of the grand-mean encoding.
  /// Without this, every class hypervector is dominated by the mean
  /// encoding direction, cosine similarities start near 1 for all classes,
  /// and the (1 - delta)-weighted updates crawl through a long plateau.
  bool center_initialization = true;
  /// Minibatch tile size of the adaptive epoch: this many shuffled samples
  /// are scored against the frozen model with one blocked tile-kernel call
  /// before their updates are applied in visit order. 1 (the default) is
  /// the classic sequential rule, bit-exactly; larger tiles trade a
  /// bounded score lag for tile-kernel throughput and thread-parallel
  /// scoring and updates. 0 = auto: the execution context derives the
  /// L2-resident sweet spot from the cache topology
  /// (ExecutionContext::train_batch_rows).
  std::size_t batch_size = 1;
};

/// Result of one training epoch.
struct EpochStats {
  std::size_t samples = 0;
  std::size_t mispredicted = 0;
  /// Training accuracy observed during the epoch (before each update).
  double accuracy() const noexcept {
    return samples == 0 ? 0.0
                        : 1.0 - static_cast<double>(mispredicted) /
                                    static_cast<double>(samples);
  }
};

/// Striped one-shot-bundling accumulator — the deterministic core behind
/// Trainer::initialize and the streamed fit() path.
///
/// Rows are partitioned into fixed stripes by their *global* index (the
/// partition depends only on the total row count), each stripe keeps its
/// own float class sums and double mean sums, and finish() merges stripes
/// in index order. Because the arithmetic never depends on which thread
/// processed a stripe or on how tiles were sliced, initialize() over 1, 2,
/// or 8 workers and a streamed tile-at-a-time accumulation all produce
/// bit-identical models. With a single stripe (small inputs) the result is
/// bit-identical to the historical sequential bundle-into-a-zero-model.
class InitAccumulator {
 public:
  InitAccumulator(std::size_t num_classes, std::size_t dims,
                  std::size_t total_rows);

  std::size_t num_stripes() const noexcept { return stripe_sums_.size(); }
  /// [begin, end) of global row indices covered by stripe `s`.
  std::pair<std::size_t, std::size_t> stripe_range(
      std::size_t s) const noexcept;

  /// Bundle encoded rows [begin, end) of `encoded`, whose row i carries
  /// global index row_offset + i. Safe to call concurrently for ranges
  /// that touch disjoint stripes (Trainer::initialize parallelizes one
  /// task per stripe); the streaming path calls it tile-by-tile.
  void accumulate(const core::Matrix& encoded, std::span<const int> labels,
                  std::size_t begin, std::size_t end,
                  std::size_t row_offset);

  /// Merge the stripes into `model` in stripe order and, when the config
  /// asks for it, remove the across-class common mode.
  void finish(HdcModel& model, const TrainerConfig& config);

 private:
  std::size_t stripe_of(std::size_t global_row) const noexcept;

  std::size_t total_rows_;
  std::size_t stripe_rows_;
  std::vector<core::Matrix> stripe_sums_;              // per stripe: C x D
  std::vector<std::vector<double>> stripe_means_;      // per stripe: D
  std::vector<std::vector<std::size_t>> stripe_counts_;  // per stripe: C
};

/// Deterministic, thread-parallel application of one scored tile's
/// adaptive updates — what removes the serial axpy pass that capped
/// multi-core minibatch training.
///
/// collect() is the decision pass: serial and cheap (O(rows x classes)),
/// it reads the frozen tile scores, counts mispredictions, and records the
/// update list (row, class, step weight) in visit order. apply() replays
/// that list over the model in column stripes split across the context's
/// pool. Stripe boundaries are multiples of 16 floats, so every kernel
/// backend's axpy runs full SIMD vectors inside a stripe with the scalar
/// tail only at the true row end — the per-element arithmetic is exactly
/// the full-row axpy's, which makes the striped replay bit-identical to
/// the serial update rule for every worker count and stripe split.
class UpdateAccumulator {
 public:
  explicit UpdateAccumulator(const TrainerConfig& config)
      : config_(config) {}

  /// Decision pass over one scored tile: `tile` holds `rows` encoded
  /// samples (row-major rows x dims), `scores` their frozen cosine rows
  /// (rows x num_classes). Mispredictions accumulate into `stats`; the
  /// recorded update list replaces any previous one.
  void collect(const float* tile, std::size_t rows, const int* labels,
               std::span<const float> scores, std::size_t num_classes,
               std::size_t dims, EpochStats& stats);

  /// Replay the recorded updates onto `model`, columns striped across the
  /// context's pool. Bit-identical to applying them serially in visit
  /// order, for any worker count. `parallel = false` forces the serial
  /// replay without the caller having to materialize a pool-less context
  /// (the batch_size = 1 hot path takes it once per sample).
  void apply(HdcModel& model, const core::ExecutionContext& exec,
             bool parallel = true) const;

  std::size_t num_updates() const noexcept { return updates_.size(); }

 private:
  struct Update {
    std::uint32_t row;
    std::uint32_t cls;
    float weight;  // signed step: eta * (1 - delta), negated for the
                   // mispredicted class
  };

  TrainerConfig config_;
  const float* tile_ = nullptr;
  std::size_t dims_ = 0;
  std::vector<Update> updates_;
};

/// Trains an HdcModel over pre-encoded data. All parallelism and tiling
/// policy comes from the ExecutionContext given at construction (the
/// default is strictly serial).
class Trainer {
 public:
  explicit Trainer(TrainerConfig config = {},
                   const core::ExecutionContext& exec =
                       core::ExecutionContext::serial())
      : config_(config), exec_(exec) {}

  const TrainerConfig& config() const noexcept { return config_; }
  const core::ExecutionContext& exec() const noexcept { return exec_; }

  /// The minibatch size one epoch over `dims`-wide data actually uses:
  /// config().batch_size, or the context's cache-derived
  /// train_batch_rows(dims) when batch_size == 0 (auto). Benches report
  /// this so CSV rows from different hosts stay comparable.
  std::size_t resolved_batch_size(std::size_t dims) const noexcept {
    return config_.batch_size != 0 ? config_.batch_size
                                   : exec_.train_batch_rows(dims);
  }

  /// One-shot initialization: bundle every encoded sample into its class
  /// (the classic single-pass HDC "training"). The model must match
  /// (num_classes x dims) of the data. Stripes split across the context's
  /// pool; the result is bit-identical for every thread count.
  void initialize(HdcModel& model, const core::Matrix& encoded,
                  std::span<const int> labels) const;

  /// One adaptive epoch over the encoded data, in minibatch tiles of
  /// resolved_batch_size(). Tile scoring and the update replay split
  /// across the context's pool (results are thread-count independent).
  /// Returns per-epoch stats.
  EpochStats train_epoch(HdcModel& model, const core::Matrix& encoded,
                         std::span<const int> labels, core::Rng& rng) const;

  /// Run `epochs` adaptive epochs; returns stats of the final epoch.
  EpochStats train(HdcModel& model, const core::Matrix& encoded,
                   std::span<const int> labels, std::size_t epochs,
                   core::Rng& rng) const;

  /// Apply the adaptive rule to one pre-encoded, pre-gathered tile (the
  /// first `labels.size()` rows of `tile`), processed in sub-batches of
  /// resolved_batch_size(). Misprediction counts accumulate into `stats`
  /// (`stats.samples` is the caller's bookkeeping). This is the streamed
  /// fit() entry point: feeding a whole epoch through tiles whose rows
  /// follow the epoch_order() sequence reproduces train_epoch bit-exactly
  /// when the tile size is a multiple of the batch size.
  void train_tile(HdcModel& model, const core::Matrix& tile,
                  std::span<const int> labels, EpochStats& stats) const;

  /// The sample visit order of one epoch: [0, n) shuffled when `shuffle`.
  /// Exposed so the streamed fit() path draws exactly the same sequence
  /// from the same generator as train_epoch.
  static std::vector<std::size_t> epoch_order(std::size_t n, core::Rng& rng,
                                              bool shuffle);

  /// Accuracy of the model over an encoded set (no updates). Rides
  /// HdcModel::similarities_batch, so it scores at tile-kernel speed and
  /// splits across the context's pool.
  static double evaluate(const HdcModel& model, const core::Matrix& encoded,
                         std::span<const int> labels,
                         const core::ExecutionContext& exec =
                             core::ExecutionContext::serial());

 private:
  /// Score `rows` samples starting at `tile` (row-major rows x dims)
  /// against the frozen model with one tile-kernel pass, then replay the
  /// adaptive updates through the accumulator — both split across the
  /// context's pool when `parallel`.
  void update_tile(HdcModel& model, const float* tile, std::size_t rows,
                   const int* labels, EpochStats& stats,
                   std::span<float> scores, std::span<float> class_norms,
                   UpdateAccumulator& acc, bool parallel) const;

  TrainerConfig config_;
  core::ExecutionContext exec_;
};

}  // namespace cyberhd::hdc
