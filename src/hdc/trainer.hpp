// HDC training: one-shot bundling plus adaptive iterative refinement.
//
// The adaptive rule is the paper's section III "HDC Learning": for an
// encoded sample H with true label l, compute cosine similarities delta to
// every class hypervector; if the argmax l' differs from l, update
//   C_l  <- C_l  + eta * (1 - delta_l ) * H
//   C_l' <- C_l' - eta * (1 - delta_l') * H
// so that common patterns (delta ~ 1) barely perturb the model while novel
// patterns (delta ~ 0) move it strongly — the saturation-avoidance weighting
// that lets HDC converge in few epochs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "hdc/model.hpp"

namespace cyberhd::hdc {

/// Hyper-parameters of the adaptive trainer.
struct TrainerConfig {
  /// Learning rate eta of the adaptive update.
  float learning_rate = 1.0f;
  /// When true (the paper's rule), updates are scaled by (1 - delta): the
  /// less familiar the sample, the stronger the update. When false, a
  /// plain perceptron-style constant-step update — the ablation baseline.
  bool similarity_weighted = true;
  /// When true, epochs visit samples in a freshly shuffled order.
  bool shuffle = true;
  /// When true, even correctly-classified samples reinforce their class by
  /// eta * (1 - delta) * H (pure NeuralHD uses mispredict-only updates;
  /// reinforcement slightly smooths small-class hypervectors).
  bool reinforce_correct = false;
  /// Remove the across-class common mode from the one-shot bundle: after
  /// bundling, subtract each class's share of the grand-mean encoding.
  /// Without this, every class hypervector is dominated by the mean
  /// encoding direction, cosine similarities start near 1 for all classes,
  /// and the (1 - delta)-weighted updates crawl through a long plateau.
  bool center_initialization = true;
};

/// Result of one training epoch.
struct EpochStats {
  std::size_t samples = 0;
  std::size_t mispredicted = 0;
  /// Training accuracy observed during the epoch (before each update).
  double accuracy() const noexcept {
    return samples == 0 ? 0.0
                        : 1.0 - static_cast<double>(mispredicted) /
                                    static_cast<double>(samples);
  }
};

/// Trains an HdcModel over pre-encoded data.
class Trainer {
 public:
  explicit Trainer(TrainerConfig config = {}) : config_(config) {}

  const TrainerConfig& config() const noexcept { return config_; }

  /// One-shot initialization: bundle every encoded sample into its class
  /// (the classic single-pass HDC "training"). The model must match
  /// (num_classes x dims) of the data.
  void initialize(HdcModel& model, const core::Matrix& encoded,
                  std::span<const int> labels) const;

  /// One adaptive epoch over the encoded data. Returns per-epoch stats.
  EpochStats train_epoch(HdcModel& model, const core::Matrix& encoded,
                         std::span<const int> labels, core::Rng& rng) const;

  /// Run `epochs` adaptive epochs; returns stats of the final epoch.
  EpochStats train(HdcModel& model, const core::Matrix& encoded,
                   std::span<const int> labels, std::size_t epochs,
                   core::Rng& rng) const;

  /// Accuracy of the model over an encoded set (no updates).
  static double evaluate(const HdcModel& model, const core::Matrix& encoded,
                         std::span<const int> labels);

 private:
  TrainerConfig config_;
};

}  // namespace cyberhd::hdc
