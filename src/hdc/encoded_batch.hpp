// EncodedBatch — the view type the stage-split serving pipeline hands
// between its two stages.
//
// Stage 1 (Encoder::encode_batch, or the encode cache on its behalf) fills
// a caller-owned row-major buffer and returns an EncodedBatch over it;
// stage 2 (HdcModel::similarities_batch / the quantized scorer) consumes
// the view without caring whether the rows came from a fresh encode, a
// cache hit, or a slice of a larger staging buffer. Keeping the handoff a
// non-owning view is what lets the batch planner cut one logical batch
// into L3-resident sub-batches without copies, and lets callers reuse one
// staging buffer across pipeline iterations.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

#include "core/matrix.hpp"

namespace cyberhd::hdc {

/// Non-owning view of `rows` encoded hypervectors laid out row-major and
/// contiguously (`dims` floats per row, no inter-row padding) — the
/// contract the tile-scoring kernels need. Cheap to copy; never outlives
/// the buffer it views.
class EncodedBatch {
 public:
  EncodedBatch() = default;
  EncodedBatch(const float* data, std::size_t rows, std::size_t dims)
      : data_(data), rows_(rows), dims_(dims) {
    assert(data != nullptr || rows == 0);
  }

  /// View over every row of a matrix of encoded samples.
  static EncodedBatch of(const core::Matrix& m) noexcept {
    return {m.data(), m.rows(), m.cols()};
  }
  /// View over the first `rows` rows of a (possibly larger) staging
  /// matrix — the encode stage fills exactly the front of its buffer.
  static EncodedBatch front_of(const core::Matrix& m,
                               std::size_t rows) noexcept {
    assert(rows <= m.rows());
    return {m.data(), rows, m.cols()};
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t dims() const noexcept { return dims_; }
  bool empty() const noexcept { return rows_ == 0; }
  const float* data() const noexcept { return data_; }

  std::span<const float> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_ + r * dims_, dims_};
  }

  /// Sub-view of `count` rows starting at `begin` — how the batch planner
  /// carves per-domain sub-batches out of one encoded block.
  EncodedBatch slice(std::size_t begin, std::size_t count) const noexcept {
    assert(begin + count <= rows_);
    return {data_ + begin * dims_, count, dims_};
  }

 private:
  const float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t dims_ = 0;
};

}  // namespace cyberhd::hdc
