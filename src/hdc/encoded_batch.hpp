// EncodedBatch — the view type the stage-split serving pipeline hands
// between its two stages.
//
// Stage 1 (Encoder::encode_batch, or the encode cache on its behalf) fills
// a caller-owned row-major buffer and returns an EncodedBatch over it;
// stage 2 (HdcModel::similarities_batch / the quantized scorer) consumes
// the view without caring whether the rows came from a fresh encode, a
// cache hit, or a slice of a larger staging buffer. Keeping the handoff a
// non-owning view is what lets the batch planner cut one logical batch
// into L3-resident sub-batches without copies, and lets callers reuse one
// staging buffer across pipeline iterations.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/matrix.hpp"

namespace cyberhd::hdc {

/// Non-owning view of `rows` encoded hypervectors laid out row-major and
/// contiguously (`dims` floats per row, no inter-row padding) — the
/// contract the tile-scoring kernels need. Cheap to copy; never outlives
/// the buffer it views.
class EncodedBatch {
 public:
  EncodedBatch() = default;
  EncodedBatch(const float* data, std::size_t rows, std::size_t dims)
      : data_(data), rows_(rows), dims_(dims) {
    assert(data != nullptr || rows == 0);
  }

  /// View over every row of a matrix of encoded samples.
  static EncodedBatch of(const core::Matrix& m) noexcept {
    return {m.data(), m.rows(), m.cols()};
  }
  /// View over the first `rows` rows of a (possibly larger) staging
  /// matrix — the encode stage fills exactly the front of its buffer.
  static EncodedBatch front_of(const core::Matrix& m,
                               std::size_t rows) noexcept {
    assert(rows <= m.rows());
    return {m.data(), rows, m.cols()};
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t dims() const noexcept { return dims_; }
  bool empty() const noexcept { return rows_ == 0; }
  const float* data() const noexcept { return data_; }

  std::span<const float> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_ + r * dims_, dims_};
  }

  /// Sub-view of `count` rows starting at `begin` — how the batch planner
  /// carves per-domain sub-batches out of one encoded block.
  EncodedBatch slice(std::size_t begin, std::size_t count) const noexcept {
    assert(begin + count <= rows_);
    return {data_ + begin * dims_, count, dims_};
  }

 private:
  const float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t dims_ = 0;
};

/// Non-owning view of `rows` QUANTIZED hypervectors — the packed sibling of
/// EncodedBatch the quantized serving pipeline hands between its stages.
/// Rows are laid out contiguously at row_bytes(dims, bits) bytes each:
///
///   bits in {2, 4, 8} — dims int8 levels per row (one byte per dimension;
///     levels at <= 8 bits fit int8 exactly, and the int8 layout is what
///     the similarities_tile_i8 kernel streams);
///   bits == 1        — ceil(dims / 64) little-endian 64-bit words per row
///     (bit set = +1), tail bits zero per bitpack.hpp's masking invariant;
///     what the hamming_tile_1b kernel streams.
///
/// The buffer must be 8-byte aligned when bits == 1 (PackedStaging and the
/// encode cache's ring storage both over-align to 64). Cheap to copy;
/// never outlives the buffer it views.
class PackedBatch {
 public:
  PackedBatch() = default;
  PackedBatch(const unsigned char* data, std::size_t rows, std::size_t dims,
              int bits)
      : data_(data), rows_(rows), dims_(dims), bits_(bits) {
    assert(data != nullptr || rows == 0);
    assert(bits >= 1 && bits <= 8);
  }

  /// Bytes one packed row occupies (the cache entry size and the planner's
  /// bytes-per-row input): dims for int8 rows, ceil(dims / 64) * 8 for
  /// packed 1-bit rows.
  static constexpr std::size_t row_bytes(std::size_t dims,
                                         int bits) noexcept {
    return bits == 1 ? ((dims + 63) / 64) * sizeof(std::uint64_t) : dims;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t dims() const noexcept { return dims_; }
  int bits() const noexcept { return bits_; }
  bool empty() const noexcept { return rows_ == 0; }
  std::size_t row_bytes() const noexcept { return row_bytes(dims_, bits_); }
  /// Words per row; only meaningful when bits() == 1.
  std::size_t words() const noexcept { return (dims_ + 63) / 64; }
  const unsigned char* data() const noexcept { return data_; }

  /// Row r as int8 levels. Precondition: bits() > 1.
  const std::int8_t* i8_row(std::size_t r) const noexcept {
    assert(r < rows_ && bits_ > 1);
    return reinterpret_cast<const std::int8_t*>(data_ + r * row_bytes());
  }
  /// Row r as packed words. Precondition: bits() == 1.
  const std::uint64_t* word_row(std::size_t r) const noexcept {
    assert(r < rows_ && bits_ == 1);
    return reinterpret_cast<const std::uint64_t*>(data_ + r * row_bytes());
  }

  /// Sub-view of `count` rows starting at `begin`.
  PackedBatch slice(std::size_t begin, std::size_t count) const noexcept {
    assert(begin + count <= rows_);
    return {data_ + begin * row_bytes(), count, dims_, bits_};
  }

 private:
  const unsigned char* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t dims_ = 0;
  int bits_ = 8;
};

/// Non-owning INDIRECT view of `n` encoded hypervectors: row r lives at
/// rows[r], an arbitrary address (a borrowed cache-ring entry, a staging
/// row — any mix). The zero-copy serving path builds one of these instead
/// of memcpying cache hits into a contiguous EncodedBatch; stage 2 scores
/// it through the gather tile kernels, whose outputs are bit-identical to
/// the contiguous kernels over the same row bytes. Cheap to copy; neither
/// the pointer table nor the rows it names may outlive their owners (the
/// ScoringWorkspace and its BorrowGuard hold both for exactly one flush).
class EncodedRows {
 public:
  EncodedRows() = default;
  EncodedRows(const float* const* rows, std::size_t n, std::size_t dims)
      : rows_(rows), n_(n), dims_(dims) {
    assert(rows != nullptr || n == 0);
  }

  std::size_t rows() const noexcept { return n_; }
  std::size_t dims() const noexcept { return dims_; }
  bool empty() const noexcept { return n_ == 0; }
  /// The row-pointer table the gather kernels consume.
  const float* const* row_ptrs() const noexcept { return rows_; }

  std::span<const float> row(std::size_t r) const noexcept {
    assert(r < n_);
    return {rows_[r], dims_};
  }

 private:
  const float* const* rows_ = nullptr;
  std::size_t n_ = 0;
  std::size_t dims_ = 0;
};

/// Indirect sibling of PackedBatch: a typed row-pointer table over packed
/// quantized rows. Exactly one of the two tables is populated — int8 rows
/// for bits in {2, 4, 8}, packed 64-bit word rows for bits == 1 — matching
/// the two gather tile kernels.
class PackedRows {
 public:
  PackedRows() = default;
  /// int8 rows (bits in {2, 4, 8}).
  PackedRows(const std::int8_t* const* i8_rows, std::size_t n,
             std::size_t dims, int bits)
      : i8_(i8_rows), n_(n), dims_(dims), bits_(bits) {
    assert(i8_rows != nullptr || n == 0);
    assert(bits > 1 && bits <= 8);
  }
  /// Packed word rows (bits == 1).
  PackedRows(const std::uint64_t* const* word_rows, std::size_t n,
             std::size_t dims)
      : words_(word_rows), n_(n), dims_(dims), bits_(1) {
    assert(word_rows != nullptr || n == 0);
  }

  std::size_t rows() const noexcept { return n_; }
  std::size_t dims() const noexcept { return dims_; }
  int bits() const noexcept { return bits_; }
  bool empty() const noexcept { return n_ == 0; }
  /// Words per row; only meaningful when bits() == 1.
  std::size_t words() const noexcept { return (dims_ + 63) / 64; }

  /// The int8 row-pointer table. Precondition: bits() > 1.
  const std::int8_t* const* i8_row_ptrs() const noexcept {
    assert(bits_ > 1);
    return i8_;
  }
  /// The packed-word row-pointer table. Precondition: bits() == 1.
  const std::uint64_t* const* word_row_ptrs() const noexcept {
    assert(bits_ == 1);
    return words_;
  }

 private:
  const std::int8_t* const* i8_ = nullptr;
  const std::uint64_t* const* words_ = nullptr;
  std::size_t n_ = 0;
  std::size_t dims_ = 0;
  int bits_ = 8;
};

/// Reusable owning buffer behind PackedBatch views — the packed pipeline's
/// analogue of the float staging Matrix. 64-byte aligned (so 1-bit word
/// rows stay 8-byte aligned and SIMD loads never straddle lines); grows
/// monotonically like the staging Matrix, so per-block serving reuses one
/// allocation.
class PackedStaging {
 public:
  /// Ensure capacity for `rows` rows of row_bytes(dims, bits) bytes and
  /// return the mutable base pointer.
  unsigned char* prepare(std::size_t rows, std::size_t dims, int bits) {
    const std::size_t need = rows * PackedBatch::row_bytes(dims, bits);
    if (bytes_.size() < need) bytes_.resize(need);
    return bytes_.data();
  }
  /// View over the first `rows` rows of the prepared buffer.
  PackedBatch view(std::size_t rows, std::size_t dims, int bits) const {
    assert(rows * PackedBatch::row_bytes(dims, bits) <= bytes_.size());
    return {bytes_.data(), rows, dims, bits};
  }

 private:
  std::vector<unsigned char, core::AlignedAllocator<unsigned char>> bytes_;
};

}  // namespace cyberhd::hdc
